lib/engine/egd_chase.ml: Atom Chase_logic Egd Engine Fmt Hom Instance List Subst Term Variant
