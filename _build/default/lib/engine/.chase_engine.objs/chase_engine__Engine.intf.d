lib/engine/engine.mli: Atom Chase_logic Derivation Format Instance Subst Tgd Variant
