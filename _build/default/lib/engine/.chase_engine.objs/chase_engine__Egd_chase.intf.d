lib/engine/egd_chase.mli: Atom Chase_logic Egd Engine Format Instance Tgd
