lib/engine/critical.mli: Chase_logic Instance Schema Term Tgd
