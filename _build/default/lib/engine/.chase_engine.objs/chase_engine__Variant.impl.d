lib/engine/variant.ml: Fmt
