lib/engine/critical.ml: Array Atom Chase_logic Fmt Instance List Schema Term Tgd Util
