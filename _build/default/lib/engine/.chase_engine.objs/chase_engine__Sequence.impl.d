lib/engine/sequence.ml: Atom Chase_logic Engine Fmt Hashtbl Instance List Subst Tgd Util Variant
