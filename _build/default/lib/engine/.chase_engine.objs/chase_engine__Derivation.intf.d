lib/engine/derivation.mli: Chase_logic Format
