lib/engine/engine.ml: Array Atom Chase_classes Chase_logic Derivation Fmt Hashtbl Hom Instance List Option Queue Subst Term Tgd Util Variant
