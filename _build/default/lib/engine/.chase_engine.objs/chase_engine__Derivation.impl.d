lib/engine/derivation.ml: Atom Chase_logic Fmt Subst Tgd
