lib/engine/sequence.mli: Atom Chase_logic Engine Format Subst Tgd Variant
