lib/engine/variant.mli: Format
