(** Provenance of chase-produced facts.

    For every fact added by a trigger application the engine records which
    rule fired, the full body homomorphism, the body image (the fact's
    parents in the derivation forest), the guard image when the rule is
    guarded, the creation depth, and the global step number.  The
    termination certificates of [Chase_termination] are found by walking
    these records. *)

open Chase_logic

type t = {
  rule : Tgd.t;
  hom : Subst.t;  (** the full body homomorphism of the trigger *)
  parents : Atom.t list;  (** image of the body under [hom] *)
  guard_parent : Atom.t option;
      (** image of the guard atom, when the rule is guarded *)
  depth : int;  (** 1 + max depth of parents; database facts have depth 0 *)
  step : int;  (** sequence number of the trigger application *)
  created_nulls : int list;  (** stamps of the nulls invented by the trigger *)
}

let rule d = d.rule
let parents d = d.parents
let depth d = d.depth
let step d = d.step

let pp fm d =
  Fmt.pf fm "@[step %d, depth %d, rule %a via %a@]" d.step d.depth Tgd.pp d.rule
    Subst.pp d.hom
