(** The critical instance.

    For a schema S and a finite set C of constants, the critical instance
    crit(S, C) contains every fact p(c̄) with p ∈ S and c̄ ∈ C^arity(p).
    With C = {✶} this is Marnette's critical instance: every database over
    S maps homomorphically onto it (all constants to ✶), and since
    (semi-)oblivious chase steps are preserved under homomorphisms, the
    ?-chase terminates on {e every} database iff it terminates on the
    critical instance.  The paper's {e standard databases} — databases with
    the constants 0 and 1 available — are covered by C = {✶, 0, 1}.

    The instance has Σ_p |C|^arity(p) facts; [instance] refuses to build
    more than [max_facts] of them (the termination checkers only ever need
    tiny schemas per rule set, so hitting the limit indicates misuse). *)

open Chase_logic

let star = Term.Const "*"
let plain_constants = [ star ]
let standard_constants = [ star; Term.Const "0"; Term.Const "1" ]

exception Too_large of int

(** Number of facts crit(S, C) would contain. *)
let size ~constants schema =
  let k = List.length constants in
  List.fold_left
    (fun acc (_, n) ->
      let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
      acc + pow k n)
    0 (Schema.to_list schema)

(** [instance ?standard ?constants ?max_facts schema] builds the critical
    instance.  [standard] defaults to [false] ({✶} only); [constants]
    overrides the constant set entirely.

    @raise Too_large when the instance would exceed [max_facts]
    (default 1_000_000). *)
let instance ?(standard = false) ?constants ?(max_facts = 1_000_000) schema =
  let constants =
    match constants with
    | Some cs -> cs
    | None -> if standard then standard_constants else plain_constants
  in
  let total = size ~constants schema in
  if total > max_facts then raise (Too_large total);
  let ins = Instance.create ~initial_capacity:(max 16 total) () in
  let cs = Array.of_list constants in
  let k = Array.length cs in
  List.iter
    (fun (p, n) ->
      (* enumerate all k^n tuples *)
      let args = Array.make n cs.(0) in
      let rec go i =
        if i >= n then ignore (Instance.add ins (Atom.make p (Array.copy args)))
        else
          for j = 0 to k - 1 do
            args.(i) <- cs.(j);
            go (i + 1)
          done
      in
      if n = 0 then ignore (Instance.add ins (Atom.make p [||])) else go 0)
    (Schema.to_list schema);
  ins

(** The generic instance: one fact per predicate, with pairwise-distinct
    fresh constants everywhere.  Dual to the critical instance — where the
    critical instance maximizes term sharing, the generic one has none —
    and useful for probing the restricted chase, which the
    critical-instance reduction does not cover (a restricted chase can
    terminate on crit(Σ) yet diverge on an all-distinct database). *)
let generic_instance schema =
  let ins = Instance.create () in
  let counter = ref 0 in
  List.iter
    (fun (p, n) ->
      let args =
        Array.init n (fun _ ->
            incr counter;
            Term.Const (Fmt.str "g%d" !counter))
      in
      ignore (Instance.add ins (Atom.make p args)))
    (Schema.to_list schema);
  ins

let generic_of_rules rules = generic_instance (Schema.of_rules rules)

(** The constant set appropriate for a rule set: ✶, the constants the
    rules themselves mention (Marnette's construction needs them — a body
    constant never matches ✶), and 0, 1 in standard mode. *)
let constants_for ?(standard = false) rules =
  let base = if standard then standard_constants else plain_constants in
  let rule_consts =
    Util.Sset.fold
      (fun c acc -> Term.Const c :: acc)
      (Tgd.constants_of_rules rules) []
  in
  base @ List.filter (fun c -> not (List.mem c base)) rule_consts

(** Critical instance for a rule set: schema inferred from the rules,
    constant set per [constants_for] (unless overridden). *)
let of_rules ?standard ?constants ?max_facts rules =
  let constants =
    match constants with
    | Some cs -> cs
    | None -> constants_for ?standard rules
  in
  instance ~constants ?max_facts (Schema.of_rules rules)
