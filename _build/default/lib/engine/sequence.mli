(** First-class chase sequences — the I₀, I₁, …, Iₙ formalism of the
    paper's §2, captured from engine runs and checkable against the
    definition's clauses. *)

open Chase_logic

type step = {
  index : int;  (** 1-based position in the sequence *)
  rule : Tgd.t;
  hom : Subst.t;  (** the full body homomorphism *)
  added : Atom.t list;  (** facts new in I_{i+1} (possibly empty) *)
}

type t = {
  initial : Atom.t list;  (** I₀ *)
  steps : step list;  (** in application order *)
  complete : bool;  (** the run drained the worklist *)
  variant : Variant.t;
}

val record :
  ?config:Engine.config ->
  ?variant:Variant.t ->
  Tgd.t list ->
  Atom.t list ->
  t * Engine.result
(** Run the chase and capture the sequence of trigger applications. *)

val length : t -> int

val instances : t -> Atom.t list list
(** I₀, I₁, … reconstructed (quadratic in space — use on small runs). *)

val no_repeated_trigger : t -> bool
(** Clause (ii): no trigger applied twice, modulo the variant's trigger
    identity. *)

val steps_are_valid : t -> bool
(** Clause (i): every step's homomorphism maps its body into the current
    instance. *)

val exhaustive : t -> Tgd.t list -> bool
(** Clause (iii) for terminating sequences. *)

val pp : Format.formatter -> t -> unit
