(** The chase engine: one fair (FIFO) worklist core driving all three
    variants.

    A {e trigger} is a pair (rule, homomorphism from the body into the
    current instance).  The engine seeds the worklist with every trigger
    on the input database and then, semi-naively, enqueues only triggers
    whose body image uses a newly added fact.  FIFO order makes every run
    a fair chase sequence.  Trigger deduplication follows the variant:
    full homomorphism for the oblivious chase, frontier restriction for
    the semi-oblivious; the restricted chase additionally skips triggers
    whose head is satisfiable at fire time. *)

open Chase_logic

type config = {
  variant : Variant.t;
  max_triggers : int;  (** stop after this many trigger applications *)
  max_atoms : int;  (** stop once the instance reaches this many facts *)
}

val default_config : config
(** Oblivious, 100k triggers, 200k facts. *)

type status =
  | Terminated  (** no unapplied trigger remains: the result is final *)
  | Budget_exhausted  (** a resource budget was hit; the run is a prefix *)

type result = {
  instance : Instance.t;
  status : status;
  variant : Variant.t;
  triggers_applied : int;
  triggers_skipped : int;  (** restricted chase: triggers found satisfied *)
  atoms_created : int;
  nulls_created : int;
  max_depth : int;
  provenance : Derivation.t Atom.Tbl.t;
      (** derivation record for every fact created by the chase *)
}

val run :
  ?config:config ->
  ?on_trigger:(step:int -> Tgd.t -> Subst.t -> Atom.t list -> unit) ->
  Tgd.t list ->
  Atom.t list ->
  result
(** [run rules db] chases the facts [db]; the input list is not mutated.
    When the run terminates, the result instance is a (finite) universal
    model of the database and the rules.  [on_trigger] fires after every
    trigger application with the step number, rule, full body
    homomorphism, and the facts actually added (see {!Sequence}). *)

val depth_of : result -> Atom.t -> int
(** Chase depth of a fact; database facts have depth 0. *)

val is_model : Tgd.t list -> Instance.t -> bool
(** Every body match extends to a head match. *)

val pp_result : Format.formatter -> result -> unit
