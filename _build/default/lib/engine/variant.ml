(** The chase variants studied by the paper, plus the restricted chase
    (§4 / future work).

    The variants differ only in when two triggers are considered the same —
    equivalently, in the key under which a trigger is deduplicated:

    - {b oblivious}: the key is the full body homomorphism; every distinct
      homomorphism fires exactly once, unconditionally;
    - {b semi-oblivious}: the key is the homomorphism restricted to the
      frontier; homomorphisms agreeing on the frontier are
      indistinguishable (this is the Skolem chase of Marnette);
    - {b restricted}: keyed like the oblivious chase, but a trigger only
      fires if its head is not already satisfied by an extension of the
      frontier assignment. *)

type t =
  | Oblivious
  | Semi_oblivious
  | Restricted

let to_string = function
  | Oblivious -> "oblivious"
  | Semi_oblivious -> "semi-oblivious"
  | Restricted -> "restricted"

let pp fm v = Fmt.string fm (to_string v)

let all = [ Oblivious; Semi_oblivious; Restricted ]

let of_string = function
  | "oblivious" | "o" -> Some Oblivious
  | "semi-oblivious" | "so" | "semioblivious" | "skolem" -> Some Semi_oblivious
  | "restricted" | "r" | "standard" -> Some Restricted
  | _ -> None
