(** The chase variants studied by the paper, plus the restricted chase
    (§4 / future work).  The variants differ only in when two triggers are
    considered the same — see {!Engine}. *)

type t =
  | Oblivious  (** key = full body homomorphism *)
  | Semi_oblivious  (** key = homomorphism restricted to the frontier *)
  | Restricted  (** fires only when the head is not already satisfied *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list

val of_string : string -> t option
(** Accepts the full names and the abbreviations [o], [so], [skolem],
    [r], [standard]. *)
