(** Provenance of chase-produced facts: which rule fired, under which
    homomorphism, from which parent facts, at which depth and step.  The
    termination certificates of [Chase_termination] are found by walking
    these records. *)

type t = {
  rule : Chase_logic.Tgd.t;
  hom : Chase_logic.Subst.t;  (** the full body homomorphism *)
  parents : Chase_logic.Atom.t list;  (** image of the body *)
  guard_parent : Chase_logic.Atom.t option;
      (** image of the guard atom, when the rule is guarded *)
  depth : int;  (** 1 + max depth of parents; database facts have depth 0 *)
  step : int;  (** sequence number of the trigger application *)
  created_nulls : int list;  (** stamps of the nulls invented *)
}

val rule : t -> Chase_logic.Tgd.t
val parents : t -> Chase_logic.Atom.t list
val depth : t -> int
val step : t -> int
val pp : Format.formatter -> t -> unit
