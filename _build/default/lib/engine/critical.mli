(** The critical instance and its dual, the generic instance.

    crit(S, C) contains every fact p(c̄) with p ∈ S and c̄ over the
    constants C.  With C ⊇ consts(Σ) ∪ {✶} every database maps
    homomorphically onto it, and since (semi-)oblivious chase steps are
    preserved under homomorphisms, the ?-chase (? ∈ {o, so}) terminates on
    every database iff it terminates on the critical instance (Marnette).
    The paper's {e standard databases} add the constants 0 and 1.

    The critical-instance reduction is {e not} sound for the restricted
    chase, which is what {!generic_instance} is for. *)

open Chase_logic

val star : Term.t
(** The distinguished constant ✶. *)

val plain_constants : Term.t list
val standard_constants : Term.t list

exception Too_large of int

val size : constants:Term.t list -> Schema.t -> int
(** Number of facts crit(S, C) would contain. *)

val instance :
  ?standard:bool -> ?constants:Term.t list -> ?max_facts:int -> Schema.t -> Instance.t
(** @raise Too_large above [max_facts] (default 1_000_000). *)

val constants_for : ?standard:bool -> Tgd.t list -> Term.t list
(** ✶, the constants the rules mention, and 0, 1 in standard mode. *)

val of_rules :
  ?standard:bool -> ?constants:Term.t list -> ?max_facts:int -> Tgd.t list -> Instance.t
(** Critical instance of a rule set: schema inferred, constants per
    {!constants_for} unless overridden. *)

val generic_instance : Schema.t -> Instance.t
(** One fact per predicate with pairwise-distinct fresh constants — the
    hardest-to-block database shape for the restricted chase. *)

val generic_of_rules : Tgd.t list -> Instance.t
