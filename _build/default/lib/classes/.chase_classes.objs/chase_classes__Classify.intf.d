lib/classes/classify.mli: Atom Chase_logic Format Tgd
