lib/classes/classify.ml: Atom Chase_logic Fmt Hashtbl List Option Tgd Util
