lib/generators/random_tgds.mli: Chase_logic Tgd
