lib/generators/families.ml: Atom Chase_logic Fmt List Term Tgd
