lib/generators/families.mli: Chase_logic Tgd
