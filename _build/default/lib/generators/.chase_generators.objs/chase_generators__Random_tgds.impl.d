lib/generators/random_tgds.ml: Atom Chase_logic Fmt List Random Term Tgd
