(** The looping operator — the core device of the paper's lower bounds.

    loop(Σ, α) = Σ ∪ {α → ∃Z₁Z₂ loop(Z₁,Z₂)} ∪ {loop(X,Y) → ∃Z loop(Y,Z)}.
    For a database D without loop-atoms and Σ whose chase terminates on D
    (e.g. Datalog), the ?-chase of D under loop(Σ, α) terminates iff
    D, Σ ⊭ ∃x̄ α — a reduction from atom entailment to the complement of
    single-database chase termination that preserves linearity and
    guardedness.  (The all-instance lower bounds additionally need the
    paper's clocked-TM encodings; see DESIGN.md §6.) *)

open Chase_logic

type t = {
  rules : Tgd.t list;  (** the rule set loop(Σ, α) *)
  loop_pred : string;
  trigger_rule : Tgd.t;
  loop_rule : Tgd.t;
}

val fresh_pred : Tgd.t list -> Atom.t -> string -> string
(** A predicate name avoiding the schema and the target. *)

val apply : Tgd.t list -> target:Atom.t -> t
(** @raise Invalid_argument if the target contains nulls. *)
