lib/reductions/entailment.ml: Atom Chase_engine Chase_logic Critical Engine Fmt Hom Instance Schema Variant
