lib/reductions/looping.ml: Atom Chase_logic Fmt Schema String Term Tgd Util
