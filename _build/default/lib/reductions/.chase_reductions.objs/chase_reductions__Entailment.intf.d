lib/reductions/entailment.mli: Atom Chase_logic Tgd
