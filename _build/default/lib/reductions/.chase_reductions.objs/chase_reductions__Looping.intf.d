lib/reductions/looping.mli: Atom Chase_logic Tgd
