(** Atom entailment under TGDs, by chasing: D, Σ ⊨ ∃x̄ q iff the chase of
    D contains a homomorphic image of q.  Exact for full (Datalog) rules;
    in general a semi-decision with budget. *)

open Chase_logic

type answer =
  [ `Entailed
  | `Not_entailed
  | `Unknown of string
  ]

val default_budget : int

val check : ?budget:int -> Tgd.t list -> Atom.t list -> Atom.t -> answer
val holds : ?budget:int -> Tgd.t list -> Atom.t list -> Atom.t -> bool

val holds_critical : ?standard:bool -> ?budget:int -> Tgd.t list -> Atom.t -> bool
(** Entailment from the critical database of the combined schema. *)
