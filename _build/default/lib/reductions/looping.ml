(** The looping operator: reducing atom entailment to the complement of
    chase termination.

    The paper's lower bounds all factor through one generic device: given a
    rule set Σ (over which entailment is hard) and a target atom α, build

      loop(Σ, α)  =  Σ  ∪  { α → ∃Z₁∃Z₂ loop(Z₁, Z₂) }
                        ∪  { loop(X, Y) → ∃Z loop(Y, Z) }

    where [loop] is a predicate not in the schema of Σ.  The second rule is
    Example 2 of the paper — the canonical infinite (semi-)oblivious chase
    — but it only ever fires if some instance of α is present.  Hence, for
    a database D without loop-atoms and Σ whose own chase terminates on D
    (e.g. full/Datalog Σ):

      the ?-chase of D under loop(Σ, α) terminates
          ⟺  D, Σ ⊭ ∃x̄ α      (? ∈ {oblivious, semi-oblivious})

    — a reduction from atom entailment to the complement of {e
    single-database} chase termination, which is the core device of the
    paper's lower bounds.  (The {e all-instance} reductions behind
    Theorems 3–4 additionally need the hard direction to be robust against
    adversarial databases that already contain α- or loop-atoms; the paper
    achieves this with clocked-Turing-machine encodings over standard
    databases, which we do not reproduce — see DESIGN.md §6.)

    The operator preserves guardedness and linearity: both added rules are
    linear (and simple linear when α has no repeated variable), which is
    how the paper transports entailment hardness into the chase
    termination problem for each class. *)

open Chase_logic

(** A predicate name based on [base] that avoids the schema of [rules] and
    the target atom. *)
let fresh_pred rules target base =
  let schema = Schema.of_rules rules in
  let taken p = Schema.mem schema p || String.equal p (Atom.pred target) in
  if not (taken base) then base
  else
    let rec go i =
      let cand = Fmt.str "%s_%d" base i in
      if taken cand then go (i + 1) else cand
    in
    go 0

type t = {
  rules : Tgd.t list;  (** the rule set loop(Σ, α) *)
  loop_pred : string;
  trigger_rule : Tgd.t;
  loop_rule : Tgd.t;
}

(** [apply rules ~target] builds loop(Σ, α).

    @raise Invalid_argument if [target] contains nulls. *)
let apply rules ~target =
  if Atom.has_null target then invalid_arg "Looping.apply: target contains nulls";
  let loop_pred = fresh_pred rules target "loop" in
  let target_vars = Atom.var_set target in
  let fresh_var base =
    if not (Util.Sset.mem base target_vars) then base
    else
      let rec go i =
        let cand = Fmt.str "%s_%d" base i in
        if Util.Sset.mem cand target_vars then go (i + 1) else cand
      in
      go 0
  in
  let z1 = Term.Var (fresh_var "Zl1") and z2 = Term.Var (fresh_var "Zl2") in
  let trigger_rule =
    Tgd.make_exn ~name:"loop_trigger" ~body:[ target ]
      ~head:[ Atom.of_list loop_pred [ z1; z2 ] ]
      ()
  in
  let loop_rule =
    Tgd.make_exn ~name:"loop_step"
      ~body:[ Atom.of_list loop_pred [ Term.Var "X"; Term.Var "Y" ] ]
      ~head:[ Atom.of_list loop_pred [ Term.Var "Y"; Term.Var "Z" ] ]
      ()
  in
  {
    rules = rules @ [ trigger_rule; loop_rule ];
    loop_pred;
    trigger_rule;
    loop_rule;
  }
