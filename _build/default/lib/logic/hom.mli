(** Homomorphism search: matching conjunctions of atoms into instances.

    A backtracking join over the instance indexes; adequate for rule
    bodies of a handful of atoms.  All searches extend an optional initial
    substitution, which is how frontier-restricted matching (restricted
    chase satisfaction, semi-oblivious keys) reuses the same machinery. *)

val match_atom : Subst.t -> Atom.t -> Atom.t -> Subst.t option
(** [match_atom sub pattern fact] extends [sub] so that the pattern maps
    onto the fact; [None] if impossible. *)

val iter : ?init:Subst.t -> Instance.t -> Atom.t list -> (Subst.t -> unit) -> unit
(** Call the continuation on every substitution mapping all atoms into
    the instance. *)

val iter_seeded :
  ?init:Subst.t -> Instance.t -> Atom.t list -> seed:Atom.t -> (Subst.t -> unit) -> unit
(** Like {!iter} but only substitutions mapping at least one atom onto
    [seed] — the semi-naive primitive of the chase engine.  Each
    qualifying substitution is produced exactly once. *)

val all : ?init:Subst.t -> Instance.t -> Atom.t list -> Subst.t list
val exists : ?init:Subst.t -> Instance.t -> Atom.t list -> bool
val find : ?init:Subst.t -> Instance.t -> Atom.t list -> Subst.t option

val instance_hom : Instance.t -> Instance.t -> Term.t Term.Map.t option
(** A homomorphism between instances: identity on constants, nulls map
    anywhere, every fact of the source maps to a fact of the target.
    This is the universal-model test; exponential in the worst case. *)
