(** Schemas: the predicate symbols (with arities) of a rule set or
    instance, and their positions — the vertices of the dependency graphs
    used by the acyclicity tests. *)

type t

val empty : t
val arity_opt : t -> string -> int option
val mem : t -> string -> bool
val cardinal : t -> int
val to_list : t -> (string * int) list

val add : t -> string -> int -> (t, string) result
(** Fails on an arity clash. *)

val add_exn : t -> string -> int -> t

val of_rules : Tgd.t list -> t
(** @raise Invalid_argument on cross-rule arity clashes. *)

val of_instance : Instance.t -> t
val union : t -> t -> t

val positions : t -> (string * int) list
(** All positions (p, i), lexicographically. *)

val position_count : t -> int
val max_arity : t -> int

val pp : Format.formatter -> t -> unit
