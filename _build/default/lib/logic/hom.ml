(** Homomorphism search: matching conjunctions of atoms into instances.

    The search is a straightforward backtracking join.  Body atoms are
    processed left to right; for each atom we enumerate candidate facts,
    using the (predicate, position, term) index when some argument is
    already determined by the partial substitution.  For the workloads of
    this library (rule bodies of a handful of atoms) this is entirely
    adequate; no join reordering is attempted beyond preferring an atom
    with a bound argument. *)

(** [match_atom sub pat fact] extends [sub] so that [sub pat = fact];
    [None] if impossible. *)
let match_atom sub pat fact =
  if
    (not (String.equal (Atom.pred pat) (Atom.pred fact)))
    || Atom.arity pat <> Atom.arity fact
  then None
  else
    let n = Atom.arity pat in
    let rec go i sub =
      if i >= n then Some sub
      else
        match Atom.arg pat i with
        | Term.Var v -> (
          match Subst.bind sub v (Atom.arg fact i) with
          | Some sub' -> go (i + 1) sub'
          | None -> None)
        | (Term.Const _ | Term.Null _) as t ->
          if Term.equal t (Atom.arg fact i) then go (i + 1) sub else None
    in
    go 0 sub

(** Candidate facts for [pat] under partial substitution [sub], using the
    narrowest available index. *)
let candidates ins sub pat =
  let n = Atom.arity pat in
  let rec find_bound i =
    if i >= n then None
    else
      match Atom.arg pat i with
      | Term.Var v -> (
        match Subst.find_opt v sub with
        | Some t -> Some (i, t)
        | None -> find_bound (i + 1))
      | (Term.Const _ | Term.Null _) as t -> Some (i, t)
  in
  match find_bound 0 with
  | Some (i, t) -> Instance.atoms_matching ins (Atom.pred pat) i t
  | None -> Instance.atoms_of_pred ins (Atom.pred pat)

exception Stop

(** [iter ?init ins pats f] calls [f] on every substitution [s] extending
    [init] with [s pats ⊆ ins]. *)
let iter ?(init = Subst.empty) ins pats f =
  let rec go pats sub =
    match pats with
    | [] -> f sub
    | pat :: rest ->
      List.iter
        (fun fact ->
          match match_atom sub pat fact with
          | Some sub' -> go rest sub'
          | None -> ())
        (candidates ins sub pat)
  in
  go pats init

(** [iter_seeded ?init ins pats ~seed f] is like [iter] but only yields
    substitutions in which at least one body atom is mapped to the fact
    [seed].  This is the semi-naive primitive of the chase engine: when a
    new fact arrives, only homomorphisms using it can be new. *)
let iter_seeded ?(init = Subst.empty) ins pats ~seed f =
  let n = List.length pats in
  (* For each choice of the atom pinned to [seed], enumerate the rest, and
     require pinned-position minimality to avoid emitting the same
     substitution once per body atom it maps onto [seed]: the pinned atom
     must be the first body atom mapped to [seed]. *)
  let pats_arr = Array.of_list pats in
  for pin = 0 to n - 1 do
    match match_atom init pats_arr.(pin) seed with
    | None -> ()
    | Some sub0 ->
      let rec go i sub =
        if i >= n then f sub
        else if i = pin then go (i + 1) sub
        else
          List.iter
            (fun fact ->
              if i < pin && Atom.equal fact seed then ()
                (* an earlier atom matching [seed] is handled by a smaller
                   [pin]; skip to avoid duplicates *)
              else
                match match_atom sub pats_arr.(i) fact with
                | Some sub' -> go (i + 1) sub'
                | None -> ())
            (candidates ins sub pats_arr.(i))
      in
      go 0 sub0
  done

let all ?init ins pats =
  let acc = ref [] in
  iter ?init ins pats (fun s -> acc := s :: !acc);
  List.rev !acc

let exists ?init ins pats =
  try
    iter ?init ins pats (fun _ -> raise Stop);
    false
  with Stop -> true

(** [find ?init ins pats] is the first substitution found, if any. *)
let find ?init ins pats =
  let res = ref None in
  (try iter ?init ins pats (fun s -> res := Some s; raise Stop) with Stop -> ());
  !res

(** [instance_hom src dst] searches for a homomorphism from instance [src]
    to instance [dst]: a map on terms that is the identity on constants,
    maps nulls anywhere, and sends every fact of [src] to a fact of [dst].
    Returns the witness as a term map.  This is the universality test used
    by the model-theory test-suite; it is exponential in the worst case. *)
let instance_hom src dst =
  (* Recast nulls of [src] as variables and reuse the conjunctive matcher. *)
  let var_of_null n = "!null" ^ string_of_int n in
  let as_pattern a =
    Atom.map_terms
      (fun t -> match t with Term.Null n -> Term.Var (var_of_null n) | _ -> t)
      a
  in
  let pats = List.map as_pattern (Instance.to_list src) in
  match find dst pats with
  | None -> None
  | Some sub ->
    let null_of_var v =
      if String.length v > 5 && String.equal (String.sub v 0 5) "!null" then
        int_of_string_opt (String.sub v 5 (String.length v - 5))
      else None
    in
    let map =
      List.fold_left
        (fun acc (v, t) ->
          match null_of_var v with
          | Some n -> Term.Map.add (Term.Null n) t acc
          | None -> acc)
        Term.Map.empty (Subst.to_list sub)
    in
    Some map
