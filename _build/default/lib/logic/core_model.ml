(** Cores of finite instances.

    The {e core} of an instance is its smallest retract: the unique (up to
    isomorphism) minimal sub-instance it maps into homomorphically.  Chase
    results are universal models but usually redundant — the oblivious
    chase in particular re-invents nulls per trigger — and the core is the
    canonical redundancy-free universal model (Fagin, Kolaitis, Popa:
    "Data exchange: getting to the core").

    The computation repeatedly looks for a {e folding} endomorphism: a
    constant-fixing homomorphism of the instance into itself whose image
    loses at least one fact.  For each null n and candidate target t we
    enumerate homomorphisms pinned with n ↦ t and keep the first one that
    shrinks the instance; if no pin admits a shrinking endomorphism the
    instance is its own core (any non-surjective endomorphism moves some
    null, so some pin would have exhibited one).  Worst-case exponential,
    as core computation must be (it is coNP-hard in general); intended for
    the moderate instances produced by chasing. *)

let null_var n = "!null" ^ string_of_int n

(* The instance as a conjunctive pattern: nulls become variables. *)
let patterns_of ins =
  List.map
    (fun a ->
      Atom.map_terms
        (fun t -> match t with Term.Null n -> Term.Var (null_var n) | _ -> t)
        a)
    (Instance.to_list ins)

let nulls_of ins = Term.Set.filter Term.is_null (Instance.term_set ins)

(* Apply an endomorphism (as a substitution over null variables) to the
   instance; returns the image as a new instance. *)
let image sub ins =
  let map_term t =
    match t with
    | Term.Null n -> (
      match Subst.find_opt (null_var n) sub with Some t' -> t' | None -> t)
    | Term.Const _ | Term.Var _ -> t
  in
  let img = Instance.create () in
  Instance.iter (fun a -> ignore (Instance.add img (Atom.map_terms map_term a))) ins;
  img

exception Found of Instance.t

(* One folding step: an endomorphism that strictly shrinks the instance,
   if any. *)
let fold_step ins =
  let pats = patterns_of ins in
  let nulls = nulls_of ins in
  let targets = Term.Set.elements (Instance.term_set ins) in
  try
    Term.Set.iter
      (fun n_term ->
        let n = match n_term with Term.Null n -> n | _ -> assert false in
        List.iter
          (fun t ->
            if not (Term.equal t n_term) then
              match Subst.bind Subst.empty (null_var n) t with
              | None -> ()
              | Some init ->
                Hom.iter ~init ins pats (fun sub ->
                    let img = image sub ins in
                    if Instance.cardinal img < Instance.cardinal ins then
                      raise (Found img)))
          targets)
      nulls;
    None
  with Found img -> Some img

(** The core of a finite instance.  The input is not mutated. *)
let rec core ins =
  match fold_step ins with
  | None -> ins
  | Some smaller -> core smaller

(** [is_core ins]: no folding endomorphism exists. *)
let is_core ins = Option.is_none (fold_step ins)

(** [equivalent i1 i2]: homomorphically equivalent (same core up to
    isomorphism). *)
let equivalent i1 i2 =
  Option.is_some (Hom.instance_hom i1 i2) && Option.is_some (Hom.instance_hom i2 i1)
