(** Equality-generating dependencies: ∀X (φ(X) → x = y).  During the
    chase an EGD application merges a null with another term, or fails
    when it equates two distinct constants.  See
    [Chase_engine.Egd_chase]. *)

type t

val make :
  ?name:string ->
  body:Atom.t list ->
  equalities:(string * string) list ->
  unit ->
  (t, string) result
(** Body non-empty, no nulls, every equated variable occurs in the
    body. *)

val make_exn :
  ?name:string -> body:Atom.t list -> equalities:(string * string) list -> unit -> t

val name : t -> string
val body : t -> Atom.t list
val equalities : t -> (string * string) list
val body_vars : t -> Util.Sset.t

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
