(** Equality-generating dependencies (EGDs).

    An EGD ∀X (φ(X) → x = y) asserts that whenever the body matches, the
    images of x and y must be equal.  During the chase an EGD application
    either merges a null with another term or {e fails} when it equates
    two distinct constants.  EGDs are the other half of classical data
    exchange constraints (functional dependencies, keys); the paper's
    termination theory is about TGDs, but a usable chase toolkit needs
    both — see {!Chase_engine.Egd_chase}. *)

type t = {
  name : string;
  body : Atom.t list;
  equalities : (string * string) list;  (** pairs of body variables *)
}

let name e = e.name
let body e = e.body
let equalities e = e.equalities

let body_vars e =
  List.fold_left (fun s a -> Util.Sset.union s (Atom.var_set a)) Util.Sset.empty e.body

(** [make ?name ~body ~equalities ()] validates that the body is
    non-empty and every equated variable occurs in the body. *)
let make ?(name = "") ~body ~equalities () =
  if body = [] then Error "EGD body must be non-empty"
  else if equalities = [] then Error "EGD must equate at least one pair"
  else if List.exists Atom.has_null body then Error "EGD must not contain nulls"
  else begin
    let bv =
      List.fold_left
        (fun s a -> Util.Sset.union s (Atom.var_set a))
        Util.Sset.empty body
    in
    let unsafe =
      List.concat_map
        (fun (x, y) ->
          List.filter (fun v -> not (Util.Sset.mem v bv)) [ x; y ])
        equalities
    in
    match unsafe with
    | [] -> Ok { name; body; equalities }
    | v :: _ -> Error (Fmt.str "equated variable %s does not occur in the body" v)
  end

let make_exn ?name ~body ~equalities () =
  match make ?name ~body ~equalities () with
  | Ok e -> e
  | Error msg -> invalid_arg ("Egd.make_exn: " ^ msg)

let compare e1 e2 =
  let c = Util.list_compare Atom.compare e1.body e2.body in
  if c <> 0 then c else Stdlib.compare e1.equalities e2.equalities

let equal e1 e2 = compare e1 e2 = 0

let pp fm e =
  let pp_eq fm (x, y) = Fmt.pf fm "%s = %s" x y in
  if String.equal e.name "" then
    Fmt.pf fm "@[%a -> %a@]" (Util.pp_list ", " Atom.pp) e.body
      (Util.pp_list ", " pp_eq) e.equalities
  else
    Fmt.pf fm "@[%s: %a -> %a@]" e.name (Util.pp_list ", " Atom.pp) e.body
      (Util.pp_list ", " pp_eq) e.equalities

let to_string e = Fmt.str "%a" pp e
