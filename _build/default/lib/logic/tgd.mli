(** Tuple-generating dependencies (TGDs, a.k.a. existential rules).

    A TGD ∀X∀Y (φ(X,Y) → ∃Z ψ(Y,Z)) is represented by its body φ and head
    ψ; quantification is implicit: every body variable is universally
    quantified, every head variable not occurring in the body is
    existentially quantified.  The {e frontier} is the set of universally
    quantified variables shared between body and head. *)

type t

val make :
  ?name:string -> body:Atom.t list -> head:Atom.t list -> unit -> (t, string) result
(** Validated constructor: body and head non-empty, no nulls, consistent
    arities within the rule. *)

val make_exn : ?name:string -> body:Atom.t list -> head:Atom.t list -> unit -> t

val name : t -> string
val body : t -> Atom.t list
val head : t -> Atom.t list
val body_vars : t -> Util.Sset.t
val head_vars : t -> Util.Sset.t
val frontier : t -> Util.Sset.t
val existentials : t -> Util.Sset.t

val compare : t -> t -> int
(** Structural, ignoring the name. *)

val equal : t -> t -> bool

val rename_apart : suffix:string -> t -> t
(** Append [suffix] to every variable name. *)

val is_full : t -> bool
(** No existential variable (a Datalog rule). *)

val constants : t -> Util.Sset.t
val constants_of_rules : t list -> Util.Sset.t

val predicates : t -> (string * int) list
(** Predicates with arities, body and head, deduplicated. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
