(** Atom patterns: the shape of a fact up to renaming of nulls.

    The pattern of a fact records its predicate, the partition of argument
    positions induced by term equality, and for each equivalence class
    whether it holds a (which) constant or a null.  Two facts have the same
    pattern iff one can be obtained from the other by an injective renaming
    of nulls that fixes constants.

    For linear TGDs (single-atom bodies) trigger applicability on a fact
    depends only on the fact's pattern, and the pattern of a child fact is a
    function of (parent pattern, rule, head atom) — patterns are the state
    space of the linear termination analysis. *)

type label =
  | Lconst of string  (** the class holds this constant *)
  | Lnull  (** the class holds a null *)

type t = {
  pred : string;
  classes : int array;
      (** [classes.(i)] is the class of position [i]; classes are numbered
          0, 1, … in order of first occurrence, making the representation
          canonical. *)
  labels : label array;  (** label of each class *)
}

let pred p = p.pred
let arity p = Array.length p.classes
let class_count p = Array.length p.labels
let class_of p i = p.classes.(i)
let label_of p c = p.labels.(c)

let label_equal l1 l2 =
  match l1, l2 with
  | Lconst c1, Lconst c2 -> String.equal c1 c2
  | Lnull, Lnull -> true
  | Lconst _, Lnull | Lnull, Lconst _ -> false

let label_compare l1 l2 =
  match l1, l2 with
  | Lconst c1, Lconst c2 -> String.compare c1 c2
  | Lconst _, Lnull -> -1
  | Lnull, Lconst _ -> 1
  | Lnull, Lnull -> 0

let compare p1 p2 =
  let c = String.compare p1.pred p2.pred in
  if c <> 0 then c
  else
    let c = Util.array_compare Int.compare p1.classes p2.classes in
    if c <> 0 then c else Util.array_compare label_compare p1.labels p2.labels

let equal p1 p2 = compare p1 p2 = 0

let hash p =
  let h = Hashtbl.hash p.pred in
  let h = Util.hash_fold_array Hashtbl.hash h p.classes in
  Util.hash_fold_array Hashtbl.hash h p.labels

(** [of_terms pred ts] is the pattern of the tuple [ts]; terms must be
    variable-free. *)
let of_terms pred ts =
  let n = Array.length ts in
  let classes = Array.make n (-1) in
  let labels = ref [] in
  let next = ref 0 in
  let seen = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let t = ts.(i) in
    match Hashtbl.find_opt seen (Term.to_string t) with
    | Some c -> classes.(i) <- c
    | None ->
      let c = !next in
      incr next;
      Hashtbl.add seen (Term.to_string t) c;
      classes.(i) <- c;
      let lbl =
        match t with
        | Term.Const s -> Lconst s
        | Term.Null _ -> Lnull
        | Term.Var _ -> invalid_arg "Pattern.of_terms: variable in fact"
      in
      labels := lbl :: !labels
  done;
  { pred; classes; labels = Array.of_list (List.rev !labels) }

let of_atom a = of_terms (Atom.pred a) (Atom.args a)

(** [instantiate ~fresh_null p] builds a concrete fact with this pattern:
    constant classes get their constant, null classes get distinct fresh
    nulls drawn from [fresh_null]. *)
let instantiate ~fresh_null p =
  let terms_of_class =
    Array.map
      (fun lbl ->
        match lbl with Lconst s -> Term.Const s | Lnull -> fresh_null ())
      p.labels
  in
  Atom.make p.pred (Array.map (fun c -> terms_of_class.(c)) p.classes)

(** Class indices labelled [Lnull]. *)
let null_classes p =
  let acc = ref [] in
  Array.iteri (fun c lbl -> if lbl = Lnull then acc := c :: !acc) p.labels;
  List.rev !acc

let pp fm p =
  let pp_pos fm i =
    match p.labels.(p.classes.(i)) with
    | Lconst s -> Fmt.string fm s
    | Lnull -> Fmt.pf fm "#%d" p.classes.(i)
  in
  Fmt.pf fm "%s(%a)" p.pred
    (Util.pp_list ", " pp_pos)
    (List.init (arity p) Fun.id)

let to_string p = Fmt.str "%a" pp p

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
