(** Schemas: the predicate symbols (with arities) of a rule set or instance.

    Positions — pairs (predicate, argument index) — are the vertices of the
    dependency graphs used by the acyclicity tests, so the schema module
    also enumerates them. *)

module Smap = Util.Smap

type t = int Smap.t  (** predicate ↦ arity *)

let empty : t = Smap.empty
let arity_opt (s : t) p = Smap.find_opt p s
let mem (s : t) p = Smap.mem p s
let cardinal : t -> int = Smap.cardinal
let to_list (s : t) = Smap.bindings s

let add (s : t) p n =
  match Smap.find_opt p s with
  | None -> Ok (Smap.add p n s)
  | Some n' ->
    if n = n' then Ok s
    else Error (Fmt.str "predicate %s used with arities %d and %d" p n' n)

let add_exn s p n =
  match add s p n with Ok s' -> s' | Error msg -> invalid_arg ("Schema.add_exn: " ^ msg)

(** Schema of a rule set.  Raises [Invalid_argument] on arity clashes across
    rules (clashes inside one rule are caught by [Tgd.make]). *)
let of_rules rules =
  List.fold_left
    (fun s r ->
      List.fold_left (fun s (p, n) -> add_exn s p n) s (Tgd.predicates r))
    empty rules

let of_instance ins =
  List.fold_left (fun s (p, n) -> add_exn s p n) empty (Instance.predicates ins)

let union s1 s2 =
  Smap.fold (fun p n acc -> add_exn acc p n) s2 s1

(** All positions (p, i) of the schema, in lexicographic order. *)
let positions (s : t) =
  Smap.fold
    (fun p n acc ->
      let rec go i acc = if i < 0 then acc else go (i - 1) ((p, i) :: acc) in
      go (n - 1) acc)
    s []
  |> List.rev

(** Sum over predicates of arity — the number of positions. *)
let position_count (s : t) = Smap.fold (fun _ n acc -> acc + n) s 0

let max_arity (s : t) = Smap.fold (fun _ n acc -> max n acc) s 0

let pp fm (s : t) =
  let pp_one fm (p, n) = Fmt.pf fm "%s/%d" p n in
  Fmt.pf fm "{%a}" (Util.pp_list ", " pp_one) (to_list s)
