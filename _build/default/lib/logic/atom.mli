(** Atoms: a predicate symbol applied to a tuple of terms.

    Atoms are immutable values; two atoms are equal iff they have the same
    predicate and argument tuples.  A {e fact} is an atom without
    variables (nulls allowed); a {e ground} atom has constants only. *)

type t

val make : string -> Term.t array -> t
(** [make pred args] wraps the array without copying; the caller must not
    mutate it afterwards.  Use {!of_list} for a safe constructor. *)

val of_list : string -> Term.t list -> t

val pred : t -> string
val args : t -> Term.t array
val arity : t -> int
val arg : t -> int -> Term.t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val term_list : t -> Term.t list
(** All arguments left to right, with duplicates. *)

val term_set : t -> Term.Set.t
val var_set : t -> Util.Sset.t

val positions_of_term : t -> Term.t -> int list
(** Argument indices holding the given term, ascending. *)

val is_ground : t -> bool
(** No variables and no nulls. *)

val is_fact : t -> bool
(** No variables (nulls allowed). *)

val has_null : t -> bool

val map_terms : (Term.t -> Term.t) -> t -> t

val no_repeated_var : t -> bool
(** No variable occurs twice among the arguments — the simple-linearity
    condition on rule bodies. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
