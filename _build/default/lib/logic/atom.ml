(** Atoms: a predicate symbol applied to a tuple of terms.

    Atoms are immutable; the argument array must not be mutated after
    construction ([make] copies its input when needed is the caller's
    responsibility — use [of_list] for a safe constructor). *)

type t = {
  pred : string;
  args : Term.t array;
}

let make pred args = { pred; args }
let of_list pred args = { pred; args = Array.of_list args }
let pred a = a.pred
let args a = a.args
let arity a = Array.length a.args
let arg a i = a.args.(i)

let compare a1 a2 =
  let c = String.compare a1.pred a2.pred in
  if c <> 0 then c else Util.array_compare Term.compare a1.args a2.args

let equal a1 a2 =
  String.equal a1.pred a2.pred && Util.array_for_all2 Term.equal a1.args a2.args

let hash a =
  Util.hash_fold_array Term.hash (Hashtbl.hash a.pred) a.args

(** All terms of the atom, left to right, with duplicates. *)
let term_list a = Array.to_list a.args

(** The set of terms occurring in the atom. *)
let term_set a = Array.fold_left (fun s t -> Term.Set.add t s) Term.Set.empty a.args

(** The set of variable names occurring in the atom. *)
let var_set a =
  Array.fold_left
    (fun s t -> match t with Term.Var v -> Util.Sset.add v s | Term.Const _ | Term.Null _ -> s)
    Util.Sset.empty a.args

(** [positions_of_term a t] is the list of argument indices holding [t]. *)
let positions_of_term a t =
  let acc = ref [] in
  for i = Array.length a.args - 1 downto 0 do
    if Term.equal a.args.(i) t then acc := i :: !acc
  done;
  !acc

(** True when the atom contains no variables and no nulls. *)
let is_ground a = Array.for_all Term.is_const a.args

(** True when the atom contains no variables (nulls allowed). *)
let is_fact a = Array.for_all (fun t -> not (Term.is_var t)) a.args

(** True when some argument is a null. *)
let has_null a = Array.exists Term.is_null a.args

(** [map_terms f a] applies [f] to every argument. *)
let map_terms f a = { a with args = Array.map f a.args }

(** True iff no variable occurs twice among the arguments (constants and
    nulls may repeat).  Used by the simple-linearity check. *)
let no_repeated_var a =
  let seen = Hashtbl.create 8 in
  let ok = ref true in
  Array.iter
    (fun t ->
      match t with
      | Term.Var v ->
        if Hashtbl.mem seen v then ok := false else Hashtbl.add seen v ()
      | Term.Const _ | Term.Null _ -> ())
    a.args;
  !ok

let pp fm a =
  if Array.length a.args = 0 then Fmt.pf fm "%s()" a.pred
  else Fmt.pf fm "%s(%a)" a.pred (Util.pp_list ", " Term.pp) (Array.to_list a.args)

let to_string a = Fmt.str "%a" pp a

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hashed)
