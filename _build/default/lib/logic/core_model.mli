(** Cores of finite instances: the canonical redundancy-free universal
    model (smallest retract).  Worst-case exponential, intended for the
    moderate instances produced by chasing. *)

val core : Instance.t -> Instance.t
(** The core; the input is not mutated. *)

val is_core : Instance.t -> bool
(** No folding endomorphism exists. *)

val equivalent : Instance.t -> Instance.t -> bool
(** Homomorphic equivalence (same core up to isomorphism). *)
