(** Terms of the chase: constants, rule variables and labelled nulls.

    Constants and variables are named by strings; by convention (enforced by
    the parser, not by this module) variable names start with an upper-case
    letter or ['_'], while constants start with a lower-case letter or a
    digit.  Nulls are identified by an integer stamp; they are only ever
    created by the chase engine, never written by the user. *)

type t =
  | Const of string  (** a database constant *)
  | Var of string  (** a rule variable (never occurs in instances) *)
  | Null of int  (** a labelled null invented by the chase *)

let compare t1 t2 =
  match t1, t2 with
  | Const c1, Const c2 -> String.compare c1 c2
  | Const _, (Var _ | Null _) -> -1
  | Var _, Const _ -> 1
  | Var v1, Var v2 -> String.compare v1 v2
  | Var _, Null _ -> -1
  | Null _, (Const _ | Var _) -> 1
  | Null n1, Null n2 -> Int.compare n1 n2

let equal t1 t2 = compare t1 t2 = 0

let hash = function
  | Const c -> Util.hash_combine 3 (Hashtbl.hash c)
  | Var v -> Util.hash_combine 5 (Hashtbl.hash v)
  | Null n -> Util.hash_combine 7 n

let is_const = function Const _ -> true | Var _ | Null _ -> false
let is_var = function Var _ -> true | Const _ | Null _ -> false
let is_null = function Null _ -> true | Const _ | Var _ -> false

let pp fm = function
  | Const c -> Fmt.string fm c
  | Var v -> Fmt.string fm v
  | Null n -> Fmt.pf fm "_:n%d" n

let to_string t = Fmt.str "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
