(** Conjunctive queries, their evaluation, and containment via the chase.

    Two of the classic applications motivating the chase are query
    answering under constraints and query containment; this module
    provides both on top of the substrate:

    - a conjunctive query q(X̄) ← body is evaluated over an instance by
      homomorphism search; over a {e chase result} the null-free answers
      are exactly the certain answers to the query under the rules;
    - containment q1 ⊆ q2 is decided by the canonical-database (freezing)
      argument: freeze q1's body into an instance and evaluate q2 on it
      looking for the frozen answer tuple. *)

type t = {
  name : string;
  answer_vars : string list;  (** the free variables, in output order *)
  body : Atom.t list;
}

let name q = q.name
let answer_vars q = q.answer_vars
let body q = q.body

let body_vars q =
  List.fold_left (fun s a -> Util.Sset.union s (Atom.var_set a)) Util.Sset.empty q.body

(** [make ?name ~answer_vars body] checks that the query is safe: every
    answer variable occurs in the body. *)
let make ?(name = "q") ~answer_vars body =
  if body = [] then Error "query body must be non-empty"
  else
    let bv =
      List.fold_left
        (fun s a -> Util.Sset.union s (Atom.var_set a))
        Util.Sset.empty body
    in
    let unsafe = List.filter (fun v -> not (Util.Sset.mem v bv)) answer_vars in
    if unsafe <> [] then
      Error (Fmt.str "unsafe answer variables: %s" (String.concat ", " unsafe))
    else Ok { name; answer_vars; body }

let make_exn ?name ~answer_vars body =
  match make ?name ~answer_vars body with
  | Ok q -> q
  | Error msg -> invalid_arg ("Query.make_exn: " ^ msg)

(** A boolean query (no answer variables). *)
let boolean ?name body = make_exn ?name ~answer_vars:[] body

(** All answer tuples of [q] over [ins] (may contain nulls). *)
let answers q ins =
  let tuples = ref [] in
  Hom.iter ins q.body (fun sub ->
      let tuple =
        List.map
          (fun v ->
            match Subst.find_opt v sub with
            | Some t -> t
            | None -> assert false (* safety: answer vars occur in body *))
          q.answer_vars
      in
      tuples := tuple :: !tuples);
  List.sort_uniq (Util.list_compare Term.compare) !tuples

(** The {e certain} answers over a chase result: answers whose tuple is
    null-free.  When [ins] is a universal model of (D, Σ) these are
    exactly the tuples entailed by every model. *)
let certain_answers q ins =
  List.filter (fun tuple -> List.for_all Term.is_const tuple) (answers q ins)

(** Does the (boolean) query hold? *)
let holds q ins = Hom.exists ins q.body

(** Freeze the query: body variables become fresh constants.  Returns the
    frozen instance and the frozen answer tuple. *)
let freeze q =
  let frozen_name v = "!frozen_" ^ v in
  let freeze_term t =
    match t with
    | Term.Var v -> Term.Const (frozen_name v)
    | Term.Const _ | Term.Null _ -> t
  in
  let ins = Instance.of_list (List.map (Atom.map_terms freeze_term) q.body) in
  let tuple = List.map (fun v -> Term.Const (frozen_name v)) q.answer_vars in
  (ins, tuple)

(** [contained_in q1 q2]: q1 ⊆ q2 over all instances (classical CQ
    containment, NP-complete; decided by evaluating q2 on the frozen q1).
    Requires the two queries to have the same number of answer
    variables. *)
let contained_in q1 q2 =
  if List.length q1.answer_vars <> List.length q2.answer_vars then
    invalid_arg "Query.contained_in: arity mismatch";
  let frozen, tuple = freeze q1 in
  List.exists
    (fun t -> Util.list_compare Term.compare t tuple = 0)
    (answers q2 frozen)

(** [contained_in_under rules q1 q2]: containment under TGDs — evaluate q2
    over the (budgeted) chase of the frozen q1.  Exact whenever the chase
    terminates within the budget; [None] when the budget runs out. *)
let contained_in_under ?(budget = 20_000) ~chase rules q1 q2 =
  if List.length q1.answer_vars <> List.length q2.answer_vars then
    invalid_arg "Query.contained_in_under: arity mismatch";
  let frozen, tuple = freeze q1 in
  match chase ~budget rules (Instance.to_list frozen) with
  | None -> None
  | Some chased ->
    Some
      (List.exists
         (fun t -> Util.list_compare Term.compare t tuple = 0)
         (answers q2 chased))

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

let pp fm q =
  Fmt.pf fm "@[%s(%a) <- %a@]" q.name
    (Util.pp_list ", " Fmt.string)
    q.answer_vars
    (Util.pp_list ", " Atom.pp)
    q.body
