lib/logic/schema.mli: Format Instance Tgd
