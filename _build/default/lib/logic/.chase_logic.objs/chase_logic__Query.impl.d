lib/logic/query.ml: Atom Fmt Hom Instance List String Subst Term Util
