lib/logic/instance.ml: Array Atom Fmt Hashtbl List Term Util
