lib/logic/tgd.mli: Atom Format Util
