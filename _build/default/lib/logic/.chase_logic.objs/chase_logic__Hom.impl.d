lib/logic/hom.ml: Array Atom Instance List String Subst Term
