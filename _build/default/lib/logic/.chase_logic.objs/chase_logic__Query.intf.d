lib/logic/query.mli: Atom Format Instance Term Tgd Util
