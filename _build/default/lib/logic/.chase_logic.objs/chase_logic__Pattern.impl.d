lib/logic/pattern.ml: Array Atom Fmt Fun Hashtbl Int List Map Set String Term Util
