lib/logic/term.ml: Fmt Hashtbl Int Map Set String Util
