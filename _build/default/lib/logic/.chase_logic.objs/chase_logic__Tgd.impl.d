lib/logic/tgd.ml: Array Atom Fmt Hashtbl Int List String Term Util
