lib/logic/egd.ml: Atom Fmt List Stdlib String Util
