lib/logic/pattern.mli: Atom Format Map Set Term
