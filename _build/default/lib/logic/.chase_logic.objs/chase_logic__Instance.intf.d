lib/logic/instance.mli: Atom Format Term
