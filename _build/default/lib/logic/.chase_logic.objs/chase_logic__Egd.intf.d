lib/logic/egd.mli: Atom Format Util
