lib/logic/parser.ml: Atom Egd Fmt List String Term Tgd
