lib/logic/schema.ml: Fmt Instance List Tgd Util
