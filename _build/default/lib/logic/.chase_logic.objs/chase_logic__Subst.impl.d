lib/logic/subst.ml: Atom Fmt List Term Util
