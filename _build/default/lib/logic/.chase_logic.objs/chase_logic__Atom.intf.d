lib/logic/atom.mli: Format Hashtbl Map Set Term Util
