lib/logic/util.ml: Array Fmt Int Map Set String
