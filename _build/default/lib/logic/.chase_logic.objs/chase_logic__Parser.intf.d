lib/logic/parser.mli: Atom Egd Tgd
