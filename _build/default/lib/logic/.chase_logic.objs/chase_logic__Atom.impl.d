lib/logic/atom.ml: Array Fmt Hashtbl Map Set String Term Util
