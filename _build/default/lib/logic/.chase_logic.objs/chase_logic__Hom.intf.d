lib/logic/hom.mli: Atom Instance Subst Term
