lib/logic/core_model.mli: Instance
