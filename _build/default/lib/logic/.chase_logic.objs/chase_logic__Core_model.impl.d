lib/logic/core_model.ml: Atom Hom Instance List Option Subst Term
