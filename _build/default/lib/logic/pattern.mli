(** Atom patterns: the shape of a fact up to renaming of nulls.

    The pattern of a fact records its predicate, the partition of argument
    positions induced by term equality, and for each equivalence class
    whether it holds a (which) constant or a null.  Two facts have the
    same pattern iff one is obtained from the other by an injective
    renaming of nulls that fixes constants.

    For linear TGDs trigger applicability on a fact depends only on the
    fact's pattern, and child patterns are a function of (parent pattern,
    rule, head atom) — patterns are the state space of the linear
    termination analysis ({!Chase_acyclicity.Critical_linear}), which
    needs the representation and therefore gets a concrete type. *)

type label =
  | Lconst of string  (** the class holds this constant *)
  | Lnull  (** the class holds a null *)

type t = {
  pred : string;
  classes : int array;
      (** [classes.(i)] is the class of position [i]; classes are numbered
          0, 1, … in order of first occurrence (canonical). *)
  labels : label array;  (** label of each class *)
}

val pred : t -> string
val arity : t -> int
val class_count : t -> int
val class_of : t -> int -> int
val label_of : t -> int -> label

val label_equal : label -> label -> bool
val label_compare : label -> label -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val of_terms : string -> Term.t array -> t
(** @raise Invalid_argument if a term is a variable. *)

val of_atom : Atom.t -> t

val instantiate : fresh_null:(unit -> Term.t) -> t -> Atom.t
(** A concrete fact with this pattern: constant classes get their
    constant, null classes distinct fresh nulls. *)

val null_classes : t -> int list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
