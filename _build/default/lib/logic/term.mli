(** Terms of the chase: constants, rule variables and labelled nulls.

    Constants and variables are named by strings; by convention (enforced
    by the parser, not by this module) variable names start with an
    upper-case letter or ['_'], while constants start with a lower-case
    letter or a digit.  Nulls are identified by an integer stamp; they are
    only ever created by the chase engine, never written by the user. *)

type t =
  | Const of string  (** a database constant *)
  | Var of string  (** a rule variable (never occurs in instances) *)
  | Null of int  (** a labelled null invented by the chase *)

val compare : t -> t -> int
(** Total order: constants < variables < nulls, each by their own key. *)

val equal : t -> t -> bool
val hash : t -> int

val is_const : t -> bool
val is_var : t -> bool
val is_null : t -> bool

val pp : Format.formatter -> t -> unit
(** Nulls print as [_:nK]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
