(** Tuple-generating dependencies (TGDs, a.k.a. existential rules).

    A TGD ∀X∀Y (φ(X,Y) → ∃Z ψ(Y,Z)) is represented by its body φ and head ψ
    as atom lists; quantification is implicit: every body variable is
    universally quantified, every head variable not occurring in the body is
    existentially quantified.  The {e frontier} is the set of universally
    quantified variables shared between body and head. *)

module Sset = Util.Sset

type t = {
  name : string;
  body : Atom.t list;
  head : Atom.t list;
  body_vars : Sset.t;
  head_vars : Sset.t;
  frontier : Sset.t;
  existentials : Sset.t;
}

let name r = r.name
let body r = r.body
let head r = r.head
let body_vars r = r.body_vars
let head_vars r = r.head_vars
let frontier r = r.frontier
let existentials r = r.existentials

let vars_of_atoms atoms =
  List.fold_left (fun s a -> Sset.union s (Atom.var_set a)) Sset.empty atoms

let has_null atoms = List.exists Atom.has_null atoms

(** [make ?name ~body ~head ()] builds a validated TGD.

    Validation: body and head non-empty, no nulls anywhere (nulls belong to
    instances), and consistent predicate arities within the rule. *)
let make ?(name = "") ~body ~head () =
  if body = [] then Error "TGD body must be non-empty"
  else if head = [] then Error "TGD head must be non-empty"
  else if has_null body || has_null head then Error "TGD must not contain nulls"
  else begin
    let arities = Hashtbl.create 8 in
    let arity_clash =
      List.exists
        (fun a ->
          match Hashtbl.find_opt arities (Atom.pred a) with
          | Some n when n <> Atom.arity a -> true
          | Some _ -> false
          | None ->
            Hashtbl.add arities (Atom.pred a) (Atom.arity a);
            false)
        (body @ head)
    in
    if arity_clash then Error "predicate used with two different arities"
    else
      let body_vars = vars_of_atoms body in
      let head_vars = vars_of_atoms head in
      Ok
        {
          name;
          body;
          head;
          body_vars;
          head_vars;
          frontier = Sset.inter body_vars head_vars;
          existentials = Sset.diff head_vars body_vars;
        }
  end

let make_exn ?name ~body ~head () =
  match make ?name ~body ~head () with
  | Ok r -> r
  | Error msg -> invalid_arg ("Tgd.make_exn: " ^ msg)

(** Structural comparison ignoring the name. *)
let compare r1 r2 =
  let c = Util.list_compare Atom.compare r1.body r2.body in
  if c <> 0 then c else Util.list_compare Atom.compare r1.head r2.head

let equal r1 r2 = compare r1 r2 = 0

(** [rename_apart ~suffix r] renames every variable of [r] by appending
    [suffix]; used when rules must not share variables. *)
let rename_apart ~suffix r =
  let rn t =
    match t with Term.Var v -> Term.Var (v ^ suffix) | Term.Const _ | Term.Null _ -> t
  in
  make_exn ~name:r.name
    ~body:(List.map (Atom.map_terms rn) r.body)
    ~head:(List.map (Atom.map_terms rn) r.head)
    ()

(** True when the head has no existential variable. *)
let is_full r = Sset.is_empty r.existentials

(** Constant symbols occurring in the rule. *)
let constants r =
  List.fold_left
    (fun acc a ->
      Array.fold_left
        (fun acc t ->
          match t with
          | Term.Const c -> Sset.add c acc
          | Term.Var _ | Term.Null _ -> acc)
        acc (Atom.args a))
    Sset.empty (r.body @ r.head)

(** Constant symbols occurring in a rule set. *)
let constants_of_rules rules =
  List.fold_left (fun acc r -> Sset.union acc (constants r)) Sset.empty rules

let compare_pred_arity (p1, n1) (p2, n2) =
  let c = String.compare p1 p2 in
  if c <> 0 then c else Int.compare n1 n2

(** Predicates of the rule with arities, body and head. *)
let predicates r =
  List.fold_left
    (fun acc a -> (Atom.pred a, Atom.arity a) :: acc)
    [] (r.body @ r.head)
  |> List.sort_uniq compare_pred_arity

let pp fm r =
  let pp_atoms = Util.pp_list ", " Atom.pp in
  if String.equal r.name "" then Fmt.pf fm "@[%a -> %a@]" pp_atoms r.body pp_atoms r.head
  else Fmt.pf fm "@[%s: %a -> %a@]" r.name pp_atoms r.body pp_atoms r.head

let to_string r = Fmt.str "%a" pp r
