(** Conjunctive queries, their evaluation, and containment via the chase.

    A query q(X̄) ← body is evaluated over an instance by homomorphism
    search; over a chase result the null-free answers are the certain
    answers under the rules.  Containment is decided by freezing. *)

type t

val make :
  ?name:string -> answer_vars:string list -> Atom.t list -> (t, string) result
(** Checks safety: every answer variable occurs in the body. *)

val make_exn : ?name:string -> answer_vars:string list -> Atom.t list -> t

val boolean : ?name:string -> Atom.t list -> t
(** A query without answer variables. *)

val name : t -> string
val answer_vars : t -> string list
val body : t -> Atom.t list
val body_vars : t -> Util.Sset.t

val answers : t -> Instance.t -> Term.t list list
(** All answer tuples, sorted, deduplicated; may contain nulls. *)

val certain_answers : t -> Instance.t -> Term.t list list
(** Null-free answer tuples.  Over a universal model of (D, Σ) these are
    exactly the certain answers of the query under Σ. *)

val holds : t -> Instance.t -> bool

val freeze : t -> Instance.t * Term.t list
(** The canonical database of the query body (variables frozen to fresh
    constants) and the frozen answer tuple. *)

val contained_in : t -> t -> bool
(** Classical CQ containment over all instances (NP-complete).
    @raise Invalid_argument on answer-arity mismatch. *)

val contained_in_under :
  ?budget:int ->
  chase:(budget:int -> Tgd.t list -> Atom.t list -> Instance.t option) ->
  Tgd.t list ->
  t ->
  t ->
  bool option
(** Containment under TGDs: evaluate the right query over the chased
    frozen left query.  The [chase] callback (typically wrapping
    [Chase_engine.Engine.run]) returns [None] when its budget runs out,
    which propagates as [None]. *)

val equivalent : t -> t -> bool

val pp : Format.formatter -> t -> unit
