(** Shared small utilities for the logic substrate. *)

module Sset = Set.Make (String)
module Smap = Map.Make (String)

(** [list_compare cmp xs ys] is the lexicographic extension of [cmp]. *)
let rec list_compare cmp xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = cmp x y in
    if c <> 0 then c else list_compare cmp xs' ys'

(** [array_compare cmp a b] compares arrays lexicographically (shorter first). *)
let array_compare cmp a b =
  let la = Array.length a and lb = Array.length b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    let rec go i =
      if i >= la then 0
      else
        let c = cmp a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

(** [array_for_all2 p a b] checks [p a.(i) b.(i)] for all i; false on length
    mismatch. *)
let array_for_all2 p a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (p a.(i) b.(i) && go (i + 1)) in
  go 0

(** Combine two hash values (FNV-style mixing). *)
let hash_combine h1 h2 = (h1 * 16777619) lxor h2

let hash_fold_array hash init arr =
  Array.fold_left (fun acc x -> hash_combine acc (hash x)) init arr

(** [pp_list sep pp] pretty-prints a list with separator string [sep]. *)
let pp_list sep pp = Fmt.list ~sep:(fun fm () -> Fmt.string fm sep) pp
