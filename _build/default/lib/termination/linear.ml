(** Termination for linear TGDs — Theorem 2.

    Delegates to the critical-rich/weak acyclicity procedure of
    {!Chase_acyclicity.Critical_linear}: a pattern-transition analysis of
    the chase of the critical instance, with every non-termination answer
    backed by a concretely confirmed pumping cycle. *)

open Chase_engine
open Chase_acyclicity

let check ?(standard = true) ~variant rules =
  match (variant : Variant.t) with
  | Oblivious -> (
    match Critical_linear.check_oblivious ~standard rules with
    | Critical_linear.Terminating ->
      Verdict.terminates ~procedure:"critical-rich-acyclicity"
        ~evidence:
          "no productive lasso in the pattern-transition system, and the \
           chase of the critical instance closes"
    | Critical_linear.Non_terminating cert ->
      Verdict.diverges ~procedure:"critical-rich-acyclicity"
        ~evidence:
          (Fmt.str "confirmed pump (%d laps replayed): %a" cert.laps_checked
             (Critical_linear.pp_certificate rules)
             cert)
    | Critical_linear.Inconclusive msg ->
      Verdict.unknown ~procedure:"critical-rich-acyclicity" ~evidence:msg)
  | Semi_oblivious -> (
    match Critical_linear.check_semi_oblivious ~standard rules with
    | Critical_linear.Terminating ->
      Verdict.terminates ~procedure:"critical-weak-acyclicity"
        ~evidence:
          "no cycle of frontier-productive transitions in the \
           pattern-transition system, and the chase of the critical \
           instance closes"
    | Critical_linear.Non_terminating cert ->
      Verdict.diverges ~procedure:"critical-weak-acyclicity"
        ~evidence:
          (Fmt.str "confirmed pump (%d laps replayed): %a" cert.laps_checked
             (Critical_linear.pp_certificate rules)
             cert)
    | Critical_linear.Inconclusive msg ->
      Verdict.unknown ~procedure:"critical-weak-acyclicity" ~evidence:msg)
  | Restricted ->
    invalid_arg "Linear.check: Theorem 2 covers the (semi-)oblivious chase only"
