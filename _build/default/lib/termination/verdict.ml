(** Verdicts of the termination checkers.

    A verdict records the answer, which procedure produced it, and a
    human-readable account of the evidence (an acyclicity certificate, a
    pumping cycle, a closed chase, …).  [Diverges] and [Terminates] are
    only produced with evidence; a checker that runs out of budget or of
    applicable theory answers [Unknown]. *)

type answer =
  | Terminates
  | Diverges
  | Unknown

type t = {
  answer : answer;
  procedure : string;  (** e.g. "rich-acyclicity", "critical-linear" *)
  evidence : string;
}

let make answer ~procedure ~evidence = { answer; procedure; evidence }
let terminates = make Terminates
let diverges = make Diverges
let unknown = make Unknown

let answer v = v.answer
let is_terminating v = v.answer = Terminates
let is_diverging v = v.answer = Diverges
let is_unknown v = v.answer = Unknown

let answer_to_string = function
  | Terminates -> "terminates"
  | Diverges -> "diverges"
  | Unknown -> "unknown"

let pp fm v =
  Fmt.pf fm "@[<v>%s (by %s)@ %s@]" (answer_to_string v.answer) v.procedure
    v.evidence

let to_string v = Fmt.str "%a" pp v
