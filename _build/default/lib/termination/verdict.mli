(** Verdicts of the termination checkers: the answer, the procedure that
    produced it, and a human-readable account of the evidence.
    [Diverges] and [Terminates] are only produced with evidence; a checker
    that runs out of budget or applicable theory answers [Unknown]. *)

type answer =
  | Terminates
  | Diverges
  | Unknown

type t = {
  answer : answer;
  procedure : string;  (** e.g. "rich-acyclicity", "critical-linear" *)
  evidence : string;
}

val make : answer -> procedure:string -> evidence:string -> t
val terminates : procedure:string -> evidence:string -> t
val diverges : procedure:string -> evidence:string -> t
val unknown : procedure:string -> evidence:string -> t

val answer : t -> answer
val is_terminating : t -> bool
val is_diverging : t -> bool
val is_unknown : t -> bool

val answer_to_string : answer -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
