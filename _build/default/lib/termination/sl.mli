(** Termination for simple linear TGDs — Theorem 1: rich acyclicity is
    exactly oblivious-chase termination, weak acyclicity exactly
    semi-oblivious-chase termination.  Both are reachability questions on
    the (extended) dependency graph — the NL upper bound of Theorem 3(1). *)

val check : variant:Chase_engine.Variant.t -> Chase_logic.Tgd.t list -> Verdict.t
(** @raise Invalid_argument if the set is not simple linear, or for the
    restricted variant. *)
