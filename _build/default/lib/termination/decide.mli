(** The termination front door: classify the rule set and dispatch to the
    strongest applicable procedure.

    (Semi-)oblivious variants: simple linear → Theorem 1 acyclicity;
    linear → Theorem 2 critical procedure; guarded → Theorem 4 cloud
    types; unguarded → sound sufficient conditions (rich acyclicity for
    o; weak, then joint acyclicity for so) and otherwise the budgeted
    chase simulation, where [Unknown] is a possible, honest answer.
    Restricted variant: {!Restricted.check}. *)

val check :
  ?standard:bool ->
  ?budget:int ->
  variant:Chase_engine.Variant.t ->
  Chase_logic.Tgd.t list ->
  Verdict.t
