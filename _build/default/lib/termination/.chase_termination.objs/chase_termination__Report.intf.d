lib/termination/report.mli: Chase_classes Chase_engine Chase_logic Classify Engine Format Tgd Verdict
