lib/termination/decide.ml: Chase_acyclicity Chase_classes Chase_engine Classify Guarded Joint Linear Restricted Rich Simulation Sl Variant Verdict Weak
