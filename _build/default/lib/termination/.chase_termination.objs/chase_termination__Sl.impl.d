lib/termination/sl.ml: Chase_acyclicity Chase_classes Chase_engine Chase_logic Dep_graph Fmt Rich Variant Verdict Weak
