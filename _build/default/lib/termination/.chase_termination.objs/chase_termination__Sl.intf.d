lib/termination/sl.mli: Chase_engine Chase_logic Verdict
