lib/termination/restricted.mli: Chase_engine Chase_logic Engine Verdict
