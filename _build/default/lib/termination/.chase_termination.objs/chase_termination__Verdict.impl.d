lib/termination/verdict.ml: Fmt
