lib/termination/guarded.mli: Atom Chase_engine Chase_logic Engine Tgd Variant Verdict
