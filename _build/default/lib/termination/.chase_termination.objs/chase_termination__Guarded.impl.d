lib/termination/guarded.ml: Array Atom Chase_classes Chase_engine Chase_logic Critical Derivation Engine Fmt Hashtbl Instance Int List Map Option Term Util Variant Verdict
