lib/termination/decide.mli: Chase_engine Chase_logic Verdict
