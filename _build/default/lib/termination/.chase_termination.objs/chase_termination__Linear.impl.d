lib/termination/linear.ml: Chase_acyclicity Chase_engine Critical_linear Fmt Variant Verdict
