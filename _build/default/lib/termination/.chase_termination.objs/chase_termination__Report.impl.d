lib/termination/report.ml: Chase_acyclicity Chase_classes Chase_engine Chase_logic Classify Critical Decide Engine Fmt Instance Joint List Mfa Rich Tgd Variant Verdict Weak
