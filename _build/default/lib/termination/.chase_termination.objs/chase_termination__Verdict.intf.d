lib/termination/verdict.mli: Format
