lib/termination/linear.mli: Chase_engine Chase_logic Verdict
