lib/termination/simulation.ml: Chase_engine Chase_logic Critical Engine Fmt Instance Variant Verdict
