lib/termination/restricted.ml: Chase_acyclicity Chase_classes Chase_engine Chase_logic Critical Engine Fmt Instance Joint Variant Verdict Weak
