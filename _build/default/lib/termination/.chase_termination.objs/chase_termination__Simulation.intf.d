lib/termination/simulation.mli: Chase_engine Chase_logic Engine Variant Verdict
