(** Termination for linear TGDs — Theorem 2, via the critical
    pattern-transition procedure of {!Chase_acyclicity.Critical_linear}.
    Divergence verdicts carry a concretely confirmed pumping cycle. *)

val check :
  ?standard:bool -> variant:Chase_engine.Variant.t -> Chase_logic.Tgd.t list -> Verdict.t
(** @raise Invalid_argument if the set is not linear, or for the
    restricted variant. *)
