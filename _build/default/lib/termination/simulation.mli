(** The chase-simulation oracle: run the ?-chase on the critical
    instance.  A drained worklist proves all-instance termination for the
    (semi-)oblivious chase (critical-instance theorem); budget exhaustion
    proves nothing and is reported as [Unknown]. *)

open Chase_engine

type outcome = {
  verdict : Verdict.t;
  result : Engine.result;
}

val default_budget : int

val check :
  ?standard:bool -> ?budget:int -> variant:Variant.t -> Chase_logic.Tgd.t list -> outcome

val presume :
  ?standard:bool -> ?budget:int -> variant:Variant.t -> Chase_logic.Tgd.t list -> bool
(** Budget exhaustion treated as presumed divergence — the ground-truth
    convention of the agreement experiments. *)
