(** Termination for simple linear TGDs — Theorem 1.

    For a simple linear set Σ:
    - the oblivious chase terminates on all databases iff Σ is richly
      acyclic, and
    - the semi-oblivious chase terminates on all databases iff Σ is weakly
      acyclic,

    so the decision procedure is exactly the corresponding acyclicity test
    — a reachability question on the (extended) dependency graph, which is
    where the NL upper bound of Theorem 3(1) comes from. *)

open Chase_engine
open Chase_acyclicity

let require_simple_linear rules =
  if not (Chase_classes.Classify.is_simple_linear rules) then
    invalid_arg "Sl.check: rule set is not simple linear"

let pp_cycle fm cycle =
  Fmt.pf fm "%a"
    (Chase_logic.Util.pp_list " -> " Dep_graph.pp_position)
    cycle

let check ~variant rules =
  require_simple_linear rules;
  match (variant : Variant.t) with
  | Oblivious -> (
    match Rich.check rules with
    | None ->
      Verdict.terminates ~procedure:"rich-acyclicity"
        ~evidence:
          "the extended dependency graph has no cycle through a special edge"
    | Some cycle ->
      Verdict.diverges ~procedure:"rich-acyclicity"
        ~evidence:
          (Fmt.str
             "dangerous cycle in the extended dependency graph: %a — on \
              simple linear rules every such cycle is realizable (Thm 1)"
             pp_cycle cycle))
  | Semi_oblivious -> (
    match Weak.check rules with
    | None ->
      Verdict.terminates ~procedure:"weak-acyclicity"
        ~evidence:"the dependency graph has no cycle through a special edge"
    | Some cycle ->
      Verdict.diverges ~procedure:"weak-acyclicity"
        ~evidence:
          (Fmt.str
             "dangerous cycle in the dependency graph: %a — on simple linear \
              rules every such cycle is realizable (Thm 1)"
             pp_cycle cycle))
  | Restricted ->
    invalid_arg "Sl.check: Theorem 1 covers the (semi-)oblivious chase only"
