(** Dependency graphs over schema positions.

    Nodes are the positions (p, i) of the schema.  For each rule and each
    occurrence of a universally quantified variable x at body position
    (p, i):

    - {b plain} (Fagin et al., for weak acyclicity): if x also occurs in
      the head, add a normal edge to every head position of x and a special
      edge to every head position holding an existentially quantified
      variable;
    - {b extended} (Hernich & Schweikardt, for rich acyclicity): as above,
      and additionally every body variable — whether or not it reaches the
      head — contributes the special edges to the existential positions.

    The extended graph has all the edges of the plain one, which is why
    rich acyclicity implies weak acyclicity (RA ⊆ WA as classes). *)

open Chase_logic

type mode =
  | Plain  (** dependency graph of Fagin et al. — weak acyclicity *)
  | Extended  (** extended dependency graph — rich acyclicity *)

type t = {
  graph : Digraph.t;
  positions : (string * int) array;  (** node id ↦ position *)
  node_of : (string * int, int) Hashtbl.t;
}

let graph t = t.graph
let position_of_node t id = t.positions.(id)

let node_of t pos =
  match Hashtbl.find_opt t.node_of pos with
  | Some id -> id
  | None -> invalid_arg "Dep_graph.node_of: unknown position"

(** Positions of variable [x] among [atoms], as (pred, index) pairs. *)
let positions_of_var atoms x =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun i ->
          match Atom.arg a i with
          | Term.Var v when String.equal v x -> Some (Atom.pred a, i)
          | _ -> None)
        (List.init (Atom.arity a) Fun.id))
    atoms

let build ~mode rules =
  let schema = Schema.of_rules rules in
  let positions = Array.of_list (Schema.positions schema) in
  let node_of = Hashtbl.create (Array.length positions) in
  Array.iteri (fun i pos -> Hashtbl.add node_of pos i) positions;
  let g = Digraph.create (Array.length positions) in
  let add src dst special =
    Digraph.add_edge g ~src:(Hashtbl.find node_of src)
      ~dst:(Hashtbl.find node_of dst) ~special
  in
  List.iter
    (fun r ->
      let head = Tgd.head r in
      let existential_positions =
        Util.Sset.fold
          (fun z acc -> positions_of_var head z @ acc)
          (Tgd.existentials r) []
      in
      Util.Sset.iter
        (fun x ->
          let body_positions = positions_of_var (Tgd.body r) x in
          let in_head = Util.Sset.mem x (Tgd.head_vars r) in
          List.iter
            (fun src ->
              if in_head then begin
                List.iter (fun dst -> add src dst false) (positions_of_var head x);
                List.iter (fun dst -> add src dst true) existential_positions
              end
              else
                match mode with
                | Extended ->
                  List.iter (fun dst -> add src dst true) existential_positions
                | Plain -> ())
            body_positions)
        (Tgd.body_vars r))
    rules;
  { graph = g; positions; node_of }

(** A dangerous cycle (cycle through a special edge) as a list of positions
    visited, if one exists. *)
let dangerous_cycle t =
  match Digraph.dangerous_cycle t.graph with
  | None -> None
  | Some edges ->
    Some
      (List.map (fun (e : Digraph.edge) -> t.positions.(e.Digraph.src)) edges)

let pp_position fm (p, i) = Fmt.pf fm "%s[%d]" p i

let pp fm t =
  let pp_edge fm (e : Digraph.edge) =
    Fmt.pf fm "%a %s %a" pp_position t.positions.(e.src)
      (if e.special then "=*=>" else "--->")
      pp_position t.positions.(e.dst)
  in
  Fmt.pf fm "@[<v>%a@]" (Util.pp_list "" (fun fm e -> Fmt.pf fm "%a@ " pp_edge e))
    (Digraph.edges t.graph)
