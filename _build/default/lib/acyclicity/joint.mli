(** Joint acyclicity (Krötzsch & Rudolph 2011): for each existential
    variable z compute Move(z), the positions its nulls can ever reach;
    require the induced depends-on relation between existential variables
    to be acyclic.  Strictly generalizes weak acyclicity; sound for the
    semi-oblivious (and hence restricted) chase, {e not} for the
    oblivious one. *)

val check : Chase_logic.Tgd.t list -> (string * string) list option
(** A cyclic dependency chain as (rule name, existential variable) pairs,
    if any ([None] = jointly acyclic). *)

val is_jointly_acyclic : Chase_logic.Tgd.t list -> bool
