(** Weak acyclicity (Fagin, Kolaitis, Miller, Popa 2005): no cycle
    through a special edge in the dependency graph.  Sound for every
    chase variant except the oblivious one; exact for the semi-oblivious
    chase on simple linear TGDs (Theorem 1). *)

val check : Chase_logic.Tgd.t list -> (string * int) list option
(** A dangerous cycle, if any ([None] = weakly acyclic). *)

val is_weakly_acyclic : Chase_logic.Tgd.t list -> bool
