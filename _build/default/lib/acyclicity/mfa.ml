(** Model-faithful acyclicity (Cuenca Grau, Horrocks, Krötzsch, Kupke,
    Magka, Motik, Wang — KR 2012 / JAIR 2013).

    MFA is the strongest of the standard sufficient conditions for
    semi-oblivious (skolem) chase termination: skolemize the rules, chase
    the critical instance, and declare failure as soon as a {e cyclic}
    functional term appears — a null whose skolem-term structure nests the
    same function symbol f_{σ,z} inside itself.  If the chase completes
    without ever building a cyclic term, only finitely many term shapes
    exist for any database, so the semi-oblivious chase terminates
    universally:  WA ⊆ JA ⊆ MFA ⊆ CT^so.

    Instead of materializing skolem terms we run our own engine on the
    critical instance and annotate every null with the {e set} of function
    symbols occurring in its term tree: the union of the symbol sets of
    the frontier nulls it was built from, plus its own creating symbol
    (rule index, existential variable).  A null is cyclic exactly when its
    creating symbol already occurs among its ancestors' symbols.

    Checking MFA is itself 2EXPTIME-complete; the chase we run is the
    definition's chase, but we keep a trigger budget as an engineering
    safeguard and report [`Unknown] if it is ever hit. *)

open Chase_logic

type answer =
  [ `Mfa  (** the critical chase completed with no cyclic term *)
  | `Not_mfa of string  (** a cyclic functional term, pretty-printed *)
  | `Unknown of string  (** budget exhausted (not observed in practice) *)
  ]

module Sym_set = Set.Make (struct
  type t = int * string  (* rule index, existential variable *)

  let compare = compare
end)

let default_budget = 100_000

let check ?(standard = false) ?(budget = default_budget) rules =
  let rules_arr = Array.of_list rules in
  let crit = Chase_engine.Critical.of_rules ~standard rules in
  let instance = Instance.create () in
  Instance.iter (fun a -> ignore (Instance.add instance a)) crit;
  (* symbol sets of nulls *)
  let symbols_of_null : (int, Sym_set.t) Hashtbl.t = Hashtbl.create 256 in
  let null_counter = ref 0 in
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let cyclic = ref None in
  let triggers = ref 0 in
  let key rule_idx sub =
    (rule_idx, Subst.to_list (Subst.restrict sub (Tgd.frontier rules_arr.(rule_idx))))
  in
  let enqueue rule_idx sub =
    let k = key rule_idx sub in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      Queue.add (rule_idx, sub) queue
    end
  in
  let enqueue_all_for i =
    Hom.iter instance (Tgd.body rules_arr.(i)) (fun sub -> enqueue i sub)
  in
  let enqueue_seeded_for i seed =
    Hom.iter_seeded instance (Tgd.body rules_arr.(i)) ~seed (fun sub ->
        enqueue i sub)
  in
  Array.iteri (fun i _ -> enqueue_all_for i) rules_arr;
  let inherited_symbols sub frontier =
    Util.Sset.fold
      (fun v acc ->
        match Subst.find_opt v sub with
        | Some (Term.Null n) -> (
          match Hashtbl.find_opt symbols_of_null n with
          | Some s -> Sym_set.union s acc
          | None -> acc)
        | Some (Term.Const _) | Some (Term.Var _) | None -> acc)
      frontier Sym_set.empty
  in
  let apply rule_idx sub =
    incr triggers;
    let r = rules_arr.(rule_idx) in
    let inherited = inherited_symbols sub (Tgd.frontier r) in
    let sub' = ref sub in
    Util.Sset.iter
      (fun z ->
        let sym = (rule_idx, z) in
        if Sym_set.mem sym inherited && !cyclic = None then
          cyclic :=
            Some
              (Fmt.str
                 "cyclic term: f_(%s,%s) nested within itself under trigger %a \
                  of rule %a"
                 (Tgd.name r) z Subst.pp sub Tgd.pp r);
        incr null_counter;
        let n = !null_counter in
        Hashtbl.replace symbols_of_null n (Sym_set.add sym inherited);
        sub' := Subst.bind_exn !sub' z (Term.Null n))
      (Tgd.existentials r);
    if !cyclic = None then begin
      let new_atoms =
        List.filter_map
          (fun head_atom ->
            let fact = Subst.apply_atom !sub' head_atom in
            if Instance.add instance fact then Some fact else None)
          (Tgd.head r)
      in
      List.iter
        (fun fact -> Array.iteri (fun i _ -> enqueue_seeded_for i fact) rules_arr)
        new_atoms
    end
  in
  let rec loop () =
    if !cyclic <> None then `Not_mfa (Option.get !cyclic)
    else if Queue.is_empty queue then `Mfa
    else if !triggers >= budget then
      `Unknown (Fmt.str "MFA chase budget of %d triggers exhausted" budget)
    else begin
      let rule_idx, sub = Queue.pop queue in
      apply rule_idx sub;
      loop ()
    end
  in
  loop ()

let is_mfa ?standard ?budget rules =
  match check ?standard ?budget rules with
  | `Mfa -> true
  | `Not_mfa _ | `Unknown _ -> false
