(** Rich acyclicity (Hernich & Schweikardt 2007).

    A rule set is richly acyclic when its {e extended} dependency graph —
    which also tracks the body variables that do not reach the head, since
    the oblivious chase distinguishes triggers by them — has no cycle
    through a special edge.  Rich acyclicity guarantees termination of the
    oblivious chase on every database; by Theorem 1 of the paper it is
    {e exactly} oblivious-chase termination on simple linear TGDs.

    Every richly acyclic set is weakly acyclic (the extended graph has
    strictly more edges). *)

let check rules =
  let dg = Dep_graph.build ~mode:Dep_graph.Extended rules in
  Dep_graph.dangerous_cycle dg

let is_richly_acyclic rules = Option.is_none (check rules)
