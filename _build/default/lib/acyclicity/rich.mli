(** Rich acyclicity (Hernich & Schweikardt 2007): no cycle through a
    special edge in the {e extended} dependency graph.  Sound for the
    oblivious chase on arbitrary TGDs; exact on simple linear TGDs
    (Theorem 1).  Every richly acyclic set is weakly acyclic. *)

val check : Chase_logic.Tgd.t list -> (string * int) list option
(** A dangerous cycle, if any ([None] = richly acyclic). *)

val is_richly_acyclic : Chase_logic.Tgd.t list -> bool
