(** Weak acyclicity (Fagin, Kolaitis, Miller, Popa 2005).

    A rule set is weakly acyclic when its dependency graph has no cycle
    through a special edge.  Weak acyclicity guarantees termination of
    every chase variant on every database; by Theorem 1 of the paper it is
    moreover {e exactly} semi-oblivious-chase termination on simple linear
    TGDs. *)

let check rules =
  let dg = Dep_graph.build ~mode:Dep_graph.Plain rules in
  Dep_graph.dangerous_cycle dg

let is_weakly_acyclic rules = Option.is_none (check rules)
