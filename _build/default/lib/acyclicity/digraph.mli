(** Directed graphs over integer nodes, with normal and special edges.

    Substrate of the acyclicity tests: weak and rich acyclicity ask
    whether some {e special} edge lies on a cycle, answered via Tarjan's
    SCC algorithm — a special edge u ⇒ v lies on a cycle iff u and v share
    an SCC. *)

type edge = {
  src : int;
  dst : int;
  special : bool;
}

type t

val create : int -> t
(** [create n] has nodes 0 … n-1 and no edges. *)

val size : t -> int
val edges : t -> edge list
val add_edge : t -> src:int -> dst:int -> special:bool -> unit
val successors : t -> int -> (int * bool) list

val scc : t -> int array
(** Component id per node, reverse topological numbering. *)

val dangerous_edge : t -> edge option
(** A special edge lying on a cycle, if any. *)

val has_dangerous_cycle : t -> bool

val path : t -> int -> int -> edge list option
(** A shortest edge path, [Some []] when the endpoints coincide. *)

val dangerous_cycle : t -> edge list option
(** A cycle through some special edge, starting with that edge. *)
