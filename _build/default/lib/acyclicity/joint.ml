(** Joint acyclicity (Krötzsch & Rudolph, IJCAI 2011).

    A sufficient condition for semi-oblivious (skolem) chase termination
    that strictly generalizes weak acyclicity: instead of tracking null
    flow position-by-position, it computes for every existential variable
    z the set Move(z) of {e all} positions where the nulls invented for z
    can ever travel, and requires the induced dependency relation between
    existential variables to be acyclic.

    Definitions (adapted to our rule representation; rules are renamed
    apart first so variable names are rule-unique):

    - Move(z) is the least set of positions P with pos_head(z) ⊆ P that is
      closed under: for every rule σ and universal variable x of σ
      occurring in the head, if every body position of x is in P then
      every head position of x is in P.
    - z' {e depends on} z when the rule σ' introducing z' has a frontier
      variable x all of whose body positions lie in Move(z) — a null made
      for z can then reach a trigger of σ' and cause invention of a null
      for z'.
    - Σ is jointly acyclic iff the depends-on graph is acyclic.

    WA ⊆ JA (every weakly acyclic set is jointly acyclic) and JA is sound
    for the semi-oblivious chase; neither holds for the oblivious chase
    (use {!Rich} there). *)

open Chase_logic

module Pos_set = Set.Make (struct
  type t = string * int

  let compare (p1, i1) (p2, i2) =
    let c = String.compare p1 p2 in
    if c <> 0 then c else Int.compare i1 i2
end)

let positions_of_var atoms x = Pos_set.of_list (Dep_graph.positions_of_var atoms x)

(* All (rule, universal variable occurring in head) pairs, with body and
   head position sets precomputed. *)
let head_universals rules =
  List.concat_map
    (fun r ->
      Util.Sset.fold
        (fun x acc ->
          ( positions_of_var (Tgd.body r) x,
            positions_of_var (Tgd.head r) x )
          :: acc)
        (Tgd.frontier r) [])
    rules

(** Move(z) for one existential variable, by fixpoint. *)
let move rules ~rule ~z =
  let universals = head_universals rules in
  let current = ref (positions_of_var (Tgd.head rule) z) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (body_pos, head_pos) ->
        if
          (not (Pos_set.is_empty body_pos))
          && Pos_set.subset body_pos !current
          && not (Pos_set.subset head_pos !current)
        then begin
          current := Pos_set.union head_pos !current;
          changed := true
        end)
      universals
  done;
  !current

(** The depends-on graph over existential variables, and its acyclicity. *)
let check rules =
  (* rename apart so that (rule index, variable) is keyed by name alone *)
  let rules =
    List.mapi (fun i r -> Tgd.rename_apart ~suffix:(Fmt.str "!%d" i) r) rules
  in
  let existentials =
    List.concat_map
      (fun r -> List.map (fun z -> (r, z)) (Util.Sset.elements (Tgd.existentials r)))
      rules
  in
  let n = List.length existentials in
  if n = 0 then None (* full rules: trivially jointly acyclic *)
  else begin
    let moves =
      List.map (fun (rule, z) -> ((rule, z), move rules ~rule ~z)) existentials
    in
    let g = Digraph.create n in
    List.iteri
      (fun i ((_, _), move_z) ->
        List.iteri
          (fun j (rule', _) ->
            (* z_j depends on z_i ? *)
            let depends =
              Util.Sset.exists
                (fun x ->
                  let body_pos = positions_of_var (Tgd.body rule') x in
                  (not (Pos_set.is_empty body_pos))
                  && Pos_set.subset body_pos move_z)
                (Tgd.frontier rule')
            in
            if depends then Digraph.add_edge g ~src:i ~dst:j ~special:true)
          existentials)
      moves;
    (* any cycle is a cycle through a special edge *)
    match Digraph.dangerous_cycle g with
    | None -> None
    | Some edges ->
      Some
        (List.map
           (fun (e : Digraph.edge) ->
             let rule, z = List.nth existentials e.Digraph.src in
             (Tgd.name rule, z))
           edges)
  end

let is_jointly_acyclic rules = Option.is_none (check rules)
