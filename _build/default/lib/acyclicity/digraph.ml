(** Directed graphs over integer nodes, with normal and special edges.

    This is the substrate shared by the acyclicity tests: weak and rich
    acyclicity both ask whether some {e special} edge lies on a cycle,
    which we answer with Tarjan's strongly-connected-components algorithm —
    a special edge u ⇒ v lies on a cycle iff u and v belong to the same
    SCC (the edge itself closes the path from v back to u). *)

type edge = {
  src : int;
  dst : int;
  special : bool;
}

type t = {
  size : int;
  mutable edges : edge list;
  adj : (int * bool) list array;  (** adjacency: (dst, special) *)
}

let create size = { size; edges = []; adj = Array.make size [] }
let size g = g.size
let edges g = g.edges

let add_edge g ~src ~dst ~special =
  if src < 0 || src >= g.size || dst < 0 || dst >= g.size then
    invalid_arg "Digraph.add_edge: node out of range";
  g.edges <- { src; dst; special } :: g.edges;
  g.adj.(src) <- (dst, special) :: g.adj.(src)

let successors g u = g.adj.(u)

(** Tarjan's algorithm; returns the component id of every node.  Components
    are numbered in reverse topological order. *)
let scc g =
  let n = g.size in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Explicit work stack to avoid stack overflow on long chains. *)
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (w, _) ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      g.adj.(v);
    if lowlink.(v) = index.(v) then begin
      let c = !next_comp in
      incr next_comp;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- c;
          if w <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  comp

(** A special edge on a cycle, if any. *)
let dangerous_edge g =
  let comp = scc g in
  List.find_opt (fun e -> e.special && comp.(e.src) = comp.(e.dst)) g.edges

let has_dangerous_cycle g = Option.is_some (dangerous_edge g)

(** [path g u v] is some edge path from [u] to [v] (BFS, shortest), if one
    exists; [Some []] when [u = v]. *)
let path g u v =
  if u = v then Some []
  else begin
    let pred = Array.make g.size None in
    let visited = Array.make g.size false in
    visited.(u) <- true;
    let q = Queue.create () in
    Queue.add u q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let x = Queue.pop q in
      List.iter
        (fun (y, special) ->
          if not visited.(y) then begin
            visited.(y) <- true;
            pred.(y) <- Some ({ src = x; dst = y; special });
            if y = v then found := true else Queue.add y q
          end)
        g.adj.(x)
    done;
    if not !found then None
    else begin
      let rec build acc node =
        match pred.(node) with
        | None -> acc
        | Some e -> if e.src = u then e :: acc else build (e :: acc) e.src
      in
      Some (build [] v)
    end
  end

(** A cycle through some special edge, as an edge list starting with the
    special edge, if any exists. *)
let dangerous_cycle g =
  match dangerous_edge g with
  | None -> None
  | Some e -> (
    match path g e.dst e.src with
    | Some back -> Some (e :: back)
    | None -> None (* unreachable: same SCC guarantees a path *))
