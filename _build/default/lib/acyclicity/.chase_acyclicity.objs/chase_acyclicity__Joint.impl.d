lib/acyclicity/joint.ml: Chase_logic Dep_graph Digraph Fmt Int List Option Set String Tgd Util
