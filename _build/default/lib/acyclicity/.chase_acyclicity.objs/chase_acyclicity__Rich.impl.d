lib/acyclicity/rich.ml: Dep_graph Option
