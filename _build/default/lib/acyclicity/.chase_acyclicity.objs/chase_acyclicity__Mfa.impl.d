lib/acyclicity/mfa.ml: Array Chase_engine Chase_logic Fmt Hashtbl Hom Instance List Option Queue Set Subst Term Tgd Util
