lib/acyclicity/mfa.mli: Chase_logic
