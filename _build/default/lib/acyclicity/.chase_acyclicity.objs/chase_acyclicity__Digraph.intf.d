lib/acyclicity/digraph.mli:
