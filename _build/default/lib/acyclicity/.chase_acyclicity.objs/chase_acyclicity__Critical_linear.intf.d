lib/acyclicity/critical_linear.mli: Chase_engine Chase_logic Format Pattern Term Tgd
