lib/acyclicity/weak.ml: Dep_graph Option
