lib/acyclicity/dep_graph.ml: Array Atom Chase_logic Digraph Fmt Fun Hashtbl List Schema String Term Tgd Util
