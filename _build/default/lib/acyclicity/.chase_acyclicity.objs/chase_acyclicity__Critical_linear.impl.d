lib/acyclicity/critical_linear.ml: Array Atom Chase_classes Chase_engine Chase_logic Fmt Hashtbl Hom Int List Map Option Pattern Queue Schema Set String Subst Term Tgd Util
