lib/acyclicity/weak.mli: Chase_logic
