lib/acyclicity/rich.mli: Chase_logic
