lib/acyclicity/digraph.ml: Array List Option Queue
