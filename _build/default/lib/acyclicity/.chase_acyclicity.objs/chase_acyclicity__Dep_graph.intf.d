lib/acyclicity/dep_graph.mli: Atom Chase_logic Digraph Format Tgd
