lib/acyclicity/joint.mli: Chase_logic
