(** Dependency graphs over schema positions.

    [Plain] is the dependency graph of Fagin et al. (weak acyclicity);
    [Extended] is the extended dependency graph of Hernich & Schweikardt
    (rich acyclicity), which additionally gives every body variable —
    whether or not it reaches the head — special edges to the existential
    positions, because the oblivious chase distinguishes triggers by those
    variables too.  The extended graph contains the plain one, whence
    RA ⊆ WA as classes. *)

open Chase_logic

type mode =
  | Plain
  | Extended

type t

val build : mode:mode -> Tgd.t list -> t
val graph : t -> Digraph.t
val position_of_node : t -> int -> string * int
val node_of : t -> string * int -> int

val positions_of_var : Atom.t list -> string -> (string * int) list
(** Positions at which a variable occurs in a list of atoms. *)

val dangerous_cycle : t -> (string * int) list option
(** A cycle through a special edge, as the positions visited. *)

val pp_position : Format.formatter -> string * int -> unit
val pp : Format.formatter -> t -> unit
