(** Model-faithful acyclicity (Cuenca Grau et al., KR 2012): chase the
    critical instance with the skolem chase and fail on the first
    {e cyclic} functional term (a skolem symbol nested within itself).
    The strongest standard sufficient condition for semi-oblivious chase
    termination:  WA ⊆ JA ⊆ MFA ⊆ CT^so. *)

type answer =
  [ `Mfa  (** the critical chase completed with no cyclic term *)
  | `Not_mfa of string  (** a cyclic functional term, pretty-printed *)
  | `Unknown of string  (** budget exhausted *)
  ]

val default_budget : int

val check : ?standard:bool -> ?budget:int -> Chase_logic.Tgd.t list -> answer
val is_mfa : ?standard:bool -> ?budget:int -> Chase_logic.Tgd.t list -> bool
