  $ cat > ex2.chase <<'EOF'
  > p(X, Y) -> p(Y, Z).
  > EOF
  $ ../bin/termination_cli.exe ex2.chase -v oblivious
  $ cat > sep.chase <<'EOF'
  > p(X, Y) -> p(X, Z).
  > EOF
  $ ../bin/termination_cli.exe sep.chase -v so
  $ ../bin/termination_cli.exe sep.chase -v o > /dev/null 2>&1; echo "exit $?"
  $ cat > prog.chase <<'EOF'
  > emp(N, D) -> dept(D, M).
  > dept(D, M) -> works(M, D).
  > emp(ada, cs).
  > EOF
  $ ../bin/chase_cli.exe prog.chase -v restricted
  $ ../bin/termination_cli.exe ../data/university.chase -v so | head -2
  $ ../bin/chase_cli.exe ex2.chase --critical -b 10 -q > out.txt; echo "exit $?"
  $ grep -c "budget exhausted" out.txt
  $ ../bin/termination_cli.exe sep.chase --report
