examples/termination_zoo.ml: Chase Classify Critical Decide Engine Families Fmt Instance Joint List Mfa Rich String Variant Verdict Weak
