examples/quickstart.ml: Atom Chase Decide Engine Families Fmt Instance List Parser Variant Verdict
