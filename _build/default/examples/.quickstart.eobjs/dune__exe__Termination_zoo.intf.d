examples/termination_zoo.mli:
