examples/ontology_reasoning.ml: Atom Chase Classify Decide Engine Fmt Hom Instance List Parser Sl Subst Term Variant Verdict
