examples/paper_walkthrough.ml: Atom Chase Decide Engine Entailment Families Fmt Guarded Instance Linear List Looping Parser Rich Sequence String Term Tgd Variant Verdict Weak
