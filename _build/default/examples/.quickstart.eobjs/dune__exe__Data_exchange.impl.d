examples/data_exchange.ml: Atom Chase Core_model Decide Egd_chase Engine Fmt Hom Instance List Option Parser Subst Term Tgd Variant Verdict Weak
