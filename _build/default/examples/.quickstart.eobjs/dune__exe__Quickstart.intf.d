examples/quickstart.mli:
