(** Unit tests for the logic substrate: terms, atoms, substitutions,
    instances, homomorphisms, patterns, TGDs, schemas. *)

open Chase
open Test_util

(* ---------------- terms ---------------- *)

let test_term_order () =
  Alcotest.(check bool) "const < var" true (Term.compare (Term.Const "a") (Term.Var "X") < 0);
  Alcotest.(check bool) "var < null" true (Term.compare (Term.Var "X") (Term.Null 0) < 0);
  Alcotest.(check bool) "null order" true (Term.compare (Term.Null 1) (Term.Null 2) < 0);
  Alcotest.(check bool) "equal consts" true (Term.equal (Term.Const "a") (Term.Const "a"))

let test_term_predicates () =
  Alcotest.(check bool) "is_const" true (Term.is_const (Term.Const "a"));
  Alcotest.(check bool) "is_var" true (Term.is_var (Term.Var "X"));
  Alcotest.(check bool) "is_null" true (Term.is_null (Term.Null 3));
  Alcotest.(check bool) "null not const" false (Term.is_const (Term.Null 3))

let test_term_set () =
  let s = Term.Set.of_list [ Term.Const "a"; Term.Const "a"; Term.Null 1 ] in
  Alcotest.(check int) "dedup" 2 (Term.Set.cardinal s)

(* ---------------- atoms ---------------- *)

let test_atom_basics () =
  let a = fact "p(a, b)" in
  Alcotest.(check string) "pred" "p" (Atom.pred a);
  Alcotest.(check int) "arity" 2 (Atom.arity a);
  check_term "arg 0" (Term.Const "a") (Atom.arg a 0);
  Alcotest.(check bool) "ground" true (Atom.is_ground a)

let test_atom_equal_hash () =
  let a1 = fact "p(a, b)" and a2 = fact "p(a, b)" and a3 = fact "p(b, a)" in
  Alcotest.(check bool) "equal" true (Atom.equal a1 a2);
  Alcotest.(check bool) "hash agrees" true (Atom.hash a1 = Atom.hash a2);
  Alcotest.(check bool) "different" false (Atom.equal a1 a3)

let test_atom_vars () =
  let r = parse_rule "p(X, Y, X) -> q(X, Z)" in
  let body_atom = List.hd (Tgd.body r) in
  Alcotest.(check int) "two vars" 2
    (Chase_logic.Util.Sset.cardinal (Atom.var_set body_atom));
  Alcotest.(check bool) "repeated var detected" false (Atom.no_repeated_var body_atom)

let test_atom_positions () =
  let r = parse_rule "p(X, Y, X) -> q(X)" in
  let a = List.hd (Tgd.body r) in
  Alcotest.(check (list int)) "positions of X" [ 0; 2 ]
    (Atom.positions_of_term a (Term.Var "X"))

let test_atom_nullary () =
  let a = fact "go()" in
  Alcotest.(check int) "arity 0" 0 (Atom.arity a);
  Alcotest.(check bool) "ground" true (Atom.is_ground a)

(* ---------------- substitutions ---------------- *)

let test_subst_bind_conflict () =
  let s = Subst.of_list [ ("X", Term.Const "a") ] in
  Alcotest.(check bool) "rebind same ok" true
    (Option.is_some (Subst.bind s "X" (Term.Const "a")));
  Alcotest.(check bool) "rebind different fails" true
    (Option.is_none (Subst.bind s "X" (Term.Const "b")))

let test_subst_apply () =
  let r = parse_rule "p(X, Y) -> q(Y)" in
  let s = Subst.of_list [ ("X", Term.Const "a"); ("Y", Term.Null 7) ] in
  let applied = Subst.apply_atom s (List.hd (Tgd.body r)) in
  check_atom "applied" (Atom.of_list "p" [ Term.Const "a"; Term.Null 7 ]) applied

let test_subst_restrict () =
  let s = Subst.of_list [ ("X", Term.Const "a"); ("Y", Term.Const "b") ] in
  let r = Subst.restrict s (Chase_logic.Util.Sset.singleton "Y") in
  Alcotest.(check int) "one binding" 1 (Subst.cardinal r);
  Alcotest.(check bool) "keeps Y" true (Subst.mem "Y" r)

(* ---------------- instances ---------------- *)

let test_instance_dedup () =
  let ins = Instance.create () in
  Alcotest.(check bool) "first add new" true (Instance.add ins (fact "p(a, b)"));
  Alcotest.(check bool) "second add dup" false (Instance.add ins (fact "p(a, b)"));
  Alcotest.(check int) "size" 1 (Instance.cardinal ins)

let test_instance_indexes () =
  let ins =
    Instance.of_list (parse_facts "p(a, b). p(a, c). p(b, c). q(a).")
  in
  Alcotest.(check int) "by pred" 3 (List.length (Instance.atoms_of_pred ins "p"));
  Alcotest.(check int) "by pred/pos/term" 2
    (List.length (Instance.atoms_matching ins "p" 0 (Term.Const "a")));
  Alcotest.(check int) "by term" 3
    (List.length (Instance.atoms_containing ins (Term.Const "a")))

let test_instance_vars_rejected () =
  let ins = Instance.create () in
  Alcotest.check_raises "variable atom rejected"
    (Invalid_argument "Instance.add: atom contains a variable") (fun () ->
      ignore (Instance.add ins (Atom.of_list "p" [ Term.Var "X" ])))

(* ---------------- homomorphisms ---------------- *)

let test_hom_all () =
  let ins = Instance.of_list (parse_facts "e(a, b). e(b, c). e(c, a).") in
  let r = parse_rule "e(X, Y), e(Y, Z) -> e(X, Z)" in
  let homs = Hom.all ins (Tgd.body r) in
  (* triangle: every edge composes with exactly one successor *)
  Alcotest.(check int) "three 2-paths" 3 (List.length homs)

let test_hom_repeated_var () =
  let ins = Instance.of_list (parse_facts "p(a, a). p(a, b).") in
  let r = parse_rule "p(X, X) -> q(X)" in
  Alcotest.(check int) "only diagonal matches" 1
    (List.length (Hom.all ins (Tgd.body r)))

let test_hom_constant_in_body () =
  let ins = Instance.of_list (parse_facts "p(a, b). p(c, b).") in
  let r = parse_rule "p(a, Y) -> q(Y)" in
  Alcotest.(check int) "constant filter" 1 (List.length (Hom.all ins (Tgd.body r)))

let test_hom_seeded () =
  let ins = Instance.of_list (parse_facts "e(a, b). e(b, c).") in
  let r = parse_rule "e(X, Y), e(Y, Z) -> e(X, Z)" in
  let seed = fact "e(b, c)" in
  let found = ref [] in
  Hom.iter_seeded ins (Tgd.body r) ~seed (fun s -> found := s :: !found);
  (* the only 2-path is a→b→c, and it uses the seed *)
  Alcotest.(check int) "one seeded hom" 1 (List.length !found)

let test_hom_seeded_no_duplicates () =
  (* a hom whose body atoms BOTH map to the seed must be produced once *)
  let ins = Instance.of_list (parse_facts "e(a, a).") in
  let r = parse_rule "e(X, Y), e(Y, X) -> q(X)" in
  let found = ref 0 in
  Hom.iter_seeded ins (Tgd.body r) ~seed:(fact "e(a, a)") (fun _ -> incr found);
  Alcotest.(check int) "no duplicate" 1 !found

let test_instance_hom () =
  let i1 = Instance.of_list [ Atom.of_list "p" [ Term.Const "a"; Term.Null 1 ] ] in
  let i2 = Instance.of_list (parse_facts "p(a, b).") in
  Alcotest.(check bool) "null maps onto constant" true
    (Option.is_some (Hom.instance_hom i1 i2));
  Alcotest.(check bool) "constants are rigid" false
    (Option.is_some (Hom.instance_hom i2 i1))

(* ---------------- patterns ---------------- *)

let test_pattern_canonical () =
  let p1 = Pattern.of_atom (Atom.of_list "p" [ Term.Null 1; Term.Null 2; Term.Null 1 ]) in
  let p2 = Pattern.of_atom (Atom.of_list "p" [ Term.Null 9; Term.Null 4; Term.Null 9 ]) in
  Alcotest.check pattern_testable "same shape" p1 p2

let test_pattern_distinguishes () =
  let p1 = Pattern.of_atom (Atom.of_list "p" [ Term.Null 1; Term.Null 1 ]) in
  let p2 = Pattern.of_atom (Atom.of_list "p" [ Term.Null 1; Term.Null 2 ]) in
  let p3 = Pattern.of_atom (fact "p(a, a)") in
  Alcotest.(check bool) "diagonal vs distinct" false (Pattern.equal p1 p2);
  Alcotest.(check bool) "null vs const" false (Pattern.equal p1 p3)

let test_pattern_instantiate () =
  let counter = ref 100 in
  let fresh_null () = incr counter; Term.Null !counter in
  let p = Pattern.of_atom (Atom.of_list "p" [ Term.Const "a"; Term.Null 1; Term.Null 1 ]) in
  let a = Pattern.instantiate ~fresh_null p in
  Alcotest.check pattern_testable "round trip" p (Pattern.of_atom a);
  check_term "constant preserved" (Term.Const "a") (Atom.arg a 0);
  Alcotest.(check bool) "shared null" true (Term.equal (Atom.arg a 1) (Atom.arg a 2))

let pattern_roundtrip_prop =
  (* random fact → pattern → instantiate → same pattern *)
  let gen =
    QCheck.Gen.(
      let term =
        oneof [ map (fun i -> Term.Null (i mod 3)) small_nat;
                oneofl [ Term.Const "a"; Term.Const "b" ] ]
      in
      map (fun ts -> Atom.of_list "p" ts) (list_size (int_range 1 5) term))
  in
  qcheck ~count:200 "pattern instantiate round-trips" (QCheck.make gen) (fun a ->
      let counter = ref 1000 in
      let fresh_null () = incr counter; Term.Null !counter in
      let p = Pattern.of_atom a in
      Pattern.equal p (Pattern.of_atom (Pattern.instantiate ~fresh_null p)))

(* ---------------- TGDs ---------------- *)

let test_tgd_frontier () =
  let r = parse_rule "p(X, Y), q(Y, W) -> r(Y, Z), s(Z, W)" in
  let module S = Chase_logic.Util.Sset in
  Alcotest.(check (list string)) "frontier" [ "W"; "Y" ]
    (S.elements (Tgd.frontier r));
  Alcotest.(check (list string)) "existentials" [ "Z" ]
    (S.elements (Tgd.existentials r))

let test_tgd_validation () =
  Alcotest.(check bool) "empty body rejected" true
    (Result.is_error (Tgd.make ~body:[] ~head:[ fact "p(a)" ] ()));
  Alcotest.(check bool) "arity clash rejected" true
    (Result.is_error
       (Tgd.make
          ~body:[ Atom.of_list "p" [ Term.Var "X" ] ]
          ~head:[ Atom.of_list "p" [ Term.Var "X"; Term.Var "Y" ] ]
          ()))

let test_tgd_full () =
  Alcotest.(check bool) "full" true (Tgd.is_full (parse_rule "p(X, Y) -> q(Y, X)"));
  Alcotest.(check bool) "not full" false (Tgd.is_full (parse_rule "p(X) -> q(X, Z)"))

let test_tgd_rename_apart () =
  let r = parse_rule "p(X) -> q(X, Z)" in
  let r' = Tgd.rename_apart ~suffix:"_1" r in
  let module S = Chase_logic.Util.Sset in
  Alcotest.(check bool) "disjoint vars" true
    (S.is_empty (S.inter (Tgd.body_vars r) (Tgd.body_vars r')))

let test_tgd_constants () =
  let r = parse_rule "p(X, c) -> q(X, d)" in
  let module S = Chase_logic.Util.Sset in
  Alcotest.(check (list string)) "constants" [ "c"; "d" ]
    (S.elements (Tgd.constants r))

(* ---------------- schema ---------------- *)

let test_schema_positions () =
  let s = Schema.of_rules (parse "p(X, Y) -> q(Y).") in
  Alcotest.(check int) "3 positions" 3 (Schema.position_count s);
  Alcotest.(check int) "2 predicates" 2 (Schema.cardinal s);
  Alcotest.(check int) "max arity" 2 (Schema.max_arity s)

let test_schema_arity_clash () =
  Alcotest.(check bool) "cross-rule clash detected" true
    (try ignore (Schema.of_rules (parse "p(X) -> q(X). q(X, Y) -> p(X).")); false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "term ordering" `Quick test_term_order;
    Alcotest.test_case "term predicates" `Quick test_term_predicates;
    Alcotest.test_case "term sets dedup" `Quick test_term_set;
    Alcotest.test_case "atom basics" `Quick test_atom_basics;
    Alcotest.test_case "atom equality and hash" `Quick test_atom_equal_hash;
    Alcotest.test_case "atom variables" `Quick test_atom_vars;
    Alcotest.test_case "atom positions" `Quick test_atom_positions;
    Alcotest.test_case "nullary atoms" `Quick test_atom_nullary;
    Alcotest.test_case "subst bind conflicts" `Quick test_subst_bind_conflict;
    Alcotest.test_case "subst apply" `Quick test_subst_apply;
    Alcotest.test_case "subst restrict" `Quick test_subst_restrict;
    Alcotest.test_case "instance dedup" `Quick test_instance_dedup;
    Alcotest.test_case "instance indexes" `Quick test_instance_indexes;
    Alcotest.test_case "instance rejects variables" `Quick test_instance_vars_rejected;
    Alcotest.test_case "hom enumeration" `Quick test_hom_all;
    Alcotest.test_case "hom repeated variables" `Quick test_hom_repeated_var;
    Alcotest.test_case "hom constants in body" `Quick test_hom_constant_in_body;
    Alcotest.test_case "hom seeded" `Quick test_hom_seeded;
    Alcotest.test_case "hom seeded no duplicates" `Quick test_hom_seeded_no_duplicates;
    Alcotest.test_case "instance homomorphism" `Quick test_instance_hom;
    Alcotest.test_case "pattern canonical" `Quick test_pattern_canonical;
    Alcotest.test_case "pattern distinguishes" `Quick test_pattern_distinguishes;
    Alcotest.test_case "pattern instantiate" `Quick test_pattern_instantiate;
    pattern_roundtrip_prop;
    Alcotest.test_case "tgd frontier" `Quick test_tgd_frontier;
    Alcotest.test_case "tgd validation" `Quick test_tgd_validation;
    Alcotest.test_case "tgd fullness" `Quick test_tgd_full;
    Alcotest.test_case "tgd rename apart" `Quick test_tgd_rename_apart;
    Alcotest.test_case "tgd constants" `Quick test_tgd_constants;
    Alcotest.test_case "schema positions" `Quick test_schema_positions;
    Alcotest.test_case "schema arity clash" `Quick test_schema_arity_clash;
  ]
