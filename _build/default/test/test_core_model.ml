(** Tests for core computation. *)

open Chase
open Test_util

let inst atoms = Instance.of_list atoms
let null n = Term.Null n
let c s = Term.Const s

let test_redundant_null_folds () =
  (* {p(a, n1), p(a, n2)} folds to one fact *)
  let i = inst [ Atom.of_list "p" [ c "a"; null 1 ]; Atom.of_list "p" [ c "a"; null 2 ] ] in
  let k = Core_model.core i in
  Alcotest.(check int) "one fact" 1 (Instance.cardinal k);
  Alcotest.(check bool) "equivalent to original" true (Core_model.equivalent i k)

let test_null_folds_onto_constant () =
  (* {p(a, n1), p(a, b)}: n1 ↦ b *)
  let i = inst [ Atom.of_list "p" [ c "a"; null 1 ]; Atom.of_list "p" [ c "a"; c "b" ] ] in
  let k = Core_model.core i in
  Alcotest.(check int) "one fact" 1 (Instance.cardinal k);
  Alcotest.(check bool) "the ground fact survives" true
    (Instance.mem k (Atom.of_list "p" [ c "a"; c "b" ]))

let test_symmetric_pair_is_core () =
  (* {q(n1, n2), q(n2, n1)} has only automorphisms: it is its own core *)
  let i = inst [ Atom.of_list "q" [ null 1; null 2 ]; Atom.of_list "q" [ null 2; null 1 ] ] in
  Alcotest.(check bool) "is core" true (Core_model.is_core i);
  Alcotest.(check int) "unchanged" 2 (Instance.cardinal (Core_model.core i))

let test_ground_instance_is_core () =
  let i = inst (parse_facts "e(a, b). e(b, c). e(a, c).") in
  Alcotest.(check bool) "ground instances are cores" true (Core_model.is_core i)

let test_chain_folds () =
  (* a null path a → n1 → n2 alongside an edge a → b … the path folds onto
     shorter structure only if consistent; here n2 has no outgoing edge so
     n1 ↦ a? No: e(a,n1) needs e(h n1 …) … just check idempotence and
     equivalence. *)
  let i =
    inst
      [
        Atom.of_list "e" [ c "a"; null 1 ];
        Atom.of_list "e" [ null 1; null 2 ];
        Atom.of_list "e" [ c "a"; c "b" ];
        Atom.of_list "e" [ c "b"; c "d" ];
      ]
  in
  let k = Core_model.core i in
  Alcotest.(check int) "folds onto the ground path" 2 (Instance.cardinal k);
  Alcotest.(check bool) "core is a core" true (Core_model.is_core k);
  Alcotest.(check bool) "equivalent" true (Core_model.equivalent i k)

let test_oblivious_core_matches_restricted () =
  (* the oblivious chase over-invents; its core is the (already lean)
     restricted result, up to isomorphism *)
  let rules = parse "emp(N, D) -> dept(D, M)." in
  let db = parse_facts "emp(ada, cs). emp(grace, cs)." in
  let ob = chase ~variant:Variant.Oblivious rules db in
  let re = chase ~variant:Variant.Restricted rules db in
  let ob_core = Core_model.core ob.Engine.instance in
  Alcotest.(check int) "oblivious made 2 dept facts" 2
    (List.length (Instance.atoms_of_pred ob.Engine.instance "dept"));
  Alcotest.(check int) "core has 1 dept fact" 1
    (List.length (Instance.atoms_of_pred ob_core "dept"));
  Alcotest.(check bool) "core ≅ restricted result" true
    (Core_model.equivalent ob_core re.Engine.instance)

let test_core_idempotent () =
  let i =
    inst
      [
        Atom.of_list "p" [ c "a"; null 1 ];
        Atom.of_list "p" [ c "a"; null 2 ];
        Atom.of_list "q" [ null 2; null 3 ];
      ]
  in
  let k = Core_model.core i in
  Alcotest.(check int) "core stable" (Instance.cardinal k)
    (Instance.cardinal (Core_model.core k));
  Alcotest.(check bool) "core is core" true (Core_model.is_core k)

(* randomized: the core is equivalent to the instance and not larger *)
let core_props =
  let gen =
    QCheck.Gen.(
      let term =
        oneof
          [ map (fun i -> Term.Null (1 + (i mod 4))) small_nat;
            oneofl [ Term.Const "a"; Term.Const "b" ] ]
      in
      list_size (int_range 1 5)
        (map2 (fun t1 t2 -> Atom.of_list "e" [ t1; t2 ]) term term))
  in
  qcheck ~count:100 "core: smaller, equivalent, idempotent" (QCheck.make gen)
    (fun atoms ->
      let i = inst atoms in
      let k = Core_model.core i in
      Instance.cardinal k <= Instance.cardinal i
      && Core_model.equivalent i k
      && Core_model.is_core k)

let suite =
  [
    Alcotest.test_case "redundant null folds" `Quick test_redundant_null_folds;
    Alcotest.test_case "null folds onto constant" `Quick test_null_folds_onto_constant;
    Alcotest.test_case "symmetric pair is core" `Quick test_symmetric_pair_is_core;
    Alcotest.test_case "ground instance is core" `Quick test_ground_instance_is_core;
    Alcotest.test_case "null chain folds" `Quick test_chain_folds;
    Alcotest.test_case "oblivious core matches restricted" `Quick
      test_oblivious_core_matches_restricted;
    Alcotest.test_case "core idempotent" `Quick test_core_idempotent;
    core_props;
  ]
