(** Tests for entailment and the looping operator (E7 in test size). *)

open Chase
open Test_util

(* ---------------- entailment ---------------- *)

let test_datalog_entailment () =
  let rules = parse "e(X, Y), e(Y, Z) -> e(X, Z)." in
  let db = parse_facts "e(a, b). e(b, c). e(c, d)." in
  Alcotest.(check bool) "transitive edge" true
    (Entailment.holds rules db (fact "e(a, d)"));
  Alcotest.(check bool) "no reverse edge" false
    (Entailment.holds rules db (fact "e(d, a)"))

let test_entailment_with_variables () =
  let rules = parse "p(X) -> q(X, Z)." in
  let db = parse_facts "p(a)." in
  let q = Atom.of_list "q" [ Term.Const "a"; Term.Var "W" ] in
  Alcotest.(check bool) "existential query" true (Entailment.holds rules db q)

let test_entailment_unknown_on_budget () =
  let rules = Families.example2 in
  let db = parse_facts "p(a, b)." in
  match Entailment.check ~budget:50 rules db (fact "q(a)") with
  | `Unknown _ -> ()
  | `Entailed | `Not_entailed -> Alcotest.fail "expected Unknown on budget"

(* ---------------- looping operator ---------------- *)

(* the chase of D under loop(Σ, α) diverges iff D, Σ ⊨ α *)
let looping_correct target_entailed =
  let name =
    if target_entailed then "looping: entailed target → chase diverges"
    else "looping: non-entailed target → chase terminates"
  in
  Alcotest.test_case name `Quick (fun () ->
      (* Σ: a full guarded program; the goal is reachable iff the chain
         from the database closes. *)
      let sigma = parse "r(X, Y), m(Y) -> s(Y). s(X) -> goal(X)." in
      let db =
        if target_entailed then parse_facts "r(a, b). m(b)."
        else parse_facts "r(a, b). m(a)."
      in
      let target = Atom.of_list "goal" [ Term.Var "G" ] in
      Alcotest.(check bool) "entailment as expected" target_entailed
        (Entailment.holds sigma db target);
      let looped = (Looping.apply sigma ~target).Looping.rules in
      let result = chase ~variant:Variant.Semi_oblivious ~budget:20_000 looped db in
      Alcotest.(check bool) "termination is the complement" (not target_entailed)
        (result.Engine.status = Engine.Terminated))

let test_looping_preserves_class () =
  let sigma = parse "p(X, Y) -> q(Y, X)." in
  let target = Atom.of_list "q" [ Term.Var "A"; Term.Var "B" ] in
  let looped = (Looping.apply sigma ~target).Looping.rules in
  Alcotest.(check bool) "stays simple linear" true (Classify.is_simple_linear looped);
  let sigma_g = parse "r(X, Y), m(Y) -> s(Y)." in
  let looped_g = (Looping.apply sigma_g ~target:(fact "s(a)")).Looping.rules in
  Alcotest.(check bool) "stays guarded" true (Classify.is_guarded looped_g)

let test_looping_fresh_predicate () =
  let sigma = parse "loop(X) -> loop_0(X)." in
  let target = fact "loop_0(a)" in
  let l = Looping.apply sigma ~target in
  Alcotest.(check bool) "avoids collisions" true
    (l.Looping.loop_pred <> "loop" && l.Looping.loop_pred <> "loop_0")

(* randomized: looping operator correct on random full guarded programs
   and random small databases *)
let looping_random =
  let gen =
    QCheck.Gen.(pair small_nat (list_size (int_range 0 4) (int_range 0 2)))
  in
  qcheck ~count:80 "looping operator ⟺ entailment (random Datalog)"
    (QCheck.make gen) (fun (seed, db_spec) ->
      let profile =
        { Random_tgds.default_profile with existential_bias = 0.0; n_rules = 3 }
      in
      let sigma = Random_tgds.guarded ~seed ~profile () in
      (* a small database over the first schema predicate *)
      let schema = Schema.of_rules sigma in
      match Schema.to_list schema with
      | [] -> true
      | (p, n) :: rest ->
        let db =
          List.map
            (fun k ->
              Atom.of_list p (List.init n (fun i -> Term.Const (Fmt.str "c%d" ((k + i) mod 3)))))
            db_spec
        in
        let target_pred, target_arity =
          match rest with [] -> (p, n) | (q, m) :: _ -> (q, m)
        in
        let target =
          Atom.of_list target_pred
            (List.init target_arity (fun i -> Term.Var (Fmt.str "T%d" i)))
        in
        let entailed = Entailment.holds sigma db target in
        let looped = (Looping.apply sigma ~target).Looping.rules in
        let result = chase ~variant:Variant.Semi_oblivious ~budget:20_000 looped db in
        (result.Engine.status = Engine.Terminated) = not entailed)

let suite =
  [
    Alcotest.test_case "datalog entailment" `Quick test_datalog_entailment;
    Alcotest.test_case "entailment with variables" `Quick test_entailment_with_variables;
    Alcotest.test_case "entailment unknown on budget" `Quick
      test_entailment_unknown_on_budget;
    looping_correct true;
    looping_correct false;
    Alcotest.test_case "looping preserves class" `Quick test_looping_preserves_class;
    Alcotest.test_case "looping fresh predicate" `Quick test_looping_fresh_predicate;
    looping_random;
  ]
