(** Empirical validation of the paper's theorems (the content of
    EXPERIMENTS.md E1–E2–E4, as fast test-sized versions).

    The chase-simulation oracle decides termination on the critical
    instance with a budget; on the tiny rule sets generated here the
    budgets are far beyond any terminating chase, so oracle disagreement
    with the exact procedures would expose real bugs. *)

open Chase
open Test_util

let oracle ?(budget = 20_000) variant rules =
  crit_chase_terminates ~budget variant rules

(* ---------------- Theorem 1: SL ---------------- *)

let thm1_oblivious =
  qcheck ~count:200 "Thm 1 (o): RA = CT^o on random SL sets"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.simple_linear ~seed () in
      Rich.is_richly_acyclic rules = oracle Variant.Oblivious rules)

let thm1_semi_oblivious =
  qcheck ~count:200 "Thm 1 (so): WA = CT^so on random SL sets"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.simple_linear ~seed () in
      Weak.is_weakly_acyclic rules = oracle Variant.Semi_oblivious rules)

let thm1_named_cases () =
  let expect name rules o so =
    Alcotest.(check bool) (name ^ " o") o (Verdict.is_terminating (Sl.check ~variant:Variant.Oblivious rules));
    Alcotest.(check bool) (name ^ " so") so
      (Verdict.is_terminating (Sl.check ~variant:Variant.Semi_oblivious rules))
  in
  expect "example2" Families.example2 false false;
  expect "separator" Families.separator false true;
  expect "chain" (Families.sl_chain 4) true true;
  expect "cycle" (Families.sl_cycle 4) false false;
  expect "benign cycle" (Families.sl_cycle_benign 4) false true

(* ---------------- Theorem 2: L ---------------- *)

let thm2_plain_acyclicity_incomplete () =
  (* the counterexample: dangerous cycle, yet terminating *)
  let rules = Families.thm2_counterexample in
  Alcotest.(check bool) "not WA" false (Weak.is_weakly_acyclic rules);
  Alcotest.(check bool) "o-chase terminates anyway" true (oracle Variant.Oblivious rules);
  Alcotest.(check bool) "critical procedure is exact" true
    (Verdict.is_terminating (Linear.check ~variant:Variant.Oblivious rules))

let thm2_oblivious =
  qcheck ~count:150 "Thm 2 (o): critical-RA = CT^o on random linear sets"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.linear ~seed () in
      Verdict.is_terminating (Linear.check ~standard:false ~variant:Variant.Oblivious rules)
      = oracle Variant.Oblivious rules)

let thm2_semi_oblivious =
  qcheck ~count:150 "Thm 2 (so): critical-WA = CT^so on random linear sets"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.linear ~seed () in
      Verdict.is_terminating
        (Linear.check ~standard:false ~variant:Variant.Semi_oblivious rules)
      = oracle Variant.Semi_oblivious rules)

let thm2_arity_family () =
  List.iter
    (fun arity ->
      Alcotest.(check bool)
        (Fmt.str "rotating arity %d diverges" arity)
        false
        (Verdict.is_terminating
           (Linear.check ~variant:Variant.Oblivious (Families.linear_rotating ~arity)));
      Alcotest.(check bool)
        (Fmt.str "blocked arity %d terminates" arity)
        true
        (Verdict.is_terminating
           (Linear.check ~variant:Variant.Oblivious (Families.linear_blocked ~arity))))
    [ 2; 3; 4 ]

(* ---------------- Grahne–Onet: CT^o ⊆ CT^so ---------------- *)

let cto_subset_ctso =
  qcheck ~count:200 "CT^o ⊆ CT^so (linear sets)"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.linear ~seed () in
      (not (oracle Variant.Oblivious rules)) || oracle Variant.Semi_oblivious rules)

(* ---------------- Theorem 4: guarded ---------------- *)

let thm4_named_cases () =
  let check_t name rules expected =
    let v = Guarded.check ~variant:Variant.Semi_oblivious rules in
    Alcotest.(check string) name expected (Verdict.answer_to_string (Verdict.answer v))
  in
  check_t "guarded divergent" (Families.guarded_divergent ~arity:3) "diverges";
  check_t "guarded terminating" (Families.guarded_terminating ~arity:3) "terminates";
  check_t "guarded tower" (Families.guarded_tower ~levels:3) "terminates"

let thm4_agreement =
  qcheck ~count:60 "Thm 4: guarded checker agrees with the chase oracle"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.guarded ~seed () in
      let oracle_terminates = oracle ~budget:8_000 Variant.Semi_oblivious rules in
      match
        Verdict.answer (Guarded.check ~budget:8_000 ~variant:Variant.Semi_oblivious rules)
      with
      | Verdict.Terminates -> oracle_terminates
      | Verdict.Diverges -> not oracle_terminates
      | Verdict.Unknown -> not oracle_terminates (* budget cases must at least not be terminating *))

(* ---------------- the Decide dispatcher ---------------- *)

let decide_catalogue () =
  (* every catalogue family gets a definite, correct answer *)
  List.iter
    (fun (name, rules) ->
      let expected = oracle Variant.Semi_oblivious rules in
      let v = Decide.check ~variant:Variant.Semi_oblivious rules in
      match Verdict.answer v with
      | Verdict.Terminates ->
        Alcotest.(check bool) (name ^ ": terminates correct") true expected
      | Verdict.Diverges ->
        Alcotest.(check bool) (name ^ ": diverges correct") false expected
      | Verdict.Unknown -> Alcotest.fail (name ^ ": expected a definite answer"))
    (List.filter (fun (n, _) -> n <> "restricted-separator") Families.catalogue)

let decide_uses_fast_path () =
  let v = Decide.check ~variant:Variant.Oblivious Families.example2 in
  Alcotest.(check string) "SL handled by acyclicity" "rich-acyclicity" v.Verdict.procedure;
  let v2 = Decide.check ~variant:Variant.Oblivious Families.thm2_counterexample in
  Alcotest.(check string) "L handled by critical procedure"
    "critical-rich-acyclicity" v2.Verdict.procedure

let suite =
  [
    thm1_oblivious;
    thm1_semi_oblivious;
    Alcotest.test_case "Thm 1 named cases" `Quick thm1_named_cases;
    Alcotest.test_case "Thm 2: plain acyclicity incomplete on L" `Quick
      thm2_plain_acyclicity_incomplete;
    thm2_oblivious;
    thm2_semi_oblivious;
    Alcotest.test_case "Thm 2 arity families" `Quick thm2_arity_family;
    cto_subset_ctso;
    Alcotest.test_case "Thm 4 named cases" `Quick thm4_named_cases;
    thm4_agreement;
    Alcotest.test_case "Decide on the catalogue" `Quick decide_catalogue;
    Alcotest.test_case "Decide picks the right procedure" `Quick decide_uses_fast_path;
  ]
