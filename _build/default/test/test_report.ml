(** Tests for the analysis portfolio report. *)

open Chase
open Test_util

let test_report_separator () =
  let t = Report.build Families.separator in
  Alcotest.(check bool) "not RA" false t.Report.acyclicity.Report.richly_acyclic;
  Alcotest.(check bool) "WA" true t.Report.acyclicity.Report.weakly_acyclic;
  Alcotest.(check bool) "JA" true t.Report.acyclicity.Report.jointly_acyclic;
  Alcotest.(check (option bool)) "MFA" (Some true) t.Report.acyclicity.Report.mfa;
  Alcotest.(check bool) "o diverges" true (Verdict.is_diverging t.Report.oblivious);
  Alcotest.(check bool) "so terminates" true
    (Verdict.is_terminating t.Report.semi_oblivious);
  Alcotest.(check bool) "restricted terminates" true
    (Verdict.is_terminating t.Report.restricted);
  Alcotest.(check bool) "critical run closed" true
    (t.Report.critical_run.Report.status = Engine.Terminated)

let test_report_mfa_witness () =
  let t = Report.build Families.mfa_incomplete_witness in
  (* every syntactic condition fails, both exact verdicts terminate *)
  Alcotest.(check bool) "no syntactic condition holds" true
    ((not t.Report.acyclicity.Report.weakly_acyclic)
    && (not t.Report.acyclicity.Report.jointly_acyclic)
    && t.Report.acyclicity.Report.mfa = Some false);
  Alcotest.(check bool) "o terminates (exact)" true
    (Verdict.is_terminating t.Report.oblivious);
  Alcotest.(check bool) "so terminates (exact)" true
    (Verdict.is_terminating t.Report.semi_oblivious)

let test_report_consistency_random =
  qcheck ~count:30 "report verdicts are internally consistent"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.linear ~seed () in
      let t = Report.build ~budget:8_000 rules in
      (* the acyclicity lattice *)
      let lattice_ok =
        ((not t.Report.acyclicity.Report.richly_acyclic)
        || t.Report.acyclicity.Report.weakly_acyclic)
        && ((not t.Report.acyclicity.Report.weakly_acyclic)
           || t.Report.acyclicity.Report.jointly_acyclic)
      in
      (* o-termination implies so-termination *)
      let variants_ok =
        (not (Verdict.is_terminating t.Report.oblivious))
        || Verdict.is_terminating t.Report.semi_oblivious
      in
      (* a closed critical run implies a so-terminates verdict on linear *)
      let run_ok =
        t.Report.critical_run.Report.status <> Engine.Terminated
        || Verdict.is_terminating t.Report.semi_oblivious
      in
      lattice_ok && variants_ok && run_ok)

(* tiny substring helper to avoid a dependency *)
let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_report_pp () =
  let s = Fmt.str "%a" Report.pp (Report.build Families.example2) in
  Alcotest.(check bool) "mentions class" true (contains_sub s "simple-linear");
  Alcotest.(check bool) "mentions verdicts" true (contains_sub s "diverges")

let suite =
  [
    Alcotest.test_case "report on the separator" `Quick test_report_separator;
    Alcotest.test_case "report on the MFA witness" `Quick test_report_mfa_witness;
    test_report_consistency_random;
    Alcotest.test_case "report pretty-prints" `Quick test_report_pp;
  ]
