(** Shared helpers for the test suite. *)

open Chase

let parse = Parser.parse_rules_exn
let parse_rule = Parser.parse_rule_exn
let parse_facts = Parser.parse_database_exn
let fact = Parser.parse_fact_exn

let atom_testable = Alcotest.testable Atom.pp Atom.equal
let term_testable = Alcotest.testable Term.pp Term.equal
let pattern_testable = Alcotest.testable Pattern.pp Pattern.equal

let check_atom = Alcotest.check atom_testable
let check_term = Alcotest.check term_testable

(** Chase the critical instance with a budget; true iff it terminated. *)
let crit_chase_terminates ?(standard = false) ?(budget = 10_000) variant rules =
  let crit = Critical.of_rules ~standard rules in
  let config =
    { Engine.variant; max_triggers = budget; max_atoms = 4 * budget }
  in
  let result = Engine.run ~config rules (Instance.to_list crit) in
  result.Engine.status = Engine.Terminated

(** Run the chase on an explicit database. *)
let chase ?(variant = Variant.Oblivious) ?(budget = 10_000) rules db =
  let config =
    { Engine.variant; max_triggers = budget; max_atoms = 4 * budget }
  in
  Engine.run ~config rules db

let sorted_facts result = Instance.to_sorted_list result.Engine.instance

(** Compare instance contents up to null renaming: both embed in each
    other via constant-fixing homomorphisms. *)
let hom_equivalent i1 i2 =
  Option.is_some (Hom.instance_hom i1 i2)
  && Option.is_some (Hom.instance_hom i2 i1)

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
