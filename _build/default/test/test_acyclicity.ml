(** Tests for the acyclicity machinery: digraph/SCC, dependency graphs,
    weak and rich acyclicity. *)

open Chase
open Test_util

(* ------------- digraph ------------- *)

let test_scc () =
  let g = Digraph.create 5 in
  let e u v = Digraph.add_edge g ~src:u ~dst:v ~special:false in
  e 0 1; e 1 2; e 2 0; e 2 3; e 3 4;
  let comp = Digraph.scc g in
  Alcotest.(check bool) "0,1,2 together" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  Alcotest.(check bool) "3 apart" true (comp.(3) <> comp.(0));
  Alcotest.(check bool) "4 apart" true (comp.(4) <> comp.(3))

let test_dangerous_edge () =
  let g = Digraph.create 3 in
  Digraph.add_edge g ~src:0 ~dst:1 ~special:true;
  Digraph.add_edge g ~src:1 ~dst:2 ~special:false;
  Alcotest.(check bool) "special edge off-cycle is safe" false
    (Digraph.has_dangerous_cycle g);
  Digraph.add_edge g ~src:2 ~dst:0 ~special:false;
  Alcotest.(check bool) "closing the loop is dangerous" true
    (Digraph.has_dangerous_cycle g)

let test_self_loop () =
  let g = Digraph.create 1 in
  Digraph.add_edge g ~src:0 ~dst:0 ~special:true;
  Alcotest.(check bool) "special self-loop" true (Digraph.has_dangerous_cycle g);
  match Digraph.dangerous_cycle g with
  | Some [ e ] -> Alcotest.(check bool) "cycle is the loop" true e.Digraph.special
  | _ -> Alcotest.fail "expected a one-edge cycle"

let test_long_chain_no_overflow () =
  (* deep recursion in Tarjan would overflow on a long chain *)
  let n = 50_000 in
  let g = Digraph.create n in
  for i = 0 to n - 2 do
    Digraph.add_edge g ~src:i ~dst:(i + 1) ~special:false
  done;
  let comp = Digraph.scc g in
  Alcotest.(check bool) "all singleton" true (comp.(0) <> comp.(n - 1))

(* ------------- dependency graphs ------------- *)

let test_wa_classics () =
  Alcotest.(check bool) "example2 not WA" false
    (Weak.is_weakly_acyclic Families.example2);
  Alcotest.(check bool) "separator is WA" true
    (Weak.is_weakly_acyclic Families.separator);
  Alcotest.(check bool) "chain is WA" true (Weak.is_weakly_acyclic (Families.sl_chain 5));
  Alcotest.(check bool) "cycle not WA" false (Weak.is_weakly_acyclic (Families.sl_cycle 5))

let test_ra_classics () =
  Alcotest.(check bool) "example2 not RA" false
    (Rich.is_richly_acyclic Families.example2);
  Alcotest.(check bool) "separator not RA" false
    (Rich.is_richly_acyclic Families.separator);
  Alcotest.(check bool) "chain is RA" true (Rich.is_richly_acyclic (Families.sl_chain 5));
  Alcotest.(check bool) "benign cycle WA but not RA" true
    (Weak.is_weakly_acyclic (Families.sl_cycle_benign 4)
    && not (Rich.is_richly_acyclic (Families.sl_cycle_benign 4)))

let test_full_rules_trivially_acyclic () =
  let datalog = parse "e(X, Y), e(Y, Z) -> e(X, Z). e(X, Y) -> e(Y, X)." in
  Alcotest.(check bool) "WA" true (Weak.is_weakly_acyclic datalog);
  Alcotest.(check bool) "RA" true (Rich.is_richly_acyclic datalog)

let test_wa_certificate_positions () =
  match Weak.check Families.example2 with
  | None -> Alcotest.fail "expected a dangerous cycle"
  | Some cycle ->
    Alcotest.(check bool) "cycle over p positions" true
      (List.for_all (fun (p, _) -> p = "p") cycle && cycle <> [])

(* RA ⟹ WA as classes: the extended graph only adds edges *)
let ra_implies_wa =
  qcheck ~count:300 "richly acyclic ⟹ weakly acyclic"
    (QCheck.make QCheck.Gen.(map (fun s -> s) small_nat))
    (fun seed ->
      let rules = Random_tgds.linear ~seed () in
      (not (Rich.is_richly_acyclic rules)) || Weak.is_weakly_acyclic rules)

(* WA is sound: weakly acyclic ⟹ so-chase of crit terminates *)
let wa_sound_for_so =
  qcheck ~count:150 "WA sound for the semi-oblivious chase"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.linear ~seed () in
      (not (Weak.is_weakly_acyclic rules))
      || crit_chase_terminates ~budget:20_000 Variant.Semi_oblivious rules)

(* RA is sound: richly acyclic ⟹ o-chase of crit terminates *)
let ra_sound_for_o =
  qcheck ~count:150 "RA sound for the oblivious chase"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.linear ~seed () in
      (not (Rich.is_richly_acyclic rules))
      || crit_chase_terminates ~budget:20_000 Variant.Oblivious rules)

let suite =
  [
    Alcotest.test_case "tarjan scc" `Quick test_scc;
    Alcotest.test_case "dangerous edge detection" `Quick test_dangerous_edge;
    Alcotest.test_case "special self-loop" `Quick test_self_loop;
    Alcotest.test_case "tarjan on long chains" `Quick test_long_chain_no_overflow;
    Alcotest.test_case "weak acyclicity classics" `Quick test_wa_classics;
    Alcotest.test_case "rich acyclicity classics" `Quick test_ra_classics;
    Alcotest.test_case "full rules acyclic" `Quick test_full_rules_trivially_acyclic;
    Alcotest.test_case "WA certificate" `Quick test_wa_certificate_positions;
    ra_implies_wa;
    wa_sound_for_so;
    ra_sound_for_o;
  ]
