(** Tests for the TGD class recognizers. *)

open Chase
open Test_util

let test_simple_linear () =
  Alcotest.(check bool) "sl" true (Classify.is_simple_linear (parse "p(X, Y) -> q(Y, Z)."));
  Alcotest.(check bool) "repeated var not sl" false
    (Classify.is_simple_linear (parse "p(X, X) -> q(X)."));
  Alcotest.(check bool) "two body atoms not sl" false
    (Classify.is_simple_linear (parse "p(X), q(X) -> r(X)."))

let test_linear () =
  Alcotest.(check bool) "repeated var is linear" true
    (Classify.is_linear (parse "p(X, X) -> q(X)."));
  Alcotest.(check bool) "join not linear" false
    (Classify.is_linear (parse "p(X), q(X) -> r(X)."))

let test_guarded () =
  Alcotest.(check bool) "guard atom" true
    (Classify.is_guarded (parse "r(X, Y), p(Y) -> s(X)."));
  Alcotest.(check bool) "cross product unguarded" false
    (Classify.is_guarded (parse "p(X), q(Y) -> r(X, Y)."));
  Alcotest.(check bool) "linear is guarded" true
    (Classify.is_guarded (parse "p(X, X) -> q(X)."))

let test_guard_of () =
  let r = parse_rule "p(Y), r(X, Y) -> s(X)" in
  match Classify.guard_of r with
  | Some g -> Alcotest.(check string) "guard is r" "r" (Atom.pred g)
  | None -> Alcotest.fail "expected a guard"

let test_classify_join () =
  Alcotest.(check string) "most specific: sl" "simple-linear"
    (Classify.cls_to_string (Classify.classify (parse "p(X) -> q(X).")));
  Alcotest.(check string) "mixed set is linear" "linear"
    (Classify.cls_to_string
       (Classify.classify (parse "p(X) -> q(X). p(X, X) -> q(X).")));
  Alcotest.(check string) "join forces guarded" "guarded"
    (Classify.cls_to_string
       (Classify.classify (parse "p(X) -> q(X). r(X, Y), p(Y) -> s(X).")));
  Alcotest.(check string) "cartesian body unguarded" "unguarded"
    (Classify.cls_to_string (Classify.classify (parse "p(X), q(Y) -> r(X, Y).")))

let test_full () =
  Alcotest.(check bool) "datalog" true (Classify.is_full (parse "p(X, Y) -> q(Y, X)."));
  Alcotest.(check bool) "existential not full" false
    (Classify.is_full (parse "p(X) -> q(X, Z)."))

let test_single_head () =
  Alcotest.(check bool) "single head ok" true
    (Classify.is_single_head (parse "p(X) -> q(X). q(X) -> r(X, Z)."));
  Alcotest.(check bool) "shared head pred rejected" false
    (Classify.is_single_head (parse "p(X) -> q(X). r(X) -> q(X)."));
  Alcotest.(check bool) "two head atoms rejected" false
    (Classify.is_single_head (parse "p(X) -> q(X), r(X)."))

let test_generators_produce_their_class () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Fmt.str "simple_linear seed %d" seed)
        true
        (Classify.is_simple_linear (Random_tgds.simple_linear ~seed ()));
      Alcotest.(check bool)
        (Fmt.str "linear seed %d" seed)
        true
        (Classify.is_linear (Random_tgds.linear ~seed ()));
      Alcotest.(check bool)
        (Fmt.str "guarded seed %d" seed)
        true
        (Classify.is_guarded (Random_tgds.guarded ~seed ())))
    [ 1; 2; 3; 42; 99 ]

let test_generator_determinism () =
  let r1 = Random_tgds.guarded ~seed:7 () and r2 = Random_tgds.guarded ~seed:7 () in
  Alcotest.(check bool) "same seed same rules" true (List.equal Tgd.equal r1 r2)

let test_families_classes () =
  Alcotest.(check bool) "example2 is SL" true (Classify.is_simple_linear Families.example2);
  Alcotest.(check bool) "thm2 counterexample is linear, not SL" true
    (Classify.is_linear Families.thm2_counterexample
    && not (Classify.is_simple_linear Families.thm2_counterexample));
  Alcotest.(check bool) "guarded family is guarded, not linear" true
    (Classify.is_guarded (Families.guarded_divergent ~arity:3)
    && not (Classify.is_linear (Families.guarded_divergent ~arity:3)));
  Alcotest.(check bool) "single-head chain" true
    (Classify.is_single_head (Families.single_head_chain 4))

let suite =
  [
    Alcotest.test_case "simple linear" `Quick test_simple_linear;
    Alcotest.test_case "linear" `Quick test_linear;
    Alcotest.test_case "guarded" `Quick test_guarded;
    Alcotest.test_case "guard_of" `Quick test_guard_of;
    Alcotest.test_case "classify join" `Quick test_classify_join;
    Alcotest.test_case "full rules" `Quick test_full;
    Alcotest.test_case "single head" `Quick test_single_head;
    Alcotest.test_case "generators produce their class" `Quick
      test_generators_produce_their_class;
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Alcotest.test_case "families have advertised classes" `Quick test_families_classes;
  ]
