(** Model-theoretic properties of the chase result: it is a model, and it
    is universal (embeds into every model) — the two defining properties
    from the paper's introduction. *)

open Chase
open Test_util

let test_chase_is_model_and_universal () =
  (* dept(X) → ∃M works(X, M) ∧ emp(M): a data-exchange-style rule *)
  let rules = parse "dept(X) -> works(X, M), emp(M)." in
  let db = parse_facts "dept(d1). dept(d2)." in
  let result = chase rules db in
  Alcotest.(check bool) "model" true (Engine.is_model rules result.Engine.instance);
  (* a hand-built model: both departments share one manager *)
  let other_model =
    Instance.of_list
      (parse_facts
         "dept(d1). dept(d2). works(d1, boss). works(d2, boss). emp(boss).")
  in
  Alcotest.(check bool) "other model is a model" true
    (Engine.is_model rules other_model);
  Alcotest.(check bool) "chase embeds into the other model" true
    (Option.is_some (Hom.instance_hom result.Engine.instance other_model));
  (* the other model is NOT universal: it does not embed into the chase *)
  Alcotest.(check bool) "collapsed model is not universal" false
    (Option.is_some (Hom.instance_hom other_model result.Engine.instance))

let test_variants_agree_up_to_homomorphism () =
  (* on a terminating set, o/so/restricted results are hom-equivalent *)
  let rules = parse "p(X) -> q(X, Z). q(X, Y) -> r(Y)." in
  let db = parse_facts "p(a). p(b). q(a, c)." in
  let o = chase ~variant:Variant.Oblivious rules db in
  let so = chase ~variant:Variant.Semi_oblivious rules db in
  let re = chase ~variant:Variant.Restricted rules db in
  Alcotest.(check bool) "all terminated" true
    (List.for_all (fun r -> r.Engine.status = Engine.Terminated) [ o; so; re ]);
  Alcotest.(check bool) "o ≅ so" true
    (hom_equivalent o.Engine.instance so.Engine.instance);
  Alcotest.(check bool) "so ≅ restricted" true
    (hom_equivalent so.Engine.instance re.Engine.instance)

let test_restricted_smaller () =
  let rules = parse "p(X) -> q(X, Z)." in
  let db = parse_facts "p(a). q(a, b)." in
  let o = chase ~variant:Variant.Oblivious rules db in
  let re = chase ~variant:Variant.Restricted rules db in
  Alcotest.(check bool) "restricted result no larger" true
    (Instance.cardinal re.Engine.instance <= Instance.cardinal o.Engine.instance)

(* randomized: on random terminating runs, the result satisfies the rules *)
let chase_model_prop =
  qcheck ~count:100 "terminating chase result is always a model"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.guarded ~seed () in
      let crit = Critical.of_rules rules in
      let result =
        chase ~variant:Variant.Semi_oblivious ~budget:5_000 rules
          (Instance.to_list crit)
      in
      result.Engine.status <> Engine.Terminated
      || Engine.is_model rules result.Engine.instance)

(* rule order must not matter: terminating runs under any permutation of
   the rule set are homomorphically equivalent *)
let order_invariance =
  qcheck ~count:60 "chase result invariant under rule reordering"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.guarded ~seed () in
      let db = Instance.to_list (Critical.generic_of_rules rules) in
      let run rules =
        chase ~variant:Variant.Semi_oblivious ~budget:4_000 rules db
      in
      let r1 = run rules and r2 = run (List.rev rules) in
      match r1.Engine.status, r2.Engine.status with
      | Engine.Terminated, Engine.Terminated ->
        hom_equivalent r1.Engine.instance r2.Engine.instance
      | _ -> true)

let suite =
  [
    Alcotest.test_case "chase is a universal model" `Quick
      test_chase_is_model_and_universal;
    order_invariance;
    Alcotest.test_case "variants agree up to homomorphism" `Quick
      test_variants_agree_up_to_homomorphism;
    Alcotest.test_case "restricted result is no larger" `Quick test_restricted_smaller;
    chase_model_prop;
  ]
