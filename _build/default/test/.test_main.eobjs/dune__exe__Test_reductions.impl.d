test/test_reductions.ml: Alcotest Atom Chase Classify Engine Entailment Families Fmt List Looping QCheck Random_tgds Schema Term Test_util Variant
