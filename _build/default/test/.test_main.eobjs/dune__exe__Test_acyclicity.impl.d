test/test_acyclicity.ml: Alcotest Array Chase Digraph Families List QCheck Random_tgds Rich Test_util Variant Weak
