test/test_egd.ml: Alcotest Atom Chase Critical Egd Egd_chase Engine Fmt Instance List Parser QCheck Random_tgds Result Schema Term Test_util
