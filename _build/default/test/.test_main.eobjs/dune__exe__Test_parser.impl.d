test/test_parser.ml: Alcotest Atom Chase Fmt List Parser QCheck Result Term Test_util Tgd
