test/test_util.ml: Alcotest Atom Chase Critical Engine Hom Instance Option Parser Pattern QCheck QCheck_alcotest Term Variant
