test/test_sequence.ml: Alcotest Chase Critical Engine Families Fmt Instance List QCheck Random_tgds Sequence Test_util Variant
