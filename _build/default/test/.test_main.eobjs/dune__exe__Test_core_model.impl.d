test/test_core_model.ml: Alcotest Atom Chase Core_model Engine Instance List QCheck Term Test_util Variant
