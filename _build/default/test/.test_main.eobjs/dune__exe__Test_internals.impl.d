test/test_internals.ml: Alcotest Atom Chase Chase_logic Critical Critical_linear Engine Families Guarded Instance List Pattern Schema String Subst Term Test_util Variant Verdict
