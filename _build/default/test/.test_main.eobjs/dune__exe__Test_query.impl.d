test/test_query.ml: Alcotest Atom Chase Engine Families Fmt Instance List Parser QCheck Query Result Term Test_util Tgd Variant
