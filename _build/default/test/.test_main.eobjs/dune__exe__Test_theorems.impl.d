test/test_theorems.ml: Alcotest Chase Decide Families Fmt Guarded Linear List QCheck Random_tgds Rich Sl Test_util Variant Verdict Weak
