test/test_classify.ml: Alcotest Atom Chase Classify Families Fmt List Random_tgds Test_util Tgd
