test/test_data_files.ml: Alcotest Atom Chase Classify Decide Engine Filename Fun List Parser Query Sys Term Test_util Tgd Variant Verdict Weak
