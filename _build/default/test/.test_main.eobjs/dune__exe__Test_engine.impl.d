test/test_engine.ml: Alcotest Atom Chase Critical Derivation Engine Families Fmt Instance List QCheck Term Test_util Variant
