test/test_logic.ml: Alcotest Atom Chase Chase_logic Hom Instance List Option Pattern QCheck Result Schema Subst Term Test_util Tgd
