test/test_extended_acyclicity.ml: Alcotest Chase Classify Critical Decide Engine Families Instance Joint Linear Mfa QCheck Random_tgds Restricted Test_util Variant Verdict Weak
