test/test_report.ml: Alcotest Chase Engine Families Fmt QCheck Random_tgds Report String Test_util Verdict
