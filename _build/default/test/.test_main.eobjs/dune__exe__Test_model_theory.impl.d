test/test_model_theory.ml: Alcotest Chase Critical Engine Hom Instance List Option QCheck Random_tgds Test_util Variant
