(** [chase-lint] — static diagnostics for rule sets.

    Reads one or more program files (rules, EGDs and facts may mix),
    runs the Σ-lint batteries and prints the findings with their
    machine-checkable witnesses ([--format json]) or as one human line
    per diagnostic.

    The default battery is purely static: schema/arity consistency
    (E001), guardedness (W010), subsumed rules (I031), write-only
    existentials (I032) and — when the file carries a database —
    unreachable predicates (I030) and dead rules (I033).  [--explain
    VARIANT] (repeatable) additionally runs the termination front door
    for that chase variant and attaches the causal witness of any
    divergence verdict (W020 on simple linear sets, W021 otherwise).
    [--analyze] runs the Σ-flow dataflow battery: the position-dataflow
    summary (strata, affected positions, may-trigger edges) plus the
    super-weak-acyclicity (I034) and stratification (I035) verdicts.

    Exit status: 2 when any file has errors, 1 when any has warnings
    (infos never gate), 0 otherwise.  Unreadable or unparsable input
    exits 2. *)

open Cmdliner
open Chase

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

let variant_conv =
  let parse s =
    match Variant.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Fmt.str "unknown chase variant %S" s))
  in
  Arg.conv (parse, Variant.pp)

let format_conv =
  let parse = function
    | "human" -> Ok Driver.Human
    | "json" -> Ok Driver.Json_format
    | s -> Error (`Msg (Fmt.str "unknown format %S (human or json)" s))
  in
  let print fm = function
    | Driver.Human -> Fmt.string fm "human"
    | Driver.Json_format -> Fmt.string fm "json"
  in
  Arg.conv (parse, print)

(* The lint run lives in {!Chase.Driver.lint_one}, shared byte-for-byte
   with the service daemon. *)
let lint_file ~format ~explain ~analyze ~standard ~budget file =
  match read_file file with
  | Error msg ->
    Fmt.epr "error: cannot read input: %s@." msg;
    2
  | Ok src ->
    let o = Driver.lint_opts ~format ~explain ~analyze ~budget ~standard () in
    Driver.lint_one o ~file ~src ~out:Format.std_formatter
      ~err:Format.err_formatter

let run files format explain analyze budget standard naive =
  if naive then Hom.set_matcher Hom.Naive;
  List.fold_left
    (fun acc file ->
      max acc (lint_file ~format ~explain ~analyze ~standard ~budget file))
    0 files

let files_arg =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE"
       ~doc:"Program files (rules, EGDs and facts may mix).")

let format_arg =
  Arg.(value & opt format_conv Human
       & info [ "format" ] ~docv:"FORMAT"
           ~doc:"Output format: human (one line per diagnostic) or json \
                 (one object per file, witnesses included).")

let explain_arg =
  Arg.(value & opt_all variant_conv []
       & info [ "e"; "explain" ] ~docv:"VARIANT"
           ~doc:"Also run the termination front door for this chase \
                 variant (oblivious, semi-oblivious or restricted; \
                 repeatable) and attach the causal witness of any \
                 divergence verdict.")

let analyze_arg =
  Arg.(value & flag
       & info [ "a"; "analyze" ]
           ~doc:"Also run the \xCE\xA3-flow dataflow battery: print the \
                 position-dataflow summary (strata, affected positions, \
                 may-trigger edges) and the super-weak-acyclicity and \
                 stratification verdicts with their witnesses (I034, \
                 I035).")

let budget_arg =
  Arg.(value & opt int Guarded.default_budget
       & info [ "b"; "budget" ] ~docv:"N"
           ~doc:"Trigger budget for the budgeted explain procedures.")

let standard_arg =
  Arg.(value & opt bool true
       & info [ "standard" ] ~docv:"BOOL"
           ~doc:"Explain over standard databases (constants 0 and 1 \
                 available).")

let naive_arg =
  Arg.(value & flag
       & info [ "naive" ]
           ~doc:"Use the naive left-to-right body matcher for the explain \
                 battery.  Equivalent to setting CHASE_NAIVE=1.")

let cmd =
  let doc = "static diagnostics for TGD rule sets, with witnesses" in
  Cmd.v
    (Cmd.info "chase-lint" ~doc)
    Cmdliner.Term.(
      const run $ files_arg $ format_arg $ explain_arg $ analyze_arg
      $ budget_arg $ standard_arg $ naive_arg)

let () = exit (Cmd.eval' cmd)
