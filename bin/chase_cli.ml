(** [chase] — run the chase on a program file.

    The input file mixes rules and facts (see {!Chase.Parser}); the tool
    runs the selected chase variant and prints the resulting instance and
    run statistics.  With [--critical] the input database is replaced by
    the critical instance of the rules.

    The run is resource-governed: [--budget] caps trigger applications,
    [--max-atoms] caps the instance size (independently of the budget),
    and [--timeout] sets a wall-clock deadline.  A breached limit exits
    with code 2 after printing the partial instance and a structured
    exhaustion reason (which limit, the dominant rule, the recent
    null-growth rate) on stderr; [--progress] streams periodic watchdog
    snapshots on stderr while the chase runs.

    The run is also crash-safe on request: [--journal FILE] appends one
    checksummed record per trigger application to a write-ahead journal
    (fsync cadence [--journal-sync]), with an atomic snapshot of the full
    history every [--snapshot-every] records at [FILE.snap].  After a
    kill, crash or breached limit, [--resume FILE] restores the run from
    the latest valid snapshot plus the journal tail — truncating a torn
    tail rather than failing — revalidates it, and continues the chase
    (and the journal) exactly where it stopped.

    The run is observable on request: [--trace FILE] writes a Chrome
    trace-event file of the run's spans (load it in Perfetto or
    about:tracing), [--metrics FILE] writes JSONL metric events and a
    final summary per counter/gauge/histogram, and [--profile] prints a
    per-rule hot-spot table (time, firings, nulls, probe counts) after
    the run.

    Every run preflights the schema: an arity clash is reported as the
    [E001] diagnostic (exit 2) instead of surfacing as an exception from
    the engine's indexes.  [--lint] runs the full static battery of
    [chase-lint] first. *)

open Cmdliner
open Chase

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

let variant_conv =
  let parse s =
    match Variant.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Fmt.str "unknown chase variant %S" s))
  in
  Arg.conv (parse, Variant.pp)

(* The whole run lives in {!Chase.Driver.chase}, shared byte-for-byte
   with the service daemon; this executable only parses argv and reads
   the file. *)
let run file variant budget max_atoms timeout progress critical standard quiet
    naive no_prune domains journal snapshot_every journal_sync resume lint
    trace metrics flight profile =
  if naive then Hom.set_matcher Hom.Naive;
  (match flight with Some _ as path -> Flight.configure ~path | None -> ());
  if no_prune then Relevance.force_disable true;
  Option.iter Parallel.set_domains domains;
  match read_file file with
  | Error msg ->
    Fmt.epr "error: cannot read input: %s@." msg;
    1
  | Ok src ->
    let o =
      Driver.chase_opts ~variant ~budget ~max_atoms ?timeout ~progress
        ~critical ~standard ~quiet ?journal ~snapshot_every ~journal_sync
        ?resume ~lint ?trace ?metrics ~profile ()
    in
    Driver.chase o ~file ~src ~out:Format.std_formatter
      ~err:Format.err_formatter

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
       ~doc:"Program file with rules (body -> head.) and facts (p(a,b).)")

let variant_arg =
  Arg.(value & opt variant_conv Variant.Oblivious
       & info [ "v"; "variant" ] ~docv:"VARIANT"
           ~doc:"Chase variant: oblivious, semi-oblivious or restricted.")

let budget_arg =
  Arg.(value & opt int 100_000
       & info [ "b"; "budget" ] ~docv:"N"
           ~doc:"Maximum number of trigger applications.")

let max_atoms_arg =
  Arg.(value & opt int 400_000
       & info [ "max-atoms" ] ~docv:"N"
           ~doc:"Maximum number of facts in the instance (independent of \
                 the trigger budget).")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Wall-clock deadline for the run; on expiry the partial \
                 instance is printed and the exit code is 2.")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Stream periodic watchdog snapshots (throughput, instance \
                 size, queue length, null-growth rate) on stderr.")

let critical_arg =
  Arg.(value & flag
       & info [ "critical" ]
           ~doc:"Chase the critical instance of the rules instead of the \
                 facts in the file.")

let standard_arg =
  Arg.(value & flag
       & info [ "standard" ]
           ~doc:"Use the standard-database constants {*, 0, 1} for \
                 --critical.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print run statistics.")

let naive_arg =
  Arg.(value & flag
       & info [ "naive" ]
           ~doc:"Use the naive left-to-right body matcher (the reference \
                 semantics) instead of the join-planned one.  Equivalent \
                 to setting CHASE_NAIVE=1.")

let no_prune_arg =
  Arg.(value & flag
       & info [ "no-prune" ]
           ~doc:"Disable the static trigger-relevance index: sweep every \
                 rule on every added fact, as the engine did before \
                 pruning.  Bit-identical to the pruned run (the index \
                 only skips provably empty matches).  Equivalent to \
                 setting CHASE_NO_PRUNE=1.")

let domains_conv =
  let parse s =
    match Parallel.parse_domains s with
    | Ok d -> Ok d
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Fmt.int)

let domains_arg =
  Arg.(value & opt (some domains_conv) None
       & info [ "domains" ] ~docv:"N"
           ~doc:"Fan trigger discovery across $(docv) domains (OCaml \
                 multicore).  The chase sequence, printed instance and \
                 journal bytes are bit-identical to a single-domain run; \
                 only wall-clock changes.  Equivalent to setting \
                 CHASE_DOMAINS=$(docv); default 1.")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Append a write-ahead journal of every trigger application \
                 to $(docv) (one checksummed record each), enabling \
                 $(b,--resume) after a crash or kill.  Snapshots go to \
                 $(docv).snap.")

let snapshot_every_arg =
  Arg.(value & opt int 512
       & info [ "snapshot-every" ] ~docv:"N"
           ~doc:"Publish an atomic snapshot of the journaled state every \
                 $(docv) records (0 disables snapshots).  Only meaningful \
                 with $(b,--journal) or $(b,--resume).")

let journal_sync_arg =
  Arg.(value & opt int 64
       & info [ "journal-sync" ] ~docv:"N"
           ~doc:"fsync the journal every $(docv) records (0: only at \
                 close; every record is still flushed to the OS).")

let resume_arg =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"FILE"
           ~doc:"Resume an interrupted run from journal $(docv) (and \
                 $(docv).snap when present): restore the latest valid \
                 state, truncate any torn tail, revalidate the restored \
                 provenance, and continue the chase and the journal where \
                 they stopped.  The program file must be the one the \
                 journal was written for.")

let lint_arg =
  Arg.(value & flag
       & info [ "lint" ]
           ~doc:"Run the static diagnostics battery (see chase-lint) \
                 before chasing; diagnostics go to stderr and errors \
                 abort with exit status 2.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event file of the run's spans \
                 (chase, seed, per-rule trigger applications, matching) \
                 to $(docv); load it in Perfetto or about:tracing.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write metric events and final counter / gauge / \
                 histogram summaries as JSON lines to $(docv) (first \
                 line is a schema header).")

let flight_arg =
  Arg.(value & opt (some string) None
       & info [ "flight" ] ~docv:"FILE"
           ~doc:"Flight recorder: on a breached limit, dump the \
                 in-memory ring of the run's most recent events \
                 (spans, watchdog ticks) to $(docv) as JSONL.")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Print a per-rule hot-spot table after the run: time, \
                 firings, nulls created and candidate facts probed per \
                 rule.")

let cmd =
  let doc = "run the chase procedure on a rule set and database" in
  Cmd.v
    (Cmd.info "chase" ~doc)
    Cmdliner.Term.(
      const run $ file_arg $ variant_arg $ budget_arg $ max_atoms_arg
      $ timeout_arg $ progress_arg $ critical_arg $ standard_arg $ quiet_arg
      $ naive_arg $ no_prune_arg $ domains_arg $ journal_arg $ snapshot_every_arg
      $ journal_sync_arg $ resume_arg $ lint_arg $ trace_arg $ metrics_arg
      $ flight_arg $ profile_arg)

let () = exit (Cmd.eval' cmd)
