(** [chase] — run the chase on a program file.

    The input file mixes rules and facts (see {!Chase.Parser}); the tool
    runs the selected chase variant and prints the resulting instance and
    run statistics.  With [--critical] the input database is replaced by
    the critical instance of the rules.

    The run is resource-governed: [--budget] caps trigger applications,
    [--max-atoms] caps the instance size (independently of the budget),
    and [--timeout] sets a wall-clock deadline.  A breached limit exits
    with code 2 after printing the partial instance and a structured
    exhaustion reason (which limit, the dominant rule, the recent
    null-growth rate) on stderr; [--progress] streams periodic watchdog
    snapshots on stderr while the chase runs. *)

open Cmdliner
open Chase

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let variant_conv =
  let parse s =
    match Variant.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Fmt.str "unknown chase variant %S" s))
  in
  Arg.conv (parse, Variant.pp)

let run file variant budget max_atoms timeout progress critical standard quiet =
  match Parser.parse_program (read_file file) with
  | Error msg ->
    Fmt.epr "parse error: %s@." msg;
    1
  | Ok (rules, facts) ->
    let db =
      if critical then Instance.to_list (Critical.of_rules ~standard rules)
      else facts
    in
    if db = [] then begin
      Fmt.epr "no database: give facts in the file or pass --critical@.";
      1
    end
    else begin
      let limits =
        Limits.make ~max_triggers:budget ~max_atoms ?timeout ()
      in
      let config = { Engine.variant; limits } in
      let watchdog =
        if progress then
          Some
            (Watchdog.create ~every:1024 ~min_interval:0.25 (fun s ->
                 Fmt.epr "%a@." Watchdog.pp_snapshot s))
        else None
      in
      let result = Engine.run ~config ?watchdog rules db in
      if not quiet then
        List.iter
          (fun a -> Fmt.pr "%a.@." Atom.pp a)
          (Instance.to_sorted_list result.Engine.instance);
      Fmt.pr "%a@." Engine.pp_result result;
      match result.Engine.status with
      | Engine.Terminated -> 0
      | Engine.Exhausted reason ->
        Fmt.epr "%a@." Limits.Exhaustion.pp reason;
        2
    end

let file_arg =
  Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"FILE"
       ~doc:"Program file with rules (body -> head.) and facts (p(a,b).)")

let variant_arg =
  Arg.(value & opt variant_conv Variant.Oblivious
       & info [ "v"; "variant" ] ~docv:"VARIANT"
           ~doc:"Chase variant: oblivious, semi-oblivious or restricted.")

let budget_arg =
  Arg.(value & opt int 100_000
       & info [ "b"; "budget" ] ~docv:"N"
           ~doc:"Maximum number of trigger applications.")

let max_atoms_arg =
  Arg.(value & opt int 400_000
       & info [ "max-atoms" ] ~docv:"N"
           ~doc:"Maximum number of facts in the instance (independent of \
                 the trigger budget).")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Wall-clock deadline for the run; on expiry the partial \
                 instance is printed and the exit code is 2.")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Stream periodic watchdog snapshots (throughput, instance \
                 size, queue length, null-growth rate) on stderr.")

let critical_arg =
  Arg.(value & flag
       & info [ "critical" ]
           ~doc:"Chase the critical instance of the rules instead of the \
                 facts in the file.")

let standard_arg =
  Arg.(value & flag
       & info [ "standard" ]
           ~doc:"Use the standard-database constants {*, 0, 1} for \
                 --critical.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print run statistics.")

let cmd =
  let doc = "run the chase procedure on a rule set and database" in
  Cmd.v
    (Cmd.info "chase" ~doc)
    Cmdliner.Term.(
      const run $ file_arg $ variant_arg $ budget_arg $ max_atoms_arg
      $ timeout_arg $ progress_arg $ critical_arg $ standard_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
