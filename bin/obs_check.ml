(** [obs-check] — validate observability output files.

    A small CI checker for the files the CLIs emit: [--trace FILE]
    verifies a Chrome trace-event file (well-formed JSON, a non-empty
    top-level array, every event carries name/ph/ts, begin/end events
    balance as a stack), [--metrics FILE] verifies a metrics JSONL file
    (a [chase-metrics/1] schema header first, every line parses, at
    least one summary line follows).

    Distributed-tracing additions: [--tracectx FILE] verifies a merged
    Chrome trace (as produced by [chasec trace-merge]) as a {e trace
    tree} — every trace id has exactly one root span, every child's
    parent exists in the same trace, and no child starts before its
    root (within clock slack; spans shipped asynchronously to the
    standby may {e end} after the root ends, which is legal).
    [--telemetry FILE] verifies a [chase-telemetry/1] JSON snapshot;
    [--prom FILE] verifies Prometheus text-exposition syntax.

    Exit 0 when every checked file is valid, 1 otherwise. *)

module Jsonv = Chase.Jsonv

let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

(* One trace event: name/ph/ts present and of the right shape; returns
   [ph] so the caller can stack-balance B against E. *)
let check_event i (ev : Jsonv.t) =
  match ev with
  | Jsonv.Obj _ -> (
    let str k = Option.bind (Jsonv.member k ev) Jsonv.to_string_opt in
    let num k = Option.bind (Jsonv.member k ev) Jsonv.to_float_opt in
    match (str "name", str "ph", num "ts") with
    | Some name, Some ph, Some _ -> Ok (name, ph)
    | None, _, _ -> fail "event %d: missing or non-string \"name\"" i
    | _, None, _ -> fail "event %d: missing or non-string \"ph\"" i
    | _, _, None -> fail "event %d: missing or non-numeric \"ts\"" i)
  | _ -> fail "event %d: not a JSON object" i

let check_trace path =
  match read_file path with
  | Error msg -> fail "%s: cannot read: %s" path msg
  | Ok src -> (
    match Jsonv.of_string src with
    | Error msg -> fail "%s: invalid JSON: %s" path msg
    | Ok (Jsonv.List []) -> fail "%s: empty trace (no events)" path
    | Ok (Jsonv.List events) -> (
      let rec walk i stack = function
        | [] -> (
          match stack with
          | [] -> Ok (List.length events)
          | name :: _ -> fail "%s: unclosed span %S at end of trace" path name)
        | ev :: rest -> (
          match check_event i ev with
          | Error msg -> fail "%s: %s" path msg
          | Ok (name, "B") -> walk (i + 1) (name :: stack) rest
          | Ok (name, "E") -> (
            match stack with
            | top :: below when String.equal top name ->
              walk (i + 1) below rest
            | top :: _ ->
              fail "%s: event %d: end of %S but %S is open" path i name top
            | [] -> fail "%s: event %d: end of %S with no open span" path i
                      name)
          | Ok (_, ("i" | "C" | "X" | "M")) -> walk (i + 1) stack rest
          | Ok (_, ph) -> fail "%s: event %d: unknown phase %S" path i ph)
      in
      match walk 0 [] events with
      | Error _ as e -> e
      | Ok n ->
        Printf.printf "trace OK: %s (%d events, spans balanced)\n" path n;
        Ok ())
    | Ok _ -> fail "%s: top level is not a JSON array" path)

let check_metrics path =
  match read_file path with
  | Error msg -> fail "%s: cannot read: %s" path msg
  | Ok src -> (
    let lines =
      String.split_on_char '\n' src
      |> List.filter (fun l -> String.trim l <> "")
    in
    match lines with
    | [] -> fail "%s: empty metrics file" path
    | header :: rest -> (
      let schema_ok =
        match Jsonv.of_string header with
        | Ok j -> (
          let str k = Option.bind (Jsonv.member k j) Jsonv.to_string_opt in
          match (str "type", str "schema") with
          | Some "schema", Some "chase-metrics/1" -> true
          | _ -> false)
        | Error _ -> false
      in
      if not schema_ok then
        fail "%s: first line is not the chase-metrics/1 schema header" path
      else if rest = [] then
        fail "%s: no metric lines after the schema header" path
      else
        let rec parse i = function
          | [] -> Ok ()
          | l :: rest -> (
            match Jsonv.of_string l with
            | Error msg -> fail "%s: line %d: invalid JSON: %s" path i msg
            | Ok j -> (
              match Option.bind (Jsonv.member "type" j) Jsonv.to_string_opt with
              | Some _ -> parse (i + 1) rest
              | None ->
                fail "%s: line %d: missing or non-string \"type\"" path i))
        in
        match parse 2 rest with
        | Error _ as e -> e
        | Ok () ->
          Printf.printf "metrics OK: %s (%d lines)\n" path
            (List.length lines);
          Ok ()))

(* --- merged-trace context validation ------------------------------- *)

(* One span as re-read from a merged ([chasec trace-merge]) file. *)
type ctx_span = {
  s_name : string;
  s_trace : string;
  s_span : string;
  s_parent : string option;
  s_ts : float;
}

(* Same-host shards share a clock, but two processes can stamp within
   a few ms of each other in either order; allow that much slack when
   asserting that children start inside their root. *)
let clock_slack_us = 50_000.

let check_tracectx path =
  match read_file path with
  | Error msg -> fail "%s: cannot read: %s" path msg
  | Ok src -> (
    match Jsonv.of_string src with
    | Error msg -> fail "%s: invalid JSON: %s" path msg
    | Ok (Jsonv.List events) -> (
      let str k ev = Option.bind (Jsonv.member k ev) Jsonv.to_string_opt in
      let num k ev = Option.bind (Jsonv.member k ev) Jsonv.to_float_opt in
      (* collect ph:"X" spans; metadata events carry no trace context *)
      let rec collect i acc = function
        | [] -> Ok (List.rev acc)
        | ev :: rest -> (
          match str "ph" ev with
          | Some "M" -> collect (i + 1) acc rest
          | Some "X" -> (
            let args = Option.value ~default:Jsonv.Null (Jsonv.member "args" ev) in
            match
              (str "name" ev, str "trace" args, str "span" args, num "ts" ev)
            with
            | Some s_name, Some s_trace, Some s_span, Some s_ts ->
              collect (i + 1)
                ({ s_name; s_trace; s_span; s_parent = str "parent" args; s_ts }
                :: acc)
                rest
            | _ ->
              fail "%s: event %d: X event lacks name/ts or args.trace/span"
                path i)
          | Some ph -> fail "%s: event %d: unexpected phase %S" path i ph
          | None -> fail "%s: event %d: missing \"ph\"" path i)
      in
      match collect 0 [] events with
      | Error _ as e -> e
      | Ok [] -> fail "%s: no spans" path
      | Ok spans -> (
        (* group by trace id *)
        let traces = Hashtbl.create 7 in
        List.iter
          (fun s ->
            Hashtbl.replace traces s.s_trace
              (s :: Option.value ~default:[] (Hashtbl.find_opt traces s.s_trace)))
          spans;
        let check_one trace spans =
          let ids = Hashtbl.create 16 in
          List.iter (fun s -> Hashtbl.replace ids s.s_span s) spans;
          match List.filter (fun s -> s.s_parent = None) spans with
          | [] -> fail "%s: trace %s: no root span" path trace
          | _ :: _ :: _ as roots ->
            fail "%s: trace %s: %d root spans (want exactly one)" path trace
              (List.length roots)
          | [ root ] ->
            List.fold_left
              (fun acc s ->
                match (acc, s.s_parent) with
                | (Error _ as e), _ -> e
                | Ok (), None -> Ok ()
                | Ok (), Some p ->
                  if not (Hashtbl.mem ids p) then
                    fail "%s: trace %s: span %S (%s) has unknown parent %s"
                      path trace s.s_name s.s_span p
                  else if s.s_ts < root.s_ts -. clock_slack_us then
                    fail
                      "%s: trace %s: span %S starts %.0fus before its root"
                      path trace s.s_name (root.s_ts -. s.s_ts)
                  else Ok ())
              (Ok ()) spans
        in
        match
          Hashtbl.fold
            (fun trace spans acc ->
              match acc with
              | Error _ -> acc
              | Ok n -> (
                match check_one trace spans with
                | Ok () -> Ok (n + 1)
                | Error _ as e -> e))
            traces (Ok 0)
        with
        | Error _ as e -> e
        | Ok n ->
          Printf.printf "tracectx OK: %s (%d spans, %d traces, parents \
                         resolved)\n"
            path (List.length spans) n;
          Ok ()))
    | Ok _ -> fail "%s: top level is not a JSON array" path)

(* --- telemetry snapshot (JSON) -------------------------------------- *)

let check_telemetry path =
  match read_file path with
  | Error msg -> fail "%s: cannot read: %s" path msg
  | Ok src -> (
    match Jsonv.of_string (String.trim src) with
    | Error msg -> fail "%s: invalid JSON: %s" path msg
    | Ok v -> (
      let str k = Option.bind (Jsonv.member k v) Jsonv.to_string_opt in
      let num k = Option.bind (Jsonv.member k v) Jsonv.to_float_opt in
      match (str "schema", str "build", num "uptime_s") with
      | Some "chase-telemetry/1", Some _, Some up when up >= 0. -> (
        let arr k =
          match Jsonv.member k v with
          | Some (Jsonv.List l) -> Ok l
          | _ -> fail "%s: missing array %S" path k
        in
        let named kind j =
          match Option.bind (Jsonv.member "name" j) Jsonv.to_string_opt with
          | Some _ -> (
            match Option.bind (Jsonv.member "value" j) Jsonv.to_float_opt with
            | Some _ -> Ok ()
            | None when kind = "histograms" -> (
              match Option.bind (Jsonv.member "p99" j) Jsonv.to_float_opt with
              | Some _ -> Ok ()
              | None -> fail "%s: a histogram lacks p99" path)
            | None -> fail "%s: a %s entry lacks a numeric value" path kind)
          | None -> fail "%s: a %s entry lacks a name" path kind
        in
        let check_arr kind =
          match arr kind with
          | Error _ as e -> e
          | Ok l ->
            List.fold_left
              (fun acc j -> match acc with Error _ -> acc | Ok () -> named kind j)
              (Ok ()) l
        in
        match
          List.fold_left
            (fun acc k -> match acc with Error _ -> acc | Ok () -> check_arr k)
            (Ok ())
            [ "counters"; "gauges"; "histograms" ]
        with
        | Error _ as e -> e
        | Ok () ->
          Printf.printf "telemetry OK: %s\n" path;
          Ok ())
      | Some "chase-telemetry/1", Some _, _ ->
        fail "%s: missing or negative uptime_s" path
      | Some "chase-telemetry/1", None, _ -> fail "%s: missing build id" path
      | _ -> fail "%s: not a chase-telemetry/1 snapshot" path))

(* --- Prometheus text exposition ------------------------------------- *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let is_name s =
  s <> ""
  && (not (s.[0] >= '0' && s.[0] <= '9'))
  && String.for_all is_name_char s

(* [name] or [name{k="v",...}] — quotes must balance and close the
   braces; the value after the space must parse as a float. *)
let check_sample path i line =
  let n = String.length line in
  let name_end =
    let rec go j = if j < n && is_name_char line.[j] then go (j + 1) else j in
    go 0
  in
  if name_end = 0 then fail "%s: line %d: no metric name" path i
  else begin
    let rest_start =
      if name_end < n && line.[name_end] = '{' then begin
        (* scan the label block respecting quoted strings *)
        let rec scan j in_q =
          if j >= n then None
          else if in_q then
            if line.[j] = '\\' then scan (j + 2) true
            else scan (j + 1) (line.[j] <> '"')
          else if line.[j] = '"' then scan (j + 1) true
          else if line.[j] = '}' then Some (j + 1)
          else scan (j + 1) false
        in
        scan (name_end + 1) false
      end
      else Some name_end
    in
    match rest_start with
    | None -> fail "%s: line %d: unterminated label block" path i
    | Some j ->
      let value = String.trim (String.sub line j (n - j)) in
      if value = "" then fail "%s: line %d: no sample value" path i
      else if
        float_of_string_opt value = None
        && not (List.mem value [ "NaN"; "+Inf"; "-Inf" ])
      then fail "%s: line %d: bad sample value %S" path i value
      else Ok ()
  end

let check_prom path =
  match read_file path with
  | Error msg -> fail "%s: cannot read: %s" path msg
  | Ok src -> (
    let lines = String.split_on_char '\n' src in
    let rec walk i samples typed = function
      | [] ->
        if samples = 0 then fail "%s: no samples" path
        else begin
          Printf.printf "prom OK: %s (%d samples, %d types)\n" path samples
            typed;
          Ok ()
        end
      | line :: rest ->
        if String.trim line = "" then walk (i + 1) samples typed rest
        else if String.length line >= 1 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: kind :: []
            when is_name name
                 && List.mem kind
                      [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ]
            ->
            walk (i + 1) samples (typed + 1) rest
          | "#" :: "HELP" :: name :: _ when is_name name ->
            walk (i + 1) samples typed rest
          | _ -> fail "%s: line %d: malformed comment %S" path i line
        end
        else (
          match check_sample path i line with
          | Ok () -> walk (i + 1) (samples + 1) typed rest
          | Error _ as e -> e)
    in
    walk 1 0 0 lines)

let usage () =
  prerr_endline
    "usage: obs-check [--trace FILE] [--metrics FILE] [--tracectx FILE]\n\
    \                 [--telemetry FILE] [--prom FILE]\n\
     Validate observability output files (Chrome trace / metrics JSONL /\n\
     merged distributed trace / telemetry snapshot / Prometheus text).";
  exit 1

let () =
  let rec parse checks = function
    | [] -> List.rev checks
    | "--trace" :: file :: rest -> parse (`Trace file :: checks) rest
    | "--metrics" :: file :: rest -> parse (`Metrics file :: checks) rest
    | "--tracectx" :: file :: rest -> parse (`Tracectx file :: checks) rest
    | "--telemetry" :: file :: rest -> parse (`Telemetry file :: checks) rest
    | "--prom" :: file :: rest -> parse (`Prom file :: checks) rest
    | _ -> usage ()
  in
  let checks = parse [] (List.tl (Array.to_list Sys.argv)) in
  if checks = [] then usage ();
  let failed = ref false in
  List.iter
    (fun check ->
      let r =
        match check with
        | `Trace f -> check_trace f
        | `Metrics f -> check_metrics f
        | `Tracectx f -> check_tracectx f
        | `Telemetry f -> check_telemetry f
        | `Prom f -> check_prom f
      in
      match r with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "obs-check: %s\n" msg;
        failed := true)
    checks;
  exit (if !failed then 1 else 0)
