(** [obs-check] — validate observability output files.

    A small CI checker for the files the CLIs emit: [--trace FILE]
    verifies a Chrome trace-event file (well-formed JSON, a non-empty
    top-level array, every event carries name/ph/ts, begin/end events
    balance as a stack), [--metrics FILE] verifies a metrics JSONL file
    (a [chase-metrics/1] schema header first, every line parses, at
    least one summary line follows).  Exit 0 when every checked file is
    valid, 1 otherwise. *)

module Jsonv = Chase.Jsonv

let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

(* One trace event: name/ph/ts present and of the right shape; returns
   [ph] so the caller can stack-balance B against E. *)
let check_event i (ev : Jsonv.t) =
  match ev with
  | Jsonv.Obj _ -> (
    let str k = Option.bind (Jsonv.member k ev) Jsonv.to_string_opt in
    let num k = Option.bind (Jsonv.member k ev) Jsonv.to_float_opt in
    match (str "name", str "ph", num "ts") with
    | Some name, Some ph, Some _ -> Ok (name, ph)
    | None, _, _ -> fail "event %d: missing or non-string \"name\"" i
    | _, None, _ -> fail "event %d: missing or non-string \"ph\"" i
    | _, _, None -> fail "event %d: missing or non-numeric \"ts\"" i)
  | _ -> fail "event %d: not a JSON object" i

let check_trace path =
  match read_file path with
  | Error msg -> fail "%s: cannot read: %s" path msg
  | Ok src -> (
    match Jsonv.of_string src with
    | Error msg -> fail "%s: invalid JSON: %s" path msg
    | Ok (Jsonv.List []) -> fail "%s: empty trace (no events)" path
    | Ok (Jsonv.List events) -> (
      let rec walk i stack = function
        | [] -> (
          match stack with
          | [] -> Ok (List.length events)
          | name :: _ -> fail "%s: unclosed span %S at end of trace" path name)
        | ev :: rest -> (
          match check_event i ev with
          | Error msg -> fail "%s: %s" path msg
          | Ok (name, "B") -> walk (i + 1) (name :: stack) rest
          | Ok (name, "E") -> (
            match stack with
            | top :: below when String.equal top name ->
              walk (i + 1) below rest
            | top :: _ ->
              fail "%s: event %d: end of %S but %S is open" path i name top
            | [] -> fail "%s: event %d: end of %S with no open span" path i
                      name)
          | Ok (_, ("i" | "C")) -> walk (i + 1) stack rest
          | Ok (_, ph) -> fail "%s: event %d: unknown phase %S" path i ph)
      in
      match walk 0 [] events with
      | Error _ as e -> e
      | Ok n ->
        Printf.printf "trace OK: %s (%d events, spans balanced)\n" path n;
        Ok ())
    | Ok _ -> fail "%s: top level is not a JSON array" path)

let check_metrics path =
  match read_file path with
  | Error msg -> fail "%s: cannot read: %s" path msg
  | Ok src -> (
    let lines =
      String.split_on_char '\n' src
      |> List.filter (fun l -> String.trim l <> "")
    in
    match lines with
    | [] -> fail "%s: empty metrics file" path
    | header :: rest -> (
      let schema_ok =
        match Jsonv.of_string header with
        | Ok j -> (
          let str k = Option.bind (Jsonv.member k j) Jsonv.to_string_opt in
          match (str "type", str "schema") with
          | Some "schema", Some "chase-metrics/1" -> true
          | _ -> false)
        | Error _ -> false
      in
      if not schema_ok then
        fail "%s: first line is not the chase-metrics/1 schema header" path
      else if rest = [] then
        fail "%s: no metric lines after the schema header" path
      else
        let rec parse i = function
          | [] -> Ok ()
          | l :: rest -> (
            match Jsonv.of_string l with
            | Error msg -> fail "%s: line %d: invalid JSON: %s" path i msg
            | Ok j -> (
              match Option.bind (Jsonv.member "type" j) Jsonv.to_string_opt with
              | Some _ -> parse (i + 1) rest
              | None ->
                fail "%s: line %d: missing or non-string \"type\"" path i))
        in
        match parse 2 rest with
        | Error _ as e -> e
        | Ok () ->
          Printf.printf "metrics OK: %s (%d lines)\n" path
            (List.length lines);
          Ok ()))

let usage () =
  prerr_endline
    "usage: obs-check [--trace FILE] [--metrics FILE]\n\
     Validate observability output files (Chrome trace / metrics JSONL).";
  exit 1

let () =
  let rec parse checks = function
    | [] -> List.rev checks
    | "--trace" :: file :: rest -> parse (`Trace file :: checks) rest
    | "--metrics" :: file :: rest -> parse (`Metrics file :: checks) rest
    | _ -> usage ()
  in
  let checks = parse [] (List.tl (Array.to_list Sys.argv)) in
  if checks = [] then usage ();
  let failed = ref false in
  List.iter
    (fun check ->
      let r =
        match check with
        | `Trace f -> check_trace f
        | `Metrics f -> check_metrics f
      in
      match r with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "obs-check: %s\n" msg;
        failed := true)
    checks;
  exit (if !failed then 1 else 0)
