(** [chased] — the chase daemon.

    Serves decide / chase / lint / query requests on a Unix-domain
    socket, speaking the length-prefixed JSON frame protocol of
    {!Chase.Proto} (see the README's "Running the daemon").  Requests
    from concurrent clients are admission-controlled (bounded queue;
    overload is answered with a structured [overloaded] response
    carrying [retry_after_s], never silently dropped), budgeted from a
    shared trigger-credit pool, deduplicated by idempotency key
    (single-flight + verdict cache), and — with [--spool DIR] —
    durable: an acknowledged [durable] chase survives any kill and is
    completed by boot recovery on the next start.

    SIGINT/SIGTERM stop gracefully: drain the queue, answer everything
    accepted, write final metric summaries.

    Replication (see the README's "Replication and failover"):
    [--ship-to SOCK] makes this daemon a primary that streams its
    durable state to the standby receiver listening on SOCK, blocking
    each durable acknowledgement for up to [--sync-timeout] until the
    standby confirms; [--standby-of SOCK] makes it a standby that
    binds SOCK, soaks up the primary's state, continuously re-certifies
    it, and serves control ops only until a [promote] request turns it
    into an ordinary primary via boot recovery.

    The [--chaos-*] flags arm deliberate service faults (accept-loop
    death, mid-response connection drops, slow chunked responses) for
    the crash-drill harness; they have no place in production. *)

open Cmdliner
open Chase

let pair_conv name =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> Ok (a, b)
      | _ -> Error (`Msg (Fmt.str "%s expects K:N, got %S" name s)))
    | _ -> Error (`Msg (Fmt.str "%s expects K:N, got %S" name s))
  in
  Arg.conv (parse, fun fm (a, b) -> Fmt.pf fm "%d:%d" a b)

let install_stop_signals stop =
  let stop_once = ref false in
  let graceful _ =
    if not !stop_once then begin
      stop_once := true;
      (* stop from a fresh thread: signal handlers must not block *)
      ignore (Thread.create stop ())
    end
  in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful)
   with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint (Sys.Signal_handle graceful)
  with Invalid_argument _ -> ()

let run socket workers queue_cap pool_total per_request_cap min_grant
    cache_capacity spool_dir default_timeout read_timeout metrics trace_shard
    flight domains ship_to sync_timeout standby_of chaos_kill_accept chaos_drop
    chaos_slow =
  Option.iter Parallel.set_domains domains;
  let faults =
    (match chaos_kill_accept with
    | Some n -> [ Faults.Kill_accept_after n ]
    | None -> [])
    @ List.map (fun (k, b) -> Faults.Drop_response_after (k, b)) chaos_drop
    @ List.map (fun (k, c) -> Faults.Slow_response (k, c)) chaos_slow
  in
  if Option.is_some ship_to && Option.is_some standby_of then begin
    Fmt.epr "chased: --ship-to and --standby-of are mutually exclusive@.";
    64 (* EX_USAGE *)
  end
  else if (Option.is_some ship_to || Option.is_some standby_of)
          && Option.is_none spool_dir then begin
    Fmt.epr "chased: replication ships the durable spool: --spool is \
             required with --ship-to / --standby-of@.";
    64
  end
  else
    match standby_of with
    | Some ship_socket -> (
      (* standby: the receiver owns the metrics file; the server this
         becomes on promotion runs without one (one file, one owner) *)
      let cfg =
        Server.config ~workers ~queue_cap ~pool_total ~per_request_cap
          ~min_grant ~cache_capacity ?spool_dir ~default_timeout
          ~read_timeout ?trace_shard ?flight ~faults socket
      in
      match Standby.start (Standby.config ?metrics ~server:cfg ~ship_socket ()) with
      | exception Unix.Unix_error (e, _, arg) ->
        Fmt.epr "chased: cannot listen on %s: %s %s@." socket
          (Unix.error_message e) arg;
        1
      | standby ->
        install_stop_signals (fun () -> Standby.stop standby);
        Fmt.epr "chased: standby on %s (ship frames on %s)@." socket
          ship_socket;
        Standby.wait standby;
        0)
    | None -> (
      (* the shipper shares the daemon's trace shard file: its sync
         spans interleave with the server's in the same JSONL *)
      let ship_shard =
        match ship_to with
        | Some _ ->
          Option.map (Tracectx.Shard.open_ ~proc:"shipper") trace_shard
        | None -> None
      in
      let shipper =
        Option.map
          (fun ship_socket ->
            Shipper.start ?shard:ship_shard
              (Shipper.config ~sync_timeout
                 ~spool_dir:(Option.get spool_dir) ~ship_socket ()))
          ship_to
      in
      let cfg =
        Server.config ~workers ~queue_cap ~pool_total ~per_request_cap
          ~min_grant ~cache_capacity ?spool_dir ~default_timeout
          ~read_timeout ?metrics ?trace_shard ?flight ~faults
          ?on_durable:(Option.map Shipper.on_durable shipper) socket
      in
      match Server.start cfg with
      | exception Unix.Unix_error (e, _, arg) ->
        Option.iter Shipper.stop shipper;
        Fmt.epr "chased: cannot listen on %s: %s %s@." socket
          (Unix.error_message e) arg;
        1
      | server ->
        install_stop_signals (fun () -> Server.stop server);
        (match ship_to with
        | Some s -> Fmt.epr "chased: listening on %s (shipping to %s)@." socket s
        | None -> Fmt.epr "chased: listening on %s@." socket);
        Server.wait server;
        Option.iter
          (fun sh ->
            (* drain what the standby has not confirmed, then let go *)
            ignore (Shipper.quiesce sh ~timeout:2.0);
            Shipper.stop sh)
          shipper;
        Option.iter Tracectx.Shard.close ship_shard;
        0)

let socket_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET"
       ~doc:"Unix-domain socket path to listen on.")

let workers_arg =
  Arg.(value & opt int 4
       & info [ "workers" ] ~docv:"N" ~doc:"Worker threads.")

let queue_cap_arg =
  Arg.(value & opt int 16
       & info [ "queue" ] ~docv:"N"
           ~doc:"Admission queue capacity; a full queue sheds with a \
                 structured overloaded response.")

let pool_total_arg =
  Arg.(value & opt int 400_000
       & info [ "pool" ] ~docv:"N"
           ~doc:"Total trigger credits shared by all concurrent runs.")

let per_request_cap_arg =
  Arg.(value & opt int 100_000
       & info [ "per-request" ] ~docv:"N"
           ~doc:"Largest budget grant for a single request.")

let min_grant_arg =
  Arg.(value & opt int 1_000
       & info [ "min-grant" ] ~docv:"N"
           ~doc:"Smallest grant worth running with; below it the worker \
                 waits for credits (backpressure).")

let cache_capacity_arg =
  Arg.(value & opt int 256
       & info [ "cache" ] ~docv:"N" ~doc:"Retained results (FIFO eviction).")

let spool_arg =
  Arg.(value & opt (some string) None
       & info [ "spool" ] ~docv:"DIR"
           ~doc:"Durable request spool: acknowledged durable requests \
                 survive kills and are completed by boot recovery.")

let default_timeout_arg =
  Arg.(value & opt float 30.
       & info [ "default-timeout" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline when the request carries none.")

let read_timeout_arg =
  Arg.(value & opt float 10.
       & info [ "read-timeout" ] ~docv:"SECONDS"
           ~doc:"Mid-frame stall bound per connection (slow-loris \
                 defence).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write JSONL metric events and final summaries to $(docv).")

let trace_shard_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-shard" ] ~docv:"FILE"
           ~doc:"Append this process's distributed-trace spans to \
                 $(docv) (JSONL); merge shards with `chasec \
                 trace-merge'.")

let flight_arg =
  Arg.(value & opt (some string) None
       & info [ "flight" ] ~docv:"FILE"
           ~doc:"Flight recorder: dump the in-memory ring of recent \
                 events to $(docv) on crash-recovery boots, stalls and \
                 sheds.")

let domains_conv =
  let parse s =
    match Parallel.parse_domains s with
    | Ok d -> Ok d
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Fmt.int)

let domains_arg =
  Arg.(value & opt (some domains_conv) None
       & info [ "domains" ] ~docv:"N"
           ~doc:"Fan each served run's trigger discovery across $(docv) \
                 domains (OCaml multicore); responses, journals and \
                 verdicts are bit-identical to single-domain serving.  \
                 Equivalent to setting CHASE_DOMAINS=$(docv); default 1.")

let ship_to_arg =
  Arg.(value & opt (some string) None
       & info [ "ship-to" ] ~docv:"SOCKET"
           ~doc:"Replicate: stream the durable spool to the standby \
                 receiver listening on $(docv) (requires --spool).")

let sync_timeout_arg =
  Arg.(value & opt float 0.25
       & info [ "sync-timeout" ] ~docv:"SECONDS"
           ~doc:"How long a durable acknowledgement waits for the \
                 standby's confirmation before degrading to \
                 asynchronous shipping; 0 never waits.")

let standby_of_arg =
  Arg.(value & opt (some string) None
       & info [ "standby-of" ] ~docv:"SOCKET"
           ~doc:"Run as a standby: bind $(docv) for the primary's ship \
                 frames, refuse work until promoted (requires --spool).")

let chaos_kill_accept_arg =
  Arg.(value & opt (some int) None
       & info [ "chaos-kill-accept" ] ~docv:"N"
           ~doc:"Chaos: the accept loop dies after the $(docv)-th \
                 connection.")

let chaos_drop_arg =
  Arg.(value & opt_all (pair_conv "--chaos-drop-response") []
       & info [ "chaos-drop-response" ] ~docv:"K:BYTES"
           ~doc:"Chaos: cut the $(i,K)-th response after $(i,BYTES) bytes \
                 and drop the connection (repeatable).")

let chaos_slow_arg =
  Arg.(value & opt_all (pair_conv "--chaos-slow-response") []
       & info [ "chaos-slow-response" ] ~docv:"K:CHUNK"
           ~doc:"Chaos: dribble the $(i,K)-th response out $(i,CHUNK) \
                 bytes at a time (repeatable).")

let cmd =
  let doc = "serve chase decide/chase/lint/query requests on a socket" in
  Cmd.v
    (Cmd.info "chased" ~doc)
    Cmdliner.Term.(
      const run $ socket_arg $ workers_arg $ queue_cap_arg $ pool_total_arg
      $ per_request_cap_arg $ min_grant_arg $ cache_capacity_arg $ spool_arg
      $ default_timeout_arg $ read_timeout_arg $ metrics_arg
      $ trace_shard_arg $ flight_arg $ domains_arg
      $ ship_to_arg $ sync_timeout_arg $ standby_of_arg
      $ chaos_kill_accept_arg $ chaos_drop_arg $ chaos_slow_arg)

let () = exit (Cmd.eval' cmd)
