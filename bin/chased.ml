(** [chased] — the chase daemon.

    Serves decide / chase / lint / query requests on a Unix-domain
    socket, speaking the length-prefixed JSON frame protocol of
    {!Chase.Proto} (see the README's "Running the daemon").  Requests
    from concurrent clients are admission-controlled (bounded queue;
    overload is answered with a structured [overloaded] response
    carrying [retry_after_s], never silently dropped), budgeted from a
    shared trigger-credit pool, deduplicated by idempotency key
    (single-flight + verdict cache), and — with [--spool DIR] —
    durable: an acknowledged [durable] chase survives any kill and is
    completed by boot recovery on the next start.

    SIGINT/SIGTERM stop gracefully: drain the queue, answer everything
    accepted, write final metric summaries.

    The [--chaos-*] flags arm deliberate service faults (accept-loop
    death, mid-response connection drops, slow chunked responses) for
    the crash-drill harness; they have no place in production. *)

open Cmdliner
open Chase

let pair_conv name =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> Ok (a, b)
      | _ -> Error (`Msg (Fmt.str "%s expects K:N, got %S" name s)))
    | _ -> Error (`Msg (Fmt.str "%s expects K:N, got %S" name s))
  in
  Arg.conv (parse, fun fm (a, b) -> Fmt.pf fm "%d:%d" a b)

let run socket workers queue_cap pool_total per_request_cap min_grant
    cache_capacity spool_dir default_timeout read_timeout metrics
    chaos_kill_accept chaos_drop chaos_slow =
  let faults =
    (match chaos_kill_accept with
    | Some n -> [ Faults.Kill_accept_after n ]
    | None -> [])
    @ List.map (fun (k, b) -> Faults.Drop_response_after (k, b)) chaos_drop
    @ List.map (fun (k, c) -> Faults.Slow_response (k, c)) chaos_slow
  in
  let cfg =
    Server.config ~workers ~queue_cap ~pool_total ~per_request_cap ~min_grant
      ~cache_capacity ?spool_dir ~default_timeout ~read_timeout ?metrics
      ~faults socket
  in
  match Server.start cfg with
  | exception Unix.Unix_error (e, _, arg) ->
    Fmt.epr "chased: cannot listen on %s: %s %s@." socket
      (Unix.error_message e) arg;
    1
  | server ->
    let stop_once = ref false in
    let graceful _ =
      if not !stop_once then begin
        stop_once := true;
        (* stop from a fresh thread: signal handlers must not block *)
        ignore (Thread.create (fun () -> Server.stop server) ())
      end
    in
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle graceful)
     with Invalid_argument _ -> ());
    Fmt.epr "chased: listening on %s@." socket;
    Server.wait server;
    0

let socket_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET"
       ~doc:"Unix-domain socket path to listen on.")

let workers_arg =
  Arg.(value & opt int 4
       & info [ "workers" ] ~docv:"N" ~doc:"Worker threads.")

let queue_cap_arg =
  Arg.(value & opt int 16
       & info [ "queue" ] ~docv:"N"
           ~doc:"Admission queue capacity; a full queue sheds with a \
                 structured overloaded response.")

let pool_total_arg =
  Arg.(value & opt int 400_000
       & info [ "pool" ] ~docv:"N"
           ~doc:"Total trigger credits shared by all concurrent runs.")

let per_request_cap_arg =
  Arg.(value & opt int 100_000
       & info [ "per-request" ] ~docv:"N"
           ~doc:"Largest budget grant for a single request.")

let min_grant_arg =
  Arg.(value & opt int 1_000
       & info [ "min-grant" ] ~docv:"N"
           ~doc:"Smallest grant worth running with; below it the worker \
                 waits for credits (backpressure).")

let cache_capacity_arg =
  Arg.(value & opt int 256
       & info [ "cache" ] ~docv:"N" ~doc:"Retained results (FIFO eviction).")

let spool_arg =
  Arg.(value & opt (some string) None
       & info [ "spool" ] ~docv:"DIR"
           ~doc:"Durable request spool: acknowledged durable requests \
                 survive kills and are completed by boot recovery.")

let default_timeout_arg =
  Arg.(value & opt float 30.
       & info [ "default-timeout" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline when the request carries none.")

let read_timeout_arg =
  Arg.(value & opt float 10.
       & info [ "read-timeout" ] ~docv:"SECONDS"
           ~doc:"Mid-frame stall bound per connection (slow-loris \
                 defence).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write JSONL metric events and final summaries to $(docv).")

let chaos_kill_accept_arg =
  Arg.(value & opt (some int) None
       & info [ "chaos-kill-accept" ] ~docv:"N"
           ~doc:"Chaos: the accept loop dies after the $(docv)-th \
                 connection.")

let chaos_drop_arg =
  Arg.(value & opt_all (pair_conv "--chaos-drop-response") []
       & info [ "chaos-drop-response" ] ~docv:"K:BYTES"
           ~doc:"Chaos: cut the $(i,K)-th response after $(i,BYTES) bytes \
                 and drop the connection (repeatable).")

let chaos_slow_arg =
  Arg.(value & opt_all (pair_conv "--chaos-slow-response") []
       & info [ "chaos-slow-response" ] ~docv:"K:CHUNK"
           ~doc:"Chaos: dribble the $(i,K)-th response out $(i,CHUNK) \
                 bytes at a time (repeatable).")

let cmd =
  let doc = "serve chase decide/chase/lint/query requests on a socket" in
  Cmd.v
    (Cmd.info "chased" ~doc)
    Cmdliner.Term.(
      const run $ socket_arg $ workers_arg $ queue_cap_arg $ pool_total_arg
      $ per_request_cap_arg $ min_grant_arg $ cache_capacity_arg $ spool_arg
      $ default_timeout_arg $ read_timeout_arg $ metrics_arg
      $ chaos_kill_accept_arg $ chaos_drop_arg $ chaos_slow_arg)

let () = exit (Cmd.eval' cmd)
