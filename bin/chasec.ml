(** [chasec] — client for the chase daemon.

    Sends one request to a running [chased] and relays the result: the
    response's stdout/stderr are printed verbatim (byte-identical to
    what the [chase] / [chase-termination] / [chase-lint] binaries
    would print — the daemon runs the same {!Chase.Driver}) and the
    op's exit code is this process's exit code.

    Transport failures follow the retry contract of {!Chase.Client}:
    connection errors, torn responses and [overloaded] answers retry
    with exponential backoff + jitter; exhausted retries exit 75
    (EX_TEMPFAIL), a definitive server rejection exits 70
    (EX_SOFTWARE).

    [--servers A,B] enables failover: servers are tried in order, a
    dead one falls through to the next, and a standby's structured
    refusal triggers promotion followed by a re-send — the promoted
    standby re-derives byte-identical responses (see the README's
    "Replication and failover").  [--stream] interleaves progress
    frames (printed to stderr) before the final response of a long
    chase; the final bytes are identical either way. *)

open Cmdliner
open Chase

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

let print_result verbose (r : Proto.result) =
  print_string r.Proto.stdout;
  prerr_string r.Proto.stderr;
  flush stdout;
  flush stderr;
  if verbose && r.Proto.cached then Fmt.epr "chasec: (cached)@.";
  r.Proto.exit_code

let run socket servers op_s file variant budget timeout quiet durable
    standard query stream attempts seed verbose =
  match Proto.op_of_string op_s with
  | None ->
    Fmt.epr "chasec: unknown op %S@." op_s;
    64 (* EX_USAGE *)
  | Some op -> (
    let program =
      match (file, op) with
      | Some f, _ -> read_file f
      | None, (Proto.Ping | Proto.Stats | Proto.Shutdown | Proto.Promote) ->
        Ok ""
      | None, _ -> Error "an input FILE is required for this op"
    in
    match program with
    | Error msg ->
      Fmt.epr "chasec: %s@." msg;
      66 (* EX_NOINPUT *)
    | Ok program -> (
      let req =
        Proto.request ?file ~program ?variant ?budget ?timeout_s:timeout
          ~quiet ~durable ~standard ?query ~stream op
      in
      let on_progress =
        if stream then
          Some (fun p -> Fmt.epr "chasec: %a@." Proto.pp_progress p)
        else None
      in
      match servers with
      | Some (_ :: _ :: _ as servers) -> (
        (* failover across a replicated pair (or chain) *)
        let on_event msg = if verbose then Fmt.epr "chasec: %s@." msg in
        match
          Failover.call ~attempts_per_server:attempts ~seed ?on_progress
            ~on_event ~servers req
        with
        | Ok { Failover.response = Proto.Ok_response r; server; promoted; _ } ->
          if verbose && promoted then Fmt.epr "chasec: promoted %s@." server;
          print_result verbose r
        | Ok _ -> assert false (* Failover.call only returns Ok_response *)
        | Error (Failover.Rejected _ as f) ->
          Fmt.epr "chasec: %a@." Failover.pp_failure f;
          70 (* EX_SOFTWARE *)
        | Error (Failover.All_down _ as f) ->
          Fmt.epr "chasec: %a@." Failover.pp_failure f;
          75 (* EX_TEMPFAIL *))
      | Some [] | Some [ _ ] | None -> (
        let socket =
          match (servers, socket) with
          | Some (s :: _), _ -> Some s
          | _, other -> other
        in
        match socket with
        | None ->
          Fmt.epr "chasec: give --socket or --servers@.";
          64
        | Some socket ->
          (
          let on_retry ~attempt ~delay msg =
            if verbose then
              Fmt.epr "chasec: attempt %d failed (%s); retrying in %.3fs@."
                (attempt + 1) msg delay
          in
          match
            Client.call_retry ~attempts ~seed ~on_retry ?on_progress ~socket
              req
          with
          | Ok (Proto.Ok_response r) -> print_result verbose r
          | Ok _ -> assert false (* call_retry only returns Ok_response *)
          | Error (Client.Gave_up _ as f) ->
            Fmt.epr "chasec: %a@." Client.pp_failure f;
            75 (* EX_TEMPFAIL *)
          | Error (Client.Rejected resp) ->
            Fmt.epr "chasec: %a@." Proto.pp_response resp;
            70 (* EX_SOFTWARE *)))))

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "s"; "socket" ] ~docv:"SOCKET"
           ~doc:"Unix-domain socket of the daemon (or use --servers).")

let servers_arg =
  let servers_conv =
    Arg.conv
      ( (fun s ->
          Ok (String.split_on_char ',' s |> List.filter (fun x -> x <> ""))),
        Fmt.(list ~sep:comma string) )
  in
  Arg.(value & opt (some servers_conv) None
       & info [ "servers" ] ~docv:"A,B"
           ~doc:"Failover list: try each socket in order; promote the \
                 first live standby when the primary is dead.")

let op_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"OP"
       ~doc:"Operation: ping, decide, chase, lint, query, stats, \
             promote or shutdown.")

let file_arg =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"FILE"
       ~doc:"Input program/rule file (required for decide, chase, lint \
             and query).")

let variant_arg =
  Arg.(value & opt (some string) None
       & info [ "v"; "variant" ] ~docv:"VARIANT"
           ~doc:"Chase variant: oblivious, semi-oblivious or restricted \
                 (per-op default when absent).")

let budget_arg =
  Arg.(value & opt (some int) None
       & info [ "b"; "budget" ] ~docv:"N"
           ~doc:"Requested trigger budget (the server may grant less \
                 under load).")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline (server default when absent).")

let quiet_arg =
  Arg.(value & flag
       & info [ "q"; "quiet" ] ~doc:"chase: only print run statistics.")

let durable_arg =
  Arg.(value & flag
       & info [ "durable" ]
           ~doc:"chase: spool + journal the run server-side; once \
                 acknowledged it survives daemon kills.")

let standard_arg =
  Arg.(value & opt bool true
       & info [ "standard" ] ~docv:"BOOL"
           ~doc:"decide/lint: standard databases (constants 0 and 1).")

let query_arg =
  Arg.(value & opt (some string) None
       & info [ "query" ] ~docv:"RULE"
           ~doc:"query op: one rule whose head is the answer atom, e.g. \
                 'e(X,Y), e(Y,Z) -> ans(X,Z).'")

let stream_arg =
  Arg.(value & flag
       & info [ "stream" ]
           ~doc:"chase: interleave progress frames (printed to stderr) \
                 before the final response; the final bytes are \
                 identical either way.")

let attempts_arg =
  Arg.(value & opt int 8
       & info [ "attempts" ] ~docv:"N" ~doc:"Retry attempts before giving \
                                             up.")

let seed_arg =
  Arg.(value & opt int 0
       & info [ "seed" ] ~docv:"N" ~doc:"Jitter seed (reproducible \
                                         backoff).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Report retries on stderr.")

let cmd =
  let doc = "send one request to a running chased" in
  Cmd.v
    (Cmd.info "chasec" ~doc)
    Cmdliner.Term.(
      const run $ socket_arg $ servers_arg $ op_arg $ file_arg $ variant_arg
      $ budget_arg $ timeout_arg $ quiet_arg $ durable_arg $ standard_arg
      $ query_arg $ stream_arg $ attempts_arg $ seed_arg $ verbose_arg)

let () = exit (Cmd.eval' cmd)
