(** [chasec] — client for the chase daemon.

    Sends one request to a running [chased] and relays the result: the
    response's stdout/stderr are printed verbatim (byte-identical to
    what the [chase] / [chase-termination] / [chase-lint] binaries
    would print — the daemon runs the same {!Chase.Driver}) and the
    op's exit code is this process's exit code.

    Transport failures follow the retry contract of {!Chase.Client}:
    connection errors, torn responses and [overloaded] answers retry
    with exponential backoff + jitter; exhausted retries exit 75
    (EX_TEMPFAIL), a definitive server rejection exits 70
    (EX_SOFTWARE).

    [--servers A,B] enables failover: servers are tried in order, a
    dead one falls through to the next, and a standby's structured
    refusal triggers promotion followed by a re-send — the promoted
    standby re-derives byte-identical responses (see the README's
    "Replication and failover").  [--stream] interleaves progress
    frames (printed to stderr) before the final response of a long
    chase; the final bytes are identical either way.

    Tracing: [--trace-out FILE] mints a root trace context, sends it
    with the request, and writes this client's own span shard to FILE;
    the server (and, through replication, the standby) write theirs —
    [chasec trace-merge *.trace] joins them into one Chrome-trace
    file.  [chasec top] renders the daemon's live telemetry snapshot;
    [--watch N] polls and shows deltas. *)

open Cmdliner
open Chase

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

let print_result verbose (r : Proto.result) =
  print_string r.Proto.stdout;
  prerr_string r.Proto.stderr;
  flush stdout;
  flush stderr;
  if verbose && r.Proto.cached then Fmt.epr "chasec: (cached)@.";
  r.Proto.exit_code

(* ------------------------------------------------------------------ *)
(* The default command: one request, relayed                           *)
(* ------------------------------------------------------------------ *)

let run socket servers op_s file variant budget timeout quiet durable
    standard query stream attempts seed trace_out verbose =
  match Proto.op_of_string op_s with
  | None ->
    Fmt.epr "chasec: unknown op %S@." op_s;
    64 (* EX_USAGE *)
  | Some op -> (
    let program =
      match (file, op) with
      | Some f, _ -> read_file f
      | ( None,
          ( Proto.Ping | Proto.Stats | Proto.Telemetry | Proto.Shutdown
          | Proto.Promote ) ) ->
        Ok ""
      | None, _ -> Error "an input FILE is required for this op"
    in
    match program with
    | Error msg ->
      Fmt.epr "chasec: %s@." msg;
      66 (* EX_NOINPUT *)
    | Ok program ->
      (* the root of the distributed trace is minted here, client-side:
         every server-side span transitively parents back to it *)
      let root = Option.map (fun _ -> Tracectx.genesis ()) trace_out in
      let t0_us = Tracectx.now_us () in
      let req =
        Proto.request ?file ~program ?variant ?budget ?timeout_s:timeout
          ~quiet ~durable ~standard ?query ~stream
          ?trace:(Option.map Tracectx.to_string root)
          op
      in
      let on_progress =
        if stream then
          Some (fun p -> Fmt.epr "chasec: %a@." Proto.pp_progress p)
        else None
      in
      let code =
        match servers with
        | Some (_ :: _ :: _ as servers) -> (
          (* failover across a replicated pair (or chain) *)
          let on_event msg = if verbose then Fmt.epr "chasec: %s@." msg in
          match
            Failover.call ~attempts_per_server:attempts ~seed ?on_progress
              ~on_event ~servers req
          with
          | Ok { Failover.response = Proto.Ok_response r; server; promoted; _ }
            ->
            if verbose && promoted then Fmt.epr "chasec: promoted %s@." server;
            print_result verbose r
          | Ok _ -> assert false (* Failover.call only returns Ok_response *)
          | Error (Failover.Rejected _ as f) ->
            Fmt.epr "chasec: %a@." Failover.pp_failure f;
            70 (* EX_SOFTWARE *)
          | Error (Failover.All_down _ as f) ->
            Fmt.epr "chasec: %a@." Failover.pp_failure f;
            75 (* EX_TEMPFAIL *))
        | Some [] | Some [ _ ] | None -> (
          let socket =
            match (servers, socket) with
            | Some (s :: _), _ -> Some s
            | _, other -> other
          in
          match socket with
          | None ->
            Fmt.epr "chasec: give --socket or --servers@.";
            64
          | Some socket -> (
            let on_retry ~attempt ~delay msg =
              if verbose then
                Fmt.epr "chasec: attempt %d failed (%s); retrying in %.3fs@."
                  (attempt + 1) msg delay
            in
            match
              Client.call_retry ~attempts ~seed ~on_retry ?on_progress ~socket
                req
            with
            | Ok (Proto.Ok_response r) -> print_result verbose r
            | Ok _ -> assert false (* call_retry only returns Ok_response *)
            | Error (Client.Gave_up _ as f) ->
              Fmt.epr "chasec: %a@." Client.pp_failure f;
              75 (* EX_TEMPFAIL *)
            | Error (Client.Rejected resp) ->
              Fmt.epr "chasec: %a@." Proto.pp_response resp;
              70 (* EX_SOFTWARE *)))
      in
      (match (trace_out, root) with
      | Some path, Some ctx ->
        let w = Tracectx.Shard.open_ ~proc:"chasec" path in
        Tracectx.Shard.span w ~ctx ~name:"client.request" ~ts_us:t0_us
          ~dur_us:(Tracectx.now_us () -. t0_us)
          ~args:
            [
              ("op", Jsonv.String op_s);
              ("exit", Jsonv.Int code);
            ]
          ();
        Tracectx.Shard.close w
      | _ -> ());
      code)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "s"; "socket" ] ~docv:"SOCKET"
           ~doc:"Unix-domain socket of the daemon (or use --servers).")

let servers_arg =
  let servers_conv =
    Arg.conv
      ( (fun s ->
          Ok (String.split_on_char ',' s |> List.filter (fun x -> x <> ""))),
        Fmt.(list ~sep:comma string) )
  in
  Arg.(value & opt (some servers_conv) None
       & info [ "servers" ] ~docv:"A,B"
           ~doc:"Failover list: try each socket in order; promote the \
                 first live standby when the primary is dead.")

let op_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"OP"
       ~doc:"Operation: ping, decide, chase, lint, query, stats, \
             telemetry, promote or shutdown.")

let file_arg =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"FILE"
       ~doc:"Input program/rule file (required for decide, chase, lint \
             and query).")

let variant_arg =
  Arg.(value & opt (some string) None
       & info [ "v"; "variant" ] ~docv:"VARIANT"
           ~doc:"Chase variant: oblivious, semi-oblivious or restricted \
                 (per-op default when absent); telemetry: prom for \
                 Prometheus text exposition.")

let budget_arg =
  Arg.(value & opt (some int) None
       & info [ "b"; "budget" ] ~docv:"N"
           ~doc:"Requested trigger budget (the server may grant less \
                 under load).")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline (server default when absent).")

let quiet_arg =
  Arg.(value & flag
       & info [ "q"; "quiet" ] ~doc:"chase: only print run statistics.")

let durable_arg =
  Arg.(value & flag
       & info [ "durable" ]
           ~doc:"chase: spool + journal the run server-side; once \
                 acknowledged it survives daemon kills.")

let standard_arg =
  Arg.(value & opt bool true
       & info [ "standard" ] ~docv:"BOOL"
           ~doc:"decide/lint: standard databases (constants 0 and 1).")

let query_arg =
  Arg.(value & opt (some string) None
       & info [ "query" ] ~docv:"RULE"
           ~doc:"query op: one rule whose head is the answer atom, e.g. \
                 'e(X,Y), e(Y,Z) -> ans(X,Z).'")

let stream_arg =
  Arg.(value & flag
       & info [ "stream" ]
           ~doc:"chase: interleave progress frames (printed to stderr) \
                 before the final response; the final bytes are \
                 identical either way.")

let attempts_arg =
  Arg.(value & opt int 8
       & info [ "attempts" ] ~docv:"N" ~doc:"Retry attempts before giving \
                                             up.")

let seed_arg =
  Arg.(value & opt int 0
       & info [ "seed" ] ~docv:"N" ~doc:"Jitter seed (reproducible \
                                         backoff).")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Mint a root trace context, send it with the request, \
                 and append this client's span shard to FILE (JSONL); \
                 merge shards with `chasec trace-merge'.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Report retries on stderr.")

let request_term =
  Cmdliner.Term.(
    const run $ socket_arg $ servers_arg $ op_arg $ file_arg $ variant_arg
    $ budget_arg $ timeout_arg $ quiet_arg $ durable_arg $ standard_arg
    $ query_arg $ stream_arg $ attempts_arg $ seed_arg $ trace_out_arg
    $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* trace-merge: join per-process shards into one Chrome trace          *)
(* ------------------------------------------------------------------ *)

let run_merge shards =
  let errors = ref 0 in
  let records =
    List.concat_map
      (fun path ->
        match open_in_bin path with
        | exception Sys_error msg ->
          Fmt.epr "chasec: %s@." msg;
          incr errors;
          []
        | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let rec go acc =
                match input_line ic with
                | exception End_of_file -> List.rev acc
                | line -> (
                  match Tracectx.parse_shard_line line with
                  | Some r -> go (r :: acc)
                  | None -> go acc (* torn final line: expected litter *))
              in
              go []))
      shards
  in
  if !errors > 0 then 66 (* EX_NOINPUT *)
  else begin
    print_string (Jsonv.to_string (Tracectx.merge_to_chrome records));
    print_newline ();
    0
  end

let merge_cmd =
  let doc = "merge per-process trace shards into one Chrome-trace file" in
  let shards_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"SHARD"
         ~doc:"Trace shard files (JSONL) written by --trace-out, chased \
               --trace-shard and the standby receiver.")
  in
  Cmd.v
    (Cmd.info "trace-merge" ~doc)
    Cmdliner.Term.(const run_merge $ shards_arg)

(* ------------------------------------------------------------------ *)
(* top: render the live telemetry snapshot                             *)
(* ------------------------------------------------------------------ *)

(* One polled snapshot, decoded into primitive maps for rendering and
   delta arithmetic. *)
type snap = {
  at : float;
  build : string;
  uptime : float;
  role : string;
  counters : (string * int) list;  (* "name|label" -> value *)
  gauges : (string * float) list;
  hists : (string * (int * float * float * float)) list;
      (* name|label -> count, p50, p99, sum *)
}

let get_telemetry ~socket =
  match
    Client.call_retry ~attempts:3 ~socket (Proto.request Proto.Telemetry)
  with
  | Ok (Proto.Ok_response r) when r.Proto.exit_code = 0 -> (
    match Jsonv.of_string (String.trim r.Proto.stdout) with
    | Error msg -> Error ("unparseable telemetry: " ^ msg)
    | Ok v ->
      let str k j =
        match Jsonv.member k j with Some (Jsonv.String s) -> s | _ -> ""
      in
      let num k j =
        Option.value ~default:0.
          (Option.bind (Jsonv.member k j) Jsonv.to_float_opt)
      in
      let arr k =
        match Jsonv.member k v with Some (Jsonv.List l) -> l | _ -> []
      in
      let keyed j =
        let label = str "label" j in
        str "name" j ^ if label = "" then "" else "|" ^ label
      in
      Ok
        {
          at = Unix.gettimeofday ();
          build = str "build" v;
          uptime = num "uptime_s" v;
          role = str "role" v;
          counters =
            List.map
              (fun j -> (keyed j, int_of_float (num "value" j)))
              (arr "counters");
          gauges = List.map (fun j -> (keyed j, num "value" j)) (arr "gauges");
          hists =
            List.map
              (fun j ->
                ( keyed j,
                  ( int_of_float (num "count" j),
                    num "p50" j,
                    num "p99" j,
                    num "sum" j ) ))
              (arr "histograms");
        })
  | Ok _ -> Error "server refused the telemetry request"
  | Error f -> Error (Fmt.str "%a" Client.pp_failure f)

(* Sum counters across labels: "svc.shed|pool" + "svc.shed|queue". *)
let sum_counter s name =
  List.fold_left
    (fun acc (k, v) ->
      if k = name || String.length k > String.length name
                     && String.sub k 0 (String.length name + 1) = name ^ "|"
      then acc + v
      else acc)
    0 s.counters

let render ~prev s =
  let dt =
    match prev with Some p when s.at > p.at -> s.at -. p.at | _ -> 0.
  in
  let rate now before = if dt > 0. then (float_of_int (now - before)) /. dt else 0. in
  Fmt.pr "chased %s — role %s — up %.1fs@." s.build s.role s.uptime;
  (match prev with
  | Some p ->
    let served = sum_counter s "svc.done" and served0 = sum_counter p "svc.done" in
    let shed = sum_counter s "svc.shed" and shed0 = sum_counter p "svc.shed" in
    Fmt.pr "  served %.1f/s | shed %.1f/s@." (rate served served0)
      (rate shed shed0)
  | None -> ());
  (match List.assoc_opt "svc.latency_s" s.hists with
  | Some (n, p50, p99, _) ->
    Fmt.pr "  service time: %d done, p50 %.3fs, p99 %.3fs@." n p50 p99
  | None -> ());
  (match List.assoc_opt "repl.lag" s.hists with
  | Some (n, p50, p99, _) ->
    Fmt.pr "  repl lag: %d frames, p50 %.0f, p99 %.0f@." n p50 p99
  | None -> ());
  Fmt.pr "  counters:@.";
  List.iter
    (fun (k, v) ->
      let d =
        match prev with
        | Some p -> (
          match List.assoc_opt k p.counters with
          | Some v0 when dt > 0. -> Fmt.str "  (%+.1f/s)" (rate v v0)
          | _ -> "")
        | None -> ""
      in
      Fmt.pr "    %-28s %d%s@." k v d)
    s.counters;
  if s.gauges <> [] then begin
    Fmt.pr "  gauges:@.";
    List.iter (fun (k, v) -> Fmt.pr "    %-28s %g@." k v) s.gauges
  end

let run_top socket watch =
  match socket with
  | None ->
    Fmt.epr "chasec: give --socket@.";
    64
  | Some socket -> (
    match watch with
    | None -> (
      match get_telemetry ~socket with
      | Ok s -> render ~prev:None s; 0
      | Error msg -> Fmt.epr "chasec: %s@." msg; 75)
    | Some interval ->
      let interval = Float.max 0.05 interval in
      let rec loop prev =
        match get_telemetry ~socket with
        | Error msg -> Fmt.epr "chasec: %s@." msg; 75
        | Ok s ->
          render ~prev s;
          Fmt.pr "@.";
          Thread.delay interval;
          loop (Some s)
      in
      loop None)

let top_cmd =
  let doc = "render the daemon's live telemetry snapshot" in
  let watch_arg =
    Arg.(value & opt (some float) None
         & info [ "watch" ] ~docv:"SECONDS"
             ~doc:"Poll every SECONDS and print deltas (req/s, shed \
                   rate) until interrupted.")
  in
  Cmd.v (Cmd.info "top" ~doc)
    Cmdliner.Term.(const run_top $ socket_arg $ watch_arg)

(* ------------------------------------------------------------------ *)

let cmd =
  let doc = "send one request to a running chased" in
  Cmd.group ~default:request_term
    (Cmd.info "chasec" ~doc)
    [ merge_cmd; top_cmd ]

let () = exit (Cmd.eval' cmd)
