(** [chase-termination] — decide all-instance chase termination.

    Reads a rule file, classifies the set (simple linear / linear /
    guarded / unguarded) and dispatches to the strongest procedure of the
    library ({!Chase.Decide}).  Exit status: 0 terminates, 2 diverges,
    3 unknown.

    [--timeout] bounds the budgeted procedures (guarded search, generic
    probe, chase simulation) by wall clock as well; when a limit is
    breached the [unknown] verdict carries the structured exhaustion
    diagnostics, distinguishing "slow but possibly converging" from
    "diverging so far" by the recent null-growth rate.  [--progress]
    streams watchdog snapshots of the simulation fallback on stderr.

    The decision is observable on request: [--trace FILE] writes a
    Chrome trace-event file of the procedure spans ([decide:<proc>],
    pump search, budgeted chase runs — load it in Perfetto),
    [--metrics FILE] writes JSONL metrics (per-procedure wall time,
    pump-search node counts, chase counters), and [--profile] prints
    the per-rule hot-spot table of the budgeted chase runs.

    Every run preflights the schema: an arity clash is reported as the
    [E001] diagnostic (exit 2) instead of surfacing as an exception from
    deep inside a procedure.  [--lint] runs the full static battery of
    [chase-lint] first. *)

open Cmdliner
open Chase

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

let variant_conv =
  let parse s =
    match Variant.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Fmt.str "unknown chase variant %S" s))
  in
  Arg.conv (parse, Variant.pp)

(* The whole run lives in {!Chase.Driver.decide}, shared byte-for-byte
   with the service daemon; this executable only parses argv and reads
   the file. *)
let run file variant budget standard timeout progress naive no_prune domains
    report lint trace metrics profile =
  if naive then Hom.set_matcher Hom.Naive;
  if no_prune then Relevance.force_disable true;
  Option.iter Parallel.set_domains domains;
  match read_file file with
  | Error msg ->
    Fmt.epr "error: cannot read input: %s@." msg;
    1
  | Ok src ->
    let o =
      Driver.decide_opts ~variant ~budget ~standard ?timeout ~progress ~report
        ~lint ?trace ?metrics ~profile ()
    in
    Driver.decide o ~file ~src ~out:Format.std_formatter
      ~err:Format.err_formatter

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
       ~doc:"Rule file (one 'body -> head.' per statement).")

let variant_arg =
  Arg.(value & opt variant_conv Variant.Semi_oblivious
       & info [ "v"; "variant" ] ~docv:"VARIANT"
           ~doc:"Chase variant: oblivious, semi-oblivious or restricted.")

let budget_arg =
  Arg.(value & opt int 50_000
       & info [ "b"; "budget" ] ~docv:"N"
           ~doc:"Trigger budget for the simulation fallback.")

let standard_arg =
  Arg.(value & opt bool true
       & info [ "standard" ] ~docv:"BOOL"
           ~doc:"Decide over standard databases (constants 0 and 1 \
                 available).")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Wall-clock deadline for the budgeted procedures; a \
                 breached deadline yields an unknown verdict with \
                 structured diagnostics.")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Stream periodic watchdog snapshots of the chase \
                 simulation on stderr.")

let naive_arg =
  Arg.(value & flag
       & info [ "naive" ]
           ~doc:"Use the naive left-to-right body matcher (the reference \
                 semantics) for every budgeted chase instead of the \
                 join-planned one.  Equivalent to setting CHASE_NAIVE=1.")

let no_prune_arg =
  Arg.(value & flag
       & info [ "no-prune" ]
           ~doc:"Disable the static trigger-relevance index in every \
                 budgeted chase.  Bit-identical to the pruned run.  \
                 Equivalent to setting CHASE_NO_PRUNE=1.")

let domains_conv =
  let parse s =
    match Parallel.parse_domains s with
    | Ok d -> Ok d
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Fmt.int)

let domains_arg =
  Arg.(value & opt (some domains_conv) None
       & info [ "domains" ] ~docv:"N"
           ~doc:"Fan the budgeted chases' trigger discovery across $(docv) \
                 domains (OCaml multicore).  Verdicts and diagnostics are \
                 bit-identical to a single-domain run; only wall-clock \
                 changes.  Equivalent to setting CHASE_DOMAINS=$(docv); \
                 default 1.")

let report_arg =
  Arg.(value & flag
       & info [ "report" ]
           ~doc:"Print the full analysis portfolio (class, every \
                 acyclicity condition, all variants, chase statistics).")

let lint_arg =
  Arg.(value & flag
       & info [ "lint" ]
           ~doc:"Run the static diagnostics battery (see chase-lint) \
                 before deciding; diagnostics go to stderr and errors \
                 abort with exit status 2.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event file of the procedure spans \
                 to $(docv); load it in Perfetto or about:tracing.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write metric events and final counter / gauge / \
                 histogram summaries as JSON lines to $(docv) (first \
                 line is a schema header).")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Print the per-rule hot-spot table of the budgeted \
                 chase runs after the verdict.")

let cmd =
  let doc = "decide all-instance chase termination for a TGD set" in
  Cmd.v
    (Cmd.info "chase-termination" ~doc)
    Cmdliner.Term.(
      const run $ file_arg $ variant_arg $ budget_arg $ standard_arg
      $ timeout_arg $ progress_arg $ naive_arg $ no_prune_arg $ domains_arg
      $ report_arg $ lint_arg $ trace_arg $ metrics_arg $ profile_arg)

let () = exit (Cmd.eval' cmd)
