(** The chase termination library — umbrella module.

    One-stop re-export of the public API.  The sub-libraries group as:

    - logic substrate: {!Term}, {!Atom}, {!Subst}, {!Instance}, {!Hom},
      {!Plan}, {!Tgd}, {!Schema}, {!Pattern}, {!Parser};
    - chase engine: {!Variant}, {!Engine}, {!Parallel}, {!Limits},
      {!Watchdog}, {!Faults}, {!Critical}, {!Derivation};
    - observability: {!Obs}, {!Metrics}, {!Sink}, {!Jsonv}, {!Profile},
      {!Tracectx}, {!Flight}, {!Telemetry};
    - durability: {!Codec}, {!Journal}, {!Snapshot}, {!Recovery},
      {!Session};
    - classes: {!Classify};
    - acyclicity: {!Digraph}, {!Dep_graph}, {!Weak}, {!Rich},
      {!Super_weak}, {!Critical_linear};
    - position dataflow (Σ-flow): {!Flow}, {!Strata}, {!Relevance};
    - termination procedures: {!Verdict}, {!Sl}, {!Linear}, {!Guarded},
      {!Simulation}, {!Decide};
    - static diagnostics (Σ-lint): {!Diagnostic}, {!Schema_check},
      {!Rule_lint}, {!Graph_lint}, {!Explain}, {!Lint}, {!Analyze},
      {!Json};
    - reductions: {!Looping}, {!Entailment};
    - workloads: {!Families}, {!Random_tgds};
    - service: {!Proto}, {!Driver}, {!Pool}, {!Cache}, {!Admission},
      {!Spool}, {!Server}, {!Client};
    - replication: {!Shipframe}, {!Shipper}, {!Receiver}, {!Standby},
      {!Failover}.

    Quick start:

    {[
      let rules = Chase.Parser.parse_rules_exn "p(X,Y) -> p(Y,Z)." in
      let verdict = Chase.Decide.check ~variant:Chase.Variant.Oblivious rules in
      Fmt.pr "%a@." Chase.Verdict.pp verdict
    ]} *)

(* Logic substrate *)
module Term = Chase_logic.Term
module Atom = Chase_logic.Atom
module Subst = Chase_logic.Subst
module Instance = Chase_logic.Instance
module Hom = Chase_logic.Hom
module Plan = Chase_logic.Plan
module Tgd = Chase_logic.Tgd
module Schema = Chase_logic.Schema
module Pattern = Chase_logic.Pattern
module Parser = Chase_logic.Parser
module Query = Chase_logic.Query
module Egd = Chase_logic.Egd
module Core_model = Chase_logic.Core_model

(* Chase engine *)
module Variant = Chase_engine.Variant
module Engine = Chase_engine.Engine
module Parallel = Chase_engine.Parallel
module Limits = Chase_engine.Limits
module Watchdog = Chase_engine.Watchdog
module Faults = Chase_engine.Faults
module Critical = Chase_engine.Critical
module Derivation = Chase_engine.Derivation
module Egd_chase = Chase_engine.Egd_chase
module Sequence = Chase_engine.Sequence

(* Observability: spans, metrics, sinks, the profile table *)
module Obs = Chase_obs.Obs
module Metrics = Chase_obs.Metrics
module Sink = Chase_obs.Sink
module Jsonv = Chase_obs.Jsonv
module Profile = Chase_engine.Profile
module Tracectx = Chase_obs.Tracectx
module Flight = Chase_obs.Flight
module Telemetry = Chase_obs.Telemetry

(* Durability: write-ahead journal, snapshots, crash recovery *)
module Codec = Chase_persist.Codec
module Journal = Chase_persist.Journal
module Snapshot = Chase_persist.Snapshot
module Recovery = Chase_persist.Recovery
module Session = Chase_persist.Session

(* TGD classes *)
module Classify = Chase_classes.Classify

(* Acyclicity notions *)
module Digraph = Chase_acyclicity.Digraph
module Dep_graph = Chase_acyclicity.Dep_graph
module Weak = Chase_acyclicity.Weak
module Rich = Chase_acyclicity.Rich
module Joint = Chase_acyclicity.Joint
module Mfa = Chase_acyclicity.Mfa
module Super_weak = Chase_acyclicity.Super_weak
module Critical_linear = Chase_acyclicity.Critical_linear

(* Position dataflow (Σ-flow) *)
module Flow = Chase_flow.Flow
module Strata = Chase_strata.Strata
module Relevance = Chase_engine.Relevance

(* Termination procedures *)
module Verdict = Chase_termination.Verdict
module Sl = Chase_termination.Sl
module Linear = Chase_termination.Linear
module Guarded = Chase_termination.Guarded
module Restricted = Chase_termination.Restricted
module Simulation = Chase_termination.Simulation
module Decide = Chase_termination.Decide
module Report = Chase_termination.Report

(* Static diagnostics (Σ-lint) *)
(* [Json] is {!Jsonv}: one JSON value type serves diagnostics and metrics. *)
module Json = Chase_obs.Jsonv
module Diagnostic = Chase_analysis.Diagnostic
module Schema_check = Chase_analysis.Schema_check
module Rule_lint = Chase_analysis.Rule_lint
module Graph_lint = Chase_analysis.Graph_lint
module Explain = Chase_analysis.Explain
module Lint = Chase_analysis.Lint
module Analyze = Chase_analysis.Analyze

(* Reductions *)
module Looping = Chase_reductions.Looping
module Entailment = Chase_reductions.Entailment

(* Workloads *)
module Families = Chase_generators.Families
module Random_tgds = Chase_generators.Random_tgds

(* Service: the daemon, its client, and their shared run driver *)
module Proto = Chase_service.Proto
module Driver = Chase_service.Driver
module Pool = Chase_service.Pool
module Cache = Chase_service.Cache
module Admission = Chase_service.Admission
module Spool = Chase_service.Spool
module Server = Chase_service.Server
module Client = Chase_service.Client

(* Replication: primary/standby shipping, promotion, client failover *)
module Shipframe = Chase_replica.Shipframe
module Shipper = Chase_replica.Shipper
module Receiver = Chase_replica.Receiver
module Standby = Chase_replica.Standby
module Failover = Chase_replica.Failover
