(** Seeded random rule-set generators.

    Used by the property-based tests and the agreement experiments: the
    exact decision procedures are compared against the chase-simulation
    oracle on thousands of random sets.  All generators are deterministic
    functions of the seed. *)

open Chase_logic

type profile = {
  n_rules : int;
  n_preds : int;
  max_arity : int;
  simple : bool;  (** forbid repeated body variables *)
  existential_bias : float;  (** probability a head position is existential *)
  max_body : int;  (** body atoms per rule (guarded generator only) *)
  max_head : int;  (** head atoms per rule *)
  constant_bias : float;
      (** probability a non-leading body position (or a non-existential
          head position) holds a constant instead of a variable; 0 keeps
          the historical random stream byte-for-byte *)
}

let default_profile =
  {
    n_rules = 3;
    n_preds = 3;
    max_arity = 3;
    simple = false;
    existential_bias = 0.4;
    max_body = 2;
    max_head = 2;
    constant_bias = 0.0;
  }

(* Draw a constant with probability [constant_bias], else fall back to
   [mk].  The bias test is short-circuited so that profiles with bias 0
   (every pre-existing caller) consume exactly the same random stream as
   before the field existed. *)
let maybe_const st profile mk =
  if
    profile.constant_bias > 0.0
    && Random.State.float st 1.0 < profile.constant_bias
  then Term.Const (Fmt.str "k%d" (Random.State.int st 3))
  else mk ()

let pred_name i = Fmt.str "p%d" i

(* Predicate arities are a deterministic function of the profile so that
   all rules of a set agree. *)
let arity_of profile i = 1 + ((i * 7) mod profile.max_arity)

let var i = Term.Var (Fmt.str "V%d" i)

let pick st l = List.nth l (Random.State.int st (List.length l))

(** A random linear rule: a single body atom, head atoms over the frontier
    and fresh existentials. *)
let linear_rule st profile idx =
  let body_pred = Random.State.int st profile.n_preds in
  let body_arity = arity_of profile body_pred in
  (* body variables: distinct when simple, possibly repeated otherwise *)
  let n_body_vars =
    if profile.simple then body_arity
    else 1 + Random.State.int st (max 1 body_arity)
  in
  let body_args =
    (* position 0 stays a variable so the body always has one *)
    if profile.simple then
      List.init body_arity (fun i ->
          if i = 0 then var i else maybe_const st profile (fun () -> var i))
    else
      List.init body_arity (fun i ->
          let v () = var (Random.State.int st n_body_vars) in
          if i = 0 then v () else maybe_const st profile v)
  in
  let body_vars =
    List.sort_uniq compare
      (List.filter_map (function Term.Var v -> Some v | _ -> None) body_args)
  in
  let n_head = 1 + Random.State.int st profile.max_head in
  let existential_counter = ref 0 in
  let head_arg () =
    if Random.State.float st 1.0 < profile.existential_bias then begin
      incr existential_counter;
      (* a small pool of existentials so they can be shared/repeated *)
      Term.Var (Fmt.str "Z%d" (1 + Random.State.int st (max 1 !existential_counter)))
    end
    else maybe_const st profile (fun () -> Term.Var (pick st body_vars))
  in
  let head =
    List.init n_head (fun _ ->
        let p = Random.State.int st profile.n_preds in
        Atom.of_list (pred_name p) (List.init (arity_of profile p) (fun _ -> head_arg ())))
  in
  Tgd.make_exn
    ~name:(Fmt.str "r%d" idx)
    ~body:[ Atom.of_list (pred_name body_pred) body_args ]
    ~head ()

(** A random guarded rule: a guard atom over distinct variables plus side
    atoms over subsets of the guard variables. *)
let guarded_rule st profile idx =
  let guard_pred = Random.State.int st profile.n_preds in
  let guard_arity = arity_of profile guard_pred in
  let guard_args = List.init guard_arity var in
  let guard_vars = List.init guard_arity (fun i -> Fmt.str "V%d" i) in
  let n_side = Random.State.int st profile.max_body in
  let side =
    List.init n_side (fun _ ->
        let p = Random.State.int st profile.n_preds in
        Atom.of_list (pred_name p)
          (List.init (arity_of profile p) (fun _ ->
               maybe_const st profile (fun () -> Term.Var (pick st guard_vars)))))
  in
  let n_head = 1 + Random.State.int st profile.max_head in
  let existential_counter = ref 0 in
  let head_arg () =
    if Random.State.float st 1.0 < profile.existential_bias then begin
      incr existential_counter;
      Term.Var (Fmt.str "Z%d" (1 + Random.State.int st (max 1 !existential_counter)))
    end
    else maybe_const st profile (fun () -> Term.Var (pick st guard_vars))
  in
  let head =
    List.init n_head (fun _ ->
        let p = Random.State.int st profile.n_preds in
        Atom.of_list (pred_name p) (List.init (arity_of profile p) (fun _ -> head_arg ())))
  in
  Tgd.make_exn
    ~name:(Fmt.str "r%d" idx)
    ~body:(Atom.of_list (pred_name guard_pred) guard_args :: side)
    ~head ()

let rule_set rule_gen ~seed ?(profile = default_profile) () =
  let st = Random.State.make [| seed |] in
  List.init profile.n_rules (fun i -> rule_gen st profile i)

(** Random simple linear set. *)
let simple_linear ~seed ?(profile = default_profile) () =
  rule_set linear_rule ~seed ~profile:{ profile with simple = true } ()

(** Random linear set (repeated body variables allowed). *)
let linear ~seed ?profile () = rule_set linear_rule ~seed ?profile ()

(** Random guarded set. *)
let guarded ~seed ?profile () = rule_set guarded_rule ~seed ?profile ()
