(** Seeded random rule-set generators, deterministic in the seed; used by
    the property-based tests and the agreement experiments. *)

open Chase_logic

type profile = {
  n_rules : int;
  n_preds : int;
  max_arity : int;
  simple : bool;  (** forbid repeated body variables *)
  existential_bias : float;  (** probability a head position is existential *)
  max_body : int;  (** extra body atoms (guarded generator) *)
  max_head : int;  (** head atoms per rule *)
  constant_bias : float;
      (** probability a non-leading body position (or non-existential head
          position) holds a constant; 0 (the default) reproduces the
          historical random stream exactly *)
}

val default_profile : profile
(** 3 rules, 3 predicates, arity ≤ 3, bias 0.4, no constants. *)

val simple_linear : seed:int -> ?profile:profile -> unit -> Tgd.t list
val linear : seed:int -> ?profile:profile -> unit -> Tgd.t list
val guarded : seed:int -> ?profile:profile -> unit -> Tgd.t list
