(** Named parametric rule-set families: the paper's running examples, the
    separating examples behind Theorems 1 and 2, and scalable families
    for the complexity-shape experiments. *)

open Chase_logic

val example1 : Tgd.t list
(** person(X) → ∃Y hasFather(X,Y) ∧ person(Y) — diverges everywhere. *)

val example2 : Tgd.t list
(** p(X,Y) → ∃Z p(Y,Z) — diverges under o and so. *)

val separator : Tgd.t list
(** p(X,Y) → ∃Z p(X,Z) — WA but not RA: o diverges, so terminates. *)

val thm2_counterexample : Tgd.t list
(** p(X,X) → ∃Z p(X,Z) — dangerous cycle, yet terminating. *)

val sl_chain : int -> Tgd.t list
(** Richly acyclic chain of n rules. *)

val sl_cycle : int -> Tgd.t list
(** The chain closed into a dangerous cycle — diverges. *)

val sl_cycle_benign : int -> Tgd.t list
(** A cycle that is WA but not RA at every length n. *)

val linear_blocked : arity:int -> Tgd.t list
(** Repeated-variable body, broken by the head: terminating despite a
    dangerous cycle (Theorem 2's phenomenon, any arity ≥ 2). *)

val linear_rotating : arity:int -> Tgd.t list
(** p(X₁,…,Xk) → ∃Z p(X₂,…,Xk,Z): divergent at every arity ≥ 1. *)

val mfa_incomplete_witness : Tgd.t list
(** A linear, so-terminating set that is {e not} model-faithfully acyclic
    — MFA builds a cyclic skolem term that the chase can never reuse. *)

val guarded_divergent : arity:int -> Tgd.t list
(** r(X̄), m(Xk) → ∃Z r(X₂..Xk,Z) ∧ m(Z): properly guarded, divergent. *)

val guarded_terminating : arity:int -> Tgd.t list
val guarded_tower : levels:int -> Tgd.t list
(** Terminating guarded cascade of growing chase depth. *)

val restricted_separator : Tgd.t list
(** e(X,Y) → ∃Z e(Y,Z) ∧ e(Z,Y): o/so diverge, restricted terminates. *)

val restricted_divergent : Tgd.t list
val single_head_chain : int -> Tgd.t list

val wide_body : width:int -> Tgd.t list
(** big(X,Y₁), …, big(X,Y_{width-1}), sel(X) → out(Y₁,X): a star join
    whose only selective atom is written last — the E12 workload that
    separates planned from naive matching.  Width ≥ 2. *)

val wide_body_db : hubs:int -> fanout:int -> Atom.t list
(** Database for {!wide_body}: [hubs] star centres with [fanout]
    successors each, one selected centre; deterministic. *)

val catalogue : (string * Tgd.t list) list
(** The named families used by the zoo example and the census. *)
