(** Named parametric rule-set families.

    These are the workloads of the experiment harness: the paper's running
    examples, the separating examples behind Theorems 1 and 2, and scalable
    families for the complexity-shape experiments (E3, E4b). *)

open Chase_logic

let atom p args = Atom.of_list p args
let v s = Term.Var s

let rule ?name body head = Tgd.make_exn ?name ~body ~head ()

(* ------------------------------------------------------------------ *)
(* The paper's examples                                                *)
(* ------------------------------------------------------------------ *)

(** Example 1: person(X) → ∃Y hasFather(X,Y) ∧ person(Y).
    Diverges under every variant. *)
let example1 =
  [
    rule ~name:"father"
      [ atom "person" [ v "X" ] ]
      [ atom "hasFather" [ v "X"; v "Y" ]; atom "person" [ v "Y" ] ];
  ]

(** Example 2: p(X,Y) → ∃Z p(Y,Z).  Diverges under o and so. *)
let example2 = [ rule ~name:"step" [ atom "p" [ v "X"; v "Y" ] ] [ atom "p" [ v "Y"; v "Z" ] ] ]

(** The o/so separator: p(X,Y) → ∃Z p(X,Z) — weakly but not richly
    acyclic; the oblivious chase diverges, the semi-oblivious terminates. *)
let separator =
  [ rule ~name:"sep" [ atom "p" [ v "X"; v "Y" ] ] [ atom "p" [ v "X"; v "Z" ] ] ]

(** Theorem 2's phenomenon: p(X,X) → ∃Z p(X,Z) has a dangerous cycle but
    terminates — the repeated body variable can never be matched by the
    produced fact. *)
let thm2_counterexample =
  [ rule ~name:"cex" [ atom "p" [ v "X"; v "X" ] ] [ atom "p" [ v "X"; v "Z" ] ] ]

(* ------------------------------------------------------------------ *)
(* Scalable simple linear families (E3a)                               *)
(* ------------------------------------------------------------------ *)

let pred_name base i = Fmt.str "%s%d" base i

(** [sl_chain n]: p0(X,Y) → ∃Z p1(Y,Z), …, p(n-1) → pn.  Richly acyclic;
    every variant terminates.  Dependency graph size grows linearly. *)
let sl_chain n =
  List.init n (fun i ->
      rule
        ~name:(Fmt.str "c%d" i)
        [ atom (pred_name "p" i) [ v "X"; v "Y" ] ]
        [ atom (pred_name "p" (i + 1)) [ v "Y"; v "Z" ] ])

(** [sl_cycle n]: the chain closed back to p0 — a dangerous cycle of
    length n; diverges under o and so. *)
let sl_cycle n =
  sl_chain (n - 1)
  @ [
      rule ~name:"close"
        [ atom (pred_name "p" (n - 1)) [ v "X"; v "Y" ] ]
        [ atom (pred_name "p" 0) [ v "Y"; v "Z" ] ];
    ]

(** [sl_cycle_benign n]: the cycle variant that only reuses the frontier
    in the first position — weakly acyclic (so-terminating) but not richly
    acyclic (o-diverging); scales the Theorem 1 separation. *)
let sl_cycle_benign n =
  List.init n (fun i ->
      rule
        ~name:(Fmt.str "b%d" i)
        [ atom (pred_name "p" i) [ v "X"; v "Y" ] ]
        [ atom (pred_name "p" ((i + 1) mod n)) [ v "X"; v "Z" ] ])

(* ------------------------------------------------------------------ *)
(* Linear families with repeated variables (E2, E3b)                   *)
(* ------------------------------------------------------------------ *)

(** [linear_blocked ~arity]: a rule whose body repeats one variable across
    the first two positions and whose head breaks the repetition — the
    dangerous cycle exists in the dependency graph but is unrealizable, so
    the chase terminates.  Generalizes [thm2_counterexample] to any arity
    ≥ 2. *)
let linear_blocked ~arity =
  if arity < 2 then invalid_arg "linear_blocked: arity must be ≥ 2";
  let body_args = v "X" :: v "X" :: List.init (arity - 2) (fun i -> v (Fmt.str "Y%d" i)) in
  let head_args = v "X" :: v "Z" :: List.init (arity - 2) (fun i -> v (Fmt.str "Y%d" i)) in
  [ rule ~name:"blocked" [ atom "p" body_args ] [ atom "p" head_args ] ]

(** [linear_rotating ~arity]: p(X1,…,Xk) → ∃Z p(X2,…,Xk,Z) — genuinely
    divergent at every arity; the pattern space explored by the
    critical-linear procedure grows with [arity]. *)
let linear_rotating ~arity =
  if arity < 1 then invalid_arg "linear_rotating: arity must be ≥ 1";
  let xs = List.init arity (fun i -> v (Fmt.str "X%d" i)) in
  let rotated = List.tl xs @ [ v "Z" ] in
  [ rule ~name:"rot" [ atom "p" xs ] [ atom "p" rotated ] ]

(** A linear set whose semi-oblivious chase terminates although the
    critical-instance chase builds a {e cyclic} skolem term — a witness
    that even model-faithful acyclicity is incomplete on linear TGDs
    (found by the random agreement scan, seed 85): the cyclic null lands
    in a position from which the repeated-variable body can never pick it
    up again. *)
let mfa_incomplete_witness =
  [
    rule ~name:"w0"
      [ atom "p2" [ v "V1"; v "V0"; v "V1" ] ]
      [ atom "p2" [ v "V1"; v "V1"; v "V0" ]; atom "p2" [ v "V1"; v "Z1"; v "V0" ] ];
    rule ~name:"w1"
      [ atom "p1" [ v "V0"; v "V0" ] ]
      [ atom "p1" [ v "V0"; v "Z1" ]; atom "p2" [ v "V0"; v "V0"; v "V0" ] ];
    rule ~name:"w2" [ atom "p0" [ v "V0" ] ] [ atom "p1" [ v "V0"; v "V0" ] ];
  ]

(* ------------------------------------------------------------------ *)
(* Guarded families (E4)                                               *)
(* ------------------------------------------------------------------ *)

(** [guarded_divergent ~arity]: r(X1,…,Xk), m(Xk) → ∃Z r(X2,…,Xk,Z), m(Z).
    Properly guarded (two body atoms), diverges under o and so. *)
let guarded_divergent ~arity =
  if arity < 1 then invalid_arg "guarded_divergent: arity must be ≥ 1";
  let xs = List.init arity (fun i -> v (Fmt.str "X%d" i)) in
  let last = List.nth xs (arity - 1) in
  let rotated = List.tl xs @ [ v "Z" ] in
  [
    rule ~name:"gdiv"
      [ atom "r" xs; atom "m" [ last ] ]
      [ atom "r" rotated; atom "m" [ v "Z" ] ];
  ]

(** [guarded_terminating ~arity]: the same shape but producing a fresh
    predicate that never feeds back. *)
let guarded_terminating ~arity =
  if arity < 1 then invalid_arg "guarded_terminating: arity must be ≥ 1";
  let xs = List.init arity (fun i -> v (Fmt.str "X%d" i)) in
  let last = List.nth xs (arity - 1) in
  let rotated = List.tl xs @ [ v "Z" ] in
  [
    rule ~name:"gter"
      [ atom "r" xs; atom "m" [ last ] ]
      [ atom "s" rotated; atom "m2" [ v "Z" ] ];
    rule ~name:"gter2" [ atom "s" xs ] [ atom "t" [ List.hd xs ] ];
  ]

(** [guarded_tower ~levels]: a terminating guarded cascade whose chase
    depth grows with [levels] — each level spawns the next through a
    guarded join. *)
let guarded_tower ~levels =
  List.init levels (fun i ->
      rule
        ~name:(Fmt.str "t%d" i)
        [ atom (pred_name "r" i) [ v "X"; v "Y" ]; atom (pred_name "m" i) [ v "Y" ] ]
        [
          atom (pred_name "r" (i + 1)) [ v "Y"; v "Z" ];
          atom (pred_name "m" (i + 1)) [ v "Z" ];
        ])

(* ------------------------------------------------------------------ *)
(* §4: single-head linear families for the restricted chase (E8)       *)
(* ------------------------------------------------------------------ *)

(** e(X,Y) → ∃Z e(Y,Z) ∧ e(Z,Y): diverges under o/so, but the restricted
    chase terminates on every database — after one firing every produced
    edge has a symmetric partner, which satisfies all later triggers. *)
let restricted_separator =
  [
    rule ~name:"rsep"
      [ atom "e" [ v "X"; v "Y" ] ]
      [ atom "e" [ v "Y"; v "Z" ]; atom "e" [ v "Z"; v "Y" ] ];
  ]

(** Diverges under all three variants. *)
let restricted_divergent = example2

(** A single-head linear terminating cascade. *)
let single_head_chain n =
  List.init n (fun i ->
      rule
        ~name:(Fmt.str "s%d" i)
        [ atom (pred_name "q" i) [ v "X" ] ]
        [ atom (pred_name "q" (i + 1)) [ v "Y" ] ])

(* ------------------------------------------------------------------ *)
(* Wide-body join families (E12: planned vs naive matching)            *)
(* ------------------------------------------------------------------ *)

(** [wide_body ~width]: one full rule with a [width]-atom star join whose
    only selective atom is written {e last}:

    big(X,Y₁), …, big(X,Y_{width-1}), sel(X) → out(Y₁, X)

    Left-to-right matching enumerates every [big] fact and its whole
    fan-out before consulting [sel]; a selectivity-ordered plan binds
    [sel] first and touches only the selected star.  This is the E12
    workload separating the planned matcher from the naive reference. *)
let wide_body ~width =
  if width < 2 then invalid_arg "Families.wide_body: width must be >= 2";
  let body =
    List.init (width - 1) (fun i -> atom "big" [ v "X"; v (Fmt.str "Y%d" i) ])
    @ [ atom "sel" [ v "X" ] ]
  in
  [ rule ~name:"wide" body [ atom "out" [ v "Y0"; v "X" ] ] ]

(** A database for {!wide_body}: [hubs] star centres with [fanout]
    successors each, and a single selected centre.  Deterministic. *)
let wide_body_db ~hubs ~fanout =
  let edges =
    List.concat
      (List.init hubs (fun h ->
           List.init fanout (fun k ->
               atom "big"
                 [ Term.Const (Fmt.str "h%d" h);
                   Term.Const (Fmt.str "n%d_%d" h k) ])))
  in
  atom "sel" [ Term.Const "h0" ] :: edges

(** The catalogue used by the examples and the census experiment. *)
let catalogue : (string * Tgd.t list) list =
  [
    ("example1", example1);
    ("example2", example2);
    ("separator", separator);
    ("thm2-counterexample", thm2_counterexample);
    ("sl-chain-4", sl_chain 4);
    ("sl-cycle-4", sl_cycle 4);
    ("sl-cycle-benign-4", sl_cycle_benign 4);
    ("linear-blocked-3", linear_blocked ~arity:3);
    ("linear-rotating-3", linear_rotating ~arity:3);
    ("mfa-incomplete-witness", mfa_incomplete_witness);
    ("guarded-divergent-3", guarded_divergent ~arity:3);
    ("guarded-terminating-3", guarded_terminating ~arity:3);
    ("guarded-tower-3", guarded_tower ~levels:3);
    ("restricted-separator", restricted_separator);
    ("single-head-chain-4", single_head_chain 4);
  ]
