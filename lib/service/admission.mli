(** Bounded-queue admission in front of a fixed worker pool, with
    load-shedding: a full queue answers [`Shed retry_after] (an EWMA
    estimate of when capacity returns) — never a silent drop. *)

type t

val create : queue_cap:int -> workers:int -> unit -> t

val submit :
  t -> run:(unit -> unit) -> abandon:(unit -> unit) -> [ `Accepted | `Shed of float ]
(** [run] executes in a worker thread.  [abandon] is invoked (once, not
    in a worker) if the job is dropped by [stop ~drain:false] — use it
    to resolve whatever the job owed (its cache flight, its client). *)

val depth : t -> int
(** Queued, not yet running. *)

val busy : t -> int
val shed_count : t -> int
val completed : t -> int
val ewma_service_s : t -> float

val stop : ?drain:bool -> t -> unit
(** Stop accepting and join the workers.  [drain] (default [true])
    finishes the queue first; [~drain:false] abandons it (each job's
    [abandon] fires).  Jobs already running always complete — cancel
    their tokens first if they must die fast. *)
