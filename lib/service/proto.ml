(** The wire protocol of the chase service.

    Frames are length-prefixed: an ASCII decimal byte count, a newline,
    then exactly that many payload bytes.  The payload is one JSON
    object ({!Chase_obs.Jsonv} both ways — the zero-dependency parser,
    hardened with a nesting-depth cap, is the only JSON machinery the
    daemon trusts).  The framing is deliberately trivial to speak from
    any language — and deliberately trivial to corrupt from the chaos
    harness.

    Requests and responses both carry a client-chosen [id], so several
    requests may be in flight on one connection; the server answers in
    completion order. *)

module Jsonv = Chase_obs.Jsonv

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let default_max_frame = 4 * 1024 * 1024

(* Write in a loop: [Unix.write] may be short on sockets. *)
let write_all fd bytes pos len =
  let pos = ref pos and remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd bytes !pos !remaining in
    pos := !pos + n;
    remaining := !remaining - n
  done

let write_frame fd payload =
  let header = Bytes.of_string (Printf.sprintf "%d\n" (String.length payload)) in
  write_all fd header 0 (Bytes.length header);
  write_all fd (Bytes.of_string payload) 0 (String.length payload)

let frame_string payload =
  Printf.sprintf "%d\n%s" (String.length payload) payload

(* The length line is at most 20 bytes of digits; anything longer, any
   non-digit, or a declared length beyond [max_len] is a bad frame —
   the stream is desynchronized and the connection must be dropped. *)
let read_frame ?(max_len = default_max_frame) fd =
  let one = Bytes.create 1 in
  let rec read_len acc digits =
    match Unix.read fd one 0 1 with
    | 0 -> if digits = 0 then `Closed else `Bad "eof inside frame header"
    | _ -> (
      match Bytes.get one 0 with
      | '\n' ->
        if digits = 0 then `Bad "empty frame header" else `Len acc
      | '0' .. '9' when digits < 20 ->
        let d = Char.code (Bytes.get one 0) - Char.code '0' in
        if acc > (max_int - d) / 10 then `Bad "frame length overflows"
        else read_len ((acc * 10) + d) (digits + 1)
      | _ -> `Bad "non-numeric frame header")
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      `Bad "read timeout inside frame header"
    | exception Unix.Unix_error ((ECONNRESET | ECONNABORTED | EPIPE), _, _) ->
      `Bad "connection reset inside frame header"
  in
  match read_len 0 0 with
  | `Closed -> `Closed
  | `Bad msg -> `Bad msg
  | `Len len ->
    if len > max_len then
      `Bad (Printf.sprintf "frame of %d bytes exceeds limit %d" len max_len)
    else begin
      let buf = Bytes.create len in
      let rec fill pos =
        if pos = len then `Frame (Bytes.to_string buf)
        else
          match Unix.read fd buf pos (len - pos) with
          | 0 -> `Bad "eof inside frame payload"
          | n -> fill (pos + n)
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            `Bad "read timeout inside frame payload"
          | exception Unix.Unix_error ((ECONNRESET | ECONNABORTED | EPIPE), _, _)
            ->
            `Bad "connection reset inside frame payload"
      in
      fill 0
    end

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type op =
  | Ping
  | Decide
  | Chase
  | Lint
  | Query
  | Stats
  | Telemetry
  | Shutdown
  | Promote

let op_to_string = function
  | Ping -> "ping"
  | Decide -> "decide"
  | Chase -> "chase"
  | Lint -> "lint"
  | Query -> "query"
  | Stats -> "stats"
  | Telemetry -> "telemetry"
  | Shutdown -> "shutdown"
  | Promote -> "promote"

let op_of_string = function
  | "ping" -> Some Ping
  | "decide" -> Some Decide
  | "chase" -> Some Chase
  | "lint" -> Some Lint
  | "query" -> Some Query
  | "stats" -> Some Stats
  | "telemetry" -> Some Telemetry
  | "shutdown" -> Some Shutdown
  | "promote" -> Some Promote
  | _ -> None

let pp_op fm o = Fmt.string fm (op_to_string o)

type request = {
  id : string;
  op : op;
  file : string;  (** display name used in diagnostics *)
  program : string;  (** rule/program source text *)
  variant : string option;  (** per-op default when absent *)
  budget : int option;
  timeout_s : float option;
  quiet : bool;
  durable : bool;  (** chase only: spool + journal the run *)
  standard : bool;  (** decide: standard databases *)
  query : string option;  (** query op: one rule, head = answer atom *)
  stream : bool;
      (** chase only: interleave [progress] frames before the final
          response.  Excluded from the idempotency key — the final
          bytes are identical either way. *)
  trace : string option;
      (** distributed trace context ([Tracectx.to_string] form), minted
          by the client.  Purely observational: excluded from the
          idempotency key and from the encoding when absent, so frames
          from trace-unaware peers stay byte-identical. *)
}

let request ?(id = "0") ?(file = "<request>") ?(program = "") ?variant ?budget
    ?timeout_s ?(quiet = false) ?(durable = false) ?(standard = true) ?query
    ?(stream = false) ?trace op =
  {
    id;
    op;
    file;
    program;
    variant;
    budget;
    timeout_s;
    quiet;
    durable;
    standard;
    query;
    stream;
    trace;
  }

let encode_request r =
  let opt f = function None -> [] | Some v -> [ f v ] in
  Jsonv.to_string
    (Jsonv.Obj
       ([
          ("id", Jsonv.String r.id);
          ("op", Jsonv.String (op_to_string r.op));
          ("file", Jsonv.String r.file);
          ("program", Jsonv.String r.program);
        ]
       @ opt (fun v -> ("variant", Jsonv.String v)) r.variant
       @ opt (fun b -> ("budget", Jsonv.Int b)) r.budget
       @ opt (fun t -> ("timeout_s", Jsonv.Float t)) r.timeout_s
       @ [
           ("quiet", Jsonv.Bool r.quiet);
           ("durable", Jsonv.Bool r.durable);
           ("standard", Jsonv.Bool r.standard);
         ]
       @ opt (fun q -> ("query", Jsonv.String q)) r.query
       @ (if r.stream then [ ("stream", Jsonv.Bool true) ] else [])
       @ opt (fun t -> ("trace", Jsonv.String t)) r.trace))

let get_string k v = Option.bind (Jsonv.member k v) Jsonv.to_string_opt

let get_bool ~default k v =
  match Jsonv.member k v with Some (Jsonv.Bool b) -> b | _ -> default

let get_int k v =
  match Jsonv.member k v with Some (Jsonv.Int i) -> Some i | _ -> None

let decode_request payload =
  match Jsonv.of_string payload with
  | Error msg -> Error (Fmt.str "invalid JSON: %s" msg)
  | Ok v -> (
    match v with
    | Jsonv.Obj _ -> (
      match get_string "op" v with
      | None -> Error "missing \"op\" field"
      | Some op_s -> (
        match op_of_string op_s with
        | None -> Error (Fmt.str "unknown op %S" op_s)
        | Some op ->
          Ok
            {
              id = Option.value ~default:"0" (get_string "id" v);
              op;
              file = Option.value ~default:"<request>" (get_string "file" v);
              program = Option.value ~default:"" (get_string "program" v);
              variant = get_string "variant" v;
              budget = get_int "budget" v;
              timeout_s =
                Option.bind (Jsonv.member "timeout_s" v) Jsonv.to_float_opt;
              quiet = get_bool ~default:false "quiet" v;
              durable = get_bool ~default:false "durable" v;
              standard = get_bool ~default:true "standard" v;
              query = get_string "query" v;
              stream = get_bool ~default:false "stream" v;
              trace = get_string "trace" v;
            }))
    | _ -> Error "request is not a JSON object")

(** The idempotency key: everything that determines the result bytes —
    and nothing that does not ([id], the deadline, [stream] and
    [trace] are excluded, so a retried request with a fresh deadline
    deduplicates against the original, a streaming request shares the
    flight of a plain one, and a traced request shares the flight — and
    the cached bytes — of an untraced twin). *)
let request_key r =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            op_to_string r.op;
            r.file;
            Option.value ~default:"" r.variant;
            (match r.budget with None -> "" | Some b -> string_of_int b);
            (if r.quiet then "q" else "");
            (if r.durable then "d" else "");
            (if r.standard then "s" else "");
            Digest.to_hex (Digest.string r.program);
            Digest.to_hex (Digest.string (Option.value ~default:"" r.query));
          ]))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type result = {
  exit_code : int;
  stdout : string;
  stderr : string;
  cached : bool;  (** served from the verdict cache or a joined flight *)
}

type progress = {
  step : int;  (** trigger applications so far *)
  atoms : int;  (** current instance cardinality *)
  nulls : int;  (** fresh nulls invented so far *)
  elapsed : float;  (** wall-clock seconds since the run started *)
}

let pp_progress fm p =
  Fmt.pf fm "step %d · %d atoms · %d nulls · %.1fs" p.step p.atoms p.nulls
    p.elapsed

(** The one snapshot → progress mapping.  Both progress surfaces — the
    engine's stderr watchdog line ({!Chase_engine.Watchdog.pp_snapshot})
    and the service's streaming [progress] frames — draw from
    {!Chase_engine.Watchdog.fields}; this is the frame side, so the two
    cannot drift field-by-field. *)
let progress_of_snapshot (s : Chase_engine.Watchdog.snapshot) =
  let fields = Chase_engine.Watchdog.fields s in
  let get name = try List.assoc name fields with Not_found -> 0. in
  {
    step = int_of_float (get "step");
    atoms = int_of_float (get "facts");
    nulls = int_of_float (get "nulls");
    elapsed = get "elapsed";
  }

type response =
  | Ok_response of result
  | Progress of progress
      (** streaming only: a watchdog snapshot of a long chase, sent
          strictly before the final response — and the liveness signal
          a failover client uses to tell a slow chase from a dead
          server *)
  | Overloaded of float  (** seconds to wait before retrying *)
  | Bad_frame of string  (** framing broke; the connection is closing *)
  | Bad_request of string  (** well-framed but unintelligible or invalid *)
  | Server_error of string

(* [?trace] rides on outgoing frames only when the request carried a
   context — absent-by-default keeps untraced frames byte-identical,
   and the durable spool always stores the untraced form. *)
let encode_response ?trace ~id resp =
  let base = [ ("id", Jsonv.String id) ] in
  let tail =
    match trace with None -> [] | Some t -> [ ("trace", Jsonv.String t) ]
  in
  Jsonv.to_string
    (Jsonv.Obj
       ((match resp with
       | Progress p ->
         base
         @ [
             ("status", Jsonv.String "progress");
             ("step", Jsonv.Int p.step);
             ("atoms", Jsonv.Int p.atoms);
             ("nulls", Jsonv.Int p.nulls);
             ("elapsed_s", Jsonv.Float p.elapsed);
           ]
       | Ok_response r ->
         base
         @ [
             ("status", Jsonv.String "ok");
             ("exit", Jsonv.Int r.exit_code);
             ("stdout", Jsonv.String r.stdout);
             ("stderr", Jsonv.String r.stderr);
             ("cached", Jsonv.Bool r.cached);
           ]
       | Overloaded retry_after ->
         base
         @ [
             ("status", Jsonv.String "overloaded");
             ("retry_after_s", Jsonv.Float retry_after);
           ]
       | Bad_frame msg ->
         base
         @ [ ("status", Jsonv.String "bad-frame"); ("error", Jsonv.String msg) ]
       | Bad_request msg ->
         base
         @ [
             ("status", Jsonv.String "bad-request"); ("error", Jsonv.String msg);
           ]
       | Server_error msg ->
         base
         @ [ ("status", Jsonv.String "error"); ("error", Jsonv.String msg) ])
       @ tail))

let decode_response payload =
  match Jsonv.of_string payload with
  | Error msg -> Error (Fmt.str "invalid JSON: %s" msg)
  | Ok v -> (
    let id = Option.value ~default:"0" (get_string "id" v) in
    let err ~default = Option.value ~default (get_string "error" v) in
    match get_string "status" v with
    | Some "ok" ->
      Ok
        ( id,
          Ok_response
            {
              exit_code = Option.value ~default:0 (get_int "exit" v);
              stdout = Option.value ~default:"" (get_string "stdout" v);
              stderr = Option.value ~default:"" (get_string "stderr" v);
              cached = get_bool ~default:false "cached" v;
            } )
    | Some "progress" ->
      Ok
        ( id,
          Progress
            {
              step = Option.value ~default:0 (get_int "step" v);
              atoms = Option.value ~default:0 (get_int "atoms" v);
              nulls = Option.value ~default:0 (get_int "nulls" v);
              elapsed =
                Option.value ~default:0.
                  (Option.bind (Jsonv.member "elapsed_s" v) Jsonv.to_float_opt);
            } )
    | Some "overloaded" ->
      let ra =
        Option.value ~default:0.1
          (Option.bind (Jsonv.member "retry_after_s" v) Jsonv.to_float_opt)
      in
      Ok (id, Overloaded ra)
    | Some "bad-frame" -> Ok (id, Bad_frame (err ~default:"bad frame"))
    | Some "bad-request" -> Ok (id, Bad_request (err ~default:"bad request"))
    | Some "error" -> Ok (id, Server_error (err ~default:"server error"))
    | Some s -> Error (Fmt.str "unknown response status %S" s)
    | None -> Error "missing \"status\" field")

let pp_response fm = function
  | Ok_response r -> Fmt.pf fm "ok (exit %d)" r.exit_code
  | Progress p -> Fmt.pf fm "progress (%a)" pp_progress p
  | Overloaded ra -> Fmt.pf fm "overloaded (retry after %.3fs)" ra
  | Bad_frame m -> Fmt.pf fm "bad-frame: %s" m
  | Bad_request m -> Fmt.pf fm "bad-request: %s" m
  | Server_error m -> Fmt.pf fm "error: %s" m
