(** The chase daemon: Unix-domain-socket server multiplexing
    decide / chase / lint / query requests over the {!Proto} frame
    protocol, with admission control (bounded queue, load-shedding),
    a shared budget {!Pool} (backpressure), an idempotency {!Cache}
    (single-flight), a durable {!Spool} with boot recovery, and chaos
    hooks for the fault-injection harness. *)

type config = {
  socket : string;
  workers : int;
  queue_cap : int;
  pool_total : int;  (** shared trigger-credit pot *)
  per_request_cap : int;
  min_grant : int;
  cache_capacity : int;
  spool_dir : string option;  (** durable requests live here *)
  default_timeout : float;  (** per-request deadline when unspecified *)
  max_frame : int;
  read_timeout : float;  (** slow-loris bound on mid-frame stalls *)
  metrics : string option;  (** JSONL metrics file (chase-metrics/1) *)
  trace_shard : string option;
      (** per-process trace shard (JSONL of {!Chase_obs.Tracectx}
          records) — the server's contribution to a distributed trace,
          joined offline by [chasec trace-merge] *)
  flight : string option;
      (** flight-recorder dump file: the in-memory ring is appended
          here on crash-recovery boots, watchdog stalls, exhaustion
          and sheds *)
  faults : Chase_engine.Faults.service_fault list;
  on_durable :
    ([ `Req | `Resp ] ->
    key:string ->
    trace:string option ->
    string ->
    unit)
    option;
      (** called with the exact bytes just made durable in the spool,
          after the local fsync and before the client is answered — the
          replication shipper's semi-synchronous hook.  [trace] is the
          server-side span context of the request being shipped, so the
          replica's spans can nest under it *)
}

val config :
  ?workers:int ->
  ?queue_cap:int ->
  ?pool_total:int ->
  ?per_request_cap:int ->
  ?min_grant:int ->
  ?cache_capacity:int ->
  ?spool_dir:string ->
  ?default_timeout:float ->
  ?max_frame:int ->
  ?read_timeout:float ->
  ?metrics:string ->
  ?trace_shard:string ->
  ?flight:string ->
  ?faults:Chase_engine.Faults.service_fault list ->
  ?on_durable:
    ([ `Req | `Resp ] -> key:string -> trace:string option -> string -> unit) ->
  string ->
  config
(** [config socket] with serviceable defaults (4 workers, queue of 16,
    400k-credit pool capped at 100k per request). *)

type t

val start : config -> t
(** Bind, run boot recovery (complete every spooled request that has no
    response yet, resuming its journal), then start accepting. *)

val stop : ?graceful:bool -> t -> unit
(** [graceful] (default): stop accepting, drain the queue, answer
    everything accepted, write final metric summaries, remove the
    socket.  [~graceful:false] is {!kill}. *)

val kill : t -> unit
(** Simulated SIGKILL for in-process crash drills: cancel every
    in-flight run, close every fd, abandon the queue, write nothing
    more (no responses, no spool [.resp], no metric summaries). *)

val wait : t -> unit
(** Block until the server has fully stopped (either way). *)

val stats : t -> (string * int) list
(** Live counters, sorted by name — also served by the [stats] op. *)

val socket : t -> string
val is_stopping : t -> bool
