(** Client side of the chase service: connect, call, and the retry
    loop the protocol contract expects.

    Retryable failures — connection refused (daemon restarting), EOF or
    a torn frame mid-response (daemon killed, chaos-dropped
    connection), and structured [overloaded] responses — are retried
    with exponential backoff plus deterministic jitter; the server's
    [retry_after_s] hint is honoured when it is larger.  [bad-request]
    and [bad-frame] are {e not} retried: resending bytes the server
    already rejected cannot help.

    Safe because requests are idempotent by key: a retry of a request
    whose response was lost deduplicates server-side (cache,
    single-flight, durable spool). *)

type t = { fd : Unix.file_descr; mutable stash : (string * Proto.response) list }

let connect ~socket =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd; stash = [] }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Fmt.str "cannot connect to %s: %s" socket (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  match Proto.write_frame t.fd (Proto.encode_request req) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error (Fmt.str "send failed: %s" (Unix.error_message e))

(* Receive the response for [id]; responses for other in-flight ids on
   this connection are stashed for their own callers. *)
let recv t ~id =
  let rec loop () =
    match List.assoc_opt id t.stash with
    | Some resp ->
      t.stash <- List.remove_assoc id t.stash;
      Ok resp
    | None -> (
      match Proto.read_frame t.fd with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Fmt.str "recv failed: %s" (Unix.error_message e))
      | `Closed -> Error "connection closed before response"
      | `Bad msg -> Error (Fmt.str "bad response frame: %s" msg)
      | `Frame payload -> (
        match Proto.decode_response payload with
        | Error msg -> Error (Fmt.str "undecodable response: %s" msg)
        | Ok (rid, resp) ->
          if rid = id then Ok resp
          else begin
            t.stash <- t.stash @ [ (rid, resp) ];
            loop ()
          end))
  in
  loop ()

let call t req =
  match send t req with
  | Error _ as e -> e
  | Ok () -> recv t ~id:req.Proto.id

(* Deterministic jitter: a tiny LCG seeded per retry loop, so tests
   replay exactly and the fleet still spreads out. *)
let jitter_state seed = ref (seed land 0x3FFFFFFF)

let next_jitter st =
  st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
  float_of_int (!st mod 1000) /. 1000.

type failure =
  | Rejected of Proto.response  (** definitive: bad-request / error *)
  | Gave_up of string  (** attempts exhausted; last retryable error *)

let pp_failure fm = function
  | Rejected r -> Proto.pp_response fm r
  | Gave_up msg -> Fmt.pf fm "gave up: %s" msg

(* One-shot call with retries: fresh connection per attempt (the
   previous one may be half-dead), exponential backoff with jitter,
   the server's retry_after honoured as a floor. *)
let call_retry ?(attempts = 8) ?(base_delay = 0.05) ?(max_delay = 2.0)
    ?(seed = 0) ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) ~socket req =
  let st = jitter_state (seed + Hashtbl.hash req.Proto.id) in
  let rec go attempt last_err =
    if attempt >= attempts then Error (Gave_up last_err)
    else begin
      let backoff () =
        let d =
          Float.min max_delay
            (base_delay *. Float.pow 2.0 (float_of_int attempt))
        in
        d *. (0.5 +. next_jitter st)
      in
      let retry ?after msg =
        let delay =
          match after with Some a -> Float.max a (backoff ()) | None -> backoff ()
        in
        on_retry ~attempt ~delay msg;
        Thread.delay delay;
        go (attempt + 1) msg
      in
      match connect ~socket with
      | Error msg -> retry msg
      | Ok conn -> (
        let r = call conn req in
        close conn;
        match r with
        | Error msg -> retry msg
        | Ok (Proto.Overloaded after) ->
          retry ~after (Fmt.str "overloaded (retry after %.3fs)" after)
        | Ok (Proto.Ok_response _ as resp) -> Ok resp
        | Ok ((Proto.Bad_request _ | Proto.Server_error _ | Proto.Bad_frame _) as resp)
          ->
          (* bad-frame on a fresh, well-formed send means the server
             considers the stream broken: not retryable either *)
          Error (Rejected resp))
    end
  in
  go 0 "no attempt made"
