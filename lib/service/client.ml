(** Client side of the chase service: connect, call, and the retry
    loop the protocol contract expects.

    Retryable failures — connection refused (daemon restarting), EOF or
    a torn frame mid-response (daemon killed, chaos-dropped
    connection), and structured [overloaded] responses — are retried
    with exponential backoff plus deterministic jitter; the server's
    [retry_after_s] hint is honoured when it is larger.  [bad-request]
    and [bad-frame] are {e not} retried: resending bytes the server
    already rejected cannot help.

    Safe because requests are idempotent by key: a retry of a request
    whose response was lost deduplicates server-side (cache,
    single-flight, durable spool). *)

type t = { fd : Unix.file_descr; mutable stash : (string * Proto.response) list }

let connect ?rcv_timeout ~socket () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () ->
    (match rcv_timeout with
    | Some s -> (
      (* liveness bound: a failover client streaming progress treats a
         silent connection as a dead primary *)
      try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
      with Unix.Unix_error _ | Invalid_argument _ -> ())
    | None -> ());
    Ok { fd; stash = [] }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Fmt.str "cannot connect to %s: %s" socket (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  match Proto.write_frame t.fd (Proto.encode_request req) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error (Fmt.str "send failed: %s" (Unix.error_message e))

(* Receive the {e final} response for [id]; interleaved [progress]
   frames for [id] go to [on_progress] and the wait continues.
   Responses for other in-flight ids on this connection are stashed for
   their own callers (their progress frames included — each caller
   drains its own). *)
let recv ?(on_progress = fun (_ : Proto.progress) -> ()) t ~id =
  let rec loop () =
    match List.assoc_opt id t.stash with
    | Some (Proto.Progress p) ->
      t.stash <- List.remove_assoc id t.stash;
      on_progress p;
      loop ()
    | Some resp ->
      t.stash <- List.remove_assoc id t.stash;
      Ok resp
    | None -> (
      match Proto.read_frame t.fd with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Fmt.str "recv failed: %s" (Unix.error_message e))
      | `Closed -> Error "connection closed before response"
      | `Bad msg -> Error (Fmt.str "bad response frame: %s" msg)
      | `Frame payload -> (
        match Proto.decode_response payload with
        | Error msg -> Error (Fmt.str "undecodable response: %s" msg)
        | Ok (rid, Proto.Progress p) when rid = id ->
          on_progress p;
          loop ()
        | Ok (rid, resp) ->
          if rid = id then Ok resp
          else begin
            t.stash <- t.stash @ [ (rid, resp) ];
            loop ()
          end))
  in
  loop ()

let call ?on_progress t req =
  match send t req with
  | Error _ as e -> e
  | Ok () -> recv ?on_progress t ~id:req.Proto.id

(* Deterministic jitter: a tiny LCG seeded per retry loop, so tests
   replay exactly and the fleet still spreads out. *)
let jitter_state seed = ref (seed land 0x3FFFFFFF)

let next_jitter st =
  st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
  float_of_int (!st mod 1000) /. 1000.

type failure =
  | Rejected of Proto.response  (** definitive: bad-request / error *)
  | Gave_up of { attempts : int; total_wait : float; last : string }
      (** attempts exhausted: how many were made, how long was spent
          backing off, and the last retryable error *)

let pp_failure fm = function
  | Rejected r -> Proto.pp_response fm r
  | Gave_up { attempts; total_wait; last } ->
    Fmt.pf fm "gave up after %d attempts (%.3fs backing off): %s" attempts
      total_wait last

(* One-shot call with retries: fresh connection per attempt (the
   previous one may be half-dead), exponential backoff with jitter.
   The server's retry_after is honoured as a floor, but [max_delay] is
   a hard ceiling over everything — jitter and server hints included —
   so a confused server cannot wedge the client into hour-long naps. *)
let call_retry ?(attempts = 8) ?(base_delay = 0.05) ?(max_delay = 2.0)
    ?(seed = 0) ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) ?on_progress
    ~socket req =
  let st = jitter_state (seed + Hashtbl.hash req.Proto.id) in
  let total_wait = ref 0. in
  let rec go attempt last_err =
    if attempt >= attempts then
      Error (Gave_up { attempts; total_wait = !total_wait; last = last_err })
    else begin
      let backoff () =
        let d =
          Float.min max_delay
            (base_delay *. Float.pow 2.0 (float_of_int attempt))
        in
        d *. (0.5 +. next_jitter st)
      in
      let retry ?after msg =
        let delay =
          match after with Some a -> Float.max a (backoff ()) | None -> backoff ()
        in
        let delay = Float.min delay max_delay in
        total_wait := !total_wait +. delay;
        on_retry ~attempt ~delay msg;
        Thread.delay delay;
        go (attempt + 1) msg
      in
      match connect ~socket () with
      | Error msg -> retry msg
      | Ok conn -> (
        let r = call ?on_progress conn req in
        close conn;
        match r with
        | Error msg -> retry msg
        | Ok (Proto.Overloaded after) ->
          retry ~after (Fmt.str "overloaded (retry after %.3fs)" after)
        | Ok (Proto.Ok_response _ as resp) -> Ok resp
        | Ok (Proto.Progress _) ->
          (* recv never returns a progress frame as final; defensive *)
          retry "stray progress frame"
        | Ok ((Proto.Bad_request _ | Proto.Server_error _ | Proto.Bad_frame _) as resp)
          ->
          (* bad-frame on a fresh, well-formed send means the server
             considers the stream broken: not retryable either *)
          Error (Rejected resp))
    end
  in
  go 0 "no attempt made"
