(** The server-wide budget pool: a pot of trigger credits shared by all
    workers.  Grants shrink under load (never below [min_grant]), then
    block until credits return or the deadline passes — the service's
    backpressure.  Thread-safe. *)

type t

val create : ?per_request_cap:int -> ?min_grant:int -> total:int -> unit -> t
(** [per_request_cap] bounds a single grant (default: unbounded);
    [min_grant] is the smallest grant worth running with (default 1) —
    below it, {!acquire} waits instead of granting a sliver. *)

val acquire : t -> want:int -> ?deadline:float -> unit -> int option
(** [acquire t ~want ?deadline ()] blocks until at least
    [min min_grant want] credits are free, then grants
    [min want per_request_cap available].  [None] once [deadline]
    (absolute, {!Unix.gettimeofday} scale) passes or the pool closes. *)

val try_acquire : t -> want:int -> int option
(** Non-blocking {!acquire}. *)

val release : t -> int -> unit
(** Return a grant to the pot (clamped so accounting bugs cannot
    inflate the pool). *)

val available : t -> int
val close : t -> unit
(** Wake every waiter with [None]; subsequent acquires fail. *)
