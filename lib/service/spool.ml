(** The durable request spool: one directory holding, per idempotency
    key, the acknowledged request ([<key>.req]), the run's write-ahead
    journal ([<key>.jnl], plus the [.jnl.snap] the {!Chase_persist}
    machinery derives from it), and the finished response bytes
    ([<key>.resp]).

    The contract: once [put_request] returns, the request survives any
    kill — boot recovery ({!pending}) finds every [.req] without a
    [.resp], resumes its journal and completes it.  Both [.req] and
    [.resp] are written write-temp / fsync / rename, so a kill can
    leave stale [.tmp] litter but never a torn visible file. *)

type t = { dir : string }

let create ~dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ());
  { dir }

let dir t = t.dir
let req_path t ~key = Filename.concat t.dir (key ^ ".req")
let jnl_path t ~key = Filename.concat t.dir (key ^ ".jnl")
let resp_path t ~key = Filename.concat t.dir (key ^ ".resp")

(* Atomic durable write: temp file in the same directory, fsync, rename
   over the target, fsync the directory so the rename itself is
   durable — the shared {!Chase_persist.Fsutil} cycle. *)
let write_atomic path data = Chase_persist.Fsutil.write_atomic path data

let read_file path =
  match open_in_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None

let put_request t ~key data = write_atomic (req_path t ~key) data
let put_response t ~key data = write_atomic (resp_path t ~key) data
let get_request t ~key = read_file (req_path t ~key)
let get_response t ~key = read_file (resp_path t ~key)
let has_response t ~key = Sys.file_exists (resp_path t ~key)

(* Keys acknowledged but not answered — the boot-recovery work list.
   Stale [.tmp] litter from a kill mid-write is ignored (and a torn
   [.req.tmp] never became visible, so its request was never
   acknowledged). *)
let pending t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun n -> Filename.chop_suffix_opt ~suffix:".req" n)
    |> List.filter (fun key -> not (has_response t ~key))
    |> List.sort String.compare

let remove t ~key =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [
      req_path t ~key;
      jnl_path t ~key;
      jnl_path t ~key ^ ".snap";
      jnl_path t ~key ^ ".snap.tmp";
      resp_path t ~key;
    ]
