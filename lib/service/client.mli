(** Client side of the chase service.  {!call_retry} implements the
    protocol's retry contract: connection failures, torn responses and
    [overloaded] answers are retried with exponential backoff plus
    deterministic jitter (honouring the server's [retry_after_s] as a
    floor); [bad-request] / [error] / [bad-frame] are definitive.
    Retries are safe because requests deduplicate server-side by
    idempotency key. *)

type t

val connect : ?rcv_timeout:float -> socket:string -> unit -> (t, string) result
(** [rcv_timeout] bounds every read on the connection ([SO_RCVTIMEO]) —
    the failover client's liveness bound: a streaming request whose
    progress frames stop arriving within the bound means a dead
    primary, not a slow chase. *)

val close : t -> unit

val call :
  ?on_progress:(Proto.progress -> unit) ->
  t ->
  Proto.request ->
  (Proto.response, string) result
(** Send one request and wait for its {e final} response on this
    connection; interleaved [progress] frames go to [on_progress]
    (dropped by default).  Responses to other pipelined ids are
    stashed, not lost.  The error case means the connection is
    unusable. *)

val send : t -> Proto.request -> (unit, string) result

val recv :
  ?on_progress:(Proto.progress -> unit) ->
  t ->
  id:string ->
  (Proto.response, string) result

type failure =
  | Rejected of Proto.response  (** definitive server answer *)
  | Gave_up of { attempts : int; total_wait : float; last : string }
      (** attempts exhausted: how many, total backoff spent, last error *)

val pp_failure : Format.formatter -> failure -> unit

val call_retry :
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?seed:int ->
  ?on_retry:(attempt:int -> delay:float -> string -> unit) ->
  ?on_progress:(Proto.progress -> unit) ->
  socket:string ->
  Proto.request ->
  (Proto.response, failure) result
(** Fresh connection per attempt.  [Ok] is always an
    [Proto.Ok_response].  [seed] makes the jitter reproducible;
    [max_delay] is a hard ceiling on every single backoff, the server's
    [retry_after_s] hint included. *)
