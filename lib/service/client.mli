(** Client side of the chase service.  {!call_retry} implements the
    protocol's retry contract: connection failures, torn responses and
    [overloaded] answers are retried with exponential backoff plus
    deterministic jitter (honouring the server's [retry_after_s] as a
    floor); [bad-request] / [error] / [bad-frame] are definitive.
    Retries are safe because requests deduplicate server-side by
    idempotency key. *)

type t

val connect : socket:string -> (t, string) result
val close : t -> unit

val call : t -> Proto.request -> (Proto.response, string) result
(** Send one request and wait for its response on this connection
    (responses to other pipelined ids are stashed, not lost).  The
    error case means the connection is unusable. *)

val send : t -> Proto.request -> (unit, string) result
val recv : t -> id:string -> (Proto.response, string) result

type failure =
  | Rejected of Proto.response  (** definitive server answer *)
  | Gave_up of string  (** attempts exhausted; last retryable error *)

val pp_failure : Format.formatter -> failure -> unit

val call_retry :
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?seed:int ->
  ?on_retry:(attempt:int -> delay:float -> string -> unit) ->
  socket:string ->
  Proto.request ->
  (Proto.response, failure) result
(** Fresh connection per attempt.  [Ok] is always an
    [Proto.Ok_response].  [seed] makes the jitter reproducible. *)
