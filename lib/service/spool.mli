(** Durable request spool: per idempotency key, the acknowledged
    request bytes, the run's journal path, and the finished response
    bytes.  All visible writes are write-temp / fsync / rename — a kill
    leaves [.tmp] litter, never a torn file.  {!pending} is the boot
    recovery work list: acknowledged requests with no response yet. *)

type t

val create : dir:string -> t
(** Creates [dir] if missing. *)

val dir : t -> string
val req_path : t -> key:string -> string
val jnl_path : t -> key:string -> string
(** Where a durable run's write-ahead journal lives (the [.snap]
    convention of {!Chase_persist.Session} applies on top). *)

val resp_path : t -> key:string -> string
val put_request : t -> key:string -> string -> unit
val put_response : t -> key:string -> string -> unit
val get_request : t -> key:string -> string option
val get_response : t -> key:string -> string option
val has_response : t -> key:string -> bool

val pending : t -> string list
(** Keys with a request but no response, sorted. *)

val remove : t -> key:string -> unit
(** Delete every artifact of the key. *)
