(** The shared run driver behind the CLIs and the service.

    [chase_cli], [termination_cli] and [lint_cli] used to own their run
    logic; the daemon must produce {e byte-identical} output for the
    same input, so the logic lives here once, parameterized over the
    output formatters.  The CLIs pass [Format.std_formatter] /
    [Format.err_formatter]; the service passes buffer formatters and
    ships the bytes back in the response.  Parity is by construction,
    and the cram suite pins it end-to-end.

    Each entry point takes the already-read source text ([src]) plus a
    display name ([file]) for diagnostics, and returns the process exit
    code the corresponding CLI would have used. *)

open Chase_logic
module Variant = Chase_engine.Variant
module Engine = Chase_engine.Engine
module Limits = Chase_engine.Limits
module Watchdog = Chase_engine.Watchdog
module Critical = Chase_engine.Critical
module Profile = Chase_engine.Profile
module Obs = Chase_obs.Obs
module Flight = Chase_obs.Flight
module Session = Chase_persist.Session
module Recovery = Chase_persist.Recovery
module Decide = Chase_termination.Decide
module Verdict = Chase_termination.Verdict
module Report = Chase_termination.Report
module Guarded = Chase_termination.Guarded
module Classify = Chase_classes.Classify
module Lint = Chase_analysis.Lint
module Json = Chase_obs.Jsonv
module Diagnostic = Chase_analysis.Diagnostic
module Schema_check = Chase_analysis.Schema_check

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Shared parsing and preflight                                        *)
(* ------------------------------------------------------------------ *)

(* [parse_program] with source locations kept: same error string for
   EGDs, and the located statements feed the arity preflight and
   [--lint]. *)
let parse_located_program src =
  match Parser.parse_located src with
  | Error _ as e -> e
  | Ok p -> (
    match p.Parser.legds with
    | (_, line) :: _ ->
      Error
        (Fmt.str
           "line %d: unexpected EGD: use parse_program_full for programs \
            with EGDs"
           line)
    | [] -> Ok p)

(* [parse_rules] with source locations kept. *)
let parse_located_rules src =
  match Parser.parse_located src with
  | Error _ as e -> e
  | Ok p -> (
    match p.Parser.legds with
    | (_, line) :: _ ->
      Error
        (Fmt.str
           "line %d: unexpected EGD: use parse_program_full for programs \
            with EGDs"
           line)
    | [] -> (
      match p.Parser.lfacts with
      | (_, line) :: _ ->
        Error (Fmt.str "line %d: unexpected fact in a rule file" line)
      | [] -> Ok p.Parser.lrules))

(* The arity preflight ([E001]) guards every code path that builds the
   joint schema (the critical instance, the engine indexes); with
   [lint] the whole static battery runs and errors are fatal. *)
let preflight ~err ~file ~lint (p : Parser.located_program) =
  if lint then begin
    let report = Lint.analyze (Lint.of_program p) in
    List.iter
      (fun d -> Fmt.pf err "%a@." (Diagnostic.pp ~file) d)
      report.Lint.diagnostics;
    Lint.errors report = 0
  end
  else
    match
      Schema_check.check ~rules:p.Parser.lrules ~facts:p.Parser.lfacts ()
    with
    | [] -> true
    | diags ->
      List.iter (fun d -> Fmt.pf err "%a@." (Diagnostic.pp ~file) d) diags;
      false

let preflight_rules ~err ~file ~lint lrules =
  if lint then begin
    let report = Lint.analyze { Lint.rules = lrules; egds = []; facts = [] } in
    List.iter
      (fun d -> Fmt.pf err "%a@." (Diagnostic.pp ~file) d)
      report.Lint.diagnostics;
    Lint.errors report = 0
  end
  else
    match Schema_check.check ~rules:lrules ~facts:[] () with
    | [] -> true
    | diags ->
      List.iter (fun d -> Fmt.pf err "%a@." (Diagnostic.pp ~file) d) diags;
      false

let watchdog_of ?on_snapshot ~err ~obs progress =
  if (not progress) && Option.is_none on_snapshot then None
  else
    (* the human stderr ticker is coarse; a machine consumer (the
       service's streaming progress frames) wants finer grain *)
    let every, min_interval =
      if progress then (1024, 0.25) else (256, 0.05)
    in
    Some
      (Watchdog.create ~every ~min_interval (fun s ->
           Obs.series obs "watchdog" (Watchdog.fields s);
           Obs.flush obs;
           Flight.record ~kind:"watchdog"
             ~name:(Fmt.str "step-%d" s.Watchdog.step)
             (Fmt.str "%.0f/s" s.Watchdog.steps_per_sec);
           if progress then begin
             Fmt.pf err "%a@." Watchdog.pp_snapshot s;
             (* explicit flush: a kill mid-interval must not eat buffered
                progress lines *)
             Format.pp_print_flush err ()
           end;
           Option.iter (fun f -> f s) on_snapshot))

(* ------------------------------------------------------------------ *)
(* chase                                                               *)
(* ------------------------------------------------------------------ *)

type chase_opts = {
  variant : Variant.t;
  budget : int;
  max_atoms : int;
  timeout : float option;
  progress : bool;
  critical : bool;
  standard : bool;
  quiet : bool;
  journal : string option;
  snapshot_every : int;
  journal_sync : int;
  resume : string option;
  resume_or_start : bool;
      (** service mode: when [resume] fails because the journal is
          missing or unusable, start a fresh journaled run at the same
          path instead of failing — boot recovery must make progress on
          a journal a kill left headerless *)
  lint : bool;
  trace : string option;
  metrics : string option;
  profile : bool;
  cancel : Limits.Cancel.t option;
  on_status : (Engine.status -> unit) option;
      (** observe the run's final status (the service's cacheability
          decision needs the breach, not just the exit code) *)
  resume_log : Format.formatter option;
      (** where resume/recovery diagnostics go (default [err]).  The
          service points this at its own log so a kill-resumed durable
          run's response stays byte-identical to a single-shot one *)
  on_progress : (Watchdog.snapshot -> unit) option;
      (** machine-readable progress: called at watchdog cadence with
          each snapshot.  Independent of [progress] (the human stderr
          ticker) and never touches [out]/[err], so enabling it cannot
          change the response bytes *)
}

let chase_opts ?(variant = Variant.Oblivious) ?(budget = 100_000)
    ?(max_atoms = 400_000) ?timeout ?(progress = false) ?(critical = false)
    ?(standard = false) ?(quiet = false) ?journal ?(snapshot_every = 512)
    ?(journal_sync = 64) ?resume ?(resume_or_start = false) ?(lint = false)
    ?trace ?metrics ?(profile = false) ?cancel ?on_status ?resume_log
    ?on_progress () =
  {
    variant;
    budget;
    max_atoms;
    timeout;
    progress;
    critical;
    standard;
    quiet;
    journal;
    snapshot_every;
    journal_sync;
    resume;
    resume_or_start;
    lint;
    trace;
    metrics;
    profile;
    cancel;
    on_status;
    resume_log;
    on_progress;
  }

let chase o ~file ~src ~out ~err =
  let rlog = Option.value o.resume_log ~default:err in
  match parse_located_program src with
  | Error msg ->
    Fmt.pf err "parse error: %s@." msg;
    1
  | Ok p when not (preflight ~err ~file ~lint:o.lint p) -> 2
  | Ok p ->
    let rules = List.map fst p.Parser.lrules
    and facts = List.map fst p.Parser.lfacts in
    let db =
      if o.critical then
        Instance.to_list (Critical.of_rules ~standard:o.standard rules)
      else facts
    in
    if db = [] then begin
      Fmt.pf err "no database: give facts in the file or pass --critical@.";
      1
    end
    else begin
      match Obs.files ?trace:o.trace ?metrics:o.metrics ~force:o.profile () with
      | Error msg ->
        Fmt.pf err "error: %s@." msg;
        1
      | Ok (obs, obs_close) -> (
        let limits =
          Limits.make ~max_triggers:o.budget ~max_atoms:o.max_atoms
            ?timeout:o.timeout ?cancel:o.cancel ()
        in
        let config = { Engine.variant = o.variant; limits } in
        let watchdog =
          watchdog_of ?on_snapshot:o.on_progress ~err ~obs o.progress
        in
        (* Durability wiring: a fresh journal, a resumed one, or none. *)
        let durability =
          match o.resume with
          | Some jpath -> (
            let snapshot = Session.snapshot_path jpath in
            let fresh () =
              Ok
                ( Some
                    (Session.start ~obs ~journal:jpath ~snapshot
                       ~snapshot_every:o.snapshot_every
                       ~fsync_every:o.journal_sync ~variant:o.variant ~rules
                       ~db ()),
                  None )
            in
            match
              Recovery.recover ~snapshot ~journal:jpath ~variant:o.variant
                ~rules ~db ()
            with
            | Error msg when o.resume_or_start ->
              (* boot recovery: the kill may have landed before the
                 header reached the disk — restart the run, reusing the
                 journal path so the next kill still recovers *)
              Fmt.pf rlog "cannot recover (%s): starting fresh@." msg;
              fresh ()
            | Error msg -> Error msg
            | Ok report when o.resume_or_start ->
              (* service mode: the recovery certified the journal (every
                 record replayed against these rules and this database),
                 but a stitched continuation is not byte-stable — the
                 worklist order at the kill point is not reconstructible
                 from the journal alone, and the printed run statistics
                 (max depth, and under exhaustion far more) depend on it.
                 Restart from step zero instead: deterministic replay
                 makes the response byte-identical to a single-shot run,
                 which is the stronger service invariant. *)
              Fmt.pf rlog
                "recovered %d journal records through step %d: restarting \
                 for deterministic replay@."
                (List.length report.Recovery.history)
                report.Recovery.resume.Engine.next_step;
              fresh ()
            | Ok report ->
              (match report.Recovery.torn with
              | Some (off, why) ->
                Fmt.pf rlog "journal: truncated torn tail at byte %d (%s)@."
                  off why
              | None -> ());
              Fmt.pf rlog "resuming at step %d (%d journal records%s)@."
                report.Recovery.resume.Engine.next_step
                (List.length report.Recovery.history)
                (if report.Recovery.snapshot_step > 0 then
                   Fmt.str ", snapshot through step %d"
                     report.Recovery.snapshot_step
                 else "");
              let s =
                Session.continue_ ~obs ~journal:jpath ~snapshot
                  ~snapshot_every:o.snapshot_every
                  ~fsync_every:o.journal_sync report
              in
              Ok (Some s, Some report.Recovery.resume))
          | None -> (
            match o.journal with
            | Some jpath ->
              let snapshot = Session.snapshot_path jpath in
              Ok
                ( Some
                    (Session.start ~obs ~journal:jpath ~snapshot
                       ~snapshot_every:o.snapshot_every
                       ~fsync_every:o.journal_sync ~variant:o.variant ~rules
                       ~db ()),
                  None )
            | None -> Ok (None, None))
        in
        match durability with
        | Error msg ->
          obs_close ();
          Fmt.pf err "cannot resume: %s@." msg;
          2
        | Ok (session, resume) -> (
          let on_trigger = Option.map Session.on_trigger session in
          let result =
            Engine.run ~config ~obs ?resume ?on_trigger ?watchdog rules db
          in
          Option.iter Session.finish session;
          obs_close ();
          Option.iter (fun f -> f result.Engine.status) o.on_status;
          if not o.quiet then
            List.iter
              (fun a -> Fmt.pf out "%a.@." Atom.pp a)
              (Instance.to_sorted_list result.Engine.instance);
          Fmt.pf out "%a@." Engine.pp_result result;
          if o.profile then Fmt.pf out "%a@." Profile.pp (Obs.metrics obs);
          match result.Engine.status with
          | Engine.Terminated -> 0
          | Engine.Exhausted reason ->
            (* post-mortem: the flight ring holds the run's last events.
               A deadline breach is the watchdog's stall verdict — the
               run was alive but not converging *)
            Flight.record ~kind:"exhausted" ~name:file
              (Fmt.str "%a" Limits.pp_breach reason.Limits.Exhaustion.breach);
            Flight.dump
              ~reason:
                (match reason.Limits.Exhaustion.breach with
                | Limits.Deadline _ -> "watchdog-stall"
                | _ -> "exhaustion");
            Fmt.pf err "%a@." Limits.Exhaustion.pp reason;
            2))
    end

(* ------------------------------------------------------------------ *)
(* decide                                                              *)
(* ------------------------------------------------------------------ *)

type decide_opts = {
  variant : Variant.t;
  budget : int;
  standard : bool;
  timeout : float option;
  progress : bool;
  report : bool;
  lint : bool;
  trace : string option;
  metrics : string option;
  profile : bool;
  cancel : Limits.Cancel.t option;
  on_verdict : (Verdict.t -> unit) option;
}

let decide_opts ?(variant = Variant.Semi_oblivious) ?(budget = 50_000)
    ?(standard = true) ?timeout ?(progress = false) ?(report = false)
    ?(lint = false) ?trace ?metrics ?(profile = false) ?cancel ?on_verdict ()
    =
  {
    variant;
    budget;
    standard;
    timeout;
    progress;
    report;
    lint;
    trace;
    metrics;
    profile;
    cancel;
    on_verdict;
  }

let decide o ~file ~src ~out ~err =
  match parse_located_rules src with
  | Error msg ->
    Fmt.pf err "parse error: %s@." msg;
    1
  | Ok lrules when not (preflight_rules ~err ~file ~lint:o.lint lrules) -> 2
  | Ok lrules ->
    let rules = List.map fst lrules in
    if o.report then begin
      Fmt.pf out "%a@." Report.pp (Report.build ~budget:o.budget rules);
      0
    end
    else begin
      match Obs.files ?trace:o.trace ?metrics:o.metrics ~force:o.profile () with
      | Error msg ->
        Fmt.pf err "error: %s@." msg;
        1
      | Ok (obs, obs_close) -> (
        Fmt.pf out "class: %a@." Classify.pp_cls (Classify.classify rules);
        let limits =
          match (o.timeout, o.cancel) with
          | None, None -> None
          | timeout, cancel ->
            Some
              (Limits.make ~max_triggers:o.budget ~max_atoms:(4 * o.budget)
                 ?timeout ?cancel ())
        in
        let watchdog = watchdog_of ~err ~obs o.progress in
        let v =
          Decide.check ~standard:o.standard ~budget:o.budget ?limits ?watchdog
            ~obs ~variant:o.variant rules
        in
        obs_close ();
        Option.iter (fun f -> f v) o.on_verdict;
        Fmt.pf out "%a@." Verdict.pp v;
        if o.profile then Fmt.pf out "%a@." Profile.pp (Obs.metrics obs);
        match Verdict.answer v with
        | Verdict.Terminates -> 0
        | Verdict.Diverges -> 2
        | Verdict.Unknown -> 3)
    end

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

type lint_format =
  | Human
  | Json_format

type lint_opts = {
  format : lint_format;
  explain : Variant.t list;
  analyze : bool;
  budget : int;
  standard : bool;
}

let lint_opts ?(format = Human) ?(explain = []) ?(analyze = false)
    ?(budget = -1) ?(standard = true) () =
  let budget = if budget < 0 then Guarded.default_budget else budget in
  { format; explain; analyze; budget; standard }

let lint_one o ~file ~src ~out ~err =
  match Parser.parse_located src with
  | Error msg ->
    Fmt.pf err "%s: parse error: %s@." file msg;
    2
  | Ok program ->
    let report =
      Lint.analyze ~explain:o.explain ~dataflow:o.analyze
        ~standard:o.standard ~budget:o.budget (Lint.of_program program)
    in
    (match o.format with
    | Human -> Fmt.pf out "%a" (Lint.pp_human ~file) report
    | Json_format ->
      Fmt.pf out "%s@." (Json.to_string (Lint.to_json ~file report)));
    Lint.exit_code report

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

(* A conjunctive query is written as one rule whose head is the answer
   atom: [q(X, Y) :- body] is ["body -> q(X, Y)."].  The program is
   chased (same options as the chase op) and the certain answers — the
   null-free tuples — are printed as facts, sorted.  A boolean query
   (propositional head) prints [true.] or [false.]. *)
let parse_query q =
  match Parser.parse_rule_exn q with
  | exception Parser.Parse_error msg -> Error (Fmt.str "bad query: %s" msg)
  | rule -> (
    match Tgd.head rule with
    | [ answer ] -> (
      let vars =
        List.map
          (function
            | Term.Var v -> Ok v
            | t -> Error (Fmt.str "query head argument %a is not a variable"
                            Term.pp t))
          (Array.to_list (Atom.args answer))
      in
      match List.find_opt Result.is_error vars with
      | Some (Error msg) -> Error msg
      | _ -> (
        let answer_vars = List.filter_map Result.to_option vars in
        match
          Query.make ~name:(Atom.pred answer) ~answer_vars (Tgd.body rule)
        with
        | Ok query -> Ok (query, Atom.pred answer)
        | Error msg -> Error (Fmt.str "bad query: %s" msg)))
    | _ -> Error "query must have exactly one head atom")

let query (o : chase_opts) ~query:q ~file ~src ~out ~err =
  match parse_query q with
  | Error msg ->
    Fmt.pf err "%s@." msg;
    1
  | Ok (query, pred) -> (
    match parse_located_program src with
    | Error msg ->
      Fmt.pf err "parse error: %s@." msg;
      1
    | Ok p when not (preflight ~err ~file ~lint:o.lint p) -> 2
    | Ok p ->
      let rules = List.map fst p.Parser.lrules
      and facts = List.map fst p.Parser.lfacts in
      if facts = [] then begin
        Fmt.pf err "no database: give facts in the file@.";
        1
      end
      else begin
        let limits =
          Limits.make ~max_triggers:o.budget ~max_atoms:o.max_atoms
            ?timeout:o.timeout ?cancel:o.cancel ()
        in
        let config = { Engine.variant = o.variant; limits } in
        let result = Engine.run ~config rules facts in
        Option.iter (fun f -> f result.Engine.status) o.on_status;
        let answers = Query.certain_answers query result.Engine.instance in
        if Query.answer_vars query = [] then
          Fmt.pf out "%s@." (if answers <> [] then "true." else "false.")
        else
          List.iter
            (fun tuple -> Fmt.pf out "%a.@." Atom.pp (Atom.of_list pred tuple))
            answers;
        match result.Engine.status with
        | Engine.Terminated -> 0
        | Engine.Exhausted reason ->
          (* the printed answers are sound but possibly incomplete: the
             chase stopped short of a universal model *)
          Fmt.pf err "%a@." Limits.Exhaustion.pp reason;
          2
      end)
