(** The chase daemon: a Unix-domain-socket server multiplexing
    decide / chase / lint / query requests from concurrent clients over
    the {!Proto} frame protocol.

    Request path: conn thread reads a frame, takes the idempotency key
    in the {!Cache} (hit → answer inline; join → block on the leader's
    flight), and as leader submits the job to the {!Admission}
    controller — which sheds with a structured [overloaded] +
    [retry_after] when the queue is full.  A worker draws its trigger
    budget from the shared {!Pool} (backpressure), runs the op through
    the shared {!Driver} (so the bytes match the CLIs), publishes the
    flight and responds on the originating connection.  Responses go
    out in completion order; requests pipeline by [id].

    Durability: a [durable:true] chase is acknowledged by spooling the
    request (fsync) {e before} it runs, journals through the spool's
    per-key journal path, and writes its response bytes back to the
    spool.  Boot recovery ({!start}) replays every acknowledged request
    without a response — resuming its journal where the kill left it —
    so acknowledged requests are never lost.

    Chaos hooks: the config carries {!Chase_engine.Faults.service_fault}s
    (accept-loop death, mid-response connection drops, slow chunked
    responses), and {!kill} is a simulated [SIGKILL] — every fd is
    closed, every in-flight token cancelled, nothing more is written
    (in particular no [.resp]) — for in-process crash drills. *)

module Faults = Chase_engine.Faults
module Limits = Chase_engine.Limits
module Variant = Chase_engine.Variant
module Engine = Chase_engine.Engine
module Watchdog = Chase_engine.Watchdog
module Obs = Chase_obs.Obs
module Tracectx = Chase_obs.Tracectx
module Flight = Chase_obs.Flight
module Telemetry = Chase_obs.Telemetry

type config = {
  socket : string;
  workers : int;
  queue_cap : int;
  pool_total : int;
  per_request_cap : int;
  min_grant : int;
  cache_capacity : int;
  spool_dir : string option;
  default_timeout : float;
  max_frame : int;
  read_timeout : float;  (** slow-loris bound on mid-frame stalls *)
  metrics : string option;
  trace_shard : string option;
      (** per-process JSONL span shard: requests arriving with a trace
          context get server-side spans appended here, for offline
          joining by [chasec trace-merge] *)
  flight : string option;
      (** where the flight recorder appends its JSONL post-mortems
          (crash-recovery boots, load sheds); [None] disables dumping *)
  faults : Faults.service_fault list;
  on_durable :
    ([ `Req | `Resp ] -> key:string -> trace:string option -> string -> unit)
    option;
      (** called with the exact bytes just made durable in the spool,
          after the local fsync and before the client is answered — the
          replication shipper's semi-synchronous hook.  The server knows
          nothing about replication; it only promises the ordering.
          [trace] is the server span's context when the request carried
          one, so shipped frames can parent their spans under it *)
}

let config ?(workers = 4) ?(queue_cap = 16) ?(pool_total = 400_000)
    ?(per_request_cap = 100_000) ?(min_grant = 1_000) ?(cache_capacity = 256)
    ?spool_dir ?(default_timeout = 30.) ?(max_frame = Proto.default_max_frame)
    ?(read_timeout = 10.) ?metrics ?trace_shard ?flight ?(faults = [])
    ?on_durable socket =
  {
    socket;
    workers;
    queue_cap;
    pool_total;
    per_request_cap;
    min_grant;
    cache_capacity;
    spool_dir;
    default_timeout;
    max_frame;
    read_timeout;
    metrics;
    trace_shard;
    flight;
    faults;
    on_durable;
  }

type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;  (* one response frame at a time *)
  mutable alive : bool;
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  pool : Pool.t;
  cache : Cache.t;
  adm : Admission.t;
  spool : Spool.t option;
  obs : Obs.t;
  obs_close : unit -> unit;
  obs_mu : Mutex.t;  (* Obs/Metrics are not thread-safe *)
  started : float;  (* boot wall-clock, for uptime reporting *)
  shard : Tracectx.Shard.writer option;  (* internally thread-safe *)
  mutable last_flight_dump : float;  (* shed post-mortems, rate-limited *)
  mu : Mutex.t;  (* conns / tokens / counters *)
  mutable conns : conn list;
  mutable conn_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable tokens : Limits.Cancel.t list;
  mutable accepts : int;
  mutable responses : int;
  mutable bad_frames : int;
  mutable cache_hits : int;
  mutable recovered : int;
  mutable killed : bool;
  mutable stopping : bool;
  cond : Condition.t;  (* signalled when [finished] flips *)
  mutable finished : bool;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Every Obs touch goes through this: the Metrics registry is a bare
   Hashtbl and spans are stack-matched, neither safe under the worker
   threads. *)
let with_obs t f =
  Mutex.lock t.obs_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.obs_mu) (fun () -> f t.obs)

let gauge_depth t =
  with_obs t (fun obs ->
      Obs.set_gauge obs "svc.queue_depth" (float_of_int (Admission.depth t.adm)))

(* ------------------------------------------------------------------ *)
(* Trace context and the flight recorder                               *)
(* ------------------------------------------------------------------ *)

(** A traced request in flight: the client's root context and the
    server span minted under it.  Only built when the request carried a
    well-formed context {e and} this server writes a shard — tracing is
    free for everyone else. *)
type treq = {
  root : Tracectx.t;
  server : Tracectx.t;
  arrival_us : float;
}

let treq_of t req =
  match (t.shard, req.Proto.trace) with
  | Some _, Some s ->
    Option.map
      (fun root ->
        { root; server = Tracectx.child root; arrival_us = Tracectx.now_us () })
      (Tracectx.of_string s)
  | _ -> None

(* A child span of the server span: fresh id, parented under it. *)
let span_child t c ~name ~ts_us ~dur_us ?args () =
  Option.iter
    (fun w ->
      Tracectx.Shard.span w
        ~ctx:(Tracectx.child c.root)
        ~parent:c.server.Tracectx.span ~name ~ts_us ~dur_us ?args ())
    t.shard

let instant_child t c ~name ?args () =
  span_child t c ~name ~ts_us:(Tracectx.now_us ()) ~dur_us:0. ?args ()

(* The server span itself, emitted once the final response is known. *)
let span_server t c ~op ~status =
  Option.iter
    (fun w ->
      Tracectx.Shard.span w ~ctx:c.server ~parent:c.root.Tracectx.span
        ~name:("server." ^ Proto.op_to_string op)
        ~ts_us:c.arrival_us
        ~dur_us:(Tracectx.now_us () -. c.arrival_us)
        ~args:[ ("status", Chase_obs.Jsonv.String status) ]
        ())
    t.shard

let status_of_response = function
  | Proto.Ok_response r -> if r.Proto.cached then "ok-cached" else "ok"
  | Proto.Progress _ -> "progress"
  | Proto.Overloaded _ -> "overloaded"
  | Proto.Bad_frame _ -> "bad-frame"
  | Proto.Bad_request _ -> "bad-request"
  | Proto.Server_error _ -> "error"

(* Anomaly post-mortems: at most one shed dump per window, so a
   sustained overload yields evidence without drowning the disk. *)
let flight_dump_limited t ~reason =
  let now = Unix.gettimeofday () in
  let due =
    locked t (fun () ->
        if now -. t.last_flight_dump >= 5.0 then begin
          t.last_flight_dump <- now;
          true
        end
        else false)
  in
  if due then Flight.dump ~reason

(* ------------------------------------------------------------------ *)
(* Responding, with chaos faults applied                               *)
(* ------------------------------------------------------------------ *)

let find_drop t k =
  List.find_map
    (function
      | Faults.Drop_response_after (k', bytes) when k' = k -> Some bytes
      | _ -> None)
    t.cfg.faults

let find_slow t k =
  List.find_map
    (function
      | Faults.Slow_response (k', chunk) when k' = k -> Some chunk
      | _ -> None)
    t.cfg.faults

let write_slice fd s pos len =
  let b = Bytes.of_string s in
  let pos = ref pos and remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd b !pos !remaining in
    pos := !pos + n;
    remaining := !remaining - n
  done

(* Send one response frame on the connection.  The k-th response
   system-wide can be chaos-shaped: cut after N bytes (then the
   connection dies), or dribbled out in tiny chunks.  Write errors mark
   the connection dead — the client's problem, handled by its retry. *)
let respond t conn ~id ?trace resp =
  let k = locked t (fun () -> t.responses <- t.responses + 1; t.responses) in
  let frame = Proto.frame_string (Proto.encode_response ?trace ~id resp) in
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      if conn.alive && not t.killed then
        try
          match find_drop t k with
          | Some bytes ->
            write_slice conn.fd frame 0 (min bytes (String.length frame));
            conn.alive <- false;
            (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ());
            (try Unix.close conn.fd with Unix.Unix_error _ -> ())
          | None -> (
            match find_slow t k with
            | Some chunk ->
              let chunk = max 1 chunk in
              let len = String.length frame in
              let pos = ref 0 in
              while !pos < len do
                write_slice conn.fd frame !pos (min chunk (len - !pos));
                pos := !pos + chunk;
                Thread.yield ()
              done
            | None -> write_slice conn.fd frame 0 (String.length frame))
        with Unix.Unix_error _ -> conn.alive <- false)

(* ------------------------------------------------------------------ *)
(* Running one request through the Driver                              *)
(* ------------------------------------------------------------------ *)

let buffer_formatter () =
  let buf = Buffer.create 512 in
  let fm = Format.formatter_of_buffer buf in
  (buf, fm)

(* Resume/recovery chatter is the daemon's business, not the client's: a
   kill-resumed durable run must answer byte-identically to a fresh one. *)
let sink_formatter = Format.make_formatter (fun _ _ _ -> ()) ignore

let variant_of req ~default =
  match req.Proto.variant with
  | None -> Ok default
  | Some s -> (
    match Variant.of_string s with
    | Some v -> Ok v
    | None -> Error (Fmt.str "unknown chase variant %S" s))

(* Execute the op with the granted budget; returns the result plus
   whether it is safe to retain.  Deadline- or cancel-poisoned results
   must not be cached (a retry with a fresh deadline deserves a fresh
   run), and neither may anything whose bytes embed wall-clock time —
   exhaustion diagnostics, Unknown decide verdicts. *)
let execute t req ~grant ~timeout ~cancel ~progress =
  let out_buf, out = buffer_formatter () in
  let err_buf, err = buffer_formatter () in
  let breached = ref false in
  let on_status = function
    | Engine.Exhausted _ ->
      (* every exhaustion diagnostic embeds wall-clock time
         ({!Limits.Exhaustion.pp} prints elapsed seconds): replaying
         such bytes from the cache would serve a stale clock, so no
         exhausted run is ever a cache candidate *)
      breached := true
    | Engine.Terminated -> ()
  in
  let finish exit_code =
    Format.pp_print_flush out ();
    Format.pp_print_flush err ();
    let result =
      {
        Proto.exit_code;
        stdout = Buffer.contents out_buf;
        stderr = Buffer.contents err_buf;
        cached = false;
      }
    in
    (result, (not !breached) && not (Limits.Cancel.is_cancelled cancel))
  in
  let file = req.Proto.file and src = req.Proto.program in
  match req.Proto.op with
  | Proto.Decide -> (
    match variant_of req ~default:Variant.Semi_oblivious with
    | Error msg ->
      Fmt.pf err "%s@." msg;
      breached := false;
      finish 1
    | Ok variant ->
      let o =
        Driver.decide_opts ~variant ~budget:grant ~standard:req.Proto.standard
          ~timeout ~cancel
          ~on_verdict:(fun v ->
            (* an Unknown verdict embeds elapsed wall time in its
               evidence: never a cache candidate *)
            match Chase_termination.Verdict.answer v with
            | Chase_termination.Verdict.Unknown -> breached := true
            | _ -> ())
          ()
      in
      finish (Driver.decide o ~file ~src ~out ~err))
  | Proto.Chase -> (
    match variant_of req ~default:Variant.Oblivious with
    | Error msg ->
      Fmt.pf err "%s@." msg;
      finish 1
    | Ok variant ->
      let journal, resume, resume_or_start =
        match (req.Proto.durable, t.spool) with
        | true, Some spool ->
          let jpath = Spool.jnl_path spool ~key:(Proto.request_key req) in
          if Sys.file_exists jpath then (None, Some jpath, true)
          else (Some jpath, None, false)
        | _ -> (None, None, false)
      in
      (* streaming: forward watchdog snapshots as [progress] frames
         through the one canonical snapshot → progress mapping.  The
         callback never touches [out]/[err], so the final response
         bytes are identical whether or not anyone is streaming *)
      let on_progress =
        Option.map
          (fun send s -> send (Proto.progress_of_snapshot s))
          progress
      in
      let o =
        Driver.chase_opts ~variant ~budget:grant ~max_atoms:(4 * grant)
          ~timeout ~quiet:req.Proto.quiet ~standard:req.Proto.standard
          ?journal ?resume ~resume_or_start ~cancel ~on_status
          ~resume_log:sink_formatter ?on_progress ()
      in
      finish (Driver.chase o ~file ~src ~out ~err))
  | Proto.Query -> (
    match variant_of req ~default:Variant.Oblivious with
    | Error msg ->
      Fmt.pf err "%s@." msg;
      finish 1
    | Ok variant ->
      let o =
        Driver.chase_opts ~variant ~budget:grant ~max_atoms:(4 * grant)
          ~timeout ~cancel ~on_status ()
      in
      let q = Option.value ~default:"" req.Proto.query in
      finish (Driver.query o ~query:q ~file ~src ~out ~err))
  | Proto.Lint ->
    let o = Driver.lint_opts ~budget:grant ~standard:req.Proto.standard () in
    finish (Driver.lint_one o ~file ~src ~out ~err)
  | Proto.Ping | Proto.Stats | Proto.Telemetry | Proto.Shutdown
  | Proto.Promote ->
    (* handled inline by the connection thread *)
    finish 0

(* ------------------------------------------------------------------ *)
(* The work path: cache → admission → pool → driver                    *)
(* ------------------------------------------------------------------ *)

let default_budget = function
  | Proto.Decide -> 50_000
  | Proto.Lint -> Chase_termination.Guarded.default_budget
  | _ -> 100_000

(* The worker-side job.  [reply] abstracts over "a connection" vs "boot
   recovery" (which has nobody to answer).  [tctx]/[queued_us] carry
   the trace context and the admission-queue entry time for span
   accounting. *)
let run_job t req ~key ~tctx ~queued_us ~progress ~reply =
  let t0 = Unix.gettimeofday () in
  Option.iter
    (fun c ->
      let now = Tracectx.now_us () in
      span_child t c ~name:"admission.queue" ~ts_us:queued_us
        ~dur_us:(now -. queued_us) ())
    tctx;
  let timeout_s =
    Option.value ~default:t.cfg.default_timeout req.Proto.timeout_s
  in
  let deadline = t0 +. timeout_s in
  let want = Option.value ~default:(default_budget req.Proto.op) req.Proto.budget in
  gauge_depth t;
  let acquire_us = Tracectx.now_us () in
  match Pool.acquire t.pool ~want ~deadline () with
  | None ->
    (* budget starvation is overload too: shed late, but honestly *)
    Cache.abort t.cache key;
    with_obs t (fun obs -> Obs.incr obs ~label:"pool" "svc.shed");
    Flight.record ~kind:"shed" ~name:"pool" key;
    flight_dump_limited t ~reason:"pool-shed";
    reply (Proto.Overloaded (Admission.ewma_service_s t.adm))
  | Some grant ->
    Option.iter
      (fun c ->
        span_child t c ~name:"pool.acquire" ~ts_us:acquire_us
          ~dur_us:(Tracectx.now_us () -. acquire_us)
          ~args:[ ("grant", Chase_obs.Jsonv.Int grant) ]
          ())
      tctx;
    let cancel = Limits.Cancel.create () in
    locked t (fun () -> t.tokens <- cancel :: t.tokens);
    Fun.protect
      ~finally:(fun () ->
        Pool.release t.pool grant;
        locked t (fun () ->
            t.tokens <- List.filter (fun c -> c != cancel) t.tokens))
      (fun () ->
        let timeout = Float.max 0.01 (deadline -. Unix.gettimeofday ()) in
        let run_us = Tracectx.now_us () in
        let result, retain = execute t req ~grant ~timeout ~cancel ~progress in
        Option.iter
          (fun c ->
            span_child t c ~name:"engine.run" ~ts_us:run_us
              ~dur_us:(Tracectx.now_us () -. run_us)
              ~args:
                [
                  ("op", Chase_obs.Jsonv.String (Proto.op_to_string req.Proto.op));
                  ("exit", Chase_obs.Jsonv.Int result.Proto.exit_code);
                ]
              ())
          tctx;
        if t.killed then
          (* simulated crash: the process is "dead" — nothing visible
             may happen after this point *)
          Cache.abort t.cache key
        else begin
          (match (req.Proto.durable, t.spool) with
          | true, Some spool ->
            let bytes =
              Proto.encode_response ~id:"-" (Proto.Ok_response result)
            in
            let fsync_us = Tracectx.now_us () in
            Spool.put_response spool ~key bytes;
            Option.iter
              (fun c ->
                span_child t c ~name:"spool.fsync" ~ts_us:fsync_us
                  ~dur_us:(Tracectx.now_us () -. fsync_us)
                  ~args:[ ("kind", Chase_obs.Jsonv.String "resp") ]
                  ())
              tctx;
            let trace =
              Option.map (fun c -> Tracectx.to_string c.server) tctx
            in
            Option.iter (fun f -> f `Resp ~key ~trace bytes) t.cfg.on_durable
          | _ -> ());
          Cache.publish t.cache key (Some result) ~retain;
          with_obs t (fun obs ->
              let label = Proto.op_to_string req.Proto.op in
              Obs.observe obs ~label "svc.latency_s"
                (Unix.gettimeofday () -. t0);
              Obs.incr obs ~label "svc.done");
          reply (Proto.Ok_response result)
        end)

(* The connection-side (or recovery-side) entry: spool-served, cache
   hit, joined flight, or leadership + admission. *)
let handle_work ?progress ?tctx t req ~reply =
  let key = Proto.request_key req in
  let spooled =
    match (req.Proto.durable, t.spool) with
    | true, Some spool -> (
      match Spool.get_response spool ~key with
      | Some bytes -> (
        match Proto.decode_response bytes with
        | Ok (_, Proto.Ok_response r) -> Some { r with Proto.cached = true }
        | _ -> None (* unreadable .resp: recompute *))
      | None -> None)
    | _ -> None
  in
  match spooled with
  | Some r ->
    locked t (fun () -> t.cache_hits <- t.cache_hits + 1);
    with_obs t (fun obs -> Obs.incr obs ~label:"spool" "svc.cache_hit");
    Option.iter
      (fun c ->
        instant_child t c ~name:"cache.hit"
          ~args:[ ("source", Chase_obs.Jsonv.String "spool") ]
          ())
      tctx;
    reply (Proto.Ok_response r)
  | None -> (
    match Cache.take t.cache key with
    | Cache.Hit r ->
      locked t (fun () -> t.cache_hits <- t.cache_hits + 1);
      with_obs t (fun obs -> Obs.incr obs ~label:"mem" "svc.cache_hit");
      Option.iter
        (fun c ->
          instant_child t c ~name:"cache.hit"
            ~args:[ ("source", Chase_obs.Jsonv.String "mem") ]
            ())
        tctx;
      reply (Proto.Ok_response r)
    | Cache.Lead -> (
      (* acknowledge durable requests before admission: from here on a
         kill cannot lose the request, only delay it *)
      (match (req.Proto.durable, t.spool) with
      | true, Some spool ->
        let bytes = Proto.encode_request req in
        let fsync_us = Tracectx.now_us () in
        Spool.put_request spool ~key bytes;
        Option.iter
          (fun c ->
            span_child t c ~name:"spool.fsync" ~ts_us:fsync_us
              ~dur_us:(Tracectx.now_us () -. fsync_us)
              ~args:[ ("kind", Chase_obs.Jsonv.String "req") ]
              ())
          tctx;
        let trace = Option.map (fun c -> Tracectx.to_string c.server) tctx in
        Option.iter (fun f -> f `Req ~key ~trace bytes) t.cfg.on_durable
      | _ -> ());
      let queued_us = Tracectx.now_us () in
      let run () = run_job t req ~key ~tctx ~queued_us ~progress ~reply in
      let abandon () =
        Cache.abort t.cache key;
        reply (Proto.Server_error "server shutting down")
      in
      match Admission.submit t.adm ~run ~abandon with
      | `Accepted -> gauge_depth t
      | `Shed retry_after ->
        Cache.abort t.cache key;
        with_obs t (fun obs -> Obs.incr obs ~label:"queue" "svc.shed");
        Flight.record ~kind:"shed" ~name:"queue" key;
        flight_dump_limited t ~reason:"queue-shed";
        Option.iter (fun c -> instant_child t c ~name:"shed" ()) tctx;
        reply (Proto.Overloaded retry_after)))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats t =
  let accepts, responses, bad_frames, cache_hits, recovered =
    locked t (fun () ->
        (t.accepts, t.responses, t.bad_frames, t.cache_hits, t.recovered))
  in
  [
    ("accepts", accepts);
    ("bad_frames", bad_frames);
    ("cache_hits", cache_hits);
    ("cache_retained", Cache.retained t.cache);
    ("completed", Admission.completed t.adm);
    ("pool_available", Pool.available t.pool);
    ("queue_busy", Admission.busy t.adm);
    ("queue_depth", Admission.depth t.adm);
    ("recovered", recovered);
    ("responses", responses);
    ("shed", Admission.shed_count t.adm);
  ]

let stats_json t =
  let module Jsonv = Chase_obs.Jsonv in
  Jsonv.to_string
    (Jsonv.Obj (List.map (fun (k, v) -> (k, Jsonv.Int v)) (stats t)))

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let ok_result stdout =
  Proto.Ok_response
    { Proto.exit_code = 0; stdout; stderr = ""; cached = false }

(* ------------------------------------------------------------------ *)
(* Identity: ping and telemetry                                        *)
(* ------------------------------------------------------------------ *)

let uptime_s t = Unix.gettimeofday () -. t.started

(* Ping answers with the server's identity — build, uptime, paths —
   not a bare ack: one round trip tells an operator who they reached. *)
let ping_body t =
  let module Jsonv = Chase_obs.Jsonv in
  Jsonv.to_string
    (Jsonv.Obj
       ([
          ("pong", Jsonv.Bool true);
          ("role", Jsonv.String "primary");
          ("build", Jsonv.String Telemetry.build_id);
          ("uptime_s", Jsonv.Float (uptime_s t));
          ("pid", Jsonv.Int (Unix.getpid ()));
          ("socket", Jsonv.String t.cfg.socket);
        ]
       @
       match t.spool with
       | Some spool -> [ ("spool", Jsonv.String (Spool.dir spool)) ]
       | None -> []))

let telemetry_extra t =
  let module Jsonv = Chase_obs.Jsonv in
  [
    ("role", Jsonv.String "primary");
    ("socket", Jsonv.String t.cfg.socket);
  ]
  @
  match t.spool with
  | Some spool -> [ ("spool", Jsonv.String (Spool.dir spool)) ]
  | None -> []

(* A registry snapshot, JSON or Prometheus exposition by [variant].
   Rendering holds the obs lock for the microseconds it takes to walk
   the registry — read-only, no I/O, workers never wait on a client. *)
let telemetry_body t req =
  let extra = telemetry_extra t in
  let uptime_s = uptime_s t in
  with_obs t (fun obs ->
      let m = Obs.metrics obs in
      match req.Proto.variant with
      | Some "prom" -> Telemetry.prometheus ~extra ~uptime_s m
      | _ -> Telemetry.json ~extra ~uptime_s m ^ "\n")

(* [Unix.close] does not wake a thread blocked in [read] on the same
   fd; [shutdown] does (the reader sees EOF).  Always shutdown first.
   Guarded by the write mutex + [alive] so the fd is closed exactly
   once — a double [close] could hit an unrelated, reused fd. *)
let close_conn conn =
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      if conn.alive then begin
        conn.alive <- false;
        (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)

let do_stop t ~hard =
  let first = locked t (fun () ->
      if t.stopping then false else (t.stopping <- true; true))
  in
  if first then begin
    if hard then begin
      t.killed <- true;
      locked t (fun () ->
          List.iter (fun c -> Limits.Cancel.cancel ~reason:"killed" c) t.tokens)
    end;
    (* Stop accepting.  Neither [close] nor [shutdown] wakes a thread
       blocked in [accept] on an AF_UNIX listener; a throwaway
       connection does — the loop sees [stopping] and exits. *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket)
        with Unix.Unix_error _ -> ());
       try Unix.close fd with Unix.Unix_error _ -> ()
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    if hard then begin
      (* simulated SIGKILL: every fd dies now; workers' cancelled runs
         unwind without writing anything visible *)
      List.iter close_conn (locked t (fun () -> t.conns));
      Cache.close t.cache;
      Pool.close t.pool;
      Admission.stop ~drain:false t.adm
    end
    else begin
      Admission.stop ~drain:true t.adm;
      List.iter close_conn (locked t (fun () -> t.conns));
      Cache.close t.cache;
      Pool.close t.pool
    end;
    let threads = locked t (fun () -> t.conn_threads) in
    List.iter Thread.join threads;
    if not hard then begin
      (* final metric summaries — the artifact obs_check validates *)
      with_obs t (fun _ -> t.obs_close ());
      Option.iter Tracectx.Shard.close t.shard
    end;
    (try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ());
    locked t (fun () ->
        t.finished <- true;
        Condition.broadcast t.cond)
  end

let stop ?(graceful = true) t = do_stop t ~hard:(not graceful)
let kill t = do_stop t ~hard:true
let graceful_stop t = do_stop t ~hard:false

let rec handle_conn t conn =
  let bad msg =
    locked t (fun () -> t.bad_frames <- t.bad_frames + 1);
    with_obs t (fun obs -> Obs.incr obs "svc.bad_frame");
    respond t conn ~id:"0" (Proto.Bad_frame msg);
    close_conn conn
  in
  let rec loop () =
    if not conn.alive || t.stopping then ()
    else
      match Proto.read_frame ~max_len:t.cfg.max_frame conn.fd with
      | exception Unix.Unix_error _ -> conn.alive <- false
      | `Closed -> close_conn conn
      | `Bad msg -> bad msg
      | `Frame payload -> (
        match Proto.decode_request payload with
        | Error msg ->
          respond t conn ~id:"0" (Proto.Bad_request msg);
          loop ()
        | Ok req -> (
          with_obs t (fun obs ->
              Obs.incr obs ~label:(Proto.op_to_string req.Proto.op)
                "svc.requests");
          Flight.record ~kind:"request"
            ~name:(Proto.op_to_string req.Proto.op)
            req.Proto.id;
          let reply resp =
            respond t conn ~id:req.Proto.id ?trace:req.Proto.trace resp
          in
          match req.Proto.op with
          | Proto.Ping ->
            reply (ok_result (ping_body t ^ "\n"));
            loop ()
          | Proto.Stats ->
            reply (ok_result (stats_json t ^ "\n"));
            loop ()
          | Proto.Telemetry ->
            reply (ok_result (telemetry_body t req));
            loop ()
          | Proto.Shutdown ->
            reply (ok_result "bye\n");
            (* stop from a fresh thread: stop joins this thread *)
            ignore (Thread.create (fun () -> graceful_stop t) ());
            ()
          | Proto.Promote ->
            (* a serving primary is already what a promotion asks for;
               real promotions are handled by the standby's stub loop *)
            reply (ok_result "already-primary\n");
            loop ()
          | Proto.Decide | Proto.Chase | Proto.Lint | Proto.Query ->
            (* streaming: only a leading chase emits progress frames —
               cache hits, joined flights and spool-served responses
               answer with the final frame alone *)
            let tctx = treq_of t req in
            let reply =
              match tctx with
              | None -> reply
              | Some c ->
                fun resp ->
                  (* the server span closes with the final frame;
                     progress frames ride inside it *)
                  (match resp with
                  | Proto.Progress _ -> ()
                  | _ ->
                    span_server t c ~op:req.Proto.op
                      ~status:(status_of_response resp));
                  reply resp
            in
            let progress =
              if req.Proto.stream && req.Proto.op = Proto.Chase then
                Some (fun p -> reply (Proto.Progress p))
              else None
            in
            handle_work ?progress ?tctx t req ~reply;
            loop ()))
  in
  loop ()

and accept_loop t =
  let kill_after =
    List.find_map
      (function Faults.Kill_accept_after n -> Some n | _ -> None)
      t.cfg.faults
  in
  let rec loop () =
    if t.stopping then ()
    else
      match Unix.accept t.listener with
      | exception Unix.Unix_error _ -> () (* listener closed: stop *)
      | fd, _ when t.stopping ->
        (* the wake-up connection from [do_stop] *)
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | fd, _ ->
        let n = locked t (fun () -> t.accepts <- t.accepts + 1; t.accepts) in
        with_obs t (fun obs -> Obs.incr obs "svc.accepts");
        if kill_after = Some n then begin
          (* chaos: the accept loop dies.  Existing connections live
             on; new clients get connection errors and must retry
             against the restarted server. *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (try Unix.close t.listener with Unix.Unix_error _ -> ())
        end
        else begin
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.read_timeout;
             (* bound writes too: a peer that stops reading must not
                wedge a responder holding the connection's write lock *)
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.read_timeout
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          let conn = { fd; wmu = Mutex.create (); alive = true } in
          let th = Thread.create (fun () -> handle_conn t conn) () in
          locked t (fun () ->
              t.conns <- conn :: t.conns;
              t.conn_threads <- th :: t.conn_threads);
          loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Startup and boot recovery                                           *)
(* ------------------------------------------------------------------ *)

let recover_pending t =
  match t.spool with
  | None -> ()
  | Some spool ->
    List.iter
      (fun key ->
        match Option.map Proto.decode_request (Spool.get_request spool ~key) with
        | Some (Ok req) ->
          locked t (fun () -> t.recovered <- t.recovered + 1);
          with_obs t (fun obs -> Obs.incr obs "svc.recovered");
          Flight.record ~kind:"recovery" ~name:"replay" key;
          (* Replay through the normal work path (nobody to answer);
             the journal written before the kill is resumed.  An
             acknowledged request must not be dropped by its own
             server's admission queue: retry a synchronous shed. *)
          let rec attempt n =
            let shed = ref false in
            handle_work t req ~reply:(function
              | Proto.Overloaded _ -> shed := true
              | _ -> ());
            if !shed && n < 100 then begin
              Thread.delay 0.02;
              attempt (n + 1)
            end
          in
          attempt 0
        | Some (Error _) | None -> ())
      (Spool.pending spool)

let start cfg =
  (* a dead peer must surface as EPIPE, not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listener 64;
  (* [force]d live even with no metrics file: the telemetry op snapshots
     this registry, so it must always be recording *)
  let obs, obs_close =
    match Obs.files ?metrics:cfg.metrics ~force:true () with
    | Ok pair -> pair
    | Error _ -> (Obs.disabled, ignore)
  in
  (match cfg.flight with
  | Some _ as path -> Flight.configure ~path
  | None -> ());
  let shard =
    Option.map
      (fun path ->
        (* the [check] hook routes the shard through the write-fault
           registry: arming the path makes every append fail, and the
           writer must degrade to counting drops, never blocking *)
        Tracectx.Shard.open_ ~proc:"chased"
          ~check:(fun () -> Faults.Writes.armed_for path <> [])
          path)
      cfg.trace_shard
  in
  let t =
    {
      cfg;
      listener;
      pool =
        Pool.create ~per_request_cap:cfg.per_request_cap
          ~min_grant:cfg.min_grant ~total:cfg.pool_total ();
      cache = Cache.create ~capacity:cfg.cache_capacity ();
      adm = Admission.create ~queue_cap:cfg.queue_cap ~workers:cfg.workers ();
      spool = Option.map (fun dir -> Spool.create ~dir) cfg.spool_dir;
      obs;
      obs_close;
      obs_mu = Mutex.create ();
      started = Unix.gettimeofday ();
      shard;
      last_flight_dump = 0.;
      mu = Mutex.create ();
      conns = [];
      conn_threads = [];
      accept_thread = None;
      tokens = [];
      accepts = 0;
      responses = 0;
      bad_frames = 0;
      cache_hits = 0;
      recovered = 0;
      killed = false;
      stopping = false;
      cond = Condition.create ();
      finished = false;
    }
  in
  recover_pending t;
  (* a boot that replayed anything was a crash recovery: dump the ring
     as the post-mortem of whatever killed the previous life *)
  if locked t (fun () -> t.recovered) > 0 then
    Flight.dump ~reason:"crash-recovery-boot";
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t =
  Mutex.lock t.mu;
  while not t.finished do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu

let socket t = t.cfg.socket
let is_stopping t = t.stopping
