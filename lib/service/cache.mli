(** Request-key → result cache with single-flight deduplication.
    Identical concurrent requests run once: the first caller leads,
    the rest join and block until the leader publishes.  Thread-safe;
    see the implementation header for the leadership-promotion
    protocol. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds retained results (FIFO eviction; default 256). *)

type role =
  | Hit of Proto.result  (** served from cache or a joined flight —
                             [cached] is set *)
  | Lead  (** the caller must run the work and {!publish} *)

val take : t -> string -> role
(** May block (joining an in-flight request).  A [Lead] caller is
    {e obliged} to eventually {!publish} or {!abort} — leaking a
    flight blocks all future takers of the key (until {!close}). *)

val publish : t -> string -> Proto.result option -> retain:bool -> unit
(** Resolve the flight: [Some r] hands [r] to the joiners ([retain]
    additionally caches it); [None] aborts, promoting a joiner to
    leader. *)

val abort : t -> string -> unit
(** [abort t k = publish t k None ~retain:false]. *)

val close : t -> unit
(** Abort every flight, wake every joiner (they receive leadership of
    a dead cache and must handle the work themselves). *)

val retained : t -> int
