(** The wire protocol of the chase service: length-prefixed JSON frames
    (an ASCII decimal byte count, ['\n'], then the payload — one JSON
    object via the hardened {!Chase_obs.Jsonv}) carrying requests and
    responses.  Both sides carry a client-chosen [id], so requests may
    pipeline on one connection.

    Error codes (the [status] field of a response): [ok], [overloaded]
    (with [retry_after_s] — the admission controller shed the request),
    [bad-frame] (framing broke; the server closes the connection),
    [bad-request] (well-framed but invalid), [error] (internal). *)

(** {1 Frames} *)

val default_max_frame : int
(** 4 MiB. *)

val write_frame : Unix.file_descr -> string -> unit
(** May raise [Unix.Unix_error] (e.g. [EPIPE] on a dropped peer). *)

val frame_string : string -> string
(** The exact bytes {!write_frame} would send — for tests and for
    corrupting on purpose. *)

val read_frame :
  ?max_len:int ->
  Unix.file_descr ->
  [ `Frame of string | `Closed | `Bad of string ]
(** [`Closed] only at a clean frame boundary; a declared length beyond
    [max_len], a malformed header, a read timeout, or EOF mid-frame is
    [`Bad] — the stream is desynchronized and must be dropped. *)

(** {1 Requests} *)

type op =
  | Ping
  | Decide
  | Chase
  | Lint
  | Query
  | Stats
  | Telemetry
      (** a point-in-time snapshot of the full metric registry, served
          inline (never queued): JSON by default, Prometheus-style text
          exposition with [variant = "prom"] *)
  | Shutdown
  | Promote
      (** turn a standby into the serving primary (idempotent on a
          server that is already serving) *)

val op_to_string : op -> string
val op_of_string : string -> op option
val pp_op : Format.formatter -> op -> unit

type request = {
  id : string;
  op : op;
  file : string;  (** display name used in diagnostics *)
  program : string;  (** rule/program source text *)
  variant : string option;  (** per-op default when absent *)
  budget : int option;
  timeout_s : float option;
  quiet : bool;
  durable : bool;  (** chase only: spool + journal the run *)
  standard : bool;  (** decide: standard databases *)
  query : string option;  (** query op: one rule, head = answer atom *)
  stream : bool;
      (** chase only: interleave [progress] frames before the final
          response; the final bytes are identical either way *)
  trace : string option;
      (** distributed trace context ({!Chase_obs.Tracectx.to_string}
          form), minted by the client; excluded from the idempotency
          key and from the encoding when absent, so trace-unaware
          peers see byte-identical frames *)
}

val request :
  ?id:string ->
  ?file:string ->
  ?program:string ->
  ?variant:string ->
  ?budget:int ->
  ?timeout_s:float ->
  ?quiet:bool ->
  ?durable:bool ->
  ?standard:bool ->
  ?query:string ->
  ?stream:bool ->
  ?trace:string ->
  op ->
  request

val encode_request : request -> string
val decode_request : string -> (request, string) result

val request_key : request -> string
(** The idempotency key: an MD5 hex over everything that determines the
    result bytes, excluding [id], [timeout_s], [stream] and [trace] —
    so a retried request with a fresh deadline deduplicates against the
    original, and neither streaming nor tracing partitions the cache. *)

(** {1 Responses} *)

type result = {
  exit_code : int;
  stdout : string;
  stderr : string;
  cached : bool;  (** served from the verdict cache or a joined flight *)
}

type progress = {
  step : int;  (** trigger applications so far *)
  atoms : int;  (** current instance cardinality *)
  nulls : int;  (** fresh nulls invented so far *)
  elapsed : float;  (** wall-clock seconds since the run started *)
}

val pp_progress : Format.formatter -> progress -> unit

val progress_of_snapshot : Chase_engine.Watchdog.snapshot -> progress
(** The canonical snapshot → progress-frame mapping, drawing from
    {!Chase_engine.Watchdog.fields} — the same list behind the stderr
    watchdog line, so the two progress surfaces cannot drift. *)

type response =
  | Ok_response of result
  | Progress of progress
      (** streaming only: a watchdog snapshot interleaved strictly
          before the final response of a long chase — also the
          liveness signal the failover client reads *)
  | Overloaded of float  (** seconds to wait before retrying *)
  | Bad_frame of string  (** framing broke; the connection is closing *)
  | Bad_request of string  (** well-framed but unintelligible or invalid *)
  | Server_error of string

val encode_response : ?trace:string -> id:string -> response -> string
(** [?trace] appends the request's trace context to the outgoing frame;
    absent-by-default keeps untraced frames byte-identical (the durable
    spool always stores the untraced form). *)

val decode_response : string -> (string * response, string) Stdlib.result
val pp_response : Format.formatter -> response -> unit
