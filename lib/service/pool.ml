(** The server-wide budget pool.

    Every worker draws its trigger budget from one shared pot of
    credits, so total concurrent chase work is bounded no matter how
    many requests are admitted: when the pot runs low, grants shrink
    (down to [min_grant]) and then block — backpressure — until either
    credits return or the request's deadline passes.

    Waiting polls under the lock at a few-millisecond cadence rather
    than using a condition variable: grants are released at request
    granularity (tens per second at most), so the poll is invisible,
    and a plain poll cannot miss a wakeup or deadlock on a lost
    signal. *)

type t = {
  mu : Mutex.t;
  total : int;
  per_request_cap : int;
  min_grant : int;
  mutable available : int;
  mutable closed : bool;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let create ?(per_request_cap = max_int) ?(min_grant = 1) ~total () =
  if total <= 0 then invalid_arg "Pool.create: total must be positive";
  {
    mu = Mutex.create ();
    total;
    per_request_cap = max 1 per_request_cap;
    min_grant = max 1 min_grant;
    available = total;
    closed = false;
  }

let available t = locked t (fun () -> t.available)

let try_acquire t ~want =
  locked t (fun () ->
      if t.closed then None
      else
        let cap = max 1 (min want t.per_request_cap) in
        let floor = min cap t.min_grant in
        if t.available >= floor then begin
          let grant = min cap t.available in
          t.available <- t.available - grant;
          Some grant
        end
        else None)

let acquire t ~want ?deadline () =
  let rec loop () =
    match try_acquire t ~want with
    | Some _ as g -> g
    | None ->
      if locked t (fun () -> t.closed) then None
      else if
        match deadline with
        | Some d -> Unix.gettimeofday () >= d
        | None -> false
      then None
      else begin
        Thread.delay 0.004;
        loop ()
      end
  in
  loop ()

let release t grant =
  locked t (fun () -> t.available <- min t.total (t.available + max 0 grant))

let close t = locked t (fun () -> t.closed <- true)
