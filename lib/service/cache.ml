(** The idempotency cache: request-key → result, with single-flight
    deduplication.

    A request key ({!Proto.request_key}) covers everything that
    determines the result bytes, so two identical requests — retries
    after a dropped response, or independent clients asking the same
    question — must not both pay for the chase.  The first caller
    becomes the {e leader} and runs the work; everyone else arriving
    before it finishes {e joins} the flight and blocks until the leader
    publishes.  A leader that aborts (shed, killed, uncacheable result)
    wakes the joiners, and the first of them is promoted to leader —
    the work is retried, never lost and never duplicated.

    Retention is the caller's choice at publish time: results poisoned
    by a deadline or a cancellation are shared with the current
    joiners but not retained.  Retained entries are evicted FIFO past
    [capacity]. *)

type flight = {
  mutable outcome : Proto.result option option;
      (* [None] while in flight; [Some (Some r)] published; [Some None]
         aborted *)
}

type slot =
  | Done of Proto.result
  | Inflight of flight

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  tbl : (string, slot) Hashtbl.t;
  fifo : string Queue.t;  (* insertion order of Done entries *)
  capacity : int;
  mutable done_count : int;
  mutable closed : bool;
}

let create ?(capacity = 256) () =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 64;
    fifo = Queue.create ();
    capacity = max 1 capacity;
    done_count = 0;
    closed = false;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Evict the oldest retained results past capacity.  The FIFO may hold
   stale keys (re-published under a new flight); skip any key that is
   no longer Done. *)
let evict_locked t =
  while t.done_count > t.capacity && not (Queue.is_empty t.fifo) do
    let k = Queue.pop t.fifo in
    match Hashtbl.find_opt t.tbl k with
    | Some (Done _) ->
      Hashtbl.remove t.tbl k;
      t.done_count <- t.done_count - 1
    | _ -> ()
  done

type role =
  | Hit of Proto.result
  | Lead

(* Take the key: either a cached result, or leadership of (possibly a
   new) flight.  Joining blocks; an aborted flight loops back so a
   joiner can be promoted. *)
let rec take t key =
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.tbl key with
  | Some (Done r) ->
    Mutex.unlock t.mu;
    Hit { r with Proto.cached = true }
  | None ->
    if t.closed then begin
      Mutex.unlock t.mu;
      (* a closed cache stops deduplicating but must not deadlock *)
      Lead
    end
    else begin
      Hashtbl.replace t.tbl key (Inflight { outcome = None });
      Mutex.unlock t.mu;
      Lead
    end
  | Some (Inflight f) -> (
    let rec wait () =
      match f.outcome with
      | None when t.closed -> None
      | None ->
        Condition.wait t.cond t.mu;
        wait ()
      | Some o -> o
    in
    let o = wait () in
    Mutex.unlock t.mu;
    match o with
    | Some r -> Hit { r with Proto.cached = true }
    | None -> take t key (* leader aborted: compete for leadership *))

(* The leader publishes.  [retain] keeps the result for future
   requests; either way the current joiners receive it. *)
let publish t key result ~retain =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
      | Some (Inflight f) -> (
        f.outcome <- Some result;
        match result with
        | Some r when retain ->
          Hashtbl.replace t.tbl key (Done r);
          Queue.push key t.fifo;
          t.done_count <- t.done_count + 1;
          evict_locked t
        | _ -> Hashtbl.remove t.tbl key)
      | Some (Done _) | None -> ());
      Condition.broadcast t.cond)

let abort t key = publish t key None ~retain:false

(* Hard stop: abort every flight and wake every joiner.  Retained
   results stay — they are correct — but the table stops growing. *)
let close t =
  locked t (fun () ->
      t.closed <- true;
      Hashtbl.iter
        (fun _ slot ->
          match slot with
          | Inflight f when f.outcome = None -> f.outcome <- Some None
          | _ -> ())
        t.tbl;
      Condition.broadcast t.cond)

let retained t = locked t (fun () -> t.done_count)
