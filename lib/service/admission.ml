(** The admission controller: a bounded queue in front of a fixed pool
    of worker threads, with load-shedding.

    When the queue is full the request is {e shed} — the caller gets
    [`Shed retry_after], never a silent drop — where [retry_after]
    estimates when capacity returns: the EWMA of recent service times,
    scaled by the queue depth ahead of the newcomer, divided across the
    workers.  The estimate is deliberately rough; its job is to spread
    retries out, not to be a promise.

    Jobs are closures.  Stopping is two-speed: [stop ~drain:true]
    (graceful — finish the queue) or [~drain:false] (simulated kill —
    abandon the queue; the [on_abandon] callback lets the server
    resolve each abandoned job's flight so no joiner hangs). *)

type job = {
  run : unit -> unit;
  abandon : unit -> unit;
}

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  queue_cap : int;
  workers : int;
  mutable threads : Thread.t list;
  mutable stopping : bool;
  mutable draining : bool;
  mutable busy : int;  (* jobs currently running in workers *)
  mutable ewma_s : float;  (* smoothed service time, seconds *)
  mutable completed : int;
  mutable shed : int;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let worker t =
  let rec loop () =
    Mutex.lock t.mu;
    let rec next () =
      if not (Queue.is_empty t.queue) then
        if t.stopping && not t.draining then None (* killed: abandon below *)
        else Some (Queue.pop t.queue)
      else if t.stopping then None
      else begin
        Condition.wait t.cond t.mu;
        next ()
      end
    in
    match next () with
    | None ->
      Mutex.unlock t.mu;
      ()
    | Some job ->
      t.busy <- t.busy + 1;
      Mutex.unlock t.mu;
      let t0 = Unix.gettimeofday () in
      (try job.run () with _ -> ());
      let dt = Unix.gettimeofday () -. t0 in
      locked t (fun () ->
          t.busy <- t.busy - 1;
          t.completed <- t.completed + 1;
          (* EWMA with a fast-start: the first observation seeds it *)
          t.ewma_s <-
            (if t.completed = 1 then dt
             else (0.8 *. t.ewma_s) +. (0.2 *. dt));
          Condition.broadcast t.cond);
      loop ()
  in
  loop ()

let create ~queue_cap ~workers () =
  if workers <= 0 then invalid_arg "Admission.create: workers";
  let t =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      queue_cap = max 1 queue_cap;
      workers;
      threads = [];
      stopping = false;
      draining = false;
      busy = 0;
      ewma_s = 0.05;
      completed = 0;
      shed = 0;
    }
  in
  t.threads <- List.init workers (fun _ -> Thread.create worker t);
  t

let retry_after_locked t =
  let ahead = Queue.length t.queue + t.busy in
  let est = t.ewma_s *. float_of_int (ahead + 1) /. float_of_int t.workers in
  Float.min 30.0 (Float.max 0.05 est)

let submit t ~run ~abandon =
  locked t (fun () ->
      if t.stopping then begin
        t.shed <- t.shed + 1;
        `Shed (retry_after_locked t)
      end
      else if Queue.length t.queue >= t.queue_cap then begin
        t.shed <- t.shed + 1;
        `Shed (retry_after_locked t)
      end
      else begin
        Queue.push { run; abandon } t.queue;
        Condition.broadcast t.cond;
        `Accepted
      end)

let depth t = locked t (fun () -> Queue.length t.queue)
let busy t = locked t (fun () -> t.busy)
let shed_count t = locked t (fun () -> t.shed)
let completed t = locked t (fun () -> t.completed)
let ewma_service_s t = locked t (fun () -> t.ewma_s)

let stop ?(drain = true) t =
  let abandoned =
    locked t (fun () ->
        t.stopping <- true;
        t.draining <- drain;
        let abandoned =
          if drain then []
          else begin
            let l = List.of_seq (Queue.to_seq t.queue) in
            Queue.clear t.queue;
            l
          end
        in
        Condition.broadcast t.cond;
        abandoned)
  in
  List.iter (fun j -> try j.abandon () with _ -> ()) abandoned;
  List.iter Thread.join t.threads;
  t.threads <- []
