(** The restricted chase — §4 / future-work territory.

    No critical-instance reduction exists for the restricted chase, and
    the paper only announces a characterization for single-head linear
    sets.  [check] combines: sound sufficient conditions (weak / joint
    acyclicity), sound refutation (divergence on the concrete generic
    instance), and the single-head linear probe; everything else is
    [Unknown]. *)

open Chase_engine

val default_budget : int

val probe :
  ?budget:int ->
  ?limits:Limits.t ->
  ?obs:Chase_obs.Obs.t ->
  Chase_logic.Tgd.t list ->
  Chase_logic.Atom.t list ->
  Engine.result
(** A restricted-chase run on an explicit database. *)

val check :
  ?budget:int ->
  ?limits:Limits.t ->
  ?obs:Chase_obs.Obs.t ->
  Chase_logic.Tgd.t list ->
  Verdict.t
(** [limits] overrides the budget-derived defaults of the generic-instance
    probe; [obs] flows into it. *)
