(** Termination of the (semi-)oblivious chase for guarded TGDs —
    Theorem 4, realized as a certificate search over the guarded chase
    forest of the critical instance (see DESIGN.md §3.3):

    - a closed chase of the critical instance proves termination on every
      database (critical-instance theorem);
    - a recurring cloud type along one guard chain with fresh nulls at
      every link proves the branch self-similar, i.e. divergence;
    - a budget-exhausted run without a pump answers [Unknown]. *)

open Chase_logic
open Chase_engine

val default_budget : int

type pump = {
  occurrences : Atom.t list;  (** same-type facts along one guard chain *)
  chain_length : int;
}

val find_pump :
  ?min_occurrences:int ->
  ?tips:int ->
  ?obs:Chase_obs.Obs.t ->
  Engine.result ->
  pump option
(** Search the derivation forest of a chase run for a recurring-type pump
    along the guard chains of the deepest facts.  [obs] counts chains
    examined and chain nodes walked ([guarded.pump.chains/nodes]). *)

val check :
  ?standard:bool ->
  ?budget:int ->
  ?limits:Limits.t ->
  ?obs:Chase_obs.Obs.t ->
  variant:Variant.t ->
  Tgd.t list ->
  Verdict.t
(** [limits] overrides the budget-derived defaults (deadline,
    cancellation, …); [obs] flows into the critical-instance chase and
    the pump search.
    @raise Invalid_argument if the set is not guarded. *)
