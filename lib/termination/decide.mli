(** The termination front door: classify the rule set and dispatch to the
    strongest applicable procedure.

    (Semi-)oblivious variants: simple linear → Theorem 1 acyclicity;
    linear → Theorem 2 critical procedure; guarded → Theorem 4 cloud
    types; unguarded → sound sufficient conditions (rich acyclicity for
    o; weak, then joint acyclicity for so) and otherwise the budgeted
    chase simulation, where [Unknown] is a possible, honest answer.
    Restricted variant: {!Restricted.check}. *)

val check :
  ?standard:bool ->
  ?budget:int ->
  ?limits:Chase_engine.Limits.t ->
  ?watchdog:Chase_engine.Watchdog.t ->
  ?obs:Chase_obs.Obs.t ->
  variant:Chase_engine.Variant.t ->
  Chase_logic.Tgd.t list ->
  Verdict.t
(** [limits] overrides the budget-derived defaults of every budgeted
    procedure (adding e.g. a wall-clock deadline or a cancellation
    token); [watchdog] streams progress snapshots of the
    chase-simulation fallback.  [obs] wraps the chosen procedure in a
    [decide:<proc>] span, records its wall time per procedure
    ([decide.check_s]), and flows into the budgeted procedures' chase
    runs and the guarded pump search. *)
