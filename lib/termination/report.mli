(** The full termination portfolio for a rule set: classification, all
    acyclicity conditions, per-variant verdicts, and critical-instance
    chase statistics — the CLI's [--report] mode and a single entry point
    for downstream tooling. *)

open Chase_logic
open Chase_engine
open Chase_classes

type acyclicity = {
  richly_acyclic : bool;
  weakly_acyclic : bool;
  jointly_acyclic : bool;
  super_weakly_acyclic : bool;  (** Marnette's super-weak acyclicity *)
  stratified : bool;  (** every may-trigger stratum weakly acyclic *)
  mfa : bool option;  (** [None] when the MFA chase hit its budget *)
}

type chase_stats = {
  status : Engine.status;
  facts : int;
  triggers : int;
  max_depth : int;
  nulls : int;
}

type t = {
  rules : Tgd.t list;
  cls : Classify.cls;
  single_head : bool;
  full : bool;
  acyclicity : acyclicity;
  oblivious : Verdict.t;
  semi_oblivious : Verdict.t;
  restricted : Verdict.t;
  critical_run : chase_stats;
}

val build : ?budget:int -> Tgd.t list -> t
val pp : Format.formatter -> t -> unit
