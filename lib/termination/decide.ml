(** The termination front door: dispatch to the strongest applicable
    procedure.

    Given a rule set and a chase variant, [check] classifies the set and
    uses, in order of preference:

    + the exact acyclicity characterizations for simple linear sets
      (Theorem 1 — NL);
    + the exact critical-acyclicity procedure for linear sets (Theorem 2 —
      PSPACE);
    + the guarded type procedure for guarded sets (Theorem 4 — 2EXPTIME);
    + for arbitrary sets (where the problem is undecidable): the sound
      sufficient conditions — rich acyclicity for the oblivious chase, weak
      acyclicity for the semi-oblivious chase — and otherwise the
      chase-simulation semi-decision. *)

open Chase_engine
open Chase_acyclicity
open Chase_classes

let sufficient_acyclicity ~variant rules =
  match (variant : Variant.t) with
  | Oblivious ->
    if Rich.is_richly_acyclic rules then
      Some
        (Verdict.terminates ~procedure:"rich-acyclicity (sufficient)"
           ~evidence:
             "richly acyclic: the oblivious chase terminates on every \
              database (sound for arbitrary TGDs)")
    else None
  | Semi_oblivious ->
    if Weak.is_weakly_acyclic rules then
      Some
        (Verdict.terminates ~procedure:"weak-acyclicity (sufficient)"
           ~evidence:
             "weakly acyclic: the semi-oblivious chase terminates on every \
              database (sound for arbitrary TGDs)")
    else if Joint.is_jointly_acyclic rules then
      Some
        (Verdict.terminates ~procedure:"joint-acyclicity (sufficient)"
           ~evidence:
             "jointly acyclic: the existential-variable dependency relation \
              is acyclic, so the semi-oblivious chase terminates on every \
              database")
    else if Super_weak.is_super_weakly_acyclic rules then
      Some
        (Verdict.terminates ~procedure:"super-weak-acyclicity (sufficient)"
           ~evidence:
             "super-weakly acyclic: the place-unification trigger relation \
              is acyclic, so the semi-oblivious chase terminates on every \
              database")
    else if Chase_strata.Strata.is_safe rules then
      Some
        (Verdict.terminates ~procedure:"stratification (sufficient)"
           ~evidence:
             "safely stratified: every stratum of the may-trigger \
              condensation is weakly acyclic, so the semi-oblivious chase \
              terminates on every database")
    else None
  | Restricted ->
    if Weak.is_weakly_acyclic rules then
      Some
        (Verdict.terminates ~procedure:"weak-acyclicity (sufficient)"
           ~evidence:
             "weakly acyclic: every chase variant below the oblivious chase \
              terminates on every database")
    else if Joint.is_jointly_acyclic rules then
      Some
        (Verdict.terminates ~procedure:"joint-acyclicity (sufficient)"
           ~evidence:
             "jointly acyclic: the semi-oblivious and hence the restricted \
              chase terminate on every database")
    else if Super_weak.is_super_weakly_acyclic rules then
      Some
        (Verdict.terminates ~procedure:"super-weak-acyclicity (sufficient)"
           ~evidence:
             "super-weakly acyclic: the semi-oblivious and hence the \
              restricted chase terminate on every database")
    else if Chase_strata.Strata.is_safe rules then
      Some
        (Verdict.terminates ~procedure:"stratification (sufficient)"
           ~evidence:
             "safely stratified: the semi-oblivious and hence the \
              restricted chase terminate on every database")
    else None

let check ?standard ?budget ?limits ?watchdog ?(obs = Chase_obs.Obs.disabled)
    ~variant rules =
  let module Obs = Chase_obs.Obs in
  (* Each procedure runs under a [decide:<proc>] span with its wall time
     recorded per procedure — the per-theorem-check timing surfaced by
     [--metrics]. *)
  let timed proc f =
    if Obs.enabled obs then begin
      Obs.incr obs ~label:proc "decide.dispatch";
      let t0 = Obs.now obs in
      let v = Obs.with_span obs ("decide:" ^ proc) f in
      Obs.observe obs ~label:proc "decide.check_s" (Obs.now obs -. t0);
      v
    end
    else f ()
  in
  match (variant : Variant.t) with
  | Restricted ->
    (* §4 territory: sufficient conditions, generic-instance refutation,
       and the single-head linear probe. *)
    timed "restricted" (fun () -> Restricted.check ?budget ?limits ~obs rules)
  | Oblivious | Semi_oblivious -> (
    match Classify.classify rules with
    | Classify.Simple_linear ->
      timed "simple-linear" (fun () -> Sl.check ~variant rules)
    | Classify.Linear ->
      timed "linear" (fun () -> Linear.check ?standard ~variant rules)
    | Classify.Guarded ->
      timed "guarded" (fun () ->
          Guarded.check ?standard ?budget ?limits ~obs ~variant rules)
    | Classify.Unguarded -> (
      match
        timed "acyclicity" (fun () -> sufficient_acyclicity ~variant rules)
      with
      | Some v -> v
      | None ->
        timed "simulation" (fun () ->
            (Simulation.check ?standard ?budget ?limits ?watchdog ~obs
               ~variant rules)
              .verdict)))
