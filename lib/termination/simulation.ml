(** The chase-simulation oracle: run the ?-chase on the critical instance.

    By the critical-instance theorem (DESIGN.md §1) the ?-chase, for
    ? ∈ {oblivious, semi-oblivious}, terminates on every database iff it
    terminates on crit(Σ); so a run that drains its worklist is a {e proof}
    of all-instance termination.  A run that breaches its limits proves
    nothing by itself — [check] then answers [Unknown], carrying the
    structured exhaustion diagnostics (which limit, the dominant rule, the
    recent null-growth rate) so the caller can tell a slow-but-converging
    run from one diverging so far — and the experiment harness treats a
    generous exhausted budget as presumed divergence when comparing
    against the exact procedures.

    For the restricted chase the critical-instance reduction is {e not}
    sound in general (a restricted chase may terminate on the critical
    instance yet diverge elsewhere); [check] still accepts
    [Variant.Restricted] for the §4 experiments but labels its positive
    answers as critical-instance-only. *)

open Chase_logic
open Chase_engine

type outcome = {
  verdict : Verdict.t;
  result : Engine.result;
}

let default_budget = 50_000

(** [check ?standard ?budget ?limits ?watchdog ~variant rules] chases
    crit(Σ).  [limits] overrides the budget-derived defaults; [watchdog]
    streams progress snapshots of the simulation run. *)
let check ?(standard = true) ?(budget = default_budget) ?limits ?watchdog ?obs
    ~variant rules =
  let crit = Critical.of_rules ~standard rules in
  let limits =
    match limits with Some l -> l | None -> Limits.of_budget budget
  in
  let config = { Engine.variant; limits } in
  let result =
    Engine.run ~config ?obs ?watchdog rules (Instance.to_list crit)
  in
  let verdict =
    match result.Engine.status with
    | Engine.Terminated ->
      let scope =
        match (variant : Variant.t) with
        | Oblivious | Semi_oblivious -> "all databases"
        | Restricted -> "the critical instance (restricted chase: no all-instance guarantee)"
      in
      Verdict.terminates ~procedure:"chase-simulation"
        ~evidence:
          (Fmt.str
             "%a chase of the critical instance closed after %d triggers, %d \
              facts — terminates on %s"
             Variant.pp variant result.Engine.triggers_applied
             (Instance.cardinal result.Engine.instance)
             scope)
    | Engine.Exhausted reason ->
      Verdict.unknown ~procedure:"chase-simulation"
        ~evidence:
          (Fmt.str "%a at %d facts, max depth %d — %s; no conclusion"
             Limits.pp_breach reason.Limits.Exhaustion.breach
             (Instance.cardinal result.Engine.instance)
             result.Engine.max_depth
             (Limits.Exhaustion.diagnosis reason))
  in
  { verdict; result }

(** Budget-exhaustion treated as presumed divergence; used as the ground
    truth oracle in agreement experiments, where the exact procedures are
    being validated. *)
let presume ?standard ?budget ~variant rules =
  let { verdict; _ } = check ?standard ?budget ~variant rules in
  match Verdict.answer verdict with
  | Verdict.Terminates -> true
  | Verdict.Diverges | Verdict.Unknown -> false
