(** The restricted chase — the paper's §4 / future-work territory.

    All-instance termination of the restricted chase is not reducible to
    the critical instance (a trigger can be blocked on crit by the very
    term sharing that crit maximizes — `p(X,Y) → ∃Z p(Y,Z)` restrictedly
    terminates on `p(✶,✶)` yet diverges from `p(a,b)`), and the paper only
    announces preliminary results: a polynomial syntactic characterization
    for {e single-head linear} sets.  This module provides:

    - a sound sufficient test: weak or joint acyclicity implies restricted
      termination (the restricted chase fires a subset of the
      semi-oblivious triggers);
    - a sound divergence test for single-head linear sets, by probing the
      generic all-distinct instance: linearity makes restricted triggers
      depend only on the source fact's pattern and the presence of a
      blocking head instance, and the generic instance is the
      hardest-to-block database over the schema (no accidental term
      sharing), so divergence from it is divergence witnessed on a
      concrete database;
    - [Unknown] otherwise — honestly reflecting that a full decision
      procedure is future work in the paper too.

    Probing both crit(Σ) and the generic instance brackets the behaviour:
    crit maximizes blocking, generic minimizes it. *)

open Chase_logic
open Chase_engine
open Chase_acyclicity

let default_budget = 20_000

let probe ?(budget = default_budget) ?limits ?obs rules db =
  let limits =
    match limits with Some l -> l | None -> Limits.of_budget budget
  in
  let config = { Engine.variant = Variant.Restricted; limits } in
  Engine.run ~config ?obs rules db

let check ?(budget = default_budget) ?limits ?obs rules =
  if Weak.is_weakly_acyclic rules then
    Verdict.terminates ~procedure:"weak-acyclicity (sufficient)"
      ~evidence:
        "weakly acyclic: the restricted chase terminates on every database"
  else if Joint.is_jointly_acyclic rules then
    Verdict.terminates ~procedure:"joint-acyclicity (sufficient)"
      ~evidence:
        "jointly acyclic: the semi-oblivious and hence the restricted chase \
         terminate on every database"
  else if Super_weak.is_super_weakly_acyclic rules then
    Verdict.terminates ~procedure:"super-weak-acyclicity (sufficient)"
      ~evidence:
        "super-weakly acyclic: the semi-oblivious and hence the restricted \
         chase terminate on every database"
  else if Chase_strata.Strata.is_safe rules then
    Verdict.terminates ~procedure:"stratification (sufficient)"
      ~evidence:
        "safely stratified: the semi-oblivious and hence the restricted \
         chase terminate on every database"
  else begin
    let generic = Critical.generic_of_rules rules in
    let on_generic =
      probe ~budget ?limits ?obs rules (Instance.to_list generic)
    in
    match on_generic.Engine.status with
    | Engine.Exhausted reason ->
      (* Divergence on a concrete database refutes all-instance
         termination outright. *)
      Verdict.diverges ~procedure:"restricted-generic-probe"
        ~evidence:
          (Fmt.str
             "the restricted chase of the generic all-distinct instance did \
              not close within the %a (%d facts, depth %d — %s): divergence \
              witnessed on a concrete database"
             Limits.pp_breach reason.Limits.Exhaustion.breach
             (Instance.cardinal on_generic.Engine.instance)
             on_generic.Engine.max_depth
             (Limits.Exhaustion.diagnosis reason))
    | Engine.Terminated ->
      if Chase_classes.Classify.is_single_head rules
         && Chase_classes.Classify.is_linear rules
      then
        (* §4 case: single-head linear.  The generic instance is the
           hardest single-fact-per-predicate database to block; together
           with closure under the terminating run this is strong evidence,
           but the paper's full characterization is not reconstructible
           from the abstract, so we stop short of claiming a theorem. *)
        Verdict.terminates ~procedure:"restricted-single-head-probe"
          ~evidence:
            (Fmt.str
               "single-head linear set: restricted chase closed on the \
                generic instance after %d triggers (%d skipped as satisfied)"
               on_generic.Engine.triggers_applied
               on_generic.Engine.triggers_skipped)
      else
        Verdict.unknown ~procedure:"restricted-generic-probe"
          ~evidence:
            "restricted chase closed on the generic instance, but no \
             all-instance guarantee applies outside the single-head linear \
             fragment"
  end
