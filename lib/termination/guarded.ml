(** Termination of the (semi-)oblivious chase for guarded TGDs
    (Theorem 4).

    Guardedness makes the chase of the critical instance a forest of
    bounded branching: every trigger's body maps into the {e cloud} of one
    existing fact (the guard image) — the set of facts whose terms are
    drawn from that fact's terms and the constants — so every produced fact
    hangs off its guard image.  The subtree below a fact is determined by
    the fact's {e type}: its atom together with its cloud, up to a
    constant-fixing renaming of nulls.  Consequently:

    - if the chase of the critical instance stops, Σ terminates on every
      database (critical-instance theorem) — an exact answer;
    - if along one branch of the forest the same type recurs while fresh
      nulls keep being created, the branch is self-similar and the chase
      runs forever.

    [check] runs the chase with a budget; on exhaustion it searches the
    derivation forest for a recurring-type pump.  To guard against clouds
    that were still growing when the snapshot was taken, a pump is only
    reported when the type recurs at least [min_occurrences] times along
    one guard chain and every link of the chain carries nulls younger than
    the previous occurrence (the newness condition that makes the replay
    produce new triggers forever).  This realizes the paper's alternating
    2EXPTIME procedure as a deterministic certificate search; see
    DESIGN.md §3.3 and §6. *)

open Chase_logic
open Chase_engine

let require_guarded rules =
  if not (Chase_classes.Classify.is_guarded rules) then
    invalid_arg "Guarded.check: rule set is not guarded"

(* ------------------------------------------------------------------ *)
(* Canonical clouds                                                    *)
(* ------------------------------------------------------------------ *)

(* The canonical type of a fact [a] in instance [ins]: rename the distinct
   terms of [a] to local indices (constants stay themselves), collect every
   fact whose terms are among [a]'s terms and the constants, rename, sort.
   Two facts with equal canonical types have isomorphic neighbourhoods, so
   the chase develops identically below them. *)

type canon_term =
  | C_const of string
  | C_local of int  (** i-th distinct term of the fact, a null *)

type canon_atom = string * canon_term list

type cloud_type = {
  self : canon_atom;
  cloud : canon_atom list;  (** sorted *)
}

let canon_term_of local t =
  match t with
  | Term.Const c -> C_const c
  | Term.Null _ -> C_local (Term.Map.find t local)
  | Term.Var _ -> invalid_arg "Guarded: variable in fact"

(** Local renaming of a fact: distinct null arguments, in order of first
    occurrence, become [C_local 0], [C_local 1], … *)
let local_renaming a =
  let local = ref Term.Map.empty in
  let next = ref 0 in
  Array.iter
    (fun t ->
      if Term.is_null t && not (Term.Map.mem t !local) then begin
        local := Term.Map.add t !next !local;
        incr next
      end)
    (Atom.args a);
  !local

let canon_atom_of local a =
  (Atom.pred a, List.map (canon_term_of local) (Atom.term_list a))

(** Facts of [ins] whose terms are all among [terms ∪ constants].  The
    all-constant facts are supplied pre-computed in [const_atoms] since
    they belong to every cloud. *)
let cloud_atoms ins ~const_atoms ~nulls =
  let in_scope t = Term.is_const t || Term.Set.mem t nulls in
  let candidates =
    Term.Set.fold
      (fun t acc ->
        List.fold_left
          (fun acc a -> Atom.Set.add a acc)
          acc (Instance.atoms_containing ins t))
      nulls Atom.Set.empty
  in
  Atom.Set.fold
    (fun a acc ->
      if Array.for_all in_scope (Atom.args a) then a :: acc else acc)
    candidates const_atoms

let type_of ins ~const_atoms a =
  let local = local_renaming a in
  let nulls =
    Term.Map.fold (fun t _ acc -> Term.Set.add t acc) local Term.Set.empty
  in
  let cloud = cloud_atoms ins ~const_atoms ~nulls in
  {
    self = canon_atom_of local a;
    cloud = List.sort compare (List.map (canon_atom_of local) cloud);
  }

(* ------------------------------------------------------------------ *)
(* Pump detection in the derivation forest                             *)
(* ------------------------------------------------------------------ *)

type pump = {
  occurrences : Atom.t list;  (** same-type facts along one guard chain *)
  chain_length : int;
}

(** The guard chain of [a]: a, guard parent of a, … up to a database fact. *)
let guard_chain provenance a =
  let rec up acc a =
    match Atom.Tbl.find_opt provenance a with
    | None -> a :: acc
    | Some d -> (
      match d.Derivation.guard_parent with
      | Some g -> up (a :: acc) g
      | None -> a :: acc)
  in
  up [] a  (* root first *)

(** Step at which each null was created, from the provenance records. *)
let null_birth provenance =
  let tbl = Hashtbl.create 1024 in
  Atom.Tbl.iter
    (fun _ d ->
      List.iter
        (fun n -> Hashtbl.replace tbl n d.Derivation.step)
        d.Derivation.created_nulls)
    provenance;
  tbl

let step_of provenance a =
  match Atom.Tbl.find_opt provenance a with
  | Some d -> d.Derivation.step
  | None -> 0

(** [has_young_null births since a]: some argument of [a] is a null born
    strictly after step [since]. *)
let has_young_null births since a =
  Array.exists
    (fun t ->
      match t with
      | Term.Null n -> (
        match Hashtbl.find_opt births n with
        | Some s -> s > since
        | None -> false)
      | Term.Const _ | Term.Var _ -> false)
    (Atom.args a)

(** Search one root-to-leaf chain for [min_occurrences] facts of equal
    type such that between consecutive occurrences every chain fact
    carries a null younger than the previous occurrence. *)
let pump_on_chain ins ~const_atoms ~births ~provenance ~min_occurrences chain =
  (* Group chain positions by type. *)
  let types = List.map (fun a -> (a, type_of ins ~const_atoms a)) chain in
  let module M = Map.Make (struct
    type t = cloud_type

    let compare = compare
  end) in
  let groups =
    List.fold_left
      (fun m (a, ty) ->
        M.update ty (fun o -> Some (a :: Option.value o ~default:[])) m)
      M.empty types
  in
  let chain_arr = Array.of_list chain in
  let index_of =
    let tbl = Atom.Tbl.create 64 in
    Array.iteri (fun i a -> Atom.Tbl.replace tbl a i) chain_arr;
    fun a -> Atom.Tbl.find tbl a
  in
  let newness_ok a b =
    (* every chain fact strictly after [a] up to [b] has a null younger
       than [a]'s creation step *)
    let ia = index_of a and ib = index_of b in
    let since = step_of provenance chain_arr.(ia) in
    let ok = ref true in
    for i = ia + 1 to ib do
      if not (has_young_null births since chain_arr.(i)) then ok := false
    done;
    !ok
  in
  M.fold
    (fun _ occs acc ->
      match acc with
      | Some _ -> acc
      | None ->
        let occs = List.sort (fun a b -> Int.compare (index_of a) (index_of b)) occs in
        if List.length occs >= min_occurrences then begin
          let rec consecutive_ok = function
            | a :: (b :: _ as rest) -> newness_ok a b && consecutive_ok rest
            | [ _ ] | [] -> true
          in
          if consecutive_ok occs then
            Some { occurrences = occs; chain_length = Array.length chain_arr }
          else None
        end
        else None)
    groups None

(** Deepest facts of the run, used as chain tips. *)
let deepest_facts provenance k =
  let all =
    Atom.Tbl.fold (fun a d acc -> (Derivation.depth d, a) :: acc) provenance []
  in
  let sorted = List.sort (fun (d1, _) (d2, _) -> Int.compare d2 d1) all in
  List.filteri (fun i _ -> i < k) sorted |> List.map snd

let find_pump ?(min_occurrences = 3) ?(tips = 8)
    ?(obs = Chase_obs.Obs.disabled) (result : Engine.result) =
  let module Obs = Chase_obs.Obs in
  let ins = result.Engine.instance in
  let provenance = result.Engine.provenance in
  let const_atoms =
    Instance.fold
      (fun a acc -> if Atom.is_ground a then a :: acc else acc)
      ins []
  in
  let births = null_birth provenance in
  let rec try_tips = function
    | [] -> None
    | tip :: rest -> (
      let chain = guard_chain provenance tip in
      if Obs.enabled obs then begin
        Obs.incr obs "guarded.pump.chains";
        Obs.incr obs ~by:(List.length chain) "guarded.pump.nodes"
      end;
      match
        pump_on_chain ins ~const_atoms ~births ~provenance ~min_occurrences
          chain
      with
      | Some p -> Some p
      | None -> try_tips rest)
  in
  try_tips (deepest_facts provenance tips)

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)
(* ------------------------------------------------------------------ *)

let default_budget = 20_000

let check ?(standard = true) ?(budget = default_budget) ?limits
    ?(obs = Chase_obs.Obs.disabled) ~variant rules =
  require_guarded rules;
  if Chase_classes.Classify.is_full rules then
    Verdict.terminates ~procedure:"guarded-types"
      ~evidence:
        "every rule is full (no existential variables): the chase can only \
         create finitely many facts over the database terms"
  else begin
    let crit = Critical.of_rules ~standard rules in
    let limits =
      match limits with Some l -> l | None -> Limits.of_budget budget
    in
    let config = { Engine.variant; limits } in
    let result = Engine.run ~config ~obs rules (Instance.to_list crit) in
    match result.Engine.status with
    | Engine.Terminated ->
      Verdict.terminates ~procedure:"guarded-types"
        ~evidence:
          (Fmt.str
             "%a chase of the critical instance closed after %d triggers, %d \
              facts"
             Variant.pp variant result.Engine.triggers_applied
             (Instance.cardinal result.Engine.instance))
    | Engine.Exhausted reason -> (
      match
        Chase_obs.Obs.with_span obs "pump-search" (fun () ->
            find_pump ~obs result)
      with
      | Some pump ->
        let shown = List.filteri (fun i _ -> i < 4) pump.occurrences in
        let elided = List.length pump.occurrences - List.length shown in
        Verdict.diverges ~procedure:"guarded-types"
          ~evidence:
            (Fmt.str
               "recurring cloud type along one guard chain (%d occurrences, \
                chain length %d): %a%s"
               (List.length pump.occurrences)
               pump.chain_length
               (Util.pp_list " ⇝ " Atom.pp)
               shown
               (if elided > 0 then Fmt.str " ⇝ … (%d more)" elided else ""))
      | None ->
        Verdict.unknown ~procedure:"guarded-types"
          ~evidence:
            (Fmt.str "%a and no pump found — %s" Limits.pp_breach
               reason.Limits.Exhaustion.breach
               (Limits.Exhaustion.diagnosis reason)))
  end
