(** The full termination portfolio for a rule set, in one structured
    report: classification, every syntactic acyclicity condition, the
    exact per-class verdicts for both chase variants, the restricted
    probe, and chase statistics on the critical instance.  This is what
    the [--report] mode of the CLI prints, and a convenient single entry
    point for downstream tooling. *)

open Chase_logic
open Chase_engine
open Chase_acyclicity
open Chase_classes

type acyclicity = {
  richly_acyclic : bool;
  weakly_acyclic : bool;
  jointly_acyclic : bool;
  super_weakly_acyclic : bool;
  stratified : bool;  (** every may-trigger stratum weakly acyclic *)
  mfa : bool option;  (** [None] when the MFA chase hit its budget *)
}

type chase_stats = {
  status : Engine.status;
  facts : int;
  triggers : int;
  max_depth : int;
  nulls : int;
}

type t = {
  rules : Tgd.t list;
  cls : Classify.cls;
  single_head : bool;
  full : bool;
  acyclicity : acyclicity;
  oblivious : Verdict.t;
  semi_oblivious : Verdict.t;
  restricted : Verdict.t;
  critical_run : chase_stats;  (** semi-oblivious chase of crit, budgeted *)
}

let stats_of (r : Engine.result) =
  {
    status = r.Engine.status;
    facts = Instance.cardinal r.Engine.instance;
    triggers = r.Engine.triggers_applied;
    max_depth = r.Engine.max_depth;
    nulls = r.Engine.nulls_created;
  }

let build ?(budget = 20_000) rules =
  let acyclicity =
    {
      richly_acyclic = Rich.is_richly_acyclic rules;
      weakly_acyclic = Weak.is_weakly_acyclic rules;
      jointly_acyclic = Joint.is_jointly_acyclic rules;
      super_weakly_acyclic = Super_weak.is_super_weakly_acyclic rules;
      stratified = Chase_strata.Strata.is_safe rules;
      mfa =
        (match Mfa.check ~budget rules with
        | `Mfa -> Some true
        | `Not_mfa _ -> Some false
        | `Unknown _ -> None);
    }
  in
  let critical_run =
    let crit = Critical.of_rules rules in
    let config =
      { Engine.variant = Variant.Semi_oblivious; limits = Limits.of_budget budget }
    in
    stats_of (Engine.run ~config rules (Instance.to_list crit))
  in
  {
    rules;
    cls = Classify.classify rules;
    single_head = Classify.is_single_head rules;
    full = Classify.is_full rules;
    acyclicity;
    oblivious = Decide.check ~budget ~variant:Variant.Oblivious rules;
    semi_oblivious = Decide.check ~budget ~variant:Variant.Semi_oblivious rules;
    restricted = Decide.check ~budget ~variant:Variant.Restricted rules;
    critical_run;
  }

let yesno fm b = Fmt.string fm (if b then "yes" else "no")

let pp fm t =
  Fmt.pf fm "@[<v>";
  Fmt.pf fm "rules: %d   class: %a%s%s@."
    (List.length t.rules) Classify.pp_cls t.cls
    (if t.full then ", full (Datalog)" else "")
    (if t.single_head then ", single-head" else "");
  if t.cls = Classify.Unguarded then
    List.iteri
      (fun idx r ->
        match Classify.unguarded_witness r with
        | [] -> ()
        | vars ->
          Fmt.pf fm "  unguarded %s: no body atom covers %a%a@."
            (match Tgd.name r with
            | "" -> Fmt.str "rule#%d" (idx + 1)
            | n -> n)
            (Util.pp_list ", " Term.pp) vars
            (fun fm -> function
              | None -> ()
              | Some g -> Fmt.pf fm " (best candidate: %a)" Atom.pp g)
            (Classify.best_guard_candidate r))
      t.rules;
  Fmt.pf fm "acyclicity: RA %a   WA %a   JA %a   SWA %a   STR %a   MFA %s@."
    yesno t.acyclicity.richly_acyclic yesno t.acyclicity.weakly_acyclic
    yesno t.acyclicity.jointly_acyclic
    yesno t.acyclicity.super_weakly_acyclic
    yesno t.acyclicity.stratified
    (match t.acyclicity.mfa with
    | Some true -> "yes"
    | Some false -> "no"
    | None -> "unknown");
  Fmt.pf fm "oblivious:      %a@." Verdict.pp t.oblivious;
  Fmt.pf fm "semi-oblivious: %a@." Verdict.pp t.semi_oblivious;
  Fmt.pf fm "restricted:     %a@." Verdict.pp t.restricted;
  Fmt.pf fm
    "critical-instance chase (so, budgeted): %s — %d facts, %d triggers, \
     depth %d, %d nulls"
    (match t.critical_run.status with
    | Engine.Terminated -> "terminated"
    | Engine.Exhausted _ -> "budget exhausted")
    t.critical_run.facts t.critical_run.triggers t.critical_run.max_depth
    t.critical_run.nulls;
  Fmt.pf fm "@]"
