(** The chase-simulation oracle: run the ?-chase on the critical
    instance.  A drained worklist proves all-instance termination for the
    (semi-)oblivious chase (critical-instance theorem); a breached limit
    proves nothing and is reported as [Unknown], with the structured
    exhaustion diagnostics (breach, dominant rule, null-growth rate) in
    the evidence. *)

open Chase_engine

type outcome = {
  verdict : Verdict.t;
  result : Engine.result;
}

val default_budget : int

val check :
  ?standard:bool ->
  ?budget:int ->
  ?limits:Limits.t ->
  ?watchdog:Watchdog.t ->
  ?obs:Chase_obs.Obs.t ->
  variant:Variant.t ->
  Chase_logic.Tgd.t list ->
  outcome
(** [limits] overrides the budget-derived defaults (adding e.g. a
    wall-clock deadline or a cancellation token); [watchdog] streams
    progress snapshots of the simulation run; [obs] flows into the
    simulation's {!Engine.run}. *)

val presume :
  ?standard:bool -> ?budget:int -> variant:Variant.t -> Chase_logic.Tgd.t list -> bool
(** Budget exhaustion treated as presumed divergence — the ground-truth
    convention of the agreement experiments. *)
