(** A small concrete syntax for rules and databases.

    Rules:     [name: p(X, Y), q(Y) -> r(Y, Z), s(Z).]
    Facts:     [p(a, b).]
    Comments:  from [%] or [#] to end of line.

    Identifiers starting with an upper-case letter or ['_'] are variables;
    identifiers starting with a lower-case letter or a digit are constants
    (in predicate position, the predicate name).  Head variables that do not
    occur in the body are existentially quantified, as usual in existential
    rule syntax (DLGP-style).  The rule name with the colon is optional. *)

type token =
  | Tident of string
  | Tlpar
  | Trpar
  | Tcomma
  | Tarrow
  | Tdot
  | Tcolon
  | Tequal
  | Teof

exception Parse_error of string

let fail line msg = raise (Parse_error (Fmt.str "line %d: %s" line msg))

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* The lexer produces a list of (token, line) pairs. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' || c = '#' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '(' then begin push Tlpar; incr i end
    else if c = ')' then begin push Trpar; incr i end
    else if c = ',' then begin push Tcomma; incr i end
    else if c = '.' then begin push Tdot; incr i end
    else if c = ':' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* Datalog-style "head :- body" is not supported; give a clear error. *)
      fail !line "':-' syntax is not supported; write 'body -> head.'"
    end
    else if c = ':' then begin push Tcolon; incr i end
    else if c = '=' then begin push Tequal; incr i end
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '>' then begin
      push Tarrow;
      i := !i + 2
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      push (Tident (String.sub src start (!i - start)))
    end
    else fail !line (Fmt.str "unexpected character %C" c)
  done;
  push Teof;
  List.rev !toks

let is_variable_name s =
  String.length s > 0 && ((s.[0] >= 'A' && s.[0] <= 'Z') || s.[0] = '_')

let term_of_ident s = if is_variable_name s then Term.Var s else Term.Const s

(* A tiny stream over the token list. *)
type stream = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> (Teof, 0) | t :: _ -> t

let next st =
  match st.toks with
  | [] -> (Teof, 0)
  | t :: rest ->
    st.toks <- rest;
    t

let expect st tok what =
  let t, line = next st in
  if t <> tok then fail line (Fmt.str "expected %s" what)

let parse_term st =
  match next st with
  | Tident s, _ -> term_of_ident s
  | _, line -> fail line "expected a term"

let parse_atom st =
  match next st with
  | Tident p, line ->
    if is_variable_name p then fail line "predicate names must start lower-case";
    (match peek st with
    | Tlpar, _ ->
      ignore (next st);
      (match peek st with
      | Trpar, _ ->
        ignore (next st);
        Atom.of_list p []
      | _ ->
        let rec terms acc =
          let t = parse_term st in
          match next st with
          | Tcomma, _ -> terms (t :: acc)
          | Trpar, _ -> List.rev (t :: acc)
          | _, line -> fail line "expected ',' or ')'"
        in
        Atom.of_list p (terms []))
    | _ -> Atom.of_list p [] (* propositional atom without parentheses *))
  | _, line -> fail line "expected an atom"

let parse_atom_list st =
  let rec go acc =
    let a = parse_atom st in
    match peek st with
    | Tcomma, _ ->
      ignore (next st);
      go (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  go []

(* Head items: atoms (TGD) or variable equalities (EGD). *)
type head_item =
  | Hatom of Atom.t
  | Hequal of string * string

let parse_head_item st =
  match st.toks with
  | (Tident x, line) :: (Tequal, _) :: rest ->
    st.toks <- rest;
    if not (is_variable_name x) then fail line "only variables can be equated";
    (match next st with
    | Tident y, line' ->
      if not (is_variable_name y) then fail line' "only variables can be equated";
      Hequal (x, y)
    | _, line' -> fail line' "expected a variable after '='")
  | _ -> Hatom (parse_atom st)

let parse_head_items st =
  let rec go acc =
    let item = parse_head_item st in
    match peek st with
    | Tcomma, _ ->
      ignore (next st);
      go (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  go []

(* One statement: a rule, an EGD or a fact, ended by '.' *)
type statement =
  | Srule of Tgd.t
  | Segd of Egd.t
  | Sfact of Atom.t

(* Returns the statement together with its starting line, so callers
   rejecting a statement kind (a fact in a rule file, an EGD in a plain
   program) can still report where the offending statement is. *)
let parse_statement st =
  (* optional "name :" prefix: an ident followed directly by ':' *)
  let name, name_line =
    match st.toks with
    | (Tident s, ln) :: (Tcolon, _) :: rest ->
      st.toks <- rest;
      (s, Some ln)
    | _ -> ("", None)
  in
  let _, peek_line = peek st in
  let start_line = Option.value name_line ~default:peek_line in
  let first = parse_atom_list st in
  match peek st with
  | Tarrow, _ ->
    ignore (next st);
    let items = parse_head_items st in
    expect st Tdot "'.' at end of rule";
    let atoms = List.filter_map (function Hatom a -> Some a | Hequal _ -> None) items in
    let eqs =
      List.filter_map (function Hequal (x, y) -> Some (x, y) | Hatom _ -> None) items
    in
    (match atoms, eqs with
    | _ :: _, [] -> (
      match Tgd.make ~name ~body:first ~head:atoms () with
      | Ok r -> (Srule r, start_line)
      | Error msg -> fail start_line msg)
    | [], _ :: _ -> (
      match Egd.make ~name ~body:first ~equalities:eqs () with
      | Ok e -> (Segd e, start_line)
      | Error msg -> fail start_line msg)
    | _ :: _, _ :: _ -> fail start_line "a head mixes atoms and equalities"
    | [], [] -> fail start_line "empty head")
  | Tdot, line ->
    ignore (next st);
    (match first with
    | [ a ] ->
      if not (Atom.is_ground a) then fail line "facts must be ground";
      (Sfact a, start_line)
    | _ -> fail line "a fact statement contains exactly one atom")
  | _, line -> fail line "expected '->' or '.'"

let parse_statements src =
  let st = { toks = tokenize src } in
  let rec go acc =
    match peek st with
    | Teof, _ -> List.rev acc
    | _ -> go (parse_statement st :: acc)
  in
  go []

(* First line on which a statement of the offending kind appears. *)
let line_of_first pred stmts =
  match List.find_opt (fun (s, _) -> pred s) stmts with
  | Some (_, line) -> Some line
  | None -> None

(** A fully parsed program: TGDs, EGDs and facts. *)
type program = {
  tgds : Tgd.t list;
  egds : Egd.t list;
  facts : Atom.t list;
}

(** As {!program}, but every statement carries the 1-based line on which
    it starts — the source spans consumed by the static analyzer
    ([Chase_analysis.Lint]). *)
type located_program = {
  lrules : (Tgd.t * int) list;
  legds : (Egd.t * int) list;
  lfacts : (Atom.t * int) list;
}

let statements_result src =
  try Ok (parse_statements src) with Parse_error msg -> Error msg

(** Parse a program keeping, for every statement, the line it starts on. *)
let parse_located src =
  match statements_result src with
  | Error _ as e -> e
  | Ok stmts ->
    Ok
      {
        lrules =
          List.filter_map
            (function Srule r, ln -> Some (r, ln) | _ -> None)
            stmts;
        legds =
          List.filter_map (function Segd e, ln -> Some (e, ln) | _ -> None) stmts;
        lfacts =
          List.filter_map
            (function Sfact a, ln -> Some (a, ln) | _ -> None)
            stmts;
      }

(** Parse a program that may mix TGDs, EGDs and facts. *)
let parse_program_full src =
  match statements_result src with
  | Error _ as e -> e
  | Ok stmts ->
    let stmts = List.map fst stmts in
    Ok
      {
        tgds = List.filter_map (function Srule r -> Some r | Segd _ | Sfact _ -> None) stmts;
        egds = List.filter_map (function Segd e -> Some e | Srule _ | Sfact _ -> None) stmts;
        facts = List.filter_map (function Sfact a -> Some a | Srule _ | Segd _ -> None) stmts;
      }

(** Parse a program of rules and facts; fails if it contains an EGD. *)
let parse_program src =
  match statements_result src with
  | Error _ as e -> e
  | Ok stmts -> (
    match line_of_first (function Segd _ -> true | _ -> false) stmts with
    | Some line ->
      Error
        (Fmt.str
           "line %d: unexpected EGD: use parse_program_full for programs \
            with EGDs"
           line)
    | None ->
      let stmts = List.map fst stmts in
      Ok
        ( List.filter_map (function Srule r -> Some r | _ -> None) stmts,
          List.filter_map (function Sfact a -> Some a | _ -> None) stmts ))

(** Parse rules only; fails on facts. *)
let parse_rules src =
  match statements_result src with
  | Error _ as e -> e
  | Ok stmts -> (
    match line_of_first (function Segd _ -> true | _ -> false) stmts with
    | Some line ->
      Error
        (Fmt.str
           "line %d: unexpected EGD: use parse_program_full for programs \
            with EGDs"
           line)
    | None -> (
      match line_of_first (function Sfact _ -> true | _ -> false) stmts with
      | Some line -> Error (Fmt.str "line %d: unexpected fact in a rule file" line)
      | None ->
        Ok (List.filter_map (function (Srule r, _) -> Some r | _ -> None) stmts)))

(** Parse a database (ground facts only). *)
let parse_database src =
  match statements_result src with
  | Error _ as e -> e
  | Ok stmts -> (
    match
      line_of_first (function Srule _ | Segd _ -> true | _ -> false) stmts
    with
    | Some line ->
      Error (Fmt.str "line %d: unexpected rule in a database file" line)
    | None ->
      Ok (List.filter_map (function (Sfact a, _) -> Some a | _ -> None) stmts))

let parse_rules_exn src =
  match parse_rules src with Ok r -> r | Error msg -> raise (Parse_error msg)

let parse_database_exn src =
  match parse_database src with Ok f -> f | Error msg -> raise (Parse_error msg)

(** Parse a single rule from a string such as ["p(X) -> q(X, Y)."]; the
    trailing dot is optional. *)
let parse_rule_exn src =
  let src = String.trim src in
  let src = if String.length src > 0 && src.[String.length src - 1] = '.' then src else src ^ "." in
  match parse_rules_exn src with
  | [ r ] -> r
  | _ -> raise (Parse_error "expected exactly one rule")

(** Parse a single ground atom such as ["p(a, b)"]; trailing dot optional. *)
let parse_fact_exn src =
  let src = String.trim src in
  let src = if String.length src > 0 && src.[String.length src - 1] = '.' then src else src ^ "." in
  match parse_database_exn src with
  | [ a ] -> a
  | _ -> raise (Parse_error "expected exactly one fact")
