(** A small concrete syntax for rules and databases.

    {v
    % comment (also #)
    name: p(X, Y), q(Y) -> r(Y, Z), s(Z).     rule (name optional)
    p(a, b).                                   fact
    v}

    Identifiers starting with an upper-case letter or ['_'] are variables;
    others are constants (or, in predicate position, the predicate name).
    Head variables not occurring in the body are existentially quantified.
    Propositional (0-ary) atoms may omit the parentheses. *)

exception Parse_error of string

(** Every error message — lexical, syntactic, or a statement of the wrong
    kind for the entry point (a fact in a rule file, an EGD in a plain
    program) — carries the 1-based line number of the offending input. *)

(** A fully parsed program. *)
type program = {
  tgds : Tgd.t list;
  egds : Egd.t list;
  facts : Atom.t list;
}

val parse_program_full : string -> (program, string) result
(** TGDs, EGDs ([body -> X = Y.]) and facts, in file order per kind. *)

(** As {!program}, with the 1-based starting line of every statement —
    the source spans the static analyzer attaches to diagnostics. *)
type located_program = {
  lrules : (Tgd.t * int) list;
  legds : (Egd.t * int) list;
  lfacts : (Atom.t * int) list;
}

val parse_located : string -> (located_program, string) result
(** Accepts any mix of rules, EGDs and facts. *)

val parse_program : string -> (Tgd.t list * Atom.t list, string) result
(** Rules and facts; fails if the source contains an EGD. *)

val parse_rules : string -> (Tgd.t list, string) result
(** Fails if the source contains a fact. *)

val parse_database : string -> (Atom.t list, string) result
(** Ground facts only. *)

val parse_rules_exn : string -> Tgd.t list
val parse_database_exn : string -> Atom.t list

val parse_rule_exn : string -> Tgd.t
(** One rule; the trailing dot is optional. *)

val parse_fact_exn : string -> Atom.t
(** One ground atom; the trailing dot is optional. *)
