(** Substitutions: finite maps from rule variables (names) to terms.

    A substitution is the working object of homomorphism search: it is
    built up by binding variables one at a time, where a conflicting
    rebinding fails. *)

type t

val empty : t
val is_empty : t -> bool
val find_opt : string -> t -> Term.t option
val mem : string -> t -> bool
val cardinal : t -> int

val bind : t -> string -> Term.t -> t option
(** [bind s v t] binds [v] to [t]; [None] if [v] is already bound to a
    different term. *)

val bind_exn : t -> string -> Term.t -> t
(** @raise Invalid_argument on a conflicting rebinding. *)

val of_list : (string * Term.t) list -> t
val to_list : t -> (string * Term.t) list
(** Bindings in ascending variable-name order (canonical). *)

val apply_term : t -> Term.t -> Term.t
(** Unbound variables are left untouched. *)

val apply_atom : t -> Atom.t -> Atom.t
val apply_atoms : t -> Atom.t list -> Atom.t list

val restrict : t -> Util.Sset.t -> t
(** Keep only the bindings of the given variables. *)

val domain : t -> Util.Sset.t
(** The set of bound variables. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val agree_on : Util.Sset.t -> t -> t -> bool
(** Both substitutions give the same image (possibly both undefined) to
    every variable in the set — the semi-oblivious indistinguishability
    test. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
