(** Homomorphism search: matching conjunctions of atoms into instances.

    A backtracking join over the instance indexes.  Two interchangeable
    matchers drive it: the {b naive} left-to-right reference matcher (the
    normative semantics) and the {b planned} matcher, which follows a
    selectivity-ordered {!Plan} and probes the smallest index at every
    step.  Both produce the same substitution {e set}; the top-level
    entry points dispatch on {!matcher} — planned by default, naive when
    the [CHASE_NAIVE] environment variable is set or {!set_matcher} was
    called (the CLIs' [--naive] flag).

    All searches extend an optional initial substitution, which is how
    frontier-restricted matching (restricted chase satisfaction,
    semi-oblivious keys) reuses the same machinery. *)

val match_atom : Subst.t -> Atom.t -> Atom.t -> Subst.t option
(** [match_atom sub pattern fact] extends [sub] so that the pattern maps
    onto the fact; [None] if impossible. *)

(** {1 Search-effort accounting}

    Process-wide counters of matcher work, always on (each is a single
    atomic increment on its code path — atomic because the parallel
    chase matches from several domains concurrently, and totals must
    stay exact).  The engine snapshots them around each trigger search
    to attribute probe work to rules; the benchmarks diff them across
    planned/naive runs; the parallel test battery asserts that a
    multi-domain run's deltas equal a sequential run's. *)
module Stats : sig
  type snapshot = {
    probes : int;  (** index probes at a determined position *)
    full_scans : int;  (** predicate scans with no position bound *)
    candidates : int;  (** candidate facts examined by match loops *)
    matches : int;  (** substitutions emitted by [iter]/[iter_seeded] *)
    planned_probe_cost : int;
        (** sum of chosen bucket sizes in best-index probes *)
    naive_probe_cost : int;
        (** what the same probes would have cost at the first determined
            position — the naive policy's estimate *)
  }

  val snapshot : unit -> snapshot

  val diff : snapshot -> snapshot -> snapshot
  (** [diff before after], componentwise. *)

  val reset : unit -> unit

  val candidates_now : unit -> int
  (** The raw candidates counter — the engine's cheap per-trigger
      delta. *)

  val local_candidates_now : unit -> int
  (** This domain's share of [candidates].  A parallel matching event
      runs entirely on one domain, so the domain-local delta around it
      is its exact candidate count even while other domains match —
      the engine reads it to attribute per-rule probe work in parallel
      runs exactly as a single-domain run would. *)
end

(** {1 Matcher selection} *)

type matcher =
  | Planned  (** join-planned, delta-driven — the default *)
  | Naive  (** left-to-right reference implementation *)

val matcher : unit -> matcher
(** The active matcher: the value forced by {!set_matcher} if any,
    otherwise [Naive] when the environment variable [CHASE_NAIVE] is
    [1]/[true]/[yes]/[on], otherwise [Planned]. *)

val set_matcher : matcher -> unit
(** Process-wide override, used by the CLIs' [--naive] and the
    differential test harness. *)

(** {1 Dispatching entry points} *)

val iter : ?init:Subst.t -> Instance.t -> Atom.t list -> (Subst.t -> unit) -> unit
(** Call the continuation on every substitution mapping all atoms into
    the instance. *)

val iter_seeded :
  ?init:Subst.t -> Instance.t -> Atom.t list -> seed:Atom.t -> (Subst.t -> unit) -> unit
(** Like {!iter} but only substitutions mapping at least one atom onto
    [seed] — the semi-naive primitive of the chase engine.  Each
    qualifying substitution is produced exactly once. *)

val all : ?init:Subst.t -> Instance.t -> Atom.t list -> Subst.t list
val exists : ?init:Subst.t -> Instance.t -> Atom.t list -> bool
val find : ?init:Subst.t -> Instance.t -> Atom.t list -> Subst.t option

(** {1 The individual matchers}

    Exposed for the differential and property test suites; normal code
    goes through the dispatching entry points above. *)

val iter_naive :
  ?init:Subst.t -> Instance.t -> Atom.t list -> (Subst.t -> unit) -> unit
(** The reference matcher: body atoms left to right, first determined
    position probed.  Its substitution set defines correctness. *)

val iter_seeded_naive :
  ?init:Subst.t -> Instance.t -> Atom.t list -> seed:Atom.t -> (Subst.t -> unit) -> unit

val iter_planned :
  ?init:Subst.t ->
  ?plan:Plan.t ->
  Instance.t ->
  Atom.t list ->
  (Subst.t -> unit) ->
  unit
(** The planned matcher; [plan] overrides the planner's ordering (it must
    be a plan for exactly this body). *)

val iter_seeded_planned :
  ?init:Subst.t -> Instance.t -> Atom.t list -> seed:Atom.t -> (Subst.t -> unit) -> unit

(** {1 Instance-level homomorphisms} *)

val instance_hom : Instance.t -> Instance.t -> Term.t Term.Map.t option
(** A homomorphism between instances: identity on constants, nulls map
    anywhere, every fact of the source maps to a fact of the target.
    This is the universal-model test; exponential in the worst case. *)
