(** Join plans for body matching: a selectivity-ordered permutation of a
    rule body.

    A plan decides in which order {!Hom} binds the body atoms of a rule
    against an instance.  Atoms are picked greedily by estimated
    candidate count, computed from the O(1) cardinality statistics of
    {!Instance} — exact bucket sizes for constant-bound positions,
    average bucket sizes ([count_of_pred / distinct_at]) for positions
    whose variable is bound by an earlier atom of the plan.  Planning
    never walks a bucket and never enumerates a fact.

    Plans only reorder the enumeration; the substitution {e set} produced
    by a planned search is identical to the naive left-to-right search
    (see the property suite and DESIGN.md: the naive matcher is the
    normative semantics). *)

type t
(** A permutation of the body atoms of one rule, for one instance. *)

(** Always-on planning-effort counters (see {!Hom.Stats} for the matcher
    side): how many plans were built and how many single-atom cost
    estimates they required. *)
module Stats : sig
  type snapshot = { plans : int; estimates : int }

  val snapshot : unit -> snapshot
  val diff : snapshot -> snapshot -> snapshot
  val reset : unit -> unit
end

val make : ?bound:Util.Sset.t -> Instance.t -> Atom.t list -> t
(** [make ?bound ins body] orders [body] by estimated selectivity against
    [ins].  [bound] are variables already determined by the initial
    substitution of the search (their positions count as bound from the
    start).  The empty body yields the empty plan. *)

val seeded : ?bound:Util.Sset.t -> Instance.t -> Atom.t list -> pin:int -> t
(** [seeded ins body ~pin] plans a delta-driven rederivation: the body
    atom at index [pin] is matched against the seed fact and therefore
    goes first (its single candidate is the seed); the remaining atoms
    are ordered greedily with [pin]'s variables bound.
    @raise Invalid_argument if [pin] is out of range. *)

val order : t -> int array
(** The permutation: [order.(k)] is the original body index matched at
    step [k]. *)

val atoms : t -> Atom.t list -> Atom.t list
(** Apply the permutation to the body it was made for. *)

val length : t -> int

val is_permutation : t -> int
(** Checked accessor used by the property tests: returns the length if
    [order] is a permutation of [0..n-1], raises otherwise. *)

val estimate : ?bound:Util.Sset.t -> Instance.t -> Atom.t -> int
(** The planner's cost estimate for matching one atom given the bound
    variables: the smallest bucket-size estimate over its determined
    positions, or the predicate cardinality when none is determined.
    Exposed for tests and diagnostics. *)

val pp : Format.formatter -> t -> unit
