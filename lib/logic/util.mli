(** Shared small utilities for the logic substrate. *)

module Sset : module type of Set.Make (String)
module Smap : module type of Map.Make (String)

val list_compare : ('a -> 'a -> int) -> 'a list -> 'a list -> int
(** Lexicographic extension of a comparison. *)

val array_compare : ('a -> 'a -> int) -> 'a array -> 'a array -> int
(** Lexicographic on arrays, shorter first. *)

val array_for_all2 : ('a -> 'b -> bool) -> 'a array -> 'b array -> bool
(** Pointwise check; [false] on a length mismatch. *)

val hash_combine : int -> int -> int
(** Combine two hash values (FNV-style mixing). *)

val hash_fold_array : ('a -> int) -> int -> 'a array -> int

val pp_list :
  string -> (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a list -> unit
(** [pp_list sep pp] pretty-prints a list with separator string [sep]. *)
