(** Instances: mutable, indexed sets of facts (variable-free atoms).

    Besides the membership table the representation keeps a per-predicate
    bucket, a per-(predicate, position, term) index used to narrow body
    matching, and a per-term index used by the guarded cloud
    computation. *)

type t

val create : ?initial_capacity:int -> unit -> t

val mem : t -> Atom.t -> bool
val cardinal : t -> int

val add : t -> Atom.t -> bool
(** [add ins a] inserts [a]; [true] iff the fact is new.
    @raise Invalid_argument if [a] contains a variable. *)

val add_all : t -> Atom.t list -> unit
val of_list : Atom.t list -> t

val atoms_of_pred : t -> string -> Atom.t list
val atoms_matching : t -> string -> int -> Term.t -> Atom.t list
(** Facts of the predicate whose [i]-th argument is exactly the term. *)

val atoms_containing : t -> Term.t -> Atom.t list

val count_of_pred : t -> string -> int
(** Number of facts of the predicate; O(1). *)

val count_matching : t -> string -> int -> Term.t -> int
(** [count_matching ins p i t] is [List.length (atoms_matching ins p i t)]
    without walking the bucket; O(1).  The planner's exact statistic for
    constant-bound positions. *)

val distinct_at : t -> string -> int -> int
(** Number of distinct terms occurring at position [i] of predicate [p];
    O(1).  [count_of_pred ins p / distinct_at ins p i] estimates the
    average bucket size at a position whose term is not yet known — the
    planner's statistic for variable-bound positions. *)

val iter : (Atom.t -> unit) -> t -> unit
val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Atom.t list
val to_sorted_list : t -> Atom.t list
val copy : t -> t

val predicates : t -> (string * int) list
(** Predicates with at least one fact, with arities. *)

val term_set : t -> Term.Set.t
val null_count : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
