(** Join plans: selectivity-ordered permutations of a rule body.

    Greedy smallest-estimate-first ordering.  For every not-yet-chosen
    atom we estimate how many candidate facts the instance would offer
    it, given the variables bound so far:

    - a position holding a constant (or null) has an {e exact} bucket
      size, [Instance.count_matching];
    - a position holding a variable bound by an earlier atom will be
      looked up in the same index, but the term is unknown at planning
      time, so we use the average bucket size at that position,
      [count_of_pred / distinct_at];
    - an atom with no determined position can only be scanned whole:
      [count_of_pred].

    The estimate of an atom is the minimum over its determined positions
    (the matcher probes exactly one index).  Ties break towards the
    original body order, which keeps planning deterministic and makes the
    plan the identity permutation on bodies the statistics cannot
    distinguish.  All statistics are O(1) ({!Instance}), so planning a
    body of n atoms costs O(n²) arithmetic — negligible against even one
    avoided bucket walk. *)

type t = {
  order : int array;  (** order.(k) = original body index matched at step k *)
}

module Stats = struct
  (* Always-on planning-effort counters, mirroring [Hom.Stats]: atomic,
     because the parallel chase plans seeded bodies from several domains
     at once and racing refs would under-count. *)
  let plans = Atomic.make 0
  let estimates = Atomic.make 0

  type snapshot = { plans : int; estimates : int }

  let snapshot () = { plans = Atomic.get plans; estimates = Atomic.get estimates }

  let diff (a : snapshot) (b : snapshot) =
    { plans = b.plans - a.plans; estimates = b.estimates - a.estimates }

  let reset () =
    Atomic.set plans 0;
    Atomic.set estimates 0
end

let order t = t.order
let length t = Array.length t.order

let atoms t body =
  let arr = Array.of_list body in
  Array.to_list (Array.map (fun i -> arr.(i)) t.order)

let is_permutation t =
  let n = Array.length t.order in
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Plan.is_permutation: not a permutation";
      seen.(i) <- true)
    t.order;
  n

(** Smallest candidate-count estimate for [a] over its determined
    positions, given [bound] variables; [count_of_pred] if none. *)
let estimate ?(bound = Util.Sset.empty) ins a =
  Atomic.incr Stats.estimates;
  let p = Atom.pred a in
  let full = Instance.count_of_pred ins p in
  let best = ref full in
  Array.iteri
    (fun i t ->
      let e =
        match t with
        | Term.Const _ | Term.Null _ -> Some (Instance.count_matching ins p i t)
        | Term.Var v ->
          if Util.Sset.mem v bound then
            (* unknown term: average bucket size at this position *)
            let d = Instance.distinct_at ins p i in
            if d = 0 then Some 0 else Some ((full + d - 1) / d)
          else None
      in
      match e with Some e when e < !best -> best := e | _ -> ())
    (Atom.args a);
  !best

let vars_of a = Atom.var_set a

(* Greedy selection over the remaining atoms; [fixed] indices are already
   placed (the seeded pin).  O(n²) estimate calls, all O(1). *)
let plan_greedy ~bound ins body_arr placed =
  Atomic.incr Stats.plans;
  let n = Array.length body_arr in
  if n - List.length placed <= 1 then
    (* nothing to order: the permutation is forced *)
    { order =
        Array.of_list
          (placed
          @ List.filter
              (fun i -> not (List.mem i placed))
              (List.init n (fun i -> i)));
    }
  else begin
  let chosen = Array.make n false in
  List.iter (fun i -> chosen.(i) <- true) placed;
  let bound = ref bound in
  List.iter
    (fun i -> bound := Util.Sset.union (vars_of body_arr.(i)) !bound)
    placed;
  let out = ref (List.rev placed) in
  for _ = 1 to n - List.length placed do
    let best = ref (-1) in
    let best_cost = ref max_int in
    for i = 0 to n - 1 do
      if not chosen.(i) then begin
        let c = estimate ~bound:!bound ins body_arr.(i) in
        (* strict [<]: ties keep the earliest body index *)
        if c < !best_cost then begin
          best := i;
          best_cost := c
        end
      end
    done;
    chosen.(!best) <- true;
    bound := Util.Sset.union (vars_of body_arr.(!best)) !bound;
    out := !best :: !out
  done;
  { order = Array.of_list (List.rev !out) }
  end

let make ?(bound = Util.Sset.empty) ins body =
  plan_greedy ~bound ins (Array.of_list body) []

let seeded ?(bound = Util.Sset.empty) ins body ~pin =
  let body_arr = Array.of_list body in
  if pin < 0 || pin >= Array.length body_arr then
    invalid_arg "Plan.seeded: pin out of range";
  plan_greedy ~bound ins body_arr [ pin ]

let pp fm t =
  Fmt.pf fm "[%a]"
    (Fmt.list ~sep:(Fmt.any " ") Fmt.int)
    (Array.to_list t.order)
