(** Homomorphism search: matching conjunctions of atoms into instances.

    Two matchers share the same backtracking core:

    - the {b naive} matcher processes body atoms left to right, probing
      the (predicate, position, term) index at the {e first} determined
      position — the reference implementation, kept verbatim as the
      normative semantics (DESIGN.md);
    - the {b planned} matcher asks {!Plan} for a selectivity-ordered
      permutation of the body and probes the {e smallest} index at each
      step, using the O(1) cardinality statistics of {!Instance}.

    Both enumerate the same substitution set (the property suite pins
    this); only the enumeration order and the work done differ.  The
    top-level entry points ({!iter}, {!iter_seeded}, {!all}, {!exists},
    {!find}) dispatch on the process-wide {!matcher} selection: planned
    by default, naive when the environment variable [CHASE_NAIVE] is set
    (or {!set_matcher} was called — the CLIs' [--naive]). *)

(** [match_atom sub pat fact] extends [sub] so that [sub pat = fact];
    [None] if impossible. *)
let match_atom sub pat fact =
  if
    (not (String.equal (Atom.pred pat) (Atom.pred fact)))
    || Atom.arity pat <> Atom.arity fact
  then None
  else
    let n = Atom.arity pat in
    let rec go i sub =
      if i >= n then Some sub
      else
        match Atom.arg pat i with
        | Term.Var v -> (
          match Subst.bind sub v (Atom.arg fact i) with
          | Some sub' -> go (i + 1) sub'
          | None -> None)
        | (Term.Const _ | Term.Null _) as t ->
          if Term.equal t (Atom.arg fact i) then go (i + 1) sub else None
    in
    go 0 sub

(* ------------------------------------------------------------------ *)
(* Search-effort accounting                                            *)
(* ------------------------------------------------------------------ *)

module Stats = struct
  (* Module-level counters, always on.  They were plain [int ref]s until
     the parallel chase arrived: matching now runs on several domains at
     once, and unguarded increments would race (losing counts, breaking
     the parallel-equals-sequential totals audit).  Each counter is an
     [Atomic.t]; a fetch-and-add costs a few nanoseconds more than a ref
     increment, which the candidate walks around it dwarf.  Totals are
     therefore exact regardless of how many domains matched: the same
     events are matched exactly once each, so a parallel run's deltas
     equal the sequential run's (pinned by the test suite). *)

  type snapshot = {
    probes : int;  (** index probes at a determined position *)
    full_scans : int;  (** predicate scans with no position bound *)
    candidates : int;  (** candidate facts examined by match loops *)
    matches : int;  (** substitutions emitted by [iter]/[iter_seeded] *)
    planned_probe_cost : int;
        (** sum of chosen bucket sizes in best-index probes *)
    naive_probe_cost : int;
        (** what the same probes would have cost at the first determined
            position — the naive policy's estimate *)
  }

  let probes = Atomic.make 0
  let full_scans = Atomic.make 0
  let candidates = Atomic.make 0
  let matches = Atomic.make 0
  let planned_probe_cost = Atomic.make 0
  let naive_probe_cost = Atomic.make 0
  let bump c = Atomic.incr c
  let bump_by c n = ignore (Atomic.fetch_and_add c n)

  (* Per-domain mirror of [candidates].  The global atomic stays exact
     in total but cannot attribute work to a (rule, seed) event when
     several domains match at once; each event runs entirely on one
     domain, so the domain-local delta around it is exactly its own
     candidate count, whatever the other domains do meanwhile.  The
     engine's parallel discovery reads it to keep per-rule probe
     attribution identical to a single-domain run. *)
  let local_candidates : int ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref 0)

  let bump_candidate () =
    Atomic.incr candidates;
    incr (Domain.DLS.get local_candidates)

  let local_candidates_now () = !(Domain.DLS.get local_candidates)

  let snapshot () =
    {
      probes = Atomic.get probes;
      full_scans = Atomic.get full_scans;
      candidates = Atomic.get candidates;
      matches = Atomic.get matches;
      planned_probe_cost = Atomic.get planned_probe_cost;
      naive_probe_cost = Atomic.get naive_probe_cost;
    }

  let diff a b =
    {
      probes = b.probes - a.probes;
      full_scans = b.full_scans - a.full_scans;
      candidates = b.candidates - a.candidates;
      matches = b.matches - a.matches;
      planned_probe_cost = b.planned_probe_cost - a.planned_probe_cost;
      naive_probe_cost = b.naive_probe_cost - a.naive_probe_cost;
    }

  let reset () =
    Atomic.set probes 0;
    Atomic.set full_scans 0;
    Atomic.set candidates 0;
    Atomic.set matches 0;
    Atomic.set planned_probe_cost 0;
    Atomic.set naive_probe_cost 0

  let candidates_now () = Atomic.get candidates
end

(* ------------------------------------------------------------------ *)
(* Matcher selection                                                   *)
(* ------------------------------------------------------------------ *)

type matcher = Planned | Naive

(* Read eagerly at module initialisation, not lazily: worker domains of
   the parallel chase call [matcher ()] concurrently, and forcing a lazy
   from two domains at once raises [CamlinternalLazy.Undefined].  The
   environment cannot change the selection mid-process anyway. *)
let matcher_of_env =
  match Sys.getenv_opt "CHASE_NAIVE" with
  | Some ("1" | "true" | "yes" | "on") -> Naive
  | Some _ | None -> Planned

let selected : matcher option ref = ref None

let set_matcher m = selected := Some m

let matcher () =
  match !selected with Some m -> m | None -> matcher_of_env

(* ------------------------------------------------------------------ *)
(* The naive reference matcher (left-to-right, first bound position)   *)
(* ------------------------------------------------------------------ *)

(** Candidate facts for [pat] under partial substitution [sub], probing
    the index at the first determined position — the reference policy. *)
let candidates ins sub pat =
  let n = Atom.arity pat in
  let rec find_bound i =
    if i >= n then None
    else
      match Atom.arg pat i with
      | Term.Var v -> (
        match Subst.find_opt v sub with
        | Some t -> Some (i, t)
        | None -> find_bound (i + 1))
      | (Term.Const _ | Term.Null _) as t -> Some (i, t)
  in
  match find_bound 0 with
  | Some (i, t) ->
    Stats.bump Stats.probes;
    Instance.atoms_matching ins (Atom.pred pat) i t
  | None ->
    Stats.bump Stats.full_scans;
    Instance.atoms_of_pred ins (Atom.pred pat)

exception Stop

(** [iter_naive ?init ins pats f] calls [f] on every substitution [s]
    extending [init] with [s pats ⊆ ins]; body atoms left to right. *)
let iter_naive ?(init = Subst.empty) ins pats f =
  let rec go pats sub =
    match pats with
    | [] -> f sub
    | pat :: rest ->
      List.iter
        (fun fact ->
          Stats.bump_candidate ();
          match match_atom sub pat fact with
          | Some sub' -> go rest sub'
          | None -> ())
        (candidates ins sub pat)
  in
  go pats init

(** [iter_seeded_naive ?init ins pats ~seed f] is like {!iter_naive} but
    only yields substitutions in which at least one body atom is mapped to
    the fact [seed].  This is the semi-naive primitive of the chase
    engine: when a new fact arrives, only homomorphisms using it can be
    new. *)
let iter_seeded_naive ?(init = Subst.empty) ins pats ~seed f =
  let n = List.length pats in
  (* For each choice of the atom pinned to [seed], enumerate the rest, and
     require pinned-position minimality to avoid emitting the same
     substitution once per body atom it maps onto [seed]: the pinned atom
     must be the first body atom mapped to [seed]. *)
  let pats_arr = Array.of_list pats in
  for pin = 0 to n - 1 do
    match match_atom init pats_arr.(pin) seed with
    | None -> ()
    | Some sub0 ->
      let rec go i sub =
        if i >= n then f sub
        else if i = pin then go (i + 1) sub
        else
          List.iter
            (fun fact ->
              Stats.bump_candidate ();
              if i < pin && Atom.equal fact seed then ()
                (* an earlier atom matching [seed] is handled by a smaller
                   [pin]; skip to avoid duplicates *)
              else
                match match_atom sub pats_arr.(i) fact with
                | Some sub' -> go (i + 1) sub'
                | None -> ())
            (candidates ins sub pats_arr.(i))
      in
      go 0 sub0
  done

(* ------------------------------------------------------------------ *)
(* The planned matcher (selectivity order, smallest index per step)    *)
(* ------------------------------------------------------------------ *)

(** Candidate facts for [pat] under [sub], probing the {e smallest} index
    over all determined positions (O(arity) count lookups, no walks). *)
let candidates_best ins sub pat =
  let p = Atom.pred pat in
  let n = Atom.arity pat in
  let best = ref None in
  (* bucket size at the first determined position: what the naive
     probe policy would have walked — kept for the probe accounting *)
  let first = ref (-1) in
  for i = 0 to n - 1 do
    let t =
      match Atom.arg pat i with
      | Term.Var v -> Subst.find_opt v sub
      | (Term.Const _ | Term.Null _) as t -> Some t
    in
    match t with
    | Some t ->
      let c = Instance.count_matching ins p i t in
      if !first < 0 then first := c;
      (match !best with
      | Some (c0, _, _) when c0 <= c -> ()
      | Some _ | None -> best := Some (c, i, t))
    | None -> ()
  done;
  match !best with
  | Some (c, i, t) ->
    Stats.bump Stats.probes;
    Stats.bump_by Stats.planned_probe_cost c;
    Stats.bump_by Stats.naive_probe_cost (if !first >= 0 then !first else c);
    Instance.atoms_matching ins p i t
  | None ->
    Stats.bump Stats.full_scans;
    Instance.atoms_of_pred ins p

(* Below this instance size, planning and count probes cost more than the
   bucket walks they avoid: the planned matcher falls back to the naive
   algorithm (the substitution set is the same either way). *)
let plan_threshold = 64

(* Backtracking through [pats_arr] in the order given by [plan], starting
   at plan step [from].  [skip_seed pos fact] implements the pinned-
   position minimality filter of the seeded search (always false for the
   unseeded one). *)
let run_plan ~skip_seed pats_arr plan ~from ins sub0 f =
  let order = Plan.order plan in
  let steps = Array.length order in
  let rec go k sub =
    if k >= steps then f sub
    else
      let pos = order.(k) in
      List.iter
        (fun fact ->
          Stats.bump_candidate ();
          if skip_seed pos fact then ()
          else
            match match_atom sub pats_arr.(pos) fact with
            | Some sub' -> go (k + 1) sub'
            | None -> ())
        (candidates_best ins sub pats_arr.(pos))
  in
  go from sub0

let no_skip _ _ = false

(** [iter_planned ?init ?plan ins pats f]: same substitution set as
    {!iter_naive}, enumerated through a selectivity-ordered plan
    (computed here unless supplied). *)
let iter_planned ?(init = Subst.empty) ?plan ins pats f =
  match pats with
  | [] -> f init
  | _ when plan = None && Instance.cardinal ins < plan_threshold ->
    iter_naive ~init ins pats f
  | [ pat ] ->
    (* single atom: nothing to order, but still probe the best index *)
    List.iter
      (fun fact ->
        Stats.bump_candidate ();
        match match_atom init pat fact with Some s -> f s | None -> ())
      (candidates_best ins init pat)
  | _ ->
    let plan =
      match plan with
      | Some p -> p
      | None -> Plan.make ~bound:(Subst.domain init) ins pats
    in
    run_plan ~skip_seed:no_skip (Array.of_list pats) plan ~from:0 ins init f

(** [iter_seeded_planned ?init ins pats ~seed f]: the delta-driven
    rederivation primitive, planned.  For each body atom that matches the
    seed, that atom is pinned first (one candidate: the seed itself) and
    the rest of the body is planned with the pin's variables bound. *)
let iter_seeded_planned ?(init = Subst.empty) ins pats ~seed f =
  if Instance.cardinal ins < plan_threshold then
    iter_seeded_naive ~init ins pats ~seed f
  else begin
  let pats_arr = Array.of_list pats in
  let n = Array.length pats_arr in
  let bound0 = Subst.domain init in
  for pin = 0 to n - 1 do
    match match_atom init pats_arr.(pin) seed with
    | None -> ()
    | Some sub0 ->
      (* pinned-position minimality, as in the naive seeded search: a
         body atom left of the pin must not map onto the seed *)
      let skip_seed pos fact = pos < pin && Atom.equal fact seed in
      let plan = Plan.seeded ~bound:bound0 ins pats ~pin in
      run_plan ~skip_seed pats_arr plan ~from:1 ins sub0 f
  done
  end

(* ------------------------------------------------------------------ *)
(* Dispatching entry points                                            *)
(* ------------------------------------------------------------------ *)

(** [iter ?init ins pats f] calls [f] on every substitution [s] extending
    [init] with [s pats ⊆ ins], through the selected matcher. *)
let iter ?init ins pats f =
  let f s =
    Stats.bump Stats.matches;
    f s
  in
  match matcher () with
  | Planned -> iter_planned ?init ins pats f
  | Naive -> iter_naive ?init ins pats f

(** [iter_seeded ?init ins pats ~seed f] is like [iter] but only yields
    substitutions in which at least one body atom is mapped to the fact
    [seed].  Each qualifying substitution is produced exactly once. *)
let iter_seeded ?init ins pats ~seed f =
  let f s =
    Stats.bump Stats.matches;
    f s
  in
  match matcher () with
  | Planned -> iter_seeded_planned ?init ins pats ~seed f
  | Naive -> iter_seeded_naive ?init ins pats ~seed f

let all ?init ins pats =
  let acc = ref [] in
  iter ?init ins pats (fun s -> acc := s :: !acc);
  List.rev !acc

let exists ?init ins pats =
  try
    iter ?init ins pats (fun _ -> raise Stop);
    false
  with Stop -> true

(** [find ?init ins pats] is the first substitution found, if any. *)
let find ?init ins pats =
  let res = ref None in
  (try iter ?init ins pats (fun s -> res := Some s; raise Stop) with Stop -> ());
  !res

(** [instance_hom src dst] searches for a homomorphism from instance [src]
    to instance [dst]: a map on terms that is the identity on constants,
    maps nulls anywhere, and sends every fact of [src] to a fact of [dst].
    Returns the witness as a term map.  This is the universality test used
    by the model-theory test-suite; it is exponential in the worst case. *)
let instance_hom src dst =
  (* Recast nulls of [src] as variables and reuse the conjunctive matcher. *)
  let var_of_null n = "!null" ^ string_of_int n in
  let as_pattern a =
    Atom.map_terms
      (fun t -> match t with Term.Null n -> Term.Var (var_of_null n) | _ -> t)
      a
  in
  let pats = List.map as_pattern (Instance.to_list src) in
  match find dst pats with
  | None -> None
  | Some sub ->
    let null_of_var v =
      if String.length v > 5 && String.equal (String.sub v 0 5) "!null" then
        int_of_string_opt (String.sub v 5 (String.length v - 5))
      else None
    in
    let map =
      List.fold_left
        (fun acc (v, t) ->
          match null_of_var v with
          | Some n -> Term.Map.add (Term.Null n) t acc
          | None -> acc)
        Term.Map.empty (Subst.to_list sub)
    in
    Some map
