(** Substitutions: finite maps from rule variables (names) to terms.

    A substitution is the working object of homomorphism search: it is built
    up by binding variables one at a time, where a conflicting rebinding
    fails.  Substitutions never map variables to variables during chase
    matching (targets are instances, which are variable-free), but the type
    does not forbid it — rule-to-rule unification uses that freedom. *)

module Smap = Util.Smap

type t = Term.t Smap.t

let empty : t = Smap.empty
let is_empty = Smap.is_empty
let find_opt v (s : t) = Smap.find_opt v s
let mem v (s : t) = Smap.mem v s
let cardinal = Smap.cardinal

(** [bind s v t] binds [v] to [t]; [None] if [v] is already bound to a
    different term. *)
let bind (s : t) v t =
  match Smap.find_opt v s with
  | None -> Some (Smap.add v t s)
  | Some t' -> if Term.equal t t' then Some s else None

(** [bind_exn] is [bind] but raises [Invalid_argument] on conflict. *)
let bind_exn s v t =
  match bind s v t with
  | Some s' -> s'
  | None -> invalid_arg ("Subst.bind_exn: conflicting binding for " ^ v)

let of_list l = List.fold_left (fun s (v, t) -> bind_exn s v t) empty l
let to_list (s : t) = Smap.bindings s

(** Apply to a term; unbound variables are left untouched. *)
let apply_term (s : t) t =
  match t with
  | Term.Var v -> ( match Smap.find_opt v s with Some t' -> t' | None -> t)
  | Term.Const _ | Term.Null _ -> t

let apply_atom (s : t) a = Atom.map_terms (apply_term s) a
let apply_atoms (s : t) atoms = List.map (apply_atom s) atoms

(** [restrict s vars] keeps only the bindings of [vars]. *)
let restrict (s : t) vars = Smap.filter (fun v _ -> Util.Sset.mem v vars) s

(** The set of bound variables. *)
let domain (s : t) =
  Smap.fold (fun v _ acc -> Util.Sset.add v acc) s Util.Sset.empty

let compare (s1 : t) (s2 : t) = Smap.compare Term.compare s1 s2
let equal s1 s2 = compare s1 s2 = 0

(** [agree_on vars s1 s2]: both substitutions give the same image (possibly
    both undefined) to every variable in [vars]. *)
let agree_on vars s1 s2 =
  Util.Sset.for_all
    (fun v ->
      match find_opt v s1, find_opt v s2 with
      | None, None -> true
      | Some t1, Some t2 -> Term.equal t1 t2
      | None, Some _ | Some _, None -> false)
    vars

let pp fm (s : t) =
  let pp_binding fm (v, t) = Fmt.pf fm "%s ↦ %a" v Term.pp t in
  Fmt.pf fm "{%a}" (Util.pp_list ", " pp_binding) (to_list s)

let to_string s = Fmt.str "%a" pp s
