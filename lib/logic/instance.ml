(** Instances: mutable, indexed sets of facts (variable-free atoms).

    The chase engine spends essentially all of its time adding atoms and
    enumerating candidate atoms for body matching, so the representation
    keeps, besides the membership table, a per-predicate bucket and a
    per-(predicate, position, term) index used to narrow matching when a
    body atom already has a bound argument.

    Every bucket carries its cardinality, and the number of distinct
    terms per (predicate, position) is maintained incrementally, so the
    cardinality accessors used by the join planner ({!Plan}) are O(1) and
    never walk a bucket. *)

type bucket = {
  mutable elts : Atom.t list;
  mutable n : int;  (** [List.length elts], maintained incrementally *)
}

type t = {
  all : unit Atom.Tbl.t;  (** membership *)
  by_pred : (string, bucket) Hashtbl.t;
  by_pred_pos_term : (string * int * Term.t, bucket) Hashtbl.t;
  by_term : (Term.t, bucket) Hashtbl.t;
  distinct_at_pos : (string * int, int ref) Hashtbl.t;
      (** distinct terms seen at each (predicate, position) *)
  mutable size : int;
}

let create ?(initial_capacity = 256) () =
  {
    all = Atom.Tbl.create initial_capacity;
    by_pred = Hashtbl.create 32;
    by_pred_pos_term = Hashtbl.create initial_capacity;
    by_term = Hashtbl.create initial_capacity;
    distinct_at_pos = Hashtbl.create 64;
    size = 0;
  }

let mem ins a = Atom.Tbl.mem ins.all a
let cardinal ins = ins.size

let bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some b -> b
  | None ->
    let b = { elts = []; n = 0 } in
    Hashtbl.add tbl key b;
    b

let push b a =
  b.elts <- a :: b.elts;
  b.n <- b.n + 1

(** [add ins a] inserts [a]; returns [true] iff the atom is new.  Raises
    [Invalid_argument] if [a] contains a variable. *)
let add ins a =
  if not (Atom.is_fact a) then invalid_arg "Instance.add: atom contains a variable";
  if Atom.Tbl.mem ins.all a then false
  else begin
    Atom.Tbl.add ins.all a ();
    ins.size <- ins.size + 1;
    push (bucket ins.by_pred (Atom.pred a)) a;
    Array.iteri
      (fun i t ->
        let key = (Atom.pred a, i, t) in
        (match Hashtbl.find_opt ins.by_pred_pos_term key with
        | Some b -> push b a
        | None ->
          let b = { elts = [ a ]; n = 1 } in
          Hashtbl.add ins.by_pred_pos_term key b;
          (* first time this term shows up at this position *)
          let d =
            match Hashtbl.find_opt ins.distinct_at_pos (Atom.pred a, i) with
            | Some r -> r
            | None ->
              let r = ref 0 in
              Hashtbl.add ins.distinct_at_pos (Atom.pred a, i) r;
              r
          in
          incr d))
      (Atom.args a);
    Term.Set.iter (fun t -> push (bucket ins.by_term t) a) (Atom.term_set a);
    true
  end

let add_all ins atoms = List.iter (fun a -> ignore (add ins a)) atoms

let of_list atoms =
  let ins = create () in
  add_all ins atoms;
  ins

let atoms_of_pred ins p =
  match Hashtbl.find_opt ins.by_pred p with Some b -> b.elts | None -> []

(** [atoms_matching ins p i t] are the atoms of predicate [p] whose [i]-th
    argument is exactly the term [t]. *)
let atoms_matching ins p i t =
  match Hashtbl.find_opt ins.by_pred_pos_term (p, i, t) with
  | Some b -> b.elts
  | None -> []

(** [atoms_containing ins t] are the atoms in which term [t] occurs. *)
let atoms_containing ins t =
  match Hashtbl.find_opt ins.by_term t with Some b -> b.elts | None -> []

(* ---- O(1) cardinality accessors (the planner's statistics) ---- *)

let count_of_pred ins p =
  match Hashtbl.find_opt ins.by_pred p with Some b -> b.n | None -> 0

let count_matching ins p i t =
  match Hashtbl.find_opt ins.by_pred_pos_term (p, i, t) with
  | Some b -> b.n
  | None -> 0

let distinct_at ins p i =
  match Hashtbl.find_opt ins.distinct_at_pos (p, i) with
  | Some r -> !r
  | None -> 0

let iter f ins = Atom.Tbl.iter (fun a () -> f a) ins.all
let fold f ins init = Atom.Tbl.fold (fun a () acc -> f a acc) ins.all init
let to_list ins = fold (fun a acc -> a :: acc) ins []
let to_sorted_list ins = List.sort Atom.compare (to_list ins)

let copy ins = of_list (to_list ins)

(** All predicates with at least one fact, with their arities. *)
let predicates ins =
  Hashtbl.fold
    (fun p b acc ->
      match b.elts with [] -> acc | a :: _ -> (p, Atom.arity a) :: acc)
    ins.by_pred []

(** The set of all terms occurring in the instance. *)
let term_set ins =
  fold (fun a acc -> Term.Set.union (Atom.term_set a) acc) ins Term.Set.empty

(** Number of distinct nulls occurring in the instance. *)
let null_count ins =
  Term.Set.cardinal (Term.Set.filter Term.is_null (term_set ins))

let pp fm ins =
  Fmt.pf fm "@[<v>%a@]" (Util.pp_list "" (fun fm a -> Fmt.pf fm "%a.@ " Atom.pp a))
    (to_sorted_list ins)

let to_string ins = Fmt.str "%a" pp ins
