(** Atom entailment under TGDs, by chasing.

    [holds rules db query] asks whether every model of [db] and [rules]
    satisfies ∃x̄ [query] — equivalently, whether the chase of [db] (a
    universal model when it terminates) contains a homomorphic image of
    [query].  The query atom may contain variables; a ground query is
    entailed iff it occurs in the chase literally.

    For full (Datalog) rules the chase always terminates and the answer is
    exact; in general this is the positive half of a semi-decision
    procedure, with budget exhaustion reported as [`Unknown]. *)

open Chase_logic
open Chase_engine

type answer =
  [ `Entailed
  | `Not_entailed
  | `Unknown of string
  ]

let default_budget = 50_000

let check ?(budget = default_budget) rules db query =
  let config =
    { Engine.variant = Variant.Semi_oblivious; limits = Limits.of_budget budget }
  in
  let result = Engine.run ~config rules db in
  let found = Hom.exists result.Engine.instance [ query ] in
  if found then `Entailed
  else
    match result.Engine.status with
    | Engine.Terminated -> `Not_entailed
    | Engine.Exhausted reason ->
      `Unknown
        (Fmt.str "%a without deriving %a" Limits.pp_breach
           reason.Limits.Exhaustion.breach Atom.pp query)

let holds ?budget rules db query = check ?budget rules db query = `Entailed

(** Entailment from the critical database of the rule schema (extended
    with the query's predicate), the form used by the looping operator. *)
let holds_critical ?(standard = true) ?budget rules query =
  let schema =
    Schema.add_exn (Schema.of_rules rules) (Atom.pred query) (Atom.arity query)
  in
  let crit = Critical.instance ~standard schema in
  holds ?budget rules (Instance.to_list crit) query
