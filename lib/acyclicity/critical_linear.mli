(** Critical weak/rich acyclicity: exact termination analysis for linear
    TGDs (Theorem 2).

    Facts of the chase of the critical instance are abstracted by their
    {!Chase_logic.Pattern.t}; for linear rules this abstraction is exact
    for applicability and deterministic for children, so the chase induces
    a finite pattern-transition system.  Non-termination is witnessed by a
    {e productive lasso} — a reachable cycle whose traversals keep
    producing new full-homomorphism triggers (oblivious) or new frontier
    keys (semi-oblivious), tracked through a taint product — and every
    lasso is {e confirmed} by concretely replaying it with fresh nulls
    before being reported.  See DESIGN.md §3.2. *)

open Chase_logic

(** Provenance of a child-pattern class. *)
type source =
  | From_parent of int  (** copied from this parent class (a null class) *)
  | Fresh  (** an existential variable: a fresh null *)
  | Cst of string  (** a constant *)

(** One pattern-level chase step. *)
type transition = {
  rule_idx : int;
  head_idx : int;
  child : Pattern.t;
  sources : source array;  (** provenance of each child class *)
  frontier_classes : int list;
      (** parent null-classes holding images of the rule's frontier *)
  creates_null : bool;
}

val transitions_of : Tgd.t list -> Pattern.t -> transition list
(** All pattern-level steps out of a pattern.
    @raise Invalid_argument if a rule is not linear. *)

val initial_patterns : constants:Term.t list -> Tgd.t list -> Pattern.Set.t
(** Patterns of the critical-instance facts. *)

val reachable_patterns : constants:Term.t list -> Tgd.t list -> Pattern.Set.t
(** BFS closure of the initial patterns — exactly the patterns of facts
    occurring in the chase of the critical instance. *)

type certificate = {
  start : Pattern.t;
  cycle : transition list;  (** the confirmed pumping cycle *)
  laps_checked : int;
}

val pp_certificate : Tgd.t list -> Format.formatter -> certificate -> unit

(** The concrete evidence behind a certificate: one lap of the pump
    replayed with real fresh nulls. *)
type realization = {
  facts : Atom.t list;
      (** the instantiated start fact followed by the fact produced by
          each cycle step, in order *)
  first_subst : Subst.t;
      (** the realizing substitution of the first cycle step: body match
          plus fresh nulls for the existentials *)
}

val realize : Tgd.t list -> certificate -> realization
(** Replay one lap of a confirmed certificate.  The fact chain is the
    machine-checkable witness the diagnostics layer ([W021]) attaches to
    a non-termination verdict. *)

val confirm :
  semi:bool -> Tgd.t list -> start:Pattern.t -> cycle:transition list -> laps:int -> bool
(** Replay the cycle concretely for [laps] laps; [true] when after the
    first lap every step stayed productive (new atoms for the oblivious
    chase when [semi = false], new frontier keys when [semi = true]) and
    the final pattern closed the loop.  A confirmed pump is a sound
    non-termination witness. *)

type verdict =
  | Terminating
  | Non_terminating of certificate
  | Inconclusive of string
      (** no pump was found, yet the sanity chase of the critical instance
          did not close either — the reconstructed search missed a pump
          shape on this input (reported honestly instead of answering
          "terminating") *)

val check_oblivious : ?standard:bool -> ?sanity_budget:int -> Tgd.t list -> verdict
(** Critical rich acyclicity — oblivious-chase termination for linear
    TGDs.  [standard] (default true) includes the constants 0, 1.
    Divergence answers carry a concretely confirmed pump; termination
    answers are cross-checked against the actual chase of the critical
    instance (budget [sanity_budget], default 50_000).
    @raise Invalid_argument if the set is not linear. *)

val check_semi_oblivious :
  ?standard:bool -> ?sanity_budget:int -> Tgd.t list -> verdict
(** Critical weak acyclicity — semi-oblivious-chase termination for
    linear TGDs. *)

val terminates : ?standard:bool -> variant:Chase_engine.Variant.t -> Tgd.t list -> bool
(** @raise Invalid_argument for the restricted variant. *)
