(** Critical weak/rich acyclicity: exact termination analysis for linear
    TGDs (Theorem 2).

    Plain weak/rich acyclicity is sound but incomplete on linear TGDs with
    repeated body variables: a dangerous cycle in the (extended) dependency
    graph need not be realizable, because a repeated variable requires two
    positions to hold the {e same} term, which a fresh null can never share
    with an older term.  The paper refines the acyclicity tests so that a
    dangerous cycle necessarily corresponds to an infinite derivation; this
    module is our concrete realization of those refinements (the full PODS
    definitions are reconstructed here — see DESIGN.md §6).

    The construction works on the critical instance and abstracts every
    fact by its {!Pattern.t}.  For a linear rule, applicability to a fact
    and the pattern of every produced fact depend only on the fact's
    pattern, so the chase induces a finite {e pattern-transition system}.
    Non-termination is witnessed by a {e productive lasso}:

    - {b oblivious}: a reachable cycle such that, tracking which classes
      hold nulls created inside the cycle ({e taint}), every atom along the
      cycle after the start carries taint — then every traversal produces
      genuinely new atoms, hence new full-homomorphism triggers, forever;
    - {b semi-oblivious}: a reachable cycle of transitions each of whose
      frontier image carries taint — then every traversal produces new
      frontier keys, which is what the semi-oblivious chase deduplicates
      on.

    Every lasso found is {e confirmed} by concretely instantiating the
    start pattern and replaying the cycle several laps with real fresh
    nulls, checking that atoms (oblivious) or frontier keys
    (semi-oblivious) keep being new; a confirmed pump is a sound
    non-termination certificate (any repetition would have been caught by
    the second lap).  Termination answers are exact relative to the
    reachable pattern space. *)

open Chase_logic

(* ------------------------------------------------------------------ *)
(* Transitions of the pattern system                                   *)
(* ------------------------------------------------------------------ *)

(** Provenance of a child-pattern class. *)
type source =
  | From_parent of int  (** copied from this parent class (a null class) *)
  | Fresh  (** an existential variable: a fresh null *)
  | Cst of string  (** a constant (from the rule or a constant class) *)

(** One pattern-level chase step: rule [rule_idx], producing the
    [head_idx]-th head atom. *)
type transition = {
  rule_idx : int;
  head_idx : int;
  child : Pattern.t;
  sources : source array;  (** provenance of each child class *)
  frontier_classes : int list;
      (** parent classes holding the images of the rule's frontier
          variables (null classes only; constant images never make a
          frontier key new) *)
  creates_null : bool;
}

(** [match_body rule_body pattern] maps each body variable to the parent
    class it is bound to, if the single body atom matches a fact with this
    pattern. *)
let match_body body_atom (p : Pattern.t) : (string * int) list option =
  if
    (not (String.equal (Atom.pred body_atom) (Pattern.pred p)))
    || Atom.arity body_atom <> Pattern.arity p
  then None
  else begin
    let bindings = Hashtbl.create 8 in
    let ok = ref true in
    Array.iteri
      (fun i t ->
        if !ok then
          let cls = Pattern.class_of p i in
          match t with
          | Term.Var v -> (
            match Hashtbl.find_opt bindings v with
            | None -> Hashtbl.add bindings v cls
            | Some cls' -> if cls <> cls' then ok := false)
          | Term.Const c -> (
            match Pattern.label_of p cls with
            | Pattern.Lconst c' -> if not (String.equal c c') then ok := false
            | Pattern.Lnull -> ok := false)
          | Term.Null _ -> ok := false)
      (Atom.args body_atom);
    if !ok then Some (Hashtbl.fold (fun v c acc -> (v, c) :: acc) bindings [])
    else None
  end

(* Symbolic term of a head position, used to canonicalize the child
   pattern.  A frontier variable bound to a constant-labelled class is the
   constant itself. *)
type sym =
  | S_parent of int
  | S_fresh of string
  | S_const of string

let sym_of_head_arg (parent : Pattern.t) var_class t =
  match t with
  | Term.Const c -> S_const c
  | Term.Var v -> (
    match List.assoc_opt v var_class with
    | Some cls -> (
      match Pattern.label_of parent cls with
      | Pattern.Lconst c -> S_const c
      | Pattern.Lnull -> S_parent cls)
    | None -> S_fresh v (* existential *))
  | Term.Null _ -> invalid_arg "Critical_linear: null in rule head"

(** Child pattern and class provenance for one head atom. *)
let child_of parent var_class head_atom =
  let n = Atom.arity head_atom in
  let classes = Array.make n (-1) in
  let sources = ref [] in
  let labels = ref [] in
  let next = ref 0 in
  let seen = Hashtbl.create 8 in
  Array.iteri
    (fun i t ->
      let s = sym_of_head_arg parent var_class t in
      match Hashtbl.find_opt seen s with
      | Some c -> classes.(i) <- c
      | None ->
        let c = !next in
        incr next;
        Hashtbl.add seen s c;
        classes.(i) <- c;
        (match s with
        | S_parent cls ->
          sources := From_parent cls :: !sources;
          labels := Pattern.Lnull :: !labels
        | S_fresh _ ->
          sources := Fresh :: !sources;
          labels := Pattern.Lnull :: !labels
        | S_const cst ->
          sources := Cst cst :: !sources;
          labels := Pattern.Lconst cst :: !labels))
    (Atom.args head_atom);
  let child =
    {
      Pattern.pred = Atom.pred head_atom;
      classes;
      labels = Array.of_list (List.rev !labels);
    }
  in
  (child, Array.of_list (List.rev !sources))

(** All transitions out of a pattern. *)
let transitions_of rules (p : Pattern.t) : transition list =
  List.concat
    (List.mapi
       (fun rule_idx r ->
         match Tgd.body r with
         | [ body_atom ] -> (
           match match_body body_atom p with
           | None -> []
           | Some var_class ->
             let frontier_classes =
               Util.Sset.fold
                 (fun v acc ->
                   match List.assoc_opt v var_class with
                   | Some cls when Pattern.label_of p cls = Pattern.Lnull ->
                     cls :: acc
                   | Some _ | None -> acc)
                 (Tgd.frontier r) []
               |> List.sort_uniq Int.compare
             in
             List.mapi
               (fun head_idx head_atom ->
                 let child, sources = child_of p var_class head_atom in
                 {
                   rule_idx;
                   head_idx;
                   child;
                   sources;
                   frontier_classes;
                   creates_null = Array.exists (fun s -> s = Fresh) sources;
                 })
               (Tgd.head r))
         | _ -> invalid_arg "Critical_linear: rules must be linear")
       rules)

(* ------------------------------------------------------------------ *)
(* Reachable patterns                                                  *)
(* ------------------------------------------------------------------ *)

(** Patterns of the critical-instance facts. *)
let initial_patterns ~constants rules =
  let schema = Schema.of_rules rules in
  let cs = Array.of_list constants in
  let k = Array.length cs in
  let acc = ref Pattern.Set.empty in
  List.iter
    (fun (p, n) ->
      let args = Array.make n cs.(if k > 0 then 0 else 0) in
      let rec go i =
        if i >= n then acc := Pattern.Set.add (Pattern.of_terms p args) !acc
        else
          for j = 0 to k - 1 do
            args.(i) <- cs.(j);
            go (i + 1)
          done
      in
      if n = 0 then acc := Pattern.Set.add (Pattern.of_terms p [||]) !acc
      else go 0)
    (Schema.to_list schema);
  !acc

(** BFS closure of the initial patterns under transitions. *)
let reachable_patterns ~constants rules =
  let seen = ref (initial_patterns ~constants rules) in
  let queue = Queue.create () in
  Pattern.Set.iter (fun p -> Queue.add p queue) !seen;
  while not (Queue.is_empty queue) do
    let p = Queue.pop queue in
    List.iter
      (fun tr ->
        if not (Pattern.Set.mem tr.child !seen) then begin
          seen := Pattern.Set.add tr.child !seen;
          Queue.add tr.child queue
        end)
      (transitions_of rules p)
  done;
  !seen

(* ------------------------------------------------------------------ *)
(* Taint product search                                                *)
(* ------------------------------------------------------------------ *)

module Iset = Set.Make (Int)

module Pstate = struct
  type t = Pattern.t * Iset.t

  let compare (p1, t1) (p2, t2) =
    let c = Pattern.compare p1 p2 in
    if c <> 0 then c else Iset.compare t1 t2
end

module Pstate_set = Set.Make (Pstate)
module Pstate_map = Map.Make (Pstate)

(** Taint of the child given taint of the parent: fresh classes are
    tainted; copied classes inherit the parent class's taint. *)
let child_taint tr parent_taint =
  let acc = ref Iset.empty in
  Array.iteri
    (fun c src ->
      match src with
      | Fresh -> acc := Iset.add c !acc
      | From_parent pc -> if Iset.mem pc parent_taint then acc := Iset.add c !acc
      | Cst _ -> ())
    tr.sources;
  !acc

type certificate = {
  start : Pattern.t;
  cycle : transition list;  (** the confirmed pumping cycle *)
  laps_checked : int;
}

let pp_certificate rules fm cert =
  let rules = Array.of_list rules in
  let pp_step fm tr =
    Fmt.pf fm "%a [head %d] ~> %a"
      Tgd.pp rules.(tr.rule_idx) tr.head_idx Pattern.pp tr.child
  in
  Fmt.pf fm "@[<v>pump from %a:@ %a@]" Pattern.pp cert.start
    (Util.pp_list "" (fun fm tr -> Fmt.pf fm "%a@ " pp_step tr))
    cert.cycle

(* --- concrete confirmation ---------------------------------------- *)

(** Replay [cycle] from a concrete instantiation of [start] for [laps]
    laps with real fresh nulls, and check that after the first lap every
    step stays productive: new atoms for the oblivious chase, new frontier
    keys for the semi-oblivious chase.  Returns [true] when the pump is
    confirmed; a confirmed pump is a sound witness of non-termination (a
    new atom/key each step can never be exhausted). *)
let confirm ~semi rules ~start ~cycle ~laps =
  let rules_arr = Array.of_list rules in
  let counter = ref 0 in
  let fresh_null () =
    incr counter;
    Term.Null !counter
  in
  let atom = ref (Pattern.instantiate ~fresh_null start) in
  let seen_atoms = Atom.Tbl.create 64 in
  let seen_keys = Hashtbl.create 64 in
  Atom.Tbl.replace seen_atoms !atom ();
  let ok = ref true in
  for lap = 1 to laps do
    if !ok then
      List.iter
        (fun tr ->
          if !ok then begin
            let r = rules_arr.(tr.rule_idx) in
            let body_atom =
              match Tgd.body r with [ a ] -> a | _ -> assert false
            in
            match Hom.match_atom Subst.empty body_atom !atom with
            | None -> ok := false (* should not happen: patterns matched *)
            | Some sub ->
              let frontier_key =
                ( tr.rule_idx,
                  Subst.to_list (Subst.restrict sub (Tgd.frontier r)) )
              in
              let key_new = not (Hashtbl.mem seen_keys frontier_key) in
              Hashtbl.replace seen_keys frontier_key ();
              let sub' =
                Util.Sset.fold
                  (fun z acc -> Subst.bind_exn acc z (fresh_null ()))
                  (Tgd.existentials r) sub
              in
              let produced = Subst.apply_atom sub' (List.nth (Tgd.head r) tr.head_idx) in
              let atom_new = not (Atom.Tbl.mem seen_atoms produced) in
              Atom.Tbl.replace seen_atoms produced ();
              if lap >= 2 then
                if semi then begin
                  if not key_new then ok := false
                end
                else if not atom_new then ok := false;
              atom := produced
          end)
        cycle
  done;
  !ok && Pattern.equal (Pattern.of_atom !atom) start

(* --- concrete realization ------------------------------------------ *)

(** The concrete evidence behind a certificate: one lap of the pump
    replayed with real fresh nulls. *)
type realization = {
  facts : Atom.t list;
      (** the instantiated start fact followed by the fact produced by
          each cycle step, in order *)
  first_subst : Subst.t;
      (** the realizing substitution of the first cycle step: body match
          plus fresh nulls for the existentials *)
}

(** Replay one lap of a {e confirmed} certificate, returning the fact
    chain and the realizing substitution of the first step.  Every step
    of a confirmed cycle matches by construction; a step that fails to
    match (an unconfirmed, hand-built certificate) is skipped. *)
let realize rules cert =
  let rules_arr = Array.of_list rules in
  let counter = ref 0 in
  let fresh_null () =
    incr counter;
    Term.Null !counter
  in
  let start_fact = Pattern.instantiate ~fresh_null cert.start in
  let atom = ref start_fact in
  let facts = ref [ start_fact ] in
  let first_subst = ref None in
  List.iter
    (fun tr ->
      let r = rules_arr.(tr.rule_idx) in
      let body_atom = match Tgd.body r with [ a ] -> a | _ -> assert false in
      match Hom.match_atom Subst.empty body_atom !atom with
      | None -> ()
      | Some sub ->
        let sub' =
          Util.Sset.fold
            (fun z acc -> Subst.bind_exn acc z (fresh_null ()))
            (Tgd.existentials r) sub
        in
        if Option.is_none !first_subst then first_subst := Some sub';
        let produced =
          Subst.apply_atom sub' (List.nth (Tgd.head r) tr.head_idx)
        in
        facts := produced :: !facts;
        atom := produced)
    cert.cycle;
  {
    facts = List.rev !facts;
    first_subst = Option.value !first_subst ~default:Subst.empty;
  }

(* --- the searches -------------------------------------------------- *)

(** Oblivious-chase lasso search: from each reachable pattern π, explore
    product states (pattern, taint) following only transitions whose child
    taint is non-empty; a return to π proves every atom along the cycle
    carries within-cycle nulls. *)
let find_oblivious_pump rules reachable =
  let trans_cache = Hashtbl.create 64 in
  let transitions p =
    match Hashtbl.find_opt trans_cache p with
    | Some ts -> ts
    | None ->
      let ts = transitions_of rules p in
      Hashtbl.add trans_cache p ts;
      ts
  in
  (* DFS over simple product paths: visited-set pruning à la BFS can
     suppress a confirmable cycle behind a shorter unconfirmable path
     through the same states, so we enumerate (boundedly many) simple
     paths, collect the closing ones, and confirm them shortest-first. *)
  (* Iterative deepening: short pumping cycles must be collected and
     confirmed before the simple-path space explodes at larger depths. *)
  let max_collect = 4_000 in
  let max_confirm = 1_000 in
  let found = ref None in
  let try_depth start max_depth =
    let candidates = ref [] in
    let n_candidates = ref 0 in
    (* A pump may revisit the same product state mid-cycle (two chase
       facts with the same pattern and taint profile at different points
       of the loop), so paths may pass through each state up to twice. *)
    let visits st on_path =
      match Pstate_map.find_opt st on_path with Some n -> n | None -> 0
    in
    let rec dfs (p, taint) on_path path depth =
      if depth < max_depth && !n_candidates < max_collect then
        List.iter
          (fun tr ->
            if !n_candidates < max_collect then begin
              let t' = child_taint tr taint in
              if not (Iset.is_empty t') then begin
                let st = (tr.child, t') in
                let path' = tr :: path in
                if Pattern.equal tr.child start then begin
                  incr n_candidates;
                  candidates := List.rev path' :: !candidates
                end;
                let v = visits st on_path in
                if v < 2 then
                  dfs st (Pstate_map.add st (v + 1) on_path) path' (depth + 1)
              end
            end)
          (transitions p)
    in
    let st0 = (start, Iset.empty) in
    dfs st0 (Pstate_map.singleton st0 1) [] 0;
    let by_length =
      List.stable_sort
        (fun c1 c2 -> Int.compare (List.length c1) (List.length c2))
        (List.rev !candidates)
    in
    let tried = ref 0 in
    List.iter
      (fun cycle ->
        if !found = None && !tried < max_confirm then begin
          incr tried;
          if confirm ~semi:false rules ~start ~cycle ~laps:4 then
            found := Some { start; cycle; laps_checked = 4 }
        end)
      by_length
  in
  List.iter
    (fun depth ->
      if !found = None then
        Pattern.Set.iter
          (fun start -> if !found = None then try_depth start depth)
          reachable)
    [ 3; 6; 10; 16 ];
  !found

(** Semi-oblivious lasso search.  A transition is {e productive} from a
    tainted state when its frontier image touches taint; we search for a
    cycle of productive transitions (with at least one fresh-null creation
    feeding it, enforced by construction since taint originates in Fresh
    sources) reachable from a (π, ∅) start — the initial non-productive
    prefix corresponds to the first lap of the pump. *)
let find_semi_oblivious_pump rules reachable =
  let trans_cache = Hashtbl.create 64 in
  let transitions p =
    match Hashtbl.find_opt trans_cache p with
    | Some ts -> ts
    | None ->
      let ts = transitions_of rules p in
      Hashtbl.add trans_cache p ts;
      ts
  in
  (* Enumerate all product states reachable from any (π_reachable, ∅) via
     arbitrary transitions, keeping the whole product graph small by
     memoizing states. *)
  let visited = ref Pstate_set.empty in
  let queue = Queue.create () in
  Pattern.Set.iter
    (fun p ->
      let st = (p, Iset.empty) in
      if not (Pstate_set.mem st !visited) then begin
        visited := Pstate_set.add st !visited;
        Queue.add st queue
      end)
    reachable;
  let product_edges = ref [] in
  while not (Queue.is_empty queue) do
    let (p, taint) = Queue.pop queue in
    List.iter
      (fun tr ->
        let t' = child_taint tr taint in
        let st' = (tr.child, t') in
        let productive =
          List.exists (fun c -> Iset.mem c taint) tr.frontier_classes
        in
        product_edges := ((p, taint), tr, st', productive) :: !product_edges;
        if not (Pstate_set.mem st' !visited) then begin
          visited := Pstate_set.add st' !visited;
          Queue.add st' queue
        end)
      (transitions p)
  done;
  (* Search for a productive cycle: DFS over productive edges only,
     looking for a state reachable from itself. *)
  let prod_succ = ref Pstate_map.empty in
  List.iter
    (fun (src, tr, dst, productive) ->
      if productive then
        prod_succ :=
          Pstate_map.update src
            (fun old -> Some ((tr, dst) :: Option.value old ~default:[]))
            !prod_succ)
    !product_edges;
  let succ_of st =
    match Pstate_map.find_opt st !prod_succ with Some l -> l | None -> []
  in
  (* DFS over simple productive-edge paths from each candidate state —
     plain BFS pruning can hide a confirmable cycle behind a shorter
     unconfirmable path through the same states.  Collect closing cycles
     first (cheap) and confirm them shortest-first, so a short genuine
     pump is never drowned out by a flood of longer spurious closings.
     Confirmation replays the cycle from a fresh instantiation; the first
     lap plays the rôle of the taint-accumulating prefix. *)
  (* Iterative deepening, as in the oblivious search. *)
  let max_collect = 4_000 in
  let max_confirm = 1_000 in
  let found = ref None in
  let try_from start_state max_depth =
    let candidates = ref [] in
    let n = ref 0 in
    (* as in the oblivious search: a pump may pass through the same
       product state twice mid-cycle, so allow up to two visits *)
    let visits st on_path =
      match Pstate_map.find_opt st on_path with Some k -> k | None -> 0
    in
    let rec dfs st on_path path depth =
      if depth < max_depth && !n < max_collect then
        List.iter
          (fun (tr, dst) ->
            if !n < max_collect then begin
              if Pstate.compare dst start_state = 0 then begin
                incr n;
                candidates := List.rev (tr :: path) :: !candidates
              end;
              let v = visits dst on_path in
              if v < 2 then
                dfs dst (Pstate_map.add dst (v + 1) on_path) (tr :: path)
                  (depth + 1)
            end)
          (succ_of st)
    in
    dfs start_state (Pstate_map.singleton start_state 1) [] 0;
    let by_length =
      List.stable_sort
        (fun c1 c2 -> Int.compare (List.length c1) (List.length c2))
        (List.rev !candidates)
    in
    let tried = ref 0 in
    List.iter
      (fun cycle ->
        if !found = None && !tried < max_confirm then begin
          incr tried;
          let start = fst start_state in
          if confirm ~semi:true rules ~start ~cycle ~laps:5 then
            found := Some { start; cycle; laps_checked = 5 }
        end)
      by_length
  in
  List.iter
    (fun depth ->
      if !found = None then
        Pstate_set.iter
          (fun st ->
            if !found = None && Pstate_map.mem st !prod_succ then
              try_from st depth)
          !visited)
    [ 3; 6; 10; 16 ];
  !found

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Terminating
  | Non_terminating of certificate
  | Inconclusive of string
      (** no pump was found, yet the sanity chase of the critical instance
          did not close either — the reconstruction missed a pump shape *)

let require_linear rules =
  if not (Chase_classes.Classify.is_linear rules) then
    invalid_arg "Critical_linear: rule set is not linear"

let default_constants ~standard rules =
  Chase_engine.Critical.constants_for ~standard rules

(* The pattern search is a reconstruction (DESIGN.md §6): its divergence
   answers are concretely confirmed and therefore sound, but its
   completeness is not proven.  Before answering "terminating" we
   cross-check against the ground truth — the actual ?-chase of the
   critical instance — and degrade honestly to [Inconclusive] if that
   chase does not close within the sanity budget. *)
let sanity_terminates ~variant ~constants ~budget rules =
  let crit =
    Chase_engine.Critical.of_rules ~constants rules
  in
  let config =
    {
      Chase_engine.Engine.variant;
      limits = Chase_engine.Limits.of_budget budget;
    }
  in
  let r =
    Chase_engine.Engine.run ~config rules
      (Chase_logic.Instance.to_list crit)
  in
  r.Chase_engine.Engine.status = Chase_engine.Engine.Terminated

let check_with ~variant ~semi ~find ?(standard = true) ?(sanity_budget = 50_000)
    rules =
  ignore semi;
  require_linear rules;
  let constants = default_constants ~standard rules in
  let reachable = reachable_patterns ~constants rules in
  match find rules reachable with
  | Some cert -> Non_terminating cert
  | None ->
    if sanity_terminates ~variant ~constants ~budget:sanity_budget rules then
      Terminating
    else
      Inconclusive
        (Fmt.str
           "no confirmed pump found, but the critical-instance chase did not \
            close within %d triggers"
           sanity_budget)

(** Critical rich acyclicity: oblivious-chase termination for linear TGDs
    (reconstruction of Theorem 2, oblivious side). *)
let check_oblivious ?standard ?sanity_budget rules =
  check_with ~variant:Chase_engine.Variant.Oblivious ~semi:false
    ~find:find_oblivious_pump ?standard ?sanity_budget rules

(** Critical weak acyclicity: semi-oblivious-chase termination for linear
    TGDs (reconstruction of Theorem 2, semi-oblivious side). *)
let check_semi_oblivious ?standard ?sanity_budget rules =
  check_with ~variant:Chase_engine.Variant.Semi_oblivious ~semi:true
    ~find:find_semi_oblivious_pump ?standard ?sanity_budget rules

let terminates ?standard ~variant rules =
  match (variant : Chase_engine.Variant.t) with
  | Oblivious -> ( match check_oblivious ?standard rules with
    | Terminating -> true
    | Non_terminating _ | Inconclusive _ -> false)
  | Semi_oblivious -> ( match check_semi_oblivious ?standard rules with
    | Terminating -> true
    | Non_terminating _ | Inconclusive _ -> false)
  | Restricted ->
    invalid_arg "Critical_linear: restricted chase is not handled here"
