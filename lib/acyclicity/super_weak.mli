(** Super-weak acyclicity (Marnette, PODS 2009).

    A sufficient condition for semi-oblivious (skolem) chase termination
    built on the Σ-flow place machinery: rule σ {e triggers} σ' when a
    null invented for an existential variable of σ can reach — through
    the [Move] closure of its landing places — {e every} body occurrence
    of a frontier variable of σ', enabling σ' to invent fresh nulls in
    turn.  Σ is super-weakly acyclic iff this trigger relation is
    acyclic.

    SWA strictly generalizes joint acyclicity (place unification keeps
    constants rigid where JA's position sets conflate them) and is sound
    for the semi-oblivious and restricted chases; like WA/JA it says
    nothing about the oblivious chase (use {!Rich} there). *)

open Chase_logic

type hop = {
  rule : int;  (** index of the rule inventing the null *)
  existential : string;  (** its existential variable *)
  landing : string * int;  (** the (pred, position) where the null lands *)
}

val check : Tgd.t list -> hop list option
(** [None] when super-weakly acyclic; otherwise a cycle of the trigger
    relation, one hop per rule around the cycle. *)

val is_super_weakly_acyclic : Tgd.t list -> bool
