(** Super-weak acyclicity: acyclicity of the Σ-flow trigger relation.
    The dataflow work — places, [Move] closures, the trigger edges —
    lives in {!Chase_flow.Flow}; this module only asks whether the
    rule-level relation has a cycle, and dresses the answer as a
    witness. *)

module Flow = Chase_flow.Flow

type hop = {
  rule : int;
  existential : string;
  landing : string * int;
}

let check rules =
  let flow = Flow.build rules in
  let edges = Flow.null_edges flow in
  match edges with
  | [] -> None
  | _ ->
    let n = Array.length (Flow.rules flow) in
    let g = Digraph.create n in
    (* one graph edge per rule pair, remembering a witnessing null edge *)
    let witness = Hashtbl.create 16 in
    List.iter
      (fun (e : Flow.null_edge) ->
        if not (Hashtbl.mem witness (e.Flow.src, e.Flow.dst)) then begin
          Hashtbl.add witness (e.Flow.src, e.Flow.dst) e;
          Digraph.add_edge g ~src:e.Flow.src ~dst:e.Flow.dst ~special:true
        end)
      edges;
    (* every edge is special: any cycle refutes the condition *)
    (match Digraph.dangerous_cycle g with
    | None -> None
    | Some cycle ->
      Some
        (List.map
           (fun (de : Digraph.edge) ->
             let e = Hashtbl.find witness (de.Digraph.src, de.Digraph.dst) in
             {
               rule = e.Flow.src;
               existential = e.Flow.existential;
               landing = e.Flow.landing;
             })
           cycle))

let is_super_weakly_acyclic rules = Option.is_none (check rules)
