(** Resource governance for chase runs: one record unifying the counter
    budgets (triggers, atoms, nulls, derivation depth) with a wall-clock
    deadline and a cooperative cancellation token, plus the structured
    {!Exhaustion.reason} a degraded run reports instead of a bare status.

    Counter budgets are checked on every step; the clock and the token
    every [check_every] steps.  The clock is injectable and the cap
    fields mutable — the hooks {!Faults} uses to trip limits at chosen
    steps through the engine's real degradation paths. *)

(** Cooperative cancellation token, checked at limit-check cadence. *)
module Cancel : sig
  type t

  val create : unit -> t

  val cancel : ?reason:string -> t -> unit
  (** Idempotent; the first reason wins. *)

  val is_cancelled : t -> bool
  val reason : t -> string option
end

(** A point-in-time reading of the run's resource meters. *)
type gauge = {
  g_steps : int;  (** trigger applications so far *)
  g_facts : int;  (** current instance cardinality *)
  g_nulls : int;  (** fresh nulls invented so far *)
  g_depth : int;  (** deepest derivation chain so far *)
  g_elapsed : float;  (** wall-clock seconds since the run started *)
}

type t = {
  mutable max_triggers : int option;
  mutable max_atoms : int option;
  mutable max_nulls : int option;
  mutable max_depth : int option;
  mutable timeout : float option;  (** seconds from the start of the run *)
  cancel : Cancel.t option;
  check_every : int;  (** clock/token cadence, in steps; at least 1 *)
  clock : unit -> float;  (** injectable wall clock *)
  on_gauge : (t -> gauge -> unit) option;
      (** probe run before each limit evaluation; may mutate the caps or
          cancel the token — the fault-injection hook *)
}

val make :
  ?max_triggers:int ->
  ?max_atoms:int ->
  ?max_nulls:int ->
  ?max_depth:int ->
  ?timeout:float ->
  ?cancel:Cancel.t ->
  ?check_every:int ->
  ?clock:(unit -> float) ->
  ?on_gauge:(t -> gauge -> unit) ->
  unit ->
  t
(** Every limit defaults to absent (unlimited); [check_every] to 16;
    [clock] to [Unix.gettimeofday]. *)

val default : t
(** 100k triggers, 200k facts — the historical engine defaults.  Copy
    before mutating. *)

val unlimited : t

val of_budget : int -> t
(** [of_budget b]: the historical coupling — [b] triggers, [4 * b]
    atoms. *)

val copy : t -> t
(** Physical copy, so cap mutations cannot leak across runs. *)

val remaining : t -> steps:int -> elapsed:float -> t
(** The limits left after a previous phase consumed [steps] trigger
    applications and [elapsed] seconds: trigger budget and deadline are
    reduced (clamped at zero), everything else is copied. *)

type breach =
  | Trigger_budget of int
  | Atom_budget of int
  | Null_budget of int
  | Depth_budget of int
  | Deadline of float  (** the configured timeout, in seconds *)
  | Cancelled of string option  (** the reason given at cancellation *)

val pp_breach : Format.formatter -> breach -> unit

module Exhaustion : sig
  (** Why and how a run stopped short. *)
  type reason = {
    breach : breach;
    steps : int;  (** trigger applications performed *)
    elapsed : float;  (** wall-clock seconds consumed *)
    rule_firings : (string * int) list;  (** per-rule counts, descending *)
    dominant_rule : (string * int) option;
    null_rate : float;  (** fresh nulls per trigger over the last window *)
    window : int;  (** length of that window, in triggers *)
    deepest_chain : int;
  }

  val make :
    breach:breach ->
    ?steps:int ->
    ?elapsed:float ->
    ?rule_firings:(string * int) list ->
    ?null_rate:float ->
    ?window:int ->
    ?deepest_chain:int ->
    unit ->
    reason
  (** [dominant_rule] is derived from the head of [rule_firings]. *)

  val diagnosis : reason -> string
  (** "diverging so far" (recent null growth) vs "slow but possibly
      converging" (flat null growth), with the measured rate. *)

  val pp : Format.formatter -> reason -> unit
  (** Multi-line report: breach, steps/time, dominant rule, null growth,
      diagnosis. *)

  val summary : reason -> string
  (** One-line form, for stderr and verdict evidence. *)
end

(** A started run's limit checker. *)
module Monitor : sig
  type limits = t
  type t

  val start : limits -> t
  (** Captures the start time from the limits' clock. *)

  val elapsed : t -> float
  val limits : t -> limits

  val check :
    ?force:bool -> t -> steps:int -> facts:int -> nulls:int -> depth:int ->
    breach option
  (** Evaluate the limits against the current meters.  Counter budgets
      and the cancellation token are checked on every call; the clock and
      the [on_gauge] probe cadence-gate on [check_every] unless [force]
      is set. *)
end
