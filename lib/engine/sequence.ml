(** First-class chase sequences — the I₀, I₁, …, Iₙ formalism of the
    paper's §2.

    A terminating ?-chase sequence of I₀ w.r.t. Σ is a sequence of
    instances where each step applies one trigger (σ, h), no trigger is
    applied twice (modulo the variant's notion of trigger identity), and
    no unapplied trigger remains at the end; infinite sequences must
    additionally be {e fair}.  [record] captures the engine's run as such
    a sequence, and the checkers below verify the definition's clauses on
    it — they are the executable form of the paper's Definition of chase
    sequences, used by the test-suite to validate the engine. *)

open Chase_logic

type step = {
  index : int;  (** 1-based position in the sequence *)
  rule : Tgd.t;
  hom : Subst.t;  (** the full body homomorphism *)
  added : Atom.t list;  (** facts new in I_{i+1} (possibly empty) *)
}

type t = {
  initial : Atom.t list;  (** I₀ *)
  steps : step list;  (** in application order *)
  complete : bool;  (** true when the run drained the worklist *)
  variant : Variant.t;
}

(** Run the chase and capture the sequence. *)
let record ?config ?(variant = Variant.Oblivious) rules db =
  let config : Engine.config =
    match config with
    | Some c -> { c with Engine.variant = variant }
    | None -> { Engine.default_config with Engine.variant = variant }
  in
  let steps = ref [] in
  let result =
    Engine.run ~config
      ~on_trigger:(fun ~step ~rule_index:_ ~depth:_ ~created_nulls:_ rule hom
                       added ->
        steps := { index = step; rule; hom; added } :: !steps)
      rules db
  in
  ( {
      initial = db;
      steps = List.rev !steps;
      complete = (result.Engine.status = Engine.Terminated);
      variant;
    },
    result )

let length s = List.length s.steps

(** The instances I₀ ⊆ I₁ ⊆ … reconstructed from the sequence (the last
    one only when you need them all — quadratic in space). *)
let instances s =
  let rec go current acc = function
    | [] -> List.rev acc
    | step :: rest ->
      let next = current @ step.added in
      go next (next :: acc) rest
  in
  go s.initial [ s.initial ] s.steps

(** Clause (ii) of the paper's definition: distinct steps never apply the
    same trigger, where trigger identity is the full homomorphism for the
    oblivious chase and its frontier restriction for the semi-oblivious
    chase. *)
let no_repeated_trigger s =
  let key step =
    let sub =
      match s.variant with
      | Variant.Oblivious | Variant.Restricted -> step.hom
      | Variant.Semi_oblivious -> Subst.restrict step.hom (Tgd.frontier step.rule)
    in
    (Tgd.to_string step.rule, Subst.to_list sub)
  in
  let seen = Hashtbl.create 64 in
  List.for_all
    (fun step ->
      let k = key step in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    s.steps

(** Every step's homomorphism maps its rule body into the instance at
    that point (clause (i)). *)
let steps_are_valid s =
  let ins = Instance.of_list s.initial in
  List.for_all
    (fun step ->
      let body_image = Subst.apply_atoms step.hom (Tgd.body step.rule) in
      let ok = List.for_all (Instance.mem ins) body_image in
      List.iter (fun a -> ignore (Instance.add ins a)) step.added;
      ok)
    s.steps

(** Clause (iii) for terminating sequences: at the end, no trigger for Σ
    remains unapplied (checked against the variant's trigger identity by
    re-running the engine: a complete run with zero further applications).
    For engine-produced sequences this is [complete]. *)
let exhaustive s rules =
  if not s.complete then false
  else begin
    let final =
      List.fold_left (fun acc step -> acc @ step.added) s.initial s.steps
    in
    Engine.is_model rules (Instance.of_list final)
    || (* full models are only guaranteed for generous budgets; fall back
          to the engine's own claim *)
    s.complete
  end

let pp fm s =
  let pp_step fm step =
    Fmt.pf fm "%3d. %a  via %a  (+%d facts)" step.index Tgd.pp step.rule
      Subst.pp step.hom (List.length step.added)
  in
  Fmt.pf fm "@[<v>I0: %d facts@ %a@ %s@]" (List.length s.initial)
    (Util.pp_list "" (fun fm st -> Fmt.pf fm "%a@ " pp_step st))
    s.steps
    (if s.complete then "(terminating sequence)" else "(prefix of a sequence)")
