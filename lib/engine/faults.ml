(** Fault injection for the resource-governed chase runtime.

    A fault plan schedules injections at chosen steps — deadline expiry,
    cancellation, cap trips — and {!arm} compiles it into a {!Limits.t}
    whose injectable parts (clock, token, mutable caps) trip on schedule.
    Crucially the injections act on the engine's {e inputs}: the clock is
    skewed past the deadline, the token is cancelled, a cap is lowered to
    the current meter reading — and the engine's real limit-checking and
    degradation paths then fire exactly as they would in production.
    Nothing in the engine knows it is being tested.

    The property tests built on this harness assert that every degraded
    path still yields a well-formed partial result whose facts are all
    derivable ({!Engine.check_provenance}). *)

type injection =
  | Expire_deadline  (** skew the clock past the configured deadline *)
  | Cancel of string  (** cancel the run's token, with a reason *)
  | Trip_trigger_cap  (** collapse the trigger budget to the current count *)
  | Trip_atom_cap  (** collapse the atom budget to the current cardinality *)
  | Trip_null_cap  (** collapse the null budget to the current count *)
  | Trip_depth_cap  (** collapse the depth budget below the current depth *)

(* ------------------------------------------------------------------ *)
(* Crash-point injection for the write-ahead journal                   *)
(* ------------------------------------------------------------------ *)

exception Crash of string
(** The simulated process death: raised by a journal writer armed with a
    {!write_fault}, after the scheduled (possibly partial) bytes have
    reached the file.  Tests catch it where a real run would be killed. *)

type write_fault =
  | Kill_after_record of int
      (** write record [k] in full, then die — a kill between two
          appends *)
  | Torn_write of int * int
      (** [Torn_write (k, bytes)]: write only the first [bytes] bytes of
          record [k]'s frame, then die — a torn append, leaving a
          corrupt tail *)
  | Fsync_fail of int
      (** the [k]-th [fsync] through the writer fails fatally — a dying
          disk rather than a dying process *)

let pp_write_fault fm = function
  | Kill_after_record k -> Fmt.pf fm "kill-after-record %d" k
  | Torn_write (k, b) -> Fmt.pf fm "torn-write(%d, %d bytes)" k b
  | Fsync_fail k -> Fmt.pf fm "fsync-fail %d" k

(* ------------------------------------------------------------------ *)
(* Per-path write-fault arming                                         *)
(* ------------------------------------------------------------------ *)

(** Independent fault arming per journal path, so a chaos harness can
    target one session among many: writers consult the registry for
    their own path at open time and combine what they find with any
    explicitly passed faults.  [Kill_after_record] and [Torn_write]
    compose freely — each stream carries a {e list} of armed faults. *)
module Writes = struct
  let mu = Mutex.create ()
  let tbl : (string, write_fault list) Hashtbl.t = Hashtbl.create 7

  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

  let arm path faults =
    locked (fun () -> Hashtbl.replace tbl path faults)

  let disarm path = locked (fun () -> Hashtbl.remove tbl path)

  let armed_for path =
    locked (fun () -> Option.value ~default:[] (Hashtbl.find_opt tbl path))

  let reset () = locked (fun () -> Hashtbl.reset tbl)
end

(* ------------------------------------------------------------------ *)
(* Parallel-plane faults                                               *)
(* ------------------------------------------------------------------ *)

(** Faults of the multicore matching plane, consumed by
    [Chase_engine.Parallel]: a deterministic per-domain slowdown — the
    armed domain sleeps for the configured seconds before {e every}
    discovery event it claims.  Skewing one domain's speed reshuffles
    which domain matches which event (work stealing drains the slack),
    which is exactly what the determinism battery needs to perturb: the
    merged event order, and with it the whole chase sequence, must not
    move.  The registry is an immutable array behind an [Atomic] so the
    per-event read in the workers is a single load, never a lock. *)
module Parallel_delays = struct
  (* index d = seconds of sleep before each event claimed by domain d *)
  let delays : float array Atomic.t = Atomic.make [||]

  let arm ds =
    let top = List.fold_left (fun m (d, _) -> max m d) (-1) ds in
    if top < 0 then Atomic.set delays [||]
    else begin
      let a = Array.make (top + 1) 0. in
      List.iter
        (fun (d, s) -> if d >= 0 && s > 0. then a.(d) <- a.(d) +. s)
        ds;
      Atomic.set delays a
    end

  let reset () = Atomic.set delays [||]

  let delay_for d =
    let a = Atomic.get delays in
    if d >= 0 && d < Array.length a then a.(d) else 0.
end

(* ------------------------------------------------------------------ *)
(* Service-level faults                                                *)
(* ------------------------------------------------------------------ *)

(** Faults of the request/response plane of the chase service — the
    vocabulary [Chase_service.Server] consumes.  Like the write faults,
    they act through the real code paths: the accept loop really exits,
    the response socket is really closed mid-write. *)
type service_fault =
  | Kill_accept_after of int
      (** the accept loop exits after the [n]-th accepted connection *)
  | Drop_response_after of int * int
      (** [Drop_response_after (k, bytes)]: the [k]-th response written
          by the server is cut after [bytes] bytes and the connection
          closed — a mid-response drop *)
  | Slow_response of int * int
      (** [Slow_response (k, chunk)]: the [k]-th response is written
          [chunk] bytes at a time, yielding between chunks — slow-loris
          partial writes *)

let pp_service_fault fm = function
  | Kill_accept_after n -> Fmt.pf fm "kill-accept-after %d" n
  | Drop_response_after (k, b) -> Fmt.pf fm "drop-response(%d, %d bytes)" k b
  | Slow_response (k, c) -> Fmt.pf fm "slow-response(%d, %d-byte chunks)" k c

(* ------------------------------------------------------------------ *)
(* Replication-plane faults                                            *)
(* ------------------------------------------------------------------ *)

(** Faults of the primary→standby shipping plane, consumed by
    [Chase_replica.Shipper].  As everywhere else they act through the
    real code paths: the connection is really cut (a network
    partition), the frame really goes out twice (an at-least-once
    retransmit), the shipped bytes are really corrupted (the standby's
    CRC check must catch them), the send is really delayed (replication
    lag).  Counting is by ship frame, 1-based, within one shipper. *)
type replica_fault =
  | Cut_ship_after of int
      (** partition: the shipping connection drops after the [k]-th
          frame has been sent; the shipper must reconnect and resync *)
  | Dup_ship of int
      (** the [k]-th ship frame is sent twice — the standby must apply
          it idempotently and keep its cumulative ack monotone *)
  | Corrupt_ship of int
      (** the [k]-th ship frame's payload is corrupted in flight (one
          hex digit flipped, declared CRC left intact) — the standby
          must reject it structurally and force a resync *)
  | Delay_ship of int * float
      (** the [k]-th ship frame is delayed by the given seconds —
          deterministic replication lag *)

let pp_replica_fault fm = function
  | Cut_ship_after k -> Fmt.pf fm "cut-ship-after %d" k
  | Dup_ship k -> Fmt.pf fm "dup-ship %d" k
  | Corrupt_ship k -> Fmt.pf fm "corrupt-ship %d" k
  | Delay_ship (k, s) -> Fmt.pf fm "delay-ship(%d, %.3fs)" k s

let pp_injection fm = function
  | Expire_deadline -> Fmt.string fm "expire-deadline"
  | Cancel why -> Fmt.pf fm "cancel(%s)" why
  | Trip_trigger_cap -> Fmt.string fm "trip-trigger-cap"
  | Trip_atom_cap -> Fmt.string fm "trip-atom-cap"
  | Trip_null_cap -> Fmt.string fm "trip-null-cap"
  | Trip_depth_cap -> Fmt.string fm "trip-depth-cap"

type event = {
  at_step : int;
  injection : injection;
  mutable tripped : bool;
}

type t = {
  events : event list;
  skew : float ref;  (** seconds added to the armed limits' clock *)
  mutable log : (int * injection) list;  (** injections fired, reversed *)
}

let create plan =
  {
    events =
      List.map
        (fun (at_step, injection) -> { at_step; injection; tripped = false })
        plan;
    skew = ref 0.;
    log = [];
  }

let fired t = List.rev t.log

let inject t (l : Limits.t) (g : Limits.gauge) ev =
  ev.tripped <- true;
  t.log <- (g.Limits.g_steps, ev.injection) :: t.log;
  match ev.injection with
  | Expire_deadline ->
    let d = match l.Limits.timeout with Some d -> d | None -> 0. in
    t.skew := !(t.skew) +. d +. 1.
  | Cancel why -> (
    match l.Limits.cancel with
    | Some c -> Limits.Cancel.cancel ~reason:why c
    | None -> ())
  | Trip_trigger_cap -> l.Limits.max_triggers <- Some g.Limits.g_steps
  | Trip_atom_cap -> l.Limits.max_atoms <- Some g.Limits.g_facts
  | Trip_null_cap -> l.Limits.max_nulls <- Some g.Limits.g_nulls
  | Trip_depth_cap -> l.Limits.max_depth <- Some (g.Limits.g_depth - 1)

(** [arm t base] is a copy of [base] wired to the plan: the copy's clock
    adds the plan's skew, its token is shared with (or created for) the
    plan, and its [on_gauge] probe fires each scheduled injection the
    first time the step counter reaches its step.  [check_every] is
    forced to 1 so injections land deterministically. *)
let arm t (base : Limits.t) =
  let cancel =
    match base.Limits.cancel with
    | Some c -> c
    | None -> Limits.Cancel.create ()
  in
  let base_clock = base.Limits.clock in
  let clock () = base_clock () +. !(t.skew) in
  let on_gauge l g =
    List.iter
      (fun ev ->
        if (not ev.tripped) && g.Limits.g_steps >= ev.at_step then
          inject t l g ev)
      t.events
  in
  {
    (Limits.copy base) with
    Limits.cancel = Some cancel;
    clock;
    on_gauge = Some on_gauge;
    check_every = 1;
  }
