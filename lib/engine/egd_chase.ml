(** The chase with TGDs and EGDs — the full data-exchange setting.

    EGD applications are destructive: equating a null with another term
    rewrites the whole instance, so the incremental trigger bookkeeping of
    {!Engine} does not carry across them.  We therefore implement the
    standard alternation for the {e restricted} chase (the variant used in
    data exchange, where re-examining triggers is harmless because
    satisfied heads are skipped):

    {v
    repeat
      saturate the EGDs:  find a violated EGD match, merge (null ↦ term,
        preferring constants as representatives), rewrite the instance;
        fail when two distinct constants are equated;
      run the restricted TGD chase on the rewritten instance;
    until neither phase changed anything (or a limit is breached)
    v}

    One overall {!Limits.t} governs the alternation: the trigger budget
    and the wall-clock deadline are threaded through the inner TGD runs
    via {!Limits.remaining}, and the limits are re-checked at every round
    boundary (so a deadline passing during EGD saturation is honoured at
    the next boundary).  The result, on success, is a finite instance
    satisfying both the TGDs and the EGDs. *)

open Chase_logic

type status =
  | Terminated  (** fixpoint reached: the result satisfies TGDs and EGDs *)
  | Failed of string  (** an EGD equated two distinct constants *)
  | Exhausted of Limits.Exhaustion.reason
      (** a limit was breached; the run is a prefix *)

type result = {
  instance : Instance.t;
  status : status;
  merges : int;  (** null-merging EGD applications performed *)
  rounds : int;  (** TGD/EGD alternations *)
  triggers_applied : int;
}

(* One EGD saturation pass: rewrite until no violated match remains.
   Returns the (possibly rebuilt) instance and the number of merges, or
   the constant conflict. *)
let saturate_egds egds instance =
  let merges = ref 0 in
  let conflict = ref None in
  let rec pass instance =
    (* find one violated equality, apply it, restart (the rewrite
       invalidates the iteration state) *)
    let violation = ref None in
    List.iter
      (fun egd ->
        if !violation = None && !conflict = None then
          Hom.iter instance (Egd.body egd) (fun sub ->
              if !violation = None && !conflict = None then
                List.iter
                  (fun (x, y) ->
                    match Subst.find_opt x sub, Subst.find_opt y sub with
                    | Some tx, Some ty when not (Term.equal tx ty) -> (
                      match tx, ty with
                      | Term.Const cx, Term.Const cy ->
                        conflict :=
                          Some
                            (Fmt.str "EGD %a equates distinct constants %s and %s"
                               Egd.pp egd cx cy)
                      | Term.Null _, _ -> violation := Some (tx, ty)
                      | _, Term.Null _ -> violation := Some (ty, tx)
                      | Term.Var _, _ | _, Term.Var _ -> assert false)
                    | _ -> ())
                  (Egd.equalities egd)))
      egds;
    match !violation with
    | None -> instance
    | Some (from_term, to_term) ->
      incr merges;
      let rewrite t = if Term.equal t from_term then to_term else t in
      let rebuilt = Instance.create () in
      Instance.iter
        (fun a -> ignore (Instance.add rebuilt (Atom.map_terms rewrite a)))
        instance;
      pass rebuilt
  in
  let final = pass instance in
  match !conflict with
  | Some msg -> Error msg
  | None -> Ok (final, !merges)

let default_config =
  {
    Engine.variant = Variant.Restricted;
    limits = Limits.make ~max_triggers:50_000 ~max_atoms:200_000 ();
  }

(** [run ~tgds ~egds db] alternates restricted-chase rounds and EGD
    saturation until a joint fixpoint.  [config.variant] is ignored — the
    restricted chase is the only variant with sane EGD interleaving under
    re-examination (see the module comment). *)
let run ?(config = default_config) ?(obs = Chase_obs.Obs.disabled) ~tgds ~egds
    db =
  let module Obs = Chase_obs.Obs in
  let config = { config with Engine.variant = Variant.Restricted } in
  let base = config.Engine.limits in
  let monitor = Limits.Monitor.start base in
  let total_triggers = ref 0 in
  let total_merges = ref 0 in
  let rounds = ref 0 in
  let finish instance status =
    {
      instance;
      status;
      merges = !total_merges;
      rounds = !rounds;
      triggers_applied = !total_triggers;
    }
  in
  let saturate_egds egds instance =
    Obs.with_span obs "egd-saturate" (fun () -> saturate_egds egds instance)
  in
  let rec loop instance =
    incr rounds;
    Obs.span_begin obs
      ~args:[ ("round", Chase_obs.Jsonv.Int !rounds) ]
      "round";
    let out = round instance in
    Obs.span_end obs "round";
    out
  and round instance =
    match saturate_egds egds instance with
    | Error msg -> finish instance (Failed msg)
    | Ok (instance, merges) -> (
      total_merges := !total_merges + merges;
      Obs.incr obs ~by:merges "chase.egd.merges";
      match
        Limits.Monitor.check ~force:true monitor ~steps:!total_triggers
          ~facts:(Instance.cardinal instance)
          ~nulls:(Instance.null_count instance)
          ~depth:0
      with
      | Some breach ->
        finish instance
          (Exhausted
             (Limits.Exhaustion.make ~breach ~steps:!total_triggers
                ~elapsed:(Limits.Monitor.elapsed monitor)
                ()))
      | None -> (
        let round_limits =
          Limits.remaining base ~steps:!total_triggers
            ~elapsed:(Limits.Monitor.elapsed monitor)
        in
        let r =
          Engine.run ~obs
            ~config:{ config with Engine.limits = round_limits }
            tgds (Instance.to_list instance)
        in
        total_triggers := !total_triggers + r.Engine.triggers_applied;
        match r.Engine.status with
        | Engine.Exhausted reason ->
          (* restate the breach against the overall accounting *)
          finish r.Engine.instance
            (Exhausted
               {
                 reason with
                 Limits.Exhaustion.steps = !total_triggers;
                 elapsed = Limits.Monitor.elapsed monitor;
               })
        | Engine.Terminated ->
          if r.Engine.atoms_created = 0 && merges = 0 && !rounds > 1 then
            finish r.Engine.instance Terminated
          else if r.Engine.atoms_created = 0 && merges = 0 then
            (* first round: check the EGDs once more on the TGD result *)
            check_fixpoint r.Engine.instance
          else loop r.Engine.instance))
  and check_fixpoint instance =
    match saturate_egds egds instance with
    | Error msg -> finish instance (Failed msg)
    | Ok (instance, 0) -> finish instance Terminated
    | Ok (instance, merges) ->
      total_merges := !total_merges + merges;
      loop instance
  in
  loop (Instance.of_list db)

(** [satisfies_egds egds ins]: no violated EGD match. *)
let satisfies_egds egds ins =
  List.for_all
    (fun egd ->
      let ok = ref true in
      Hom.iter ins (Egd.body egd) (fun sub ->
          if !ok then
            List.iter
              (fun (x, y) ->
                match Subst.find_opt x sub, Subst.find_opt y sub with
                | Some tx, Some ty -> if not (Term.equal tx ty) then ok := false
                | _ -> ())
              (Egd.equalities egd));
      !ok)
    egds

let pp_result fm r =
  Fmt.pf fm "@[<v>chase with EGDs: %s@ facts: %d@ merges: %d@ rounds: %d@ \
             triggers: %d@]"
    (match r.status with
    | Terminated -> "terminated"
    | Failed msg -> "failed (" ^ msg ^ ")"
    | Exhausted e ->
      Fmt.str "budget exhausted: %a" Limits.pp_breach e.Limits.Exhaustion.breach)
    (Instance.cardinal r.instance)
    r.merges r.rounds r.triggers_applied
