(** Resource governance for chase runs.

    The chase is a semi-decision procedure: on non-terminating inputs it
    runs forever, so every entry point that chases anything takes a
    [Limits.t] — one record unifying the counter budgets (triggers, atoms,
    nulls, derivation depth) with a wall-clock deadline and a cooperative
    cancellation token.  Counter budgets are checked on every step; the
    clock and the token are consulted every [check_every] steps, so a
    deadline or a cancellation is honoured within a bounded number of
    trigger applications.

    The clock is injectable ([clock] defaults to [Unix.gettimeofday]) and
    the cap fields are mutable: both are the hooks the fault-injection
    harness ({!Faults}) uses to trip deadline expiry, cancellation and
    allocation caps at chosen steps while exercising the {e real}
    limit-checking paths of the engine.

    A breached limit never throws: the engine degrades gracefully and
    returns the partial instance together with a structured
    {!Exhaustion.reason} saying which limit tripped, which rule dominated
    the trigger firings, the null-growth rate over the last window, and
    the deepest derivation chain — the diagnostics a divergent run needs
    (cf. the experimental study of Calautti–Milani–Pieris 2023). *)

(** Cooperative cancellation: a token shared between the caller and the
    running chase, checked at limit-check cadence. *)
module Cancel = struct
  type t = {
    mutable cancelled : bool;
    mutable why : string option;
  }

  let create () = { cancelled = false; why = None }

  let cancel ?reason t =
    if not t.cancelled then begin
      t.cancelled <- true;
      t.why <- reason
    end

  let is_cancelled t = t.cancelled
  let reason t = t.why
end

(** A point-in-time reading of the run's resource meters, handed to the
    [on_gauge] probe before the limits are evaluated. *)
type gauge = {
  g_steps : int;  (** trigger applications so far *)
  g_facts : int;  (** current instance cardinality *)
  g_nulls : int;  (** fresh nulls invented so far *)
  g_depth : int;  (** deepest derivation chain so far *)
  g_elapsed : float;  (** wall-clock seconds since the run started *)
}

type t = {
  mutable max_triggers : int option;
      (** stop after this many trigger applications *)
  mutable max_atoms : int option;
      (** stop once the instance reaches this many facts *)
  mutable max_nulls : int option;
      (** stop once this many fresh nulls have been invented *)
  mutable max_depth : int option;
      (** stop once a derivation chain exceeds this depth *)
  mutable timeout : float option;
      (** wall-clock deadline, in seconds from the start of the run *)
  cancel : Cancel.t option;  (** cooperative cancellation token *)
  check_every : int;
      (** consult the clock and the token every N steps (counters are
          checked on every step) *)
  clock : unit -> float;  (** injectable wall clock, for tests and faults *)
  on_gauge : (t -> gauge -> unit) option;
      (** probe run before each limit evaluation; may mutate the caps or
          cancel the token — the fault-injection hook *)
}

let make ?max_triggers ?max_atoms ?max_nulls ?max_depth ?timeout ?cancel
    ?(check_every = 16) ?(clock = Unix.gettimeofday) ?on_gauge () =
  {
    max_triggers;
    max_atoms;
    max_nulls;
    max_depth;
    timeout;
    cancel;
    check_every = max 1 check_every;
    clock;
    on_gauge;
  }

let default = make ~max_triggers:100_000 ~max_atoms:200_000 ()
let unlimited = make ()

(** The historical coupling: a trigger budget of [b] with an atom budget
    of [4 * b]. *)
let of_budget b = make ~max_triggers:b ~max_atoms:(4 * b) ()

(* A physical copy, so mutating the caps of one run (fault injection,
   [remaining]) cannot leak into another run sharing the record. *)
let copy l = { l with check_every = l.check_every }

(** [remaining l ~steps ~elapsed] is [l] with the trigger budget and the
    deadline reduced by what a previous phase already consumed — how a
    multi-round driver ({!Egd_chase}) threads one overall budget through
    its inner runs. *)
let remaining l ~steps ~elapsed =
  let l' = copy l in
  (match l.max_triggers with
  | Some n -> l'.max_triggers <- Some (max 0 (n - steps))
  | None -> ());
  (match l.timeout with
  | Some d -> l'.timeout <- Some (Float.max 0. (d -. elapsed))
  | None -> ());
  l'

type breach =
  | Trigger_budget of int
  | Atom_budget of int
  | Null_budget of int
  | Depth_budget of int
  | Deadline of float  (** the configured timeout, in seconds *)
  | Cancelled of string option  (** the reason given at cancellation *)

let pp_breach fm = function
  | Trigger_budget n -> Fmt.pf fm "trigger budget of %d applications" n
  | Atom_budget n -> Fmt.pf fm "atom budget of %d facts" n
  | Null_budget n -> Fmt.pf fm "null budget of %d fresh nulls" n
  | Depth_budget n -> Fmt.pf fm "derivation-depth budget of %d" n
  | Deadline d -> Fmt.pf fm "wall-clock deadline of %gs" d
  | Cancelled None -> Fmt.pf fm "cancellation request"
  | Cancelled (Some why) -> Fmt.pf fm "cancellation request (%s)" why

module Exhaustion = struct
  (** Why and how a run stopped short: the structured account returned in
      place of a bare "budget exhausted" status. *)
  type reason = {
    breach : breach;  (** which limit tripped *)
    steps : int;  (** trigger applications performed *)
    elapsed : float;  (** wall-clock seconds consumed *)
    rule_firings : (string * int) list;
        (** per-rule firing counts, descending *)
    dominant_rule : (string * int) option;
        (** the rule that fired most, when any fired *)
    null_rate : float;  (** fresh nulls per trigger over the last window *)
    window : int;  (** length, in triggers, of that window *)
    deepest_chain : int;  (** deepest derivation chain reached *)
  }

  let make ~breach ?(steps = 0) ?(elapsed = 0.) ?(rule_firings = [])
      ?(null_rate = 0.) ?(window = 0) ?(deepest_chain = 0) () =
    let dominant_rule =
      match rule_firings with
      | (name, count) :: _ when count > 0 -> Some (name, count)
      | _ -> None
    in
    {
      breach;
      steps;
      elapsed;
      rule_firings;
      dominant_rule;
      null_rate;
      window;
      deepest_chain;
    }

  (** One-line triage of an exhausted run: a high recent null-growth rate
      is the signature of divergence, a flat one of a slow but possibly
      converging run. *)
  let diagnosis r =
    if r.null_rate >= 0.05 then
      Fmt.str
        "diverging so far: still inventing %.2f fresh nulls per trigger over \
         the last %d triggers"
        r.null_rate r.window
    else
      Fmt.str
        "slow but possibly converging: null growth %.2f per trigger over the \
         last %d triggers"
        r.null_rate r.window

  let pp fm r =
    Fmt.pf fm "@[<v>exhausted: %a@ after: %d triggers in %.2fs@ " pp_breach
      r.breach r.steps r.elapsed;
    (match r.dominant_rule with
    | Some (name, count) ->
      Fmt.pf fm "dominant rule: %s (%d/%d firings)@ " name count r.steps
    | None -> Fmt.pf fm "dominant rule: none fired@ ");
    Fmt.pf fm "null growth: %.2f per trigger (window %d)@ %s@]" r.null_rate
      r.window (diagnosis r)

  let summary r =
    Fmt.str "%a after %d triggers; %s%s" pp_breach r.breach r.steps
      (match r.dominant_rule with
      | Some (name, count) ->
        Fmt.str "dominant rule %s (%d firings); " name count
      | None -> "")
      (diagnosis r)
end

(** A started run's limit checker: captures the start time and caches the
    last clock reading between due checks. *)
module Monitor = struct
  type limits = t

  type t = {
    limits : limits;
    start : float;
    mutable last_elapsed : float;
  }

  let start limits = { limits; start = limits.clock (); last_elapsed = 0. }
  let elapsed m = m.limits.clock () -. m.start
  let limits m = m.limits

  let check ?(force = false) m ~steps ~facts ~nulls ~depth =
    let l = m.limits in
    let due =
      force || Option.is_some l.on_gauge || steps mod l.check_every = 0
    in
    if due then begin
      m.last_elapsed <- elapsed m;
      (match l.on_gauge with
      | Some probe ->
        probe l
          {
            g_steps = steps;
            g_facts = facts;
            g_nulls = nulls;
            g_depth = depth;
            g_elapsed = m.last_elapsed;
          };
        (* the probe may have skewed the clock or tightened the deadline *)
        m.last_elapsed <- elapsed m
      | None -> ())
    end;
    let cancelled =
      match l.cancel with Some c -> Cancel.is_cancelled c | None -> false
    in
    if cancelled then
      let why =
        match l.cancel with Some c -> Cancel.reason c | None -> None
      in
      Some (Cancelled why)
    else
      match l.timeout with
      | Some d when due && m.last_elapsed >= d -> Some (Deadline d)
      | _ -> (
        match l.max_triggers with
        | Some n when steps >= n -> Some (Trigger_budget n)
        | _ -> (
          match l.max_atoms with
          | Some n when facts >= n -> Some (Atom_budget n)
          | _ -> (
            match l.max_nulls with
            | Some n when nulls >= n -> Some (Null_budget n)
            | _ -> (
              match l.max_depth with
              | Some n when depth > n -> Some (Depth_budget n)
              | _ -> None))))
end
