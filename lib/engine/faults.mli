(** Fault injection for the resource-governed chase runtime: schedule
    deadline expiry, cancellation or cap trips at chosen steps, and let
    the engine's {e real} limit-checking and degradation paths fire.  The
    injections act on the limits' injectable parts (clock skew, token,
    mutable caps); the engine never knows it is being tested. *)

type injection =
  | Expire_deadline  (** skew the clock past the configured deadline *)
  | Cancel of string  (** cancel the run's token, with a reason *)
  | Trip_trigger_cap  (** collapse the trigger budget to the current count *)
  | Trip_atom_cap  (** collapse the atom budget to the current cardinality *)
  | Trip_null_cap  (** collapse the null budget to the current count *)
  | Trip_depth_cap  (** collapse the depth budget below the current depth *)

val pp_injection : Format.formatter -> injection -> unit

exception Crash of string
(** The simulated process death raised by a journal writer armed with a
    {!write_fault}, after the scheduled (possibly partial) bytes have
    reached the file.  Tests catch it where a real run would be killed. *)

type write_fault =
  | Kill_after_record of int
      (** write record [k] in full, then die — a kill between appends *)
  | Torn_write of int * int
      (** [Torn_write (k, bytes)]: write only the first [bytes] bytes of
          record [k]'s frame, then die — a torn append *)
  | Fsync_fail of int
      (** the [k]-th [fsync] through the writer fails fatally — a dying
          disk rather than a dying process *)

val pp_write_fault : Format.formatter -> write_fault -> unit

(** Independent write-fault arming per journal path: writers look up
    their own path at open time and combine the armed faults with any
    passed explicitly, so a chaos harness can target one session among
    many — and [Kill_after_record] + [Torn_write] compose on one
    stream.  All operations are thread-safe. *)
module Writes : sig
  val arm : string -> write_fault list -> unit
  (** Replace the faults armed for a path. *)

  val disarm : string -> unit
  val armed_for : string -> write_fault list
  val reset : unit -> unit
  (** Disarm every path (test teardown). *)
end

(** Faults of the multicore matching plane (consumed by
    [Chase_engine.Parallel]): an armed domain really sleeps for the
    configured seconds before every discovery event it claims, skewing
    the work-stealing schedule so other domains drain its share.  The
    determinism battery arms these to prove the merged event order —
    and with it the whole chase sequence — never moves.  Thread-safe;
    the per-event read in the workers is one atomic load. *)
module Parallel_delays : sig
  val arm : (int * float) list -> unit
  (** [(domain, seconds)] pairs; replaces the current arming.  Pairs on
      the same domain accumulate; non-positive delays are ignored. *)

  val reset : unit -> unit
  (** Disarm every domain (test teardown). *)

  val delay_for : int -> float
  (** Seconds a given domain must sleep before each claimed event. *)
end

(** Faults of the request/response plane of the chase service (consumed
    by [Chase_service.Server]): the accept loop really exits, the
    response socket is really closed or throttled mid-write. *)
type service_fault =
  | Kill_accept_after of int
      (** the accept loop exits after the [n]-th accepted connection *)
  | Drop_response_after of int * int
      (** the [k]-th response is cut after [bytes] bytes and the
          connection closed — a mid-response drop *)
  | Slow_response of int * int
      (** the [k]-th response is written [chunk] bytes at a time,
          yielding between chunks — slow-loris partial writes *)

val pp_service_fault : Format.formatter -> service_fault -> unit

(** Faults of the primary→standby replication plane (consumed by
    [Chase_replica.Shipper]): the shipping connection is really cut, a
    frame really goes out twice, the shipped bytes are really corrupted
    in flight, a send is really delayed.  Frame counting is 1-based
    within one shipper. *)
type replica_fault =
  | Cut_ship_after of int
      (** partition after the [k]-th shipped frame; reconnect + resync *)
  | Dup_ship of int  (** the [k]-th frame is sent twice *)
  | Corrupt_ship of int
      (** the [k]-th frame's payload is corrupted, CRC left intact —
          the standby must reject it structurally *)
  | Delay_ship of int * float
      (** the [k]-th frame is delayed by the given seconds *)

val pp_replica_fault : Format.formatter -> replica_fault -> unit

type t

val create : (int * injection) list -> t
(** [(step, injection)] pairs; each fires once, the first time the
    engine's step counter reaches its step. *)

val arm : t -> Limits.t -> Limits.t
(** A copy of the given limits wired to the plan, with [check_every]
    forced to 1 so injections land deterministically. *)

val fired : t -> (int * injection) list
(** Injections that actually fired, in firing order, with the step at
    which each landed. *)
