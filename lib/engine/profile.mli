(** The [--profile] per-rule hot-spot table, rendered from the metric
    registry an observed {!Engine.run} filled. *)

type row = {
  label : string;
  firings : int;
  nulls : int;
  probes : int;  (** candidate facts examined while matching *)
  match_s : float;  (** seconds matching (seed + seeded rediscovery) *)
  time_s : float;  (** seconds applying triggers, matching included *)
}

val rows : Chase_obs.Metrics.t -> row list
(** One row per rule that fired or matched, sorted by firings
    descending, ties by name — deterministic, unlike time. *)

val pp : Format.formatter -> Chase_obs.Metrics.t -> unit
(** The table: rule / firings / nulls / probes / match-ms / total-ms /
    share, with a TOTAL row re-summing the columns.  Prints a note when
    no rule activity was recorded. *)
