(** The [--profile] hot-spot table: per-rule firings, nulls, probes and
    time, read back from the metric registry the engine filled.

    Rows are sorted by firings (descending), ties by rule name — a
    deterministic order pinned by the cram suite, unlike wall-clock
    time.  The TOTAL row re-sums the columns, so the table is
    self-checking against the run totals the engine prints. *)

module Metrics = Chase_obs.Metrics

type row = {
  label : string;
  firings : int;
  nulls : int;
  probes : int;
  match_s : float;
  time_s : float;
}

let hist_sum m ~label name =
  match Metrics.hist_stats m ~label name with
  | Some (_, sum, _, _, _, _, _) -> sum
  | None -> 0.

let rows m =
  Metrics.labels_of m "chase.rule.firings"
  |> List.map (fun label ->
         {
           label;
           firings = Metrics.counter_value m ~label "chase.rule.firings";
           nulls = Metrics.counter_value m ~label "chase.rule.nulls";
           probes = Metrics.counter_value m ~label "chase.rule.probes";
           match_s = hist_sum m ~label "chase.rule.match_s";
           time_s = hist_sum m ~label "chase.rule.time_s";
         })
  |> List.sort (fun a b ->
         match Int.compare b.firings a.firings with
         | 0 -> String.compare a.label b.label
         | c -> c)

let pp fm m =
  match rows m with
  | [] -> Fmt.pf fm "profile: no rule activity recorded@."
  | rows ->
    let total =
      List.fold_left
        (fun acc r ->
          {
            acc with
            firings = acc.firings + r.firings;
            nulls = acc.nulls + r.nulls;
            probes = acc.probes + r.probes;
            match_s = acc.match_s +. r.match_s;
            time_s = acc.time_s +. r.time_s;
          })
        {
          label = "TOTAL";
          firings = 0;
          nulls = 0;
          probes = 0;
          match_s = 0.;
          time_s = 0.;
        }
        rows
    in
    let w =
      List.fold_left
        (fun w r -> max w (String.length r.label))
        (String.length total.label) rows
    in
    let share t = if total.time_s > 0. then 100. *. t /. total.time_s else 0. in
    let line r =
      Fmt.pf fm "%-*s %8d %8d %10d %10.2f %10.2f %5.1f%%@." w r.label r.firings
        r.nulls r.probes (1000. *. r.match_s) (1000. *. r.time_s)
        (share r.time_s)
    in
    Fmt.pf fm "per-rule profile:@.";
    Fmt.pf fm "%-*s %8s %8s %10s %10s %10s %6s@." w "rule" "firings" "nulls"
      "probes" "match-ms" "total-ms" "share";
    List.iter line rows;
    line total
