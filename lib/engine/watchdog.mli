(** Periodic progress snapshots of a running chase: a callback plus a
    cadence (every [every] steps, at most once per [min_interval]
    seconds).  Costs one integer comparison per step when not due. *)

(** Sliding-window rate tracker: Δvalue/Δstep over the last one-to-two
    windows of steps. *)
module Window : sig
  type t

  val create : ?size:int -> unit -> t
  (** [size] is the window length in steps; default 512. *)

  val observe : t -> step:int -> int -> unit
  (** Record the monotone counter's value at [step]. *)

  val rate : t -> float
  val span : t -> int
  (** Steps currently covered by the rate measurement. *)
end

type snapshot = {
  step : int;  (** trigger applications so far *)
  elapsed : float;  (** wall-clock seconds since the run started *)
  steps_per_sec : float;  (** throughput since the previous snapshot *)
  facts : int;  (** current instance cardinality *)
  queue_length : int;  (** unprocessed triggers in the worklist *)
  nulls : int;  (** fresh nulls invented so far *)
  max_depth : int;  (** deepest derivation chain so far *)
  null_rate : float;  (** fresh nulls per trigger over the last window *)
}

type t

val create : ?every:int -> ?min_interval:float -> (snapshot -> unit) -> t
(** [every] in steps (default 1024); [min_interval] in seconds
    (default 0: no time gating). *)

val observe :
  t ->
  step:int ->
  elapsed:(unit -> float) ->
  facts:int ->
  queue:int ->
  nulls:int ->
  depth:int ->
  null_rate:(unit -> float) ->
  unit
(** Called by the engine after every trigger application; emits a
    snapshot when one is due.  [elapsed] and [null_rate] are thunks so
    they are only evaluated at cadence boundaries. *)

val emitted : t -> int
(** Snapshots emitted so far. *)

val fields : snapshot -> (string * float) list
(** The snapshot as named numeric fields, in stable order — the shape
    [Chase_obs.Obs.series] wants, so progress snapshots become counter
    tracks in a trace. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
