(** Static trigger-relevance index (see the interface).  Self-contained:
    the engine must not depend on the analysis libraries, so the small
    producer/consumer condensation used for {!seed_order} is local. *)

open Chase_logic

(* Mirrors [Hom.matcher_of_env]: read eagerly, parallel-safe. *)
let disabled_by_env =
  match Sys.getenv_opt "CHASE_NO_PRUNE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let forced : bool option ref = ref None
let force_disable b = forced := if b then Some true else None

let disabled_now () =
  match !forced with Some b -> b | None -> disabled_by_env

type t = {
  rules : Tgd.t array;
  by_pred : (string, (int * Atom.t) list) Hashtbl.t;
      (** predicate → (rule index, body atom) occurrences, ascending *)
  enabled : bool;  (** captured at build time *)
}

let build rules =
  let by_pred = Hashtbl.create 64 in
  Array.iteri
    (fun i r ->
      List.iter
        (fun a ->
          let p = Atom.pred a in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_pred p) in
          Hashtbl.replace by_pred p ((i, a) :: prev))
        (Tgd.body r))
    rules;
  (* Stored reversed-in, so flip to ascending (rule, occurrence) order. *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) by_pred [] in
  List.iter
    (fun p -> Hashtbl.replace by_pred p (List.rev (Hashtbl.find by_pred p)))
    keys;
  { rules; by_pred; enabled = not (disabled_now ()) }

let enabled t = t.enabled
let rule_count t = Array.length t.rules

let all_rules t = List.init (Array.length t.rules) Fun.id

let relevant t fact =
  if not t.enabled then all_rules t
  else
    match Hashtbl.find_opt t.by_pred (Atom.pred fact) with
    | None -> []
    | Some occs ->
      (* [occs] is ascending by rule index; keep each rule once. *)
      let rec go last = function
        | [] -> []
        | (i, a) :: rest ->
          if last = i then go last rest
          else if Hom.match_atom Subst.empty a fact <> None then
            i :: go i rest
          else go last rest
      in
      go (-1) occs

(* ------------------------------------------------------------------ *)
(* Stratum order for the seed phase                                    *)
(* ------------------------------------------------------------------ *)

(* Rule i may feed rule j when a head predicate of i occurs in j's body.
   Condense (Tarjan, iterative-free recursion is fine at rule-set sizes)
   and emit components producers-first; within a layer, index order. *)
let seed_order t =
  let n = Array.length t.rules in
  let succs = Array.make n [] in
  Array.iteri
    (fun i r ->
      let out = ref [] in
      List.iter
        (fun h ->
          match Hashtbl.find_opt t.by_pred (Atom.pred h) with
          | None -> ()
          | Some occs ->
            List.iter
              (fun (j, _) -> if not (List.mem j !out) then out := j :: !out)
              occs)
        (Tgd.head r);
      succs.(i) <- List.sort_uniq Int.compare !out)
    t.rules;
  let index = Array.make n (-1)
  and low = Array.make n 0
  and on_stack = Array.make n false
  and stack = ref []
  and comp = Array.make n (-1)
  and counter = ref 0
  and ncomp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      succs.(v);
    if low.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- !ncomp;
          if w <> v then pop ()
      in
      pop ();
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (* Tarjan numbers sink components first; producers-first is therefore
     descending component number, ties broken by rule index. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match Int.compare comp.(b) comp.(a) with
      | 0 -> Int.compare a b
      | c -> c)
    order;
  order
