(** Periodic progress snapshots of a running chase.

    A watchdog is a callback plus a cadence: every [every] trigger
    applications (and at most once per [min_interval] seconds) the engine
    hands it a {!snapshot} — throughput, instance size, worklist length,
    null-growth rate.  [chase_cli --progress] streams these to stderr, and
    the termination tooling uses the same numbers to tell a slow but
    converging run from one that is provably diverging so far.

    The cost when a snapshot is not due is one integer comparison per
    step; the clock is only read at cadence boundaries. *)

(** A sliding-window rate tracker: [rate] is Δvalue/Δstep measured over
    the last one-to-two windows of steps — recent enough to reflect the
    run's current regime, wide enough to smooth FIFO burstiness. *)
module Window = struct
  type t = {
    size : int;
    mutable anchor_step : int;  (* start of the previous window *)
    mutable anchor_value : int;
    mutable mid_step : int;  (* start of the current window *)
    mutable mid_value : int;
    mutable last_step : int;
    mutable last_value : int;
  }

  let create ?(size = 512) () =
    {
      size = max 1 size;
      anchor_step = 0;
      anchor_value = 0;
      mid_step = 0;
      mid_value = 0;
      last_step = 0;
      last_value = 0;
    }

  let observe w ~step value =
    if step - w.mid_step >= w.size then begin
      w.anchor_step <- w.mid_step;
      w.anchor_value <- w.mid_value;
      w.mid_step <- step;
      w.mid_value <- value
    end;
    w.last_step <- step;
    w.last_value <- value

  let span w = w.last_step - w.anchor_step

  let rate w =
    let ds = span w in
    if ds <= 0 then 0.
    else float_of_int (w.last_value - w.anchor_value) /. float_of_int ds
end

type snapshot = {
  step : int;  (** trigger applications so far *)
  elapsed : float;  (** wall-clock seconds since the run started *)
  steps_per_sec : float;  (** throughput since the previous snapshot *)
  facts : int;  (** current instance cardinality *)
  queue_length : int;  (** unprocessed triggers in the worklist *)
  nulls : int;  (** fresh nulls invented so far *)
  max_depth : int;  (** deepest derivation chain so far *)
  null_rate : float;  (** fresh nulls per trigger over the last window *)
}

type t = {
  every : int;
  min_interval : float;
  emit : snapshot -> unit;
  mutable next_step : int;
  mutable last_emit_step : int;
  mutable last_emit_time : float;
  mutable emitted : int;
}

let create ?(every = 1024) ?(min_interval = 0.) emit =
  {
    every = max 1 every;
    min_interval;
    emit;
    next_step = max 1 every;
    last_emit_step = 0;
    last_emit_time = 0.;
    emitted = 0;
  }

let emitted w = w.emitted

let observe w ~step ~elapsed ~facts ~queue ~nulls ~depth ~null_rate =
  if step >= w.next_step then begin
    w.next_step <- step + w.every;
    let t = elapsed () in
    if t -. w.last_emit_time >= w.min_interval then begin
      let dt = t -. w.last_emit_time in
      let steps_per_sec =
        if dt > 0. then float_of_int (step - w.last_emit_step) /. dt else 0.
      in
      w.emit
        {
          step;
          elapsed = t;
          steps_per_sec;
          facts;
          queue_length = queue;
          nulls;
          max_depth = depth;
          null_rate = null_rate ();
        };
      w.last_emit_step <- step;
      w.last_emit_time <- t;
      w.emitted <- w.emitted + 1
    end
  end

(* Structured view of a snapshot, in field order: the CLIs feed this to
   an [Obs] series so progress becomes counter tracks in a trace. *)
let fields s =
  [
    ("step", float_of_int s.step);
    ("steps_per_sec", s.steps_per_sec);
    ("facts", float_of_int s.facts);
    ("queue", float_of_int s.queue_length);
    ("nulls", float_of_int s.nulls);
    ("null_rate", s.null_rate);
    ("depth", float_of_int s.max_depth);
    ("elapsed", s.elapsed);
  ]

(* The human line renders the same [fields] list the machine surfaces
   consume (the [Obs] series above, the service's progress frames via
   [Proto.progress_of_snapshot]) — one formatter underneath all three,
   so the surfaces cannot drift field-by-field. *)
let pp_snapshot fm s =
  let f name = try List.assoc name (fields s) with Not_found -> 0. in
  let i name = int_of_float (f name) in
  Fmt.pf fm
    "[watchdog] step %d (%.0f/s) | facts %d | queue %d | nulls %d \
     (%.2f/trigger) | depth %d | %.1fs"
    (i "step") (f "steps_per_sec") (i "facts") (i "queue") (i "nulls")
    (f "null_rate") (i "depth") (f "elapsed")
