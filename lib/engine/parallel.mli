(** The multicore matching plane: a pool of OCaml 5 domains that fans a
    batch of independent discovery events across cores and hands the
    results back in event order.

    The pool is deliberately {e not} a general scheduler.  The chase
    engine's parallelism has one shape — per engine step, a batch of
    (rule, seed fact) trigger-discovery events, each reading the frozen
    post-step instance and producing a substitution list — and the pool
    exposes exactly that: {!map} runs one batch, work-stealing event
    indices off a shared atomic counter, and returns [results.(i) = f i]
    positionally.  Which domain computed which event is invisible in the
    result, so the caller's merge order (and therefore the chase event
    order, journal bytes included) is deterministic by construction; the
    freeze–shard–merge doctrine is DESIGN.md §3.10.

    Worker domains block on a condition variable between batches (no
    spinning) and are joined by {!shutdown}; a pool is cheap enough to
    create per chase run.  Faults: an armed {!Faults.Parallel_delays}
    entry makes a domain sleep before every event it claims — the
    determinism battery's scheduling perturbation.

    Process-wide selection mirrors the matcher dispatch: the default
    domain count comes from the [CHASE_DOMAINS] environment variable
    (like [CHASE_NAIVE]) and can be overridden with {!set_domains} (the
    CLIs' [--domains]). *)

type t
(** A pool of [domains] cooperating domains: the calling domain (index
    0, which participates in every batch) plus [domains - 1] spawned
    workers. *)

val create : domains:int -> t
(** [create ~domains] spawns the workers.  [domains < 1] is an error;
    [domains = 1] is a degenerate pool whose {!map} runs inline.  If the
    runtime refuses a spawn (domain limit), the pool degrades to the
    workers it got — {!map} stays correct, only less parallel. *)

val size : t -> int
(** The number of domains the pool actually has, caller included. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map t n f] computes [|f 0; …; f (n-1)|], each call on some domain
    of the pool, and returns when {e all} are done.  [f] must be safe to
    run on any domain concurrently with the other calls (the engine
    passes read-only matching against a frozen instance).  If any call
    raises, the batch still completes and the first exception is
    re-raised in the caller.  Batches do not overlap: [map] is not
    itself re-entrant — one caller per pool. *)

val shutdown : t -> unit
(** Stop and join every worker domain.  Idempotent.  After [shutdown],
    {!map} raises [Invalid_argument]. *)

(** {1 Pool effort accounting} *)

type stats = {
  domains : int;  (** pool size, caller included *)
  batches : int;  (** {!map} calls served *)
  events : int array;  (** events computed per domain (index 0 = caller) *)
  steals : int array;
      (** events a domain claimed off another domain's round-robin
          share — the work-stealing imbalance measure *)
  busy : float array;  (** in-batch seconds per domain *)
  wall : float;  (** total wall-clock seconds spent inside {!map} *)
}

val stats : t -> stats
(** Snapshot of the pool's counters.  Call between batches; a snapshot
    taken mid-batch may lag the domains still draining it. *)

val live_domains : unit -> int
(** Process-wide count of worker domains spawned by {!create} and not
    yet joined by {!shutdown} — the leak detector the cancellation tests
    assert against. *)

(** {1 Process-wide domain-count selection} *)

val default_domains : unit -> int
(** The domain count engine runs use when none is passed explicitly:
    the value forced by {!set_domains} if any, otherwise the
    [CHASE_DOMAINS] environment variable ([1] when unset or not a
    positive integer). *)

val set_domains : int -> unit
(** Process-wide override, used by the CLIs' [--domains] and the test
    harness.  Raises [Invalid_argument] below 1. *)

val parse_domains : string -> (int, string) result
(** Strict validation for CLI surfaces: a positive decimal integer. *)
