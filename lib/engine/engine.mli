(** The chase engine: one fair (FIFO) worklist core driving all three
    variants.

    A {e trigger} is a pair (rule, homomorphism from the body into the
    current instance).  The engine seeds the worklist with every trigger
    on the input database and then, semi-naively, enqueues only triggers
    whose body image uses a newly added fact.  FIFO order makes every run
    a fair chase sequence.  Trigger deduplication follows the variant:
    full homomorphism for the oblivious chase, frontier restriction for
    the semi-oblivious; the restricted chase additionally skips triggers
    whose head is satisfiable at fire time.

    Every run is governed by a {!Limits.t}; a breached limit degrades
    gracefully to the partial instance plus a structured
    {!Limits.Exhaustion.reason}. *)

open Chase_logic

type config = {
  variant : Variant.t;
  limits : Limits.t;  (** resource governance for the run *)
}

val default_config : config
(** Oblivious, with {!Limits.default} (100k triggers, 200k facts). *)

val config_of_budget : ?variant:Variant.t -> int -> config
(** The historical coupling: budget triggers, [4 ×] budget atoms. *)

type status =
  | Terminated  (** no unapplied trigger remains: the result is final *)
  | Exhausted of Limits.Exhaustion.reason
      (** a limit was breached; the run is a sound prefix *)

type result = {
  instance : Instance.t;
  status : status;
  variant : Variant.t;
  triggers_applied : int;
  triggers_skipped : int;  (** restricted chase: triggers found satisfied *)
  atoms_created : int;
  nulls_created : int;
  max_depth : int;
  elapsed : float;  (** wall-clock seconds, per the limits' clock *)
  rule_firings : (string * int) list;
      (** per-rule trigger applications, descending *)
  queue_residual : int;  (** triggers left unprocessed at stop *)
  provenance : Derivation.t Atom.Tbl.t;
      (** derivation record for every fact created by the chase *)
}

val exhausted : result -> bool
val exhaustion : result -> Limits.Exhaustion.reason option

(** A restored mid-run state, produced by [Chase_persist.Recovery] from a
    write-ahead journal (plus an optional snapshot).  [run ~resume] picks
    the chase up exactly where the recorded run stopped: instance,
    provenance, counters and the set of already-applied triggers are
    reinstated, so no trigger fires twice and fresh nulls continue from
    the restored stamp. *)
type resume = {
  facts : Atom.t list;
      (** full restored instance: the database plus every journaled
          creation *)
  derivations : (Atom.t * Derivation.t) list;
      (** provenance of every restored non-database fact *)
  applied : (int * Subst.t) list;
      (** applied triggers (rule index, full body homomorphism), in step
          order *)
  applied_count : int;
      (** [List.length applied], carried so that resume-heavy paths never
          re-walk the list *)
  created_count : int;  (** [List.length derivations], ditto *)
  next_null : int;  (** highest null stamp used so far *)
  next_step : int;  (** last step number used so far *)
  skipped : int;
      (** restricted chase: prior skips (not journaled; 0 when unknown) *)
}

val run :
  ?config:config ->
  ?obs:Chase_obs.Obs.t ->
  ?domains:int ->
  ?resume:resume ->
  ?on_trigger:
    (step:int ->
    rule_index:int ->
    depth:int ->
    created_nulls:int list ->
    Tgd.t ->
    Subst.t ->
    Atom.t list ->
    unit) ->
  ?watchdog:Watchdog.t ->
  Tgd.t list ->
  Atom.t list ->
  result
(** [run rules db] chases the facts [db]; the input list is not mutated.
    When the run terminates, the result instance is a (finite) universal
    model of the database and the rules.  [resume] restores a recovered
    mid-run state before the worklist is seeded; counters restart from
    the restored values, so a trigger budget spans the original run and
    the resumed one.  [on_trigger] fires after every trigger application
    with the step number, the rule and its index, the derivation depth,
    the stamps of the nulls the application invented, the full body
    homomorphism and the facts actually added (see {!Sequence} and the
    write-ahead journal of [Chase_persist]); [watchdog] receives periodic
    progress snapshots (see {!Watchdog}).  [obs] streams structured
    telemetry — a [chase] span with per-trigger child spans, periodic
    counter samples, and run-total plus per-rule metrics
    ([chase.rule.firings/nulls/probes/match_s/time_s], labelled by rule
    display name) into its registry; the default {!Chase_obs.Obs.disabled}
    reduces every instrumentation point to a flag test.

    [domains] selects the multicore matching plane (default
    {!Parallel.default_domains}, i.e. [1] unless [CHASE_DOMAINS] or
    {!Parallel.set_domains} says otherwise): with [domains > 1] each
    step's trigger discovery fans across a {!Parallel} pool and is merged
    back in canonical event order, so the run — applied sequence, null
    stamps, journal bytes, verdicts — is bit-identical to [domains = 1];
    only wall-clock and the [chase.parallel.*] metrics differ.  The pool
    lives for exactly this run and is joined on every exit path. *)

val depth_of : result -> Atom.t -> int
(** Chase depth of a fact; database facts have depth 0. *)

val is_model : Tgd.t list -> Instance.t -> bool
(** Every body match extends to a head match. *)

val check_provenance : result -> db:Atom.t list -> (unit, string) Stdlib.result
(** Soundness certificate of a (possibly degraded) run: every fact is a
    database fact or carries a derivation record that replays — parents
    are the body image under the recorded homomorphism, present and
    themselves derivable, and the fact is reproduced by the rule head
    under the homomorphism extended with the recorded fresh nulls. *)

val pp_result : Format.formatter -> result -> unit
