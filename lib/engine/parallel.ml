(** The multicore matching plane: a fixed pool of OCaml 5 domains that
    fans one batch of independent discovery events across cores.

    Shape of the machine.  The pool has [n] domains: the caller (domain
    index 0, which participates in every batch rather than idling) and
    [n - 1] spawned workers parked on a condition variable between
    batches.  {!map} publishes a batch — an event count, a closure, a
    fresh claim counter — bumps a generation number and broadcasts; every
    domain then {e work-steals} event indices off the claim counter
    ([Atomic.fetch_and_add]) until the batch is drained.  Results land
    positionally in an array slot owned by exactly one event, so which
    domain computed what is invisible to the caller: the returned array
    is [|f 0; …; f (n-1)|] no matter how the schedule fell.  That
    schedule-independence is the whole point — the engine merges shard
    results in event order and the chase stays bit-identical to the
    sequential run (DESIGN.md §3.10).

    Memory-model notes, since this is the one file where they matter:

    - Each event writes only its own result slot, and completion is
      announced by an [Atomic] decrement of the batch's [remaining]
      counter; the caller re-reads that counter until it hits zero, so
      every result write happens-before the caller's reads (atomic
      publication), with the pool mutex adding a second fence around the
      condition-variable wait.
    - Per-domain effort counters ([events], [steals], [busy]) are
      plain array slots written only by their owning domain; {!stats}
      reads them between batches.

    Completion signalling avoids the classic lost wakeup: the domain
    whose decrement drains [remaining] takes the mutex before
    broadcasting, so the caller is either not yet waiting (and will see
    zero before sleeping) or is inside [Condition.wait] holding its slot
    in the queue. *)

type task = {
  t_size : int;  (** events in this batch *)
  t_run : int -> unit;  (** compute event [i]; never raises *)
  t_next : int Atomic.t;  (** claim counter *)
  t_remaining : int Atomic.t;  (** completions outstanding *)
}

type t = {
  n : int;
  mu : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable current : task option;  (** under [mu] *)
  mutable generation : int;  (** under [mu]; bumped per batch *)
  mutable stopping : bool;  (** under [mu] *)
  mutable shut : bool;
  mutable workers : unit Domain.t list;
  mutable failure : exn option;  (** under [mu]; first exception of a batch *)
  (* effort accounting; slot [d] written only by domain [d] *)
  events : int array;
  steals : int array;
  busy : float array;
  mutable batches : int;
  mutable wall : float;
}

let live = Atomic.make 0
let live_domains () = Atomic.get live

(* ------------------------------------------------------------------ *)
(* Draining a batch                                                    *)
(* ------------------------------------------------------------------ *)

(* Claim-and-run loop shared by the caller and the workers.  An event
   whose index is not congruent to the draining domain modulo the pool
   size counts as a steal: with perfectly uniform speeds the claim
   counter deals indices round-robin, so off-share claims measure how
   much slack stealing actually absorbed. *)
let drain t d task =
  let t0 = Unix.gettimeofday () in
  let rec claim () =
    let i = Atomic.fetch_and_add task.t_next 1 in
    if i < task.t_size then begin
      let s = Faults.Parallel_delays.delay_for d in
      if s > 0. then Unix.sleepf s;
      task.t_run i;
      t.events.(d) <- t.events.(d) + 1;
      if i mod t.n <> d then t.steals.(d) <- t.steals.(d) + 1;
      if Atomic.fetch_and_add task.t_remaining (-1) = 1 then begin
        (* last completion: hold the lock so the waiter cannot miss it *)
        Mutex.lock t.mu;
        Condition.broadcast t.batch_done;
        Mutex.unlock t.mu
      end;
      claim ()
    end
  in
  claim ();
  t.busy.(d) <- t.busy.(d) +. (Unix.gettimeofday () -. t0)

(* Park until a batch this worker has not seen arrives (or shutdown).
   [current = None] with an advanced generation means the batch was
   fully drained before this worker woke — keep waiting. *)
let worker t d =
  let rec loop gen =
    Mutex.lock t.mu;
    while (not t.stopping) && (t.generation = gen || t.current = None) do
      Condition.wait t.work_ready t.mu
    done;
    if t.stopping then Mutex.unlock t.mu
    else begin
      let gen' = t.generation in
      let task = Option.get t.current in
      Mutex.unlock t.mu;
      drain t d task;
      loop gen'
    end
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Pool lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let create ~domains =
  if domains < 1 then invalid_arg "Parallel.create: domains must be >= 1";
  let t =
    {
      n = domains;
      mu = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      shut = false;
      workers = [];
      failure = None;
      events = Array.make domains 0;
      steals = Array.make domains 0;
      busy = Array.make domains 0.;
      batches = 0;
      wall = 0.;
    }
  in
  (* Degrade rather than fail if the runtime refuses a spawn (domain
     limit): the pool stays correct with fewer workers. *)
  (try
     for d = 1 to domains - 1 do
       let w = Domain.spawn (fun () -> worker t d) in
       Atomic.incr live;
       t.workers <- w :: t.workers
     done
   with _ -> ());
  t

let size t = 1 + List.length t.workers

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Mutex.lock t.mu;
    t.stopping <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mu;
    List.iter
      (fun w ->
        Domain.join w;
        Atomic.decr live)
      t.workers;
    t.workers <- []
  end

(* ------------------------------------------------------------------ *)
(* Running a batch                                                     *)
(* ------------------------------------------------------------------ *)

let map t size f =
  if t.shut then invalid_arg "Parallel.map: pool is shut down";
  if size = 0 then [||]
  else begin
    let t0 = Unix.gettimeofday () in
    let results = Array.make size None in
    let run i =
      match f i with
      | v -> results.(i) <- Some v
      | exception e ->
        Mutex.lock t.mu;
        (match t.failure with None -> t.failure <- Some e | Some _ -> ());
        Mutex.unlock t.mu
    in
    let task =
      {
        t_size = size;
        t_run = run;
        t_next = Atomic.make 0;
        t_remaining = Atomic.make size;
      }
    in
    if t.n = 1 || t.workers = [] then drain t 0 task
    else begin
      Mutex.lock t.mu;
      t.current <- Some task;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mu;
      drain t 0 task;
      Mutex.lock t.mu;
      while Atomic.get task.t_remaining > 0 do
        Condition.wait t.batch_done t.mu
      done;
      t.current <- None;
      Mutex.unlock t.mu
    end;
    t.batches <- t.batches + 1;
    t.wall <- t.wall +. (Unix.gettimeofday () -. t0);
    (match t.failure with
    | Some e ->
      t.failure <- None;
      raise e
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Parallel.map: event produced no result")
      results
  end

(* ------------------------------------------------------------------ *)
(* Effort accounting                                                   *)
(* ------------------------------------------------------------------ *)

type stats = {
  domains : int;
  batches : int;
  events : int array;
  steals : int array;
  busy : float array;
  wall : float;
}

let stats t =
  {
    domains = t.n;
    batches = t.batches;
    events = Array.copy t.events;
    steals = Array.copy t.steals;
    busy = Array.copy t.busy;
    wall = t.wall;
  }

(* ------------------------------------------------------------------ *)
(* Process-wide domain-count selection                                 *)
(* ------------------------------------------------------------------ *)

let parse_domains s =
  match int_of_string_opt (String.trim s) with
  | Some d when d >= 1 -> Ok d
  | Some d -> Error (Printf.sprintf "domain count must be >= 1 (got %d)" d)
  | None -> Error (Printf.sprintf "domain count must be an integer (got %S)" s)

(* Read eagerly, like [Hom.matcher_of_env]: a lazy forced from several
   domains at once can raise [CamlinternalLazy.Undefined].  The
   environment is lenient (malformed values mean 1, mirroring
   [CHASE_NAIVE]'s tolerance); the CLI surfaces use {!parse_domains} and
   reject malformed input loudly. *)
let env_domains =
  match Sys.getenv_opt "CHASE_DOMAINS" with
  | None -> 1
  | Some s -> ( match parse_domains s with Ok d -> d | Error _ -> 1)

let forced = Atomic.make 0 (* 0 = no override *)

let set_domains d =
  if d < 1 then invalid_arg "Parallel.set_domains: domains must be >= 1";
  Atomic.set forced d

let default_domains () =
  let f = Atomic.get forced in
  if f > 0 then f else env_domains
