(** The chase with TGDs and EGDs — the full data-exchange setting.

    Alternates restricted-chase rounds with EGD saturation (null merging)
    until a joint fixpoint; fails when an EGD equates two distinct
    constants.  Only the restricted variant is offered: EGD rewrites
    invalidate incremental trigger state, and re-examining triggers is
    only harmless when satisfied heads are skipped.  One overall
    {!Limits.t} (trigger budget, deadline, cancellation) is threaded
    through the rounds and re-checked at every round boundary. *)

open Chase_logic

type status =
  | Terminated  (** the result satisfies both the TGDs and the EGDs *)
  | Failed of string  (** an EGD equated two distinct constants *)
  | Exhausted of Limits.Exhaustion.reason
      (** a limit was breached; the run is a prefix *)

type result = {
  instance : Instance.t;
  status : status;
  merges : int;  (** null-merging EGD applications *)
  rounds : int;  (** TGD/EGD alternations *)
  triggers_applied : int;
}

val default_config : Engine.config

val run :
  ?config:Engine.config ->
  ?obs:Chase_obs.Obs.t ->
  tgds:Tgd.t list ->
  egds:Egd.t list ->
  Atom.t list ->
  result
(** [config.variant] is ignored (always restricted).  [obs] wraps each
    TGD/EGD alternation in a [round] span (with an [egd-saturate] child
    span), counts merges under [chase.egd.merges], and is threaded into
    the inner {!Engine.run}s. *)

val satisfies_egds : Egd.t list -> Instance.t -> bool

val pp_result : Format.formatter -> result -> unit
