(** Static trigger-relevance index for the semi-naive delta sweep.

    The engine's delta phase used to match every rule body against every
    newly added fact.  Most of those matches are statically impossible:
    a homomorphism seeded at fact [f] exists only if some body atom of
    the rule has [f]'s predicate and is position/constant-compatible
    with it.  This index precomputes, per predicate, the rules whose
    bodies mention it, and [relevant] filters by one-atom matchability,
    so the engine enqueues discovery work only for rules that could
    possibly produce a trigger — skipped (rule, fact) events are
    provably empty, which keeps pruned runs bit-identical to unpruned
    ones (the differential suite pins this).

    Pruning can be switched off with the environment variable
    [CHASE_NO_PRUNE] (["1"], ["true"], ["yes"] or ["on"]) or in-process
    with {!force_disable} — [relevant] then returns every rule index. *)

open Chase_logic

type t

val build : Tgd.t array -> t
(** Index the body atoms of [rules] by predicate.  Total; never
    raises. *)

val enabled : t -> bool
(** False when pruning was disabled at build time (environment or
    {!force_disable}). *)

val rule_count : t -> int

val relevant : t -> Atom.t -> int list
(** Ascending indices of the rules with at least one body atom
    matchable against [fact] ([Hom.match_atom] from the empty
    substitution).  When pruning is disabled: every rule index. *)

val seed_order : t -> int array
(** A stratum-ordered permutation of the rule indices for the seed
    phase's discovery loop: producers before their consumers (by
    head-predicate / body-predicate overlap, condensed).  Discovery
    order over a frozen instance cannot change results — callers must
    still enqueue in plain index order. *)

val force_disable : bool -> unit
(** [force_disable true] makes subsequently built indices behave as if
    [CHASE_NO_PRUNE] were set — the in-process toggle the differential
    tests use.  [force_disable false] restores the environment's
    verdict. *)
