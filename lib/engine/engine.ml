(** The chase engine.

    One fair (FIFO) worklist core drives all three variants; they differ
    only in the trigger-deduplication key ([Variant]) and, for the
    restricted chase, in an applicability test at fire time.

    A {e trigger} is a pair (rule, homomorphism from the rule body into the
    current instance).  The engine seeds the worklist with every trigger on
    the input database, then, semi-naively, whenever a fact is added it
    enqueues only the triggers whose body image uses that fact.  FIFO order
    makes every run a fair chase sequence: a trigger enqueued at step [n]
    is applied (or, for the restricted chase, found satisfied) after
    finitely many steps.

    Every run is governed by a {!Limits.t}: counter budgets, a wall-clock
    deadline and a cooperative cancellation token.  A breached limit never
    loses work — the run degrades gracefully to the partial instance (a
    sound prefix of the chase, every fact provenance-backed) plus a
    structured {!Limits.Exhaustion.reason}. *)

open Chase_logic
module Obs = Chase_obs.Obs

type config = {
  variant : Variant.t;
  limits : Limits.t;  (** resource governance for the run *)
}

let default_config = { variant = Variant.Oblivious; limits = Limits.default }

let config_of_budget ?(variant = Variant.Oblivious) budget =
  { variant; limits = Limits.of_budget budget }

type status =
  | Terminated  (** no unapplied trigger remains: the chase result is final *)
  | Exhausted of Limits.Exhaustion.reason
      (** a limit was breached; the run is a sound prefix *)

type result = {
  instance : Instance.t;
  status : status;
  variant : Variant.t;
  triggers_applied : int;
  triggers_skipped : int;  (** restricted chase: triggers found satisfied *)
  atoms_created : int;
  nulls_created : int;
  max_depth : int;
  elapsed : float;  (** wall-clock seconds, per the limits' clock *)
  rule_firings : (string * int) list;
      (** per-rule trigger applications, descending *)
  queue_residual : int;  (** triggers left unprocessed at stop *)
  provenance : Derivation.t Atom.Tbl.t;
      (** derivation record for every fact created by the chase (database
          facts have no record) *)
}

let exhausted r = match r.status with Exhausted _ -> true | Terminated -> false

let exhaustion r =
  match r.status with Exhausted e -> Some e | Terminated -> None

let depth_of result a =
  match Atom.Tbl.find_opt result.provenance a with
  | Some d -> Derivation.depth d
  | None -> 0

(* A queued trigger: rule index plus the full body homomorphism. *)
type trigger = {
  t_rule : int;
  t_sub : Subst.t;
}

let key_of_trigger rules variant tr =
  let r = rules.(tr.t_rule) in
  let sub =
    match (variant : Variant.t) with
    | Oblivious | Restricted -> tr.t_sub
    | Semi_oblivious -> Subst.restrict tr.t_sub (Tgd.frontier r)
  in
  (tr.t_rule, Subst.to_list sub)

(** A restored mid-run state, produced by [Chase_persist.Recovery] from a
    write-ahead journal (plus an optional snapshot).  [run ~resume] picks
    the chase up exactly where the recorded run stopped: the instance,
    the per-fact provenance, the null and step counters and — crucially —
    the set of already-applied triggers are all reinstated, so no trigger
    fires twice and fresh nulls continue from the restored stamp. *)
type resume = {
  facts : Atom.t list;
      (** full restored instance: the database plus every journaled
          creation *)
  derivations : (Atom.t * Derivation.t) list;
      (** provenance of every restored non-database fact *)
  applied : (int * Subst.t) list;
      (** applied triggers (rule index, full body homomorphism), in step
          order — reinstated into the dedup set so none re-fires *)
  applied_count : int;  (** [List.length applied], carried so that
      resume-heavy paths never re-walk the list *)
  created_count : int;  (** [List.length derivations], ditto *)
  next_null : int;  (** highest null stamp used so far *)
  next_step : int;  (** last step number used so far *)
  skipped : int;
      (** restricted chase: triggers found satisfied before the crash
          (skips are not journaled; 0 when unknown) *)
}

(** [run ?config ?resume ?on_trigger ?watchdog rules db] chases the facts
    [db] with [rules].

    The input list [db] is not mutated; the result instance is fresh.
    Termination of the run is reported in [status]; when the configured
    limits are generous enough and the chase of the input terminates, the
    result instance is the (finite) chase result, a universal model of the
    database and the rules.

    [resume] restores a recovered mid-run state before the worklist is
    seeded (see {!resume}); counters restart from the restored values, so
    a trigger budget spans the original run and the resumed one.

    [on_trigger] is invoked after every trigger application with the step
    number, the rule (and its index), the full body homomorphism, the
    derivation depth, the stamps of the nulls invented by the application
    and the facts it actually added (possibly none, under set semantics) —
    the hook behind {!Sequence} and the write-ahead journal.  [watchdog]
    receives periodic progress snapshots (see {!Watchdog}).

    [obs] streams structured telemetry (see {!Chase_obs.Obs}): a [chase]
    span over the whole run with per-trigger child spans, periodic
    counter-track samples, and — into the metric registry — run totals
    plus per-rule firings/nulls/probes/time breakdowns.  The default
    {!Obs.disabled} reduces every instrumentation point to one flag
    test. *)
let run ?(config = default_config) ?(obs = Obs.disabled) ?domains ?resume
    ?on_trigger ?watchdog rules db =
  let rules = Array.of_list rules in
  (* Static trigger-relevance (DESIGN.md §3.11): the delta sweep only
     visits rules whose bodies could match the added fact.  Skipped
     (rule, fact) events are provably empty, so pruned runs are
     bit-identical to unpruned ones ([CHASE_NO_PRUNE=1] switches the
     index off; the differential suite compares the two). *)
  let relevance = Relevance.build rules in
  let prune_considered = ref 0 in
  let prune_skipped = ref 0 in
  let sweep fact =
    let rel = Relevance.relevant relevance fact in
    let nr = Array.length rules in
    prune_considered := !prune_considered + nr;
    prune_skipped := !prune_skipped + nr - List.length rel;
    rel
  in
  let domains =
    match domains with Some d -> d | None -> Parallel.default_domains ()
  in
  if domains < 1 then invalid_arg "Engine.run: domains must be >= 1";
  (* The multicore matching plane (DESIGN.md §3.10).  The pool lives for
     exactly one run; [Fun.protect] joins every worker domain on all exit
     paths — normal termination, limit exhaustion, cancellation,
     exceptions — so a governed run never leaks a domain. *)
  let pool =
    if domains > 1 && Array.length rules > 0 then
      Some (Parallel.create ~domains)
    else None
  in
  Fun.protect ~finally:(fun () -> Option.iter Parallel.shutdown pool)
  @@ fun () ->
  let tracked = Obs.enabled obs in
  let instance = Instance.create () in
  List.iter (fun a -> ignore (Instance.add instance a)) db;
  let provenance = Atom.Tbl.create 1024 in
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let monitor = Limits.Monitor.start config.limits in
  let firings = Array.make (Array.length rules) 0 in
  let null_window = Watchdog.Window.create () in
  let null_counter = ref 0 in
  let fresh_null () =
    incr null_counter;
    Term.Null !null_counter
  in
  let triggers_applied = ref 0 in
  let triggers_skipped = ref 0 in
  let atoms_created = ref 0 in
  let max_depth = ref 0 in
  let step_counter = ref 0 in
  (match resume with
  | None -> ()
  | Some r ->
    List.iter (fun a -> ignore (Instance.add instance a)) r.facts;
    List.iter (fun (a, d) -> Atom.Tbl.replace provenance a d) r.derivations;
    null_counter := r.next_null;
    step_counter := r.next_step;
    triggers_applied := r.applied_count;
    triggers_skipped := r.skipped;
    atoms_created := r.created_count;
    max_depth :=
      List.fold_left
        (fun m (_, d) -> max m d.Derivation.depth)
        0 r.derivations;
    List.iter
      (fun (i, sub) ->
        if i >= 0 && i < Array.length rules then begin
          firings.(i) <- firings.(i) + 1;
          let key =
            key_of_trigger rules config.variant { t_rule = i; t_sub = sub }
          in
          Hashtbl.replace seen key ()
        end)
      r.applied);
  let rule_display i =
    let n = Tgd.name rules.(i) in
    if n = "" then Fmt.str "rule#%d" (i + 1) else n
  in
  (* Baselines for the run-total metrics reported at the end: a resumed
     prefix was reinstated above and must not be double-counted, and the
     matcher counters are process-wide. *)
  let applied0 = !triggers_applied
  and skipped0 = !triggers_skipped
  and created0 = !atoms_created
  and nulls0 = !null_counter in
  let firings0 = Array.copy firings in
  let hom0 = Hom.Stats.snapshot () in
  let plan0 = Plan.Stats.snapshot () in
  (* Per-rule profile accumulators, only paid for when observed. *)
  let prof_n = if tracked then Array.length rules else 0 in
  let prof_time = Array.make prof_n 0. in
  let prof_match = Array.make prof_n 0. in
  let prof_probes = Array.make prof_n 0 in
  let prof_nulls = Array.make prof_n 0 in
  let enqueue tr =
    let key = key_of_trigger rules config.variant tr in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add tr queue
    end
  in
  (* Trigger discovery is canonicalised: the homomorphisms found for one
     (rule, discovery event) are sorted before entering the FIFO, so the
     worklist order — and with it the whole chase sequence, null stamps
     included — depends only on the substitution *set* the matcher
     produces, never on its enumeration order.  Planned and naive runs
     are therefore step-for-step identical, which the differential test
     suite asserts. *)
  let enqueue_found i subs =
    List.iter
      (fun sub -> enqueue { t_rule = i; t_sub = sub })
      (List.sort Subst.compare subs)
  in
  let discover_all_for_rule i =
    let t0 = if tracked then Obs.now obs else 0. in
    let c0 = if tracked then Hom.Stats.candidates_now () else 0 in
    let acc = ref [] in
    Hom.iter instance (Tgd.body rules.(i)) (fun sub -> acc := sub :: !acc);
    if tracked then begin
      let dt = Obs.now obs -. t0 in
      prof_match.(i) <- prof_match.(i) +. dt;
      prof_time.(i) <- prof_time.(i) +. dt;
      prof_probes.(i) <- prof_probes.(i) + (Hom.Stats.candidates_now () - c0)
    end;
    !acc
  in
  let enqueue_seeded_for_rule i seed =
    let acc = ref [] in
    Hom.iter_seeded instance (Tgd.body rules.(i)) ~seed (fun sub ->
        acc := sub :: !acc);
    enqueue_found i !acc
  in
  (* Parallel discovery (freeze–shard–merge, DESIGN.md §3.10): each event
     matches one (rule[, seed fact]) body against the instance — frozen
     for the whole batch, every head atom of the step having been added
     before discovery starts — on whichever domain claims it.  The
     substitution lists come back positionally, in canonical event order
     (seed phase: rule index; delta phase: added-fact order × rule
     index), and are merged on this domain through the same
     canonicalising [enqueue_found] as the sequential path, so the
     worklist — and with it the chase sequence, journal bytes and null
     stamps — is bit-identical whatever the schedule.  Workers never
     touch [obs] or the queue; they time themselves with the real clock
     and count their own candidate work through the matcher's
     domain-local counter ({!Hom.Stats.local_candidates_now}) — each
     event runs entirely on one domain, so the local delta around it is
     exactly its work, and per-rule probe attribution is identical to a
     single-domain run (pinned by the parallel battery). *)
  let merge_timings = ref [] in
  let discover_all_parallel p =
    let results =
      Parallel.map p (Array.length rules) (fun i ->
          let t0 = Unix.gettimeofday () in
          let c0 = Hom.Stats.local_candidates_now () in
          let acc = ref [] in
          Hom.iter instance (Tgd.body rules.(i)) (fun sub -> acc := sub :: !acc);
          ( !acc,
            Unix.gettimeofday () -. t0,
            Hom.Stats.local_candidates_now () - c0 ))
    in
    let m0 = if tracked then Obs.now obs else 0. in
    Array.iteri
      (fun i (subs, dt, dc) ->
        enqueue_found i subs;
        if tracked then begin
          prof_match.(i) <- prof_match.(i) +. dt;
          prof_time.(i) <- prof_time.(i) +. dt;
          prof_probes.(i) <- prof_probes.(i) + dc
        end)
      results;
    if tracked then merge_timings := (Obs.now obs -. m0) :: !merge_timings
  in
  let discover_seeded_parallel p added =
    (* Explicit (rule, fact) event array in canonical order — added-fact
       order major, ascending relevant rule index minor — exactly the
       order the unpruned [e mod nr]/[e / nr] encoding walked, minus the
       provably-empty events. *)
    let events =
      Array.of_list
        (List.concat_map
           (fun fact -> List.map (fun i -> (i, fact)) (sweep fact))
           added)
    in
    let n = Array.length events in
    if n > 0 then begin
      let results =
        Parallel.map p n (fun e ->
            let i, seed = events.(e) in
            let acc = ref [] in
            Hom.iter_seeded instance (Tgd.body rules.(i)) ~seed (fun sub ->
                acc := sub :: !acc);
            !acc)
      in
      let m0 = if tracked then Obs.now obs else 0. in
      Array.iteri (fun e subs -> enqueue_found (fst events.(e)) subs) results;
      if tracked then merge_timings := (Obs.now obs -. m0) :: !merge_timings
    end
  in
  if tracked then
    Obs.span_begin obs "chase"
      ~args:
        [
          ("variant", Chase_obs.Jsonv.String (Fmt.str "%a" Variant.pp config.variant));
          ("rules", Chase_obs.Jsonv.Int (Array.length rules));
          ("db", Chase_obs.Jsonv.Int (List.length db));
        ];
  Obs.span_begin obs "seed";
  (match pool with
  | Some p -> discover_all_parallel p
  | None ->
    (* Discovery runs stratum-ordered (producers before consumers — the
       warmest access pattern for the instance indexes), but over a
       frozen instance the order cannot change what is found; enqueueing
       stays in plain rule-index order, so the worklist is identical to
       an unordered seed. *)
    let found = Array.make (Array.length rules) [] in
    Array.iter
      (fun i -> found.(i) <- discover_all_for_rule i)
      (Relevance.seed_order relevance);
    Array.iteri enqueue_found found);
  Obs.span_end obs "seed";
  let atom_depth a =
    match Atom.Tbl.find_opt provenance a with
    | Some d -> Derivation.depth d
    | None -> 0
  in
  let head_satisfied r sub =
    Hom.exists ~init:(Subst.restrict sub (Tgd.frontier r)) instance (Tgd.head r)
  in
  let apply tr =
    let t_start = if tracked then Obs.now obs else 0. in
    let c_start = if tracked then Hom.Stats.candidates_now () else 0 in
    let r = rules.(tr.t_rule) in
    incr step_counter;
    incr triggers_applied;
    firings.(tr.t_rule) <- firings.(tr.t_rule) + 1;
    if tracked then
      Obs.span_begin obs
        ~args:[ ("step", Chase_obs.Jsonv.Int !step_counter) ]
        (rule_display tr.t_rule);
    let created = ref [] in
    let sub' =
      Util.Sset.fold
        (fun z acc ->
          let n = fresh_null () in
          (match n with Term.Null id -> created := id :: !created | _ -> ());
          Subst.bind_exn acc z n)
        (Tgd.existentials r) tr.t_sub
    in
    let created = List.rev !created in
    let parents = Subst.apply_atoms tr.t_sub (Tgd.body r) in
    let guard_parent =
      Option.map (Subst.apply_atom tr.t_sub) (Chase_classes.Classify.guard_of r)
    in
    let depth = 1 + List.fold_left (fun d a -> max d (atom_depth a)) 0 parents in
    if depth > !max_depth then max_depth := depth;
    let new_atoms = ref [] in
    List.iter
      (fun head_atom ->
        let fact = Subst.apply_atom sub' head_atom in
        if Instance.add instance fact then begin
          incr atoms_created;
          new_atoms := fact :: !new_atoms;
          Atom.Tbl.replace provenance fact
            {
              Derivation.rule = r;
              hom = tr.t_sub;
              parents;
              guard_parent;
              depth;
              step = !step_counter;
              created_nulls = created;
            }
        end)
      (Tgd.head r);
    let added = List.rev !new_atoms in
    (* Semi-naive trigger discovery: only homomorphisms using a new fact
       can be new.  Its cost is attributed to the rule whose output
       seeded it. *)
    let m0 = if tracked then Obs.now obs else 0. in
    Obs.span_begin obs "match";
    (match pool with
    | Some p -> discover_seeded_parallel p added
    | None ->
      List.iter
        (fun fact ->
          List.iter (fun i -> enqueue_seeded_for_rule i fact) (sweep fact))
        added);
    Obs.span_end obs "match";
    if tracked then
      prof_match.(tr.t_rule) <- prof_match.(tr.t_rule) +. (Obs.now obs -. m0);
    Watchdog.Window.observe null_window ~step:!triggers_applied !null_counter;
    (match watchdog with
    | Some w ->
      Watchdog.observe w ~step:!triggers_applied
        ~elapsed:(fun () -> Limits.Monitor.elapsed monitor)
        ~facts:(Instance.cardinal instance)
        ~queue:(Queue.length queue) ~nulls:!null_counter ~depth:!max_depth
        ~null_rate:(fun () -> Watchdog.Window.rate null_window)
    | None -> ());
    if tracked then begin
      prof_nulls.(tr.t_rule) <- prof_nulls.(tr.t_rule) + List.length created;
      prof_probes.(tr.t_rule) <-
        prof_probes.(tr.t_rule) + (Hom.Stats.candidates_now () - c_start);
      prof_time.(tr.t_rule) <-
        prof_time.(tr.t_rule) +. (Obs.now obs -. t_start);
      (* the trigger span closes before the persistence hook runs, so
         journal latency shows up in its own metrics, not under the
         rule *)
      Obs.span_end obs (rule_display tr.t_rule);
      if !triggers_applied land 511 = 0 then
        Obs.series obs "chase"
          [
            ("facts", float_of_int (Instance.cardinal instance));
            ("queue", float_of_int (Queue.length queue));
            ("nulls", float_of_int !null_counter);
            ("depth", float_of_int !max_depth);
          ]
    end;
    match on_trigger with
    | Some f ->
      f ~step:!step_counter ~rule_index:tr.t_rule ~depth ~created_nulls:created
        r tr.t_sub added
    | None -> ()
  in
  let firing_table () =
    Array.to_list (Array.mapi (fun i c -> (rule_display i, c)) firings)
    |> List.stable_sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  let exhaust breach =
    Limits.Exhaustion.make ~breach ~steps:!triggers_applied
      ~elapsed:(Limits.Monitor.elapsed monitor)
      ~rule_firings:(firing_table ())
      ~null_rate:(Watchdog.Window.rate null_window)
      ~window:(Watchdog.Window.span null_window)
      ~deepest_chain:!max_depth ()
  in
  let rec loop () =
    if Queue.is_empty queue then Terminated
    else
      match
        Limits.Monitor.check monitor ~steps:!triggers_applied
          ~facts:(Instance.cardinal instance)
          ~nulls:!null_counter ~depth:!max_depth
      with
      | Some breach -> Exhausted (exhaust breach)
      | None ->
        let tr = Queue.pop queue in
        (match config.variant with
        | Variant.Restricted when head_satisfied rules.(tr.t_rule) tr.t_sub ->
          incr triggers_skipped
        | Variant.Restricted | Variant.Oblivious | Variant.Semi_oblivious ->
          apply tr);
        loop ()
  in
  let status = loop () in
  if tracked then begin
    (* Run totals into the metric registry, as deltas against both the
       resumed prefix and the process-wide matcher counters. *)
    let dh = Hom.Stats.diff hom0 (Hom.Stats.snapshot ()) in
    let dp = Plan.Stats.diff plan0 (Plan.Stats.snapshot ()) in
    Obs.incr obs ~by:(!triggers_applied - applied0) "chase.triggers_applied";
    Obs.incr obs ~by:(!triggers_skipped - skipped0) "chase.triggers_skipped";
    Obs.incr obs ~by:(!atoms_created - created0) "chase.atoms_created";
    Obs.incr obs ~by:(!null_counter - nulls0) "chase.nulls_created";
    Obs.incr obs ~by:dh.Hom.Stats.probes "chase.hom.probes";
    Obs.incr obs ~by:dh.Hom.Stats.full_scans "chase.hom.full_scans";
    Obs.incr obs ~by:dh.Hom.Stats.candidates "chase.hom.candidates";
    Obs.incr obs ~by:dh.Hom.Stats.matches "chase.hom.matches";
    Obs.incr obs ~by:dh.Hom.Stats.planned_probe_cost
      "chase.hom.planned_probe_cost";
    Obs.incr obs ~by:dh.Hom.Stats.naive_probe_cost "chase.hom.naive_probe_cost";
    Obs.incr obs ~by:dp.Plan.Stats.plans "chase.plan.plans";
    Obs.incr obs ~by:dp.Plan.Stats.estimates "chase.plan.estimates";
    Obs.incr obs ~by:!prune_considered "chase.prune.considered";
    Obs.incr obs ~by:!prune_skipped "chase.prune.enqueues_skipped";
    if !prune_considered > 0 then
      Obs.set_gauge obs "chase.prune.hit_rate"
        (float_of_int (!prune_considered - !prune_skipped)
        /. float_of_int !prune_considered);
    Obs.set_gauge obs "chase.instance.facts"
      (float_of_int (Instance.cardinal instance));
    Obs.set_gauge obs "chase.queue.residual"
      (float_of_int (Queue.length queue));
    Obs.set_gauge obs "chase.max_depth" (float_of_int !max_depth);
    List.iter
      (fun (p, _) ->
        Obs.observe obs "chase.instance.bucket_size"
          (float_of_int (Instance.count_of_pred instance p)))
      (Instance.predicates instance);
    Array.iteri
      (fun i _ ->
        let label = rule_display i in
        let df = firings.(i) - firings0.(i) in
        if df > 0 || prof_time.(i) > 0. then begin
          Obs.incr obs ~label ~by:df "chase.rule.firings";
          Obs.incr obs ~label ~by:prof_nulls.(i) "chase.rule.nulls";
          Obs.incr obs ~label ~by:prof_probes.(i) "chase.rule.probes";
          Obs.observe obs ~label "chase.rule.match_s" prof_match.(i);
          Obs.observe obs ~label "chase.rule.time_s" prof_time.(i)
        end)
      rules;
    (match pool with
    | None -> ()
    | Some p ->
      (* The parallel plane's effort breakdown: per-domain shard sizes
         and steal counts, the merge-latency histogram, and the achieved
         parallelism (sum of in-batch busy time over batch wall time —
         the speedup an ideal merge would realise). *)
      let st = Parallel.stats p in
      Obs.set_gauge obs "chase.parallel.domains"
        (float_of_int st.Parallel.domains);
      Obs.incr obs ~by:st.Parallel.batches "chase.parallel.batches";
      Array.iteri
        (fun d e ->
          let label = Fmt.str "domain%d" d in
          Obs.incr obs ~label ~by:e "chase.parallel.events";
          Obs.incr obs ~label ~by:st.Parallel.steals.(d)
            "chase.parallel.steals";
          Obs.observe obs ~label "chase.parallel.busy_s" st.Parallel.busy.(d))
        st.Parallel.events;
      List.iter
        (fun dt -> Obs.observe obs "chase.parallel.merge_s" dt)
        (List.rev !merge_timings);
      if st.Parallel.wall > 0. then
        Obs.set_gauge obs "chase.parallel.parallelism"
          (Array.fold_left ( +. ) 0. st.Parallel.busy /. st.Parallel.wall));
    Obs.instant obs "chase.done"
      ~args:
        [
          ( "status",
            Chase_obs.Jsonv.String
              (match status with
              | Terminated -> "terminated"
              | Exhausted _ -> "exhausted") );
        ];
    Obs.span_end obs "chase"
  end;
  {
    instance;
    status;
    variant = config.variant;
    triggers_applied = !triggers_applied;
    triggers_skipped = !triggers_skipped;
    atoms_created = !atoms_created;
    nulls_created = !null_counter;
    max_depth = !max_depth;
    elapsed = Limits.Monitor.elapsed monitor;
    rule_firings = firing_table ();
    queue_residual = Queue.length queue;
    provenance;
  }

(** [is_model rules ins]: every trigger on [ins] is satisfied — [ins]
    contains an extension of every body match to a head match. *)
let is_model rules ins =
  List.for_all
    (fun r ->
      let ok = ref true in
      Hom.iter ins (Tgd.body r) (fun sub ->
          if
            !ok
            && not
                 (Hom.exists
                    ~init:(Subst.restrict sub (Tgd.frontier r))
                    ins (Tgd.head r))
          then ok := false);
      !ok)
    rules

(** [check_provenance result ~db]: every fact of the partial instance is
    either a database fact or carries a derivation record that replays —
    its parents are the recorded rule's body image under the recorded
    homomorphism, all present in the instance and themselves derivable,
    and the fact itself is reproduced by applying the rule head under the
    homomorphism extended with the recorded fresh nulls.  This is the
    soundness certificate of a degraded (limit-breached) run. *)
let check_provenance result ~db =
  let dbt = Atom.Tbl.create 64 in
  List.iter (fun a -> Atom.Tbl.replace dbt a ()) db;
  let problem = ref None in
  let fail fmt = Fmt.kstr (fun s -> if !problem = None then problem := Some s) fmt in
  Instance.iter
    (fun a ->
      if (not (Atom.Tbl.mem dbt a)) && !problem = None then
        match Atom.Tbl.find_opt result.provenance a with
        | None ->
          fail "fact %a is neither a database fact nor derived" Atom.pp a
        | Some d ->
          List.iter
            (fun p ->
              if not (Instance.mem result.instance p) then
                fail "parent %a of %a is missing from the instance" Atom.pp p
                  Atom.pp a
              else if
                (not (Atom.Tbl.mem dbt p)) && not (Atom.Tbl.mem result.provenance p)
              then fail "parent %a of %a is underived" Atom.pp p Atom.pp a)
            d.Derivation.parents;
          let body_image =
            Subst.apply_atoms d.Derivation.hom (Tgd.body d.Derivation.rule)
          in
          if
            List.length body_image <> List.length d.Derivation.parents
            || not (List.for_all2 Atom.equal body_image d.Derivation.parents)
          then fail "recorded parents of %a are not the body image" Atom.pp a;
          let existentials =
            Util.Sset.elements (Tgd.existentials d.Derivation.rule)
          in
          if List.length existentials <> List.length d.Derivation.created_nulls
          then fail "null count mismatch in the derivation of %a" Atom.pp a
          else begin
            let sub' =
              List.fold_left2
                (fun acc z id -> Subst.bind_exn acc z (Term.Null id))
                d.Derivation.hom existentials d.Derivation.created_nulls
            in
            let heads = Subst.apply_atoms sub' (Tgd.head d.Derivation.rule) in
            if not (List.exists (Atom.equal a) heads) then
              fail "fact %a is not produced by its recorded trigger" Atom.pp a
          end)
    result.instance;
  match !problem with None -> Ok () | Some msg -> Error msg

let pp_result fm r =
  Fmt.pf fm
    "@[<v>%a chase: %s@ facts: %d (created %d)@ triggers: %d applied%s@ nulls: \
     %d@ max depth: %d@]"
    Variant.pp r.variant
    (match r.status with
    | Terminated -> "terminated"
    | Exhausted e ->
      Fmt.str "budget exhausted: %a" Limits.pp_breach e.Limits.Exhaustion.breach)
    (Instance.cardinal r.instance)
    r.atoms_created r.triggers_applied
    (if r.triggers_skipped > 0 then Fmt.str ", %d skipped" r.triggers_skipped
     else "")
    r.nulls_created r.max_depth
