(** Point-in-time telemetry snapshots: the full metric registry —
    counters, gauges, histogram quantiles — plus process identity
    (build id, uptime), rendered both as one JSON document and as
    Prometheus-style text exposition.

    Both renderings are pure functions of the registry: the server
    answers a [telemetry] request by snapshotting under its own obs
    lock (microseconds of hold time) and formatting outside it —
    snapshots are read-only and never block workers. *)

let schema = "chase-telemetry/1"

let build_id =
  Printf.sprintf "chase/0.10 ocaml-%s %s" Sys.ocaml_version
    (match Sys.backend_type with
    | Sys.Native -> "native"
    | Sys.Bytecode -> "bytecode"
    | Sys.Other o -> o)

let opt_label label = if label = "" then None else Some label

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let snapshot_json ?(extra = []) ~uptime_s metrics =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (name, label, entry) ->
      let base =
        ("name", Jsonv.String name)
        ::
        (if label = "" then [] else [ ("label", Jsonv.String label) ])
      in
      match entry with
      | Metrics.E_counter v ->
        counters := Jsonv.Obj (base @ [ ("value", Jsonv.Int v) ]) :: !counters
      | Metrics.E_gauge v ->
        gauges := Jsonv.Obj (base @ [ ("value", Jsonv.Float v) ]) :: !gauges
      | Metrics.E_hist _ -> (
        match Metrics.hist_stats metrics ?label:(opt_label label) name with
        | None -> ()
        | Some (count, sum, mn, mx, p50, p90, p99) ->
          hists :=
            Jsonv.Obj
              (base
              @ [
                  ("count", Jsonv.Int count);
                  ("sum", Jsonv.Float sum);
                  ("min", Jsonv.Float mn);
                  ("max", Jsonv.Float mx);
                  ("p50", Jsonv.Float p50);
                  ("p90", Jsonv.Float p90);
                  ("p99", Jsonv.Float p99);
                ])
            :: !hists))
    (Metrics.dump metrics);
  Jsonv.Obj
    ([
       ("type", Jsonv.String "telemetry");
       ("schema", Jsonv.String schema);
       ("build", Jsonv.String build_id);
       ("uptime_s", Jsonv.Float uptime_s);
     ]
    @ extra
    @ [
        ("counters", Jsonv.List (List.rev !counters));
        ("gauges", Jsonv.List (List.rev !gauges));
        ("histograms", Jsonv.List (List.rev !hists));
      ])

let json ?extra ~uptime_s metrics =
  Jsonv.to_string (snapshot_json ?extra ~uptime_s metrics)

(* ------------------------------------------------------------------ *)
(* Prometheus-style text exposition                                    *)
(* ------------------------------------------------------------------ *)

(* Metric names like "svc.latency_s" become "chase_svc_latency_s":
   dots (and anything else outside the exposition grammar) fold to
   underscores under a stable "chase_" namespace. *)
let prom_name name =
  let b = Bytes.of_string ("chase_" ^ name) in
  Bytes.iteri
    (fun i ch ->
      let ok =
        (ch >= 'a' && ch <= 'z')
        || (ch >= 'A' && ch <= 'Z')
        || (ch >= '0' && ch <= '9')
        || ch = '_' || ch = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

let prom_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_labels kvs =
  match kvs with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) kvs)
    ^ "}"

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prometheus ?(extra = []) ~uptime_s metrics =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 64 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  let sample name labels v =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name (prom_labels labels) v)
  in
  let info_labels =
    ("build", build_id)
    :: List.filter_map
         (fun (k, j) ->
           match j with Jsonv.String s -> Some (k, s) | _ -> None)
         extra
  in
  type_line "chase_build_info" "gauge";
  sample "chase_build_info" info_labels "1";
  type_line "chase_uptime_seconds" "gauge";
  sample "chase_uptime_seconds" [] (prom_float uptime_s);
  List.iter
    (fun (name, label, entry) ->
      let n = prom_name name in
      let labels = if label = "" then [] else [ ("label", label) ] in
      match entry with
      | Metrics.E_counter v ->
        type_line n "counter";
        sample n labels (string_of_int v)
      | Metrics.E_gauge v ->
        type_line n "gauge";
        sample n labels (prom_float v)
      | Metrics.E_hist _ -> (
        match Metrics.hist_stats metrics ?label:(opt_label label) name with
        | None -> ()
        | Some (count, sum, _mn, _mx, p50, p90, p99) ->
          type_line n "summary";
          List.iter
            (fun (q, v) ->
              sample n (labels @ [ ("quantile", q) ]) (prom_float v))
            [ ("0.5", p50); ("0.9", p90); ("0.99", p99) ];
          sample (n ^ "_sum") labels (prom_float sum);
          sample (n ^ "_count") labels (string_of_int count)))
    (Metrics.dump metrics);
  Buffer.contents buf
