(** Distributed trace context: compact trace/span identifiers, the
    per-process JSONL {e shard} writer, and the offline merge that
    joins shards into one Chrome-trace file.

    The doctrine is {e propagate ids, ship spans, merge offline}: a
    request carries only a ~34-byte context string across process
    boundaries (client → server → shipper → standby); each process
    appends its own spans to its own local shard file with absolute
    wall-clock timestamps; and [merge_to_chrome] — driven by
    [chasec trace-merge] — joins any set of shards into a single
    trace-event array grouped by trace id.  No process ever blocks on
    another's observability plane, and a shard that was never
    collected costs nothing but a gap in the merged picture.

    Identifiers are 64-bit values rendered as 16 lowercase hex digits,
    minted by a splitmix64 stream seeded from the pid and the clock so
    concurrent processes cannot collide in practice.  A context is the
    pair [trace-span]: the trace id names the whole request tree, the
    span id names the sender's own span so the receiver can parent its
    spans under it. *)

type t = {
  trace : string;  (** 16 hex digits shared by every span of the request *)
  span : string;  (** 16 hex digits naming the current span *)
}

(* ------------------------------------------------------------------ *)
(* Id minting                                                          *)
(* ------------------------------------------------------------------ *)

let splitmix64 s =
  let open Int64 in
  let z = add s 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* One process-wide stream: the seed mixes pid and boot time, and an
   atomic counter advances it — wait-free from any domain or thread. *)
let seed =
  lazy
    (Int64.logxor
       (Int64.of_float (Unix.gettimeofday () *. 1e6))
       (Int64.shift_left (Int64.of_int (Unix.getpid ())) 40))

let ctr = Atomic.make 1

let fresh_id () =
  let n = Atomic.fetch_and_add ctr 1 in
  let v = splitmix64 (Int64.add (Lazy.force seed) (Int64.of_int n)) in
  Printf.sprintf "%016Lx" v

let genesis () =
  let trace = fresh_id () in
  { trace; span = fresh_id () }

let child c = { c with span = fresh_id () }

(* ------------------------------------------------------------------ *)
(* Wire form: "<trace>-<span>"                                         *)
(* ------------------------------------------------------------------ *)

let is_hex_id s =
  String.length s = 16
  && String.for_all
       (fun ch -> (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'))
       s

let to_string c = c.trace ^ "-" ^ c.span

let of_string s =
  if String.length s = 33 && s.[16] = '-' then begin
    let trace = String.sub s 0 16 and span = String.sub s 17 16 in
    if is_hex_id trace && is_hex_id span then Some { trace; span } else None
  end
  else None

(* ------------------------------------------------------------------ *)
(* Shard records                                                       *)
(* ------------------------------------------------------------------ *)

type record = {
  r_trace : string;
  r_span : string;
  r_parent : string option;
  r_name : string;
  r_proc : string;
  r_pid : int;
  r_ts_us : float;  (** absolute epoch microseconds *)
  r_dur_us : float;  (** 0 for instants *)
  r_args : (string * Jsonv.t) list;
}

let record_to_json r =
  let base =
    [
      ("trace", Jsonv.String r.r_trace);
      ("span", Jsonv.String r.r_span);
    ]
  in
  let parent =
    match r.r_parent with
    | Some p -> [ ("parent", Jsonv.String p) ]
    | None -> []
  in
  let tail =
    [
      ("name", Jsonv.String r.r_name);
      ("proc", Jsonv.String r.r_proc);
      ("pid", Jsonv.Int r.r_pid);
      ("ts_us", Jsonv.Float r.r_ts_us);
      ("dur_us", Jsonv.Float r.r_dur_us);
    ]
  in
  let args =
    match r.r_args with [] -> [] | a -> [ ("args", Jsonv.Obj a) ]
  in
  Jsonv.Obj (base @ parent @ tail @ args)

let record_of_json j =
  let str k = Option.bind (Jsonv.member k j) Jsonv.to_string_opt in
  let num k = Option.bind (Jsonv.member k j) Jsonv.to_float_opt in
  match (str "trace", str "span", str "name", str "proc", num "ts_us") with
  | Some r_trace, Some r_span, Some r_name, Some r_proc, Some r_ts_us ->
    let r_args =
      match Jsonv.member "args" j with Some (Jsonv.Obj kvs) -> kvs | _ -> []
    in
    Ok
      {
        r_trace;
        r_span;
        r_parent = str "parent";
        r_name;
        r_proc;
        r_pid =
          (match num "pid" with Some p -> int_of_float p | None -> 0);
        r_ts_us;
        r_dur_us = (match num "dur_us" with Some d -> d | None -> 0.);
        r_args;
      }
  | _ -> Error "span record missing trace/span/name/proc/ts_us"

(* ------------------------------------------------------------------ *)
(* The shard writer                                                    *)
(* ------------------------------------------------------------------ *)

(** Append-only JSONL, one record per line, flushed per line so a
    killed process loses at most the line in flight.  The writer never
    raises and never blocks the caller on a sick sink: any open or
    write failure (or an armed [check] fault) flips it into a black
    hole that counts drops — tracing degrades, the chase does not. *)
module Shard = struct
  type writer = {
    mu : Mutex.t;
    proc : string;
    path : string;
    check : unit -> bool;  (** [true] = fail this write (fault hook) *)
    mutable oc : out_channel option;
    mutable drops : int;
  }

  let locked w f =
    Mutex.lock w.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock w.mu) f

  let open_ ?(check = fun () -> false) ~proc path =
    let oc =
      try Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
      with Sys_error _ -> None
    in
    {
      mu = Mutex.create ();
      proc;
      path;
      check;
      oc;
      drops = (if oc = None then 1 else 0);
    }

  let proc w = w.proc
  let path w = w.path
  let drops w = locked w (fun () -> w.drops)

  let write_record w r =
    locked w (fun () ->
        match w.oc with
        | None -> w.drops <- w.drops + 1
        | Some oc -> (
          try
            if w.check () then failwith "injected sink fault";
            output_string oc (Jsonv.to_string (record_to_json r));
            output_char oc '\n';
            flush oc
          with _ ->
            (* a sick sink is abandoned for good: close it, count the
               drop, and keep counting for every later record *)
            w.drops <- w.drops + 1;
            (try close_out_noerr oc with _ -> ());
            w.oc <- None))

  let span w ~ctx ?parent ~name ~ts_us ~dur_us ?(args = []) () =
    write_record w
      {
        r_trace = ctx.trace;
        r_span = ctx.span;
        r_parent = parent;
        r_name = name;
        r_proc = w.proc;
        r_pid = Unix.getpid ();
        r_ts_us = ts_us;
        r_dur_us = dur_us;
        r_args = args;
      }

  let instant w ~ctx ?parent ~name ~ts_us ?args () =
    span w ~ctx ?parent ~name ~ts_us ~dur_us:0. ?args ()

  let close w =
    locked w (fun () ->
        (match w.oc with Some oc -> (try close_out oc with _ -> ()) | None -> ());
        w.oc <- None)
end

let now_us () = Unix.gettimeofday () *. 1e6

(* ------------------------------------------------------------------ *)
(* Offline merge: shards → one Chrome-trace array                      *)
(* ------------------------------------------------------------------ *)

let parse_shard_line line =
  let line = String.trim line in
  if line = "" then None
  else
    match Jsonv.of_string line with
    | Error _ -> None
    | Ok j -> ( match record_of_json j with Ok r -> Some r | Error _ -> None)

(** [merge_to_chrome records] joins span records from any number of
    shards into one Chrome trace-event array: a metadata ([ph:"M"])
    event names each distinct process, and every span becomes a
    complete ([ph:"X"]) event whose [args] carry the trace/span/parent
    ids so validators (and Perfetto queries) can re-walk the tree.
    Events are ordered by trace id, then start time — one request's
    tree reads contiguously. *)
let merge_to_chrome records =
  let procs = Hashtbl.create 7 in
  let next = ref 0 in
  let pid_of r =
    let key = (r.r_proc, r.r_pid) in
    match Hashtbl.find_opt procs key with
    | Some n -> n
    | None ->
      incr next;
      Hashtbl.replace procs key !next;
      !next
  in
  let sorted =
    List.sort
      (fun a b ->
        match String.compare a.r_trace b.r_trace with
        | 0 -> compare a.r_ts_us b.r_ts_us
        | c -> c)
      records
  in
  let span_events =
    List.map
      (fun r ->
        let vid = pid_of r in
        let args =
          [
            ("trace", Jsonv.String r.r_trace);
            ("span", Jsonv.String r.r_span);
          ]
          @ (match r.r_parent with
            | Some p -> [ ("parent", Jsonv.String p) ]
            | None -> [])
          @ r.r_args
        in
        Jsonv.Obj
          [
            ("name", Jsonv.String r.r_name);
            ("cat", Jsonv.String "chase");
            ("ph", Jsonv.String "X");
            ("ts", Jsonv.Float r.r_ts_us);
            ("dur", Jsonv.Float r.r_dur_us);
            ("pid", Jsonv.Int vid);
            ("tid", Jsonv.Int 1);
            ("args", Jsonv.Obj args);
          ])
      sorted
  in
  let meta =
    Hashtbl.fold
      (fun (proc, ospid) vid acc ->
        Jsonv.Obj
          [
            ("name", Jsonv.String "process_name");
            ("ph", Jsonv.String "M");
            ("ts", Jsonv.Float 0.);
            ("pid", Jsonv.Int vid);
            ("tid", Jsonv.Int 0);
            ( "args",
              Jsonv.Obj
                [
                  ("name", Jsonv.String (Printf.sprintf "%s/%d" proc ospid));
                ] );
          ]
        :: acc)
      procs []
    |> List.sort compare
  in
  Jsonv.List (meta @ span_events)
