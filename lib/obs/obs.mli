(** Observability facade: monotonic-clock spans, counters, gauges and
    histograms behind one [enabled] flag, feeding pluggable sinks.

    The {!disabled} value is the default everywhere: every operation on
    it reduces to a flag test, so instrumented code is free when nobody
    is looking.  Span streams are well-formed by construction — ends
    are matched against a stack of open spans and {!finish} closes
    anything left open — so sinks always see balanced begin/end pairs. *)

type t

val disabled : t
(** The no-op instance.  [enabled disabled = false]. *)

val create : ?clock:(unit -> float) -> ?metrics:Metrics.t -> Sink.t list -> t
(** A live instance.  [clock] defaults to [Unix.gettimeofday];
    timestamps are clamped monotone relative to creation time. *)

val enabled : t -> bool
val metrics : t -> Metrics.t

val now : t -> float
(** Seconds since creation, monotone. *)

(** {1 Spans} *)

val span_begin : t -> ?args:Sink.args -> string -> unit

val span_end : t -> string -> unit
(** Emits only when [name] matches the innermost open span; a stray end
    is dropped. *)

val with_span : t -> ?args:Sink.args -> string -> (unit -> 'a) -> 'a
(** Exception-safe [span_begin]/[span_end] bracket. *)

(** {1 Point events} *)

val instant : t -> ?args:Sink.args -> string -> unit
val series : t -> string -> (string * float) list -> unit

(** {1 Metrics} *)

val incr : t -> ?label:string -> ?by:int -> string -> unit
val set_gauge : t -> ?label:string -> string -> float -> unit
val observe : t -> ?label:string -> string -> float -> unit

(** {1 Lifecycle} *)

val flush : t -> unit

val finish : t -> unit
(** Close any open spans, then close the sink (terminating a trace
    array).  Idempotent; after [finish] all emission is a no-op. *)

(** {1 Metric summaries} *)

val metrics_header : string
(** The schema line written first to a metrics file:
    [{"type":"schema","schema":"chase-metrics/1"}]. *)

val write_metrics : t -> (string -> unit) -> unit
(** Write one JSONL summary line per metric (counters, gauges,
    histograms with count/sum/min/max/p50/p90/p99), sorted by
    (name, label). *)

(** {1 File plumbing for the CLIs} *)

val files :
  ?trace:string ->
  ?metrics:string ->
  ?force:bool ->
  unit ->
  (t * (unit -> unit), string) result
(** Open the requested output files and build a live instance: a Chrome
    trace sink on [trace], a points-only JSONL sink (after the
    {!metrics_header} line) on [metrics].  The returned closure
    finishes the instance, appends metric summaries to the metrics
    file, and closes both files.  With neither file and [force] false,
    returns [(disabled, ignore)]; [force] makes the instance live
    anyway (used by [--profile], which needs the registry only). *)
