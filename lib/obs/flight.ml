(** The flight recorder: a bounded, lock-free, process-wide ring of
    recent operational events, always on at near-zero cost, dumped as
    a structured JSONL post-mortem when something goes wrong — so the
    {e first} occurrence of a production anomaly yields evidence, not
    a repro request.

    Recording is a timestamp, three short strings and one ring store;
    there is no lock, no allocation beyond the record itself, and no
    I/O.  The ring is an array of immutable records behind an atomic
    cursor: concurrent writers may interleave slots arbitrarily, which
    is harmless — each slot flip is a single pointer store, so readers
    always see whole records (OCaml 5's memory model), merely not
    necessarily the globally newest ones.  The dump sorts by timestamp
    to present a coherent timeline. *)

type entry = {
  ts_us : float;  (** absolute epoch microseconds *)
  kind : string;  (** coarse class: ["shed"], ["recovery"], ["stall"], … *)
  name : string;  (** the component or event name *)
  detail : string;  (** free-form, small *)
}

let size = 1024
let ring : entry option array = Array.make size None
let cursor = Atomic.make 0
let dump_drops = Atomic.make 0

(* The post-mortem path: set once at process start by whichever binary
   wants dumps; [None] keeps recording but makes [dump] a no-op. *)
let dump_path : string option Atomic.t = Atomic.make None
let configure ~path = Atomic.set dump_path path
let configured () = Atomic.get dump_path

let record ~kind ~name detail =
  let i = Atomic.fetch_and_add cursor 1 in
  ring.(i mod size) <-
    Some { ts_us = Unix.gettimeofday () *. 1e6; kind; name; detail }

let recorded () = Atomic.get cursor

let entries () =
  Array.to_list ring
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> compare a.ts_us b.ts_us)

let reset () =
  Array.fill ring 0 size None;
  Atomic.set cursor 0;
  Atomic.set dump_drops 0

let entry_to_json e =
  Jsonv.Obj
    [
      ("ts_us", Jsonv.Float e.ts_us);
      ("kind", Jsonv.String e.kind);
      ("name", Jsonv.String e.name);
      ("detail", Jsonv.String e.detail);
    ]

(** [dump_to write ~reason] emits the post-mortem: one header line
    naming the reason, then every retained entry oldest-first. *)
let dump_to write ~reason =
  let es = entries () in
  write
    (Jsonv.to_string
       (Jsonv.Obj
          [
            ("type", Jsonv.String "flight");
            ("reason", Jsonv.String reason);
            ("ts_us", Jsonv.Float (Unix.gettimeofday () *. 1e6));
            ("recorded", Jsonv.Int (recorded ()));
            ("retained", Jsonv.Int (List.length es));
          ]));
  List.iter (fun e -> write (entry_to_json e |> Jsonv.to_string)) es

(** [dump ~reason] appends a post-mortem to the configured path.
    Multiple dumps coexist in one file (each opens with its own header
    line).  Never raises: a sick disk counts a drop and moves on. *)
let dump ~reason =
  match Atomic.get dump_path with
  | None -> ()
  | Some path -> (
    try
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          dump_to
            (fun line ->
              output_string oc line;
              output_char oc '\n')
            ~reason;
          flush oc)
    with _ -> Atomic.incr dump_drops)

let drops () = Atomic.get dump_drops
