(** Event sinks: where telemetry goes.

    A sink is three closures — emit, flush, close — over an abstract
    event stream.  The engine never formats anything itself; it emits
    {!event} values and the sink decides the wire format.  Shipped
    sinks: [null] (drop everything), [jsonl] (one JSON object per
    line), and [trace] (a Chrome [trace_event] array loadable in
    Perfetto / about:tracing). *)

type args = (string * Jsonv.t) list

type event =
  | Span_begin of { name : string; ts : float; args : args }
  | Span_end of { name : string; ts : float }
  | Instant of { name : string; ts : float; args : args }
  | Series of { name : string; ts : float; values : (string * float) list }
      (** A sampled set of gauges, rendered as Chrome counter tracks. *)

type t = {
  emit : event -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null = { emit = ignore; flush = ignore; close = ignore }

let tee sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

let filter pred s =
  { s with emit = (fun e -> if pred e then s.emit e) }

(* Point events carry data a metrics stream wants; span begin/end are
   trace-file structure. *)
let is_point = function
  | Instant _ | Series _ -> true
  | Span_begin _ | Span_end _ -> false

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let jsonl ?(flush = ignore) write =
  let line obj = write (Jsonv.to_string (Jsonv.Obj obj) ^ "\n") in
  let emit = function
    | Span_begin { name; ts; args } ->
      line
        (("type", Jsonv.String "begin")
         :: ("name", Jsonv.String name)
         :: ("ts", Jsonv.Float ts)
         :: args)
    | Span_end { name; ts } ->
      line
        [
          ("type", Jsonv.String "end");
          ("name", Jsonv.String name);
          ("ts", Jsonv.Float ts);
        ]
    | Instant { name; ts; args } ->
      line
        (("type", Jsonv.String "instant")
         :: ("name", Jsonv.String name)
         :: ("ts", Jsonv.Float ts)
         :: args)
    | Series { name; ts; values } ->
      line
        [
          ("type", Jsonv.String "series");
          ("name", Jsonv.String name);
          ("ts", Jsonv.Float ts);
          ( "values",
            Jsonv.Obj (List.map (fun (k, v) -> (k, Jsonv.Float v)) values) );
        ]
  in
  { emit; flush; close = flush }

(* ------------------------------------------------------------------ *)
(* Chrome trace_event                                                  *)
(* ------------------------------------------------------------------ *)

(* The JSON-array flavour of the trace_event format: one object per
   event, [ph] is the phase letter (B begin, E end, i instant, C
   counter), timestamps in microseconds.  Perfetto and about:tracing
   both accept it. *)
let trace ?(flush = ignore) write =
  let first = ref true in
  let event obj =
    if !first then begin
      write "[\n";
      first := false
    end
    else write ",\n";
    write (Jsonv.to_string (Jsonv.Obj obj))
  in
  let us ts = Jsonv.Float (ts *. 1e6) in
  let base name ph ts =
    [
      ("name", Jsonv.String name);
      ("ph", Jsonv.String ph);
      ("ts", us ts);
      ("pid", Jsonv.Int 1);
      ("tid", Jsonv.Int 1);
      ("cat", Jsonv.String "chase");
    ]
  in
  let with_args args obj =
    match args with [] -> obj | _ -> obj @ [ ("args", Jsonv.Obj args) ]
  in
  let emit = function
    | Span_begin { name; ts; args } ->
      event (with_args args (base name "B" ts))
    | Span_end { name; ts } -> event (base name "E" ts)
    | Instant { name; ts; args } ->
      event (with_args args (base name "i" ts @ [ ("s", Jsonv.String "t") ]))
    | Series { name; ts; values } ->
      event
        (with_args
           (List.map (fun (k, v) -> (k, Jsonv.Float v)) values)
           (base name "C" ts))
  in
  let close () =
    (* an empty stream still closes to valid JSON *)
    if !first then write "[\n";
    write "\n]\n";
    flush ()
  in
  { emit; flush; close }
