(** Metric registry: counters, gauges and log-bucket histograms keyed by
    name plus an optional label (used for per-rule breakdowns).

    All recording operations are total: a name/label collision between
    kinds is silently ignored — telemetry must never take down the
    computation it observes. *)

type t

type histogram

val create : unit -> t

(** {1 Recording} *)

val incr : t -> ?label:string -> ?by:int -> string -> unit
val set_gauge : t -> ?label:string -> string -> float -> unit

val observe : t -> ?label:string -> string -> float -> unit
(** Record a sample into a histogram with geometric buckets of ratio
    [sqrt 2]; any quantile estimate is within a factor of about 1.19 of
    the true sample quantile (and clamped to the exact min/max). *)

(** {1 Reading} *)

val counter_value : t -> ?label:string -> string -> int
(** 0 when absent. *)

val gauge_value : t -> ?label:string -> string -> float option

val hist_stats :
  t -> ?label:string -> string ->
  (int * float * float * float * float * float * float) option
(** [(count, sum, min, max, p50, p90, p99)]; [None] when absent or
    empty. *)

type entry =
  | E_counter of int
  | E_gauge of float
  | E_hist of histogram

val dump : t -> (string * string * entry) list
(** All entries sorted by (name, label) — a deterministic summary
    order. *)

val labels_of : t -> string -> string list
(** Sorted distinct labels recorded under [name]. *)

val quantile : histogram -> float -> float
