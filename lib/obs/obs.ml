(** The observability facade the rest of the system talks to.

    An [Obs.t] bundles a monotonic clock, an event sink and a metric
    registry behind one [enabled] flag.  The {!disabled} value is the
    default everywhere: every operation on it is a single flag test, so
    instrumented code costs nothing measurable when nobody is looking.

    Spans are kept well-formed by construction: the facade tracks a
    stack of open span names, [span_end] only emits when it matches the
    innermost open span, and [finish] closes anything left open — so a
    sink always sees a balanced stream, whatever the instrumented code
    does (exceptions included; prefer {!with_span}, which is
    exception-safe on its own). *)

type t = {
  enabled : bool;
  clock : unit -> float;
  t0 : float;
  mutable last : float;
  sink : Sink.t;
  metrics : Metrics.t;
  mutable stack : string list;
  mutable finished : bool;
}

let disabled =
  {
    enabled = false;
    clock = (fun () -> 0.);
    t0 = 0.;
    last = 0.;
    sink = Sink.null;
    metrics = Metrics.create ();
    stack = [];
    finished = true;
  }

let default_clock = Unix.gettimeofday

let create ?(clock = default_clock) ?metrics sinks =
  let t0 = clock () in
  {
    enabled = true;
    clock;
    t0;
    last = 0.;
    sink = (match sinks with [ s ] -> s | ss -> Sink.tee ss);
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    stack = [];
    finished = false;
  }

let enabled t = t.enabled
let metrics t = t.metrics

(* Monotone-clamped elapsed time: wall clocks can step backwards, trace
   timestamps must not. *)
let now t =
  let e = t.clock () -. t.t0 in
  let e = if e < t.last then t.last else e in
  t.last <- e;
  e

(* --- spans --------------------------------------------------------- *)

let span_begin t ?(args = []) name =
  if t.enabled && not t.finished then begin
    t.stack <- name :: t.stack;
    t.sink.emit (Sink.Span_begin { name; ts = now t; args })
  end

let span_end t name =
  if t.enabled && not t.finished then
    match t.stack with
    | top :: rest when top = name ->
      t.stack <- rest;
      Flight.record ~kind:"span" ~name "";
      t.sink.emit (Sink.Span_end { name; ts = now t })
    | _ -> ()

let with_span t ?args name f =
  if t.enabled then begin
    span_begin t ?args name;
    Fun.protect ~finally:(fun () -> span_end t name) f
  end
  else f ()

(* --- point events -------------------------------------------------- *)

let instant t ?(args = []) name =
  if t.enabled && not t.finished then begin
    Flight.record ~kind:"instant" ~name "";
    t.sink.emit (Sink.Instant { name; ts = now t; args })
  end

let series t name values =
  if t.enabled && not t.finished then
    t.sink.emit (Sink.Series { name; ts = now t; values })

(* --- metrics ------------------------------------------------------- *)

let incr t ?label ?by name = if t.enabled then Metrics.incr t.metrics ?label ?by name
let set_gauge t ?label name v =
  if t.enabled then Metrics.set_gauge t.metrics ?label name v
let observe t ?label name v =
  if t.enabled then Metrics.observe t.metrics ?label name v

(* --- lifecycle ----------------------------------------------------- *)

let flush t = if t.enabled then t.sink.flush ()

let finish t =
  if t.enabled && not t.finished then begin
    List.iter
      (fun name -> t.sink.emit (Sink.Span_end { name; ts = now t }))
      t.stack;
    t.stack <- [];
    t.finished <- true;
    t.sink.close ()
  end

(* --- metric summaries ---------------------------------------------- *)

let metrics_header = {|{"type":"schema","schema":"chase-metrics/1"}|}

let write_metrics t write =
  let line obj = write (Jsonv.to_string (Jsonv.Obj obj) ^ "\n") in
  List.iter
    (fun (name, label, entry) ->
      let base =
        ("name", Jsonv.String name)
        ::
        (if label = "" then [] else [ ("label", Jsonv.String label) ])
      in
      match entry with
      | Metrics.E_counter v ->
        line (("type", Jsonv.String "counter") :: base @ [ ("value", Jsonv.Int v) ])
      | Metrics.E_gauge v ->
        line
          (("type", Jsonv.String "gauge") :: base @ [ ("value", Jsonv.Float v) ])
      | Metrics.E_hist _ -> (
        match Metrics.hist_stats t.metrics ~label name with
        | None -> ()
        | Some (count, sum, mn, mx, p50, p90, p99) ->
          line
            (("type", Jsonv.String "histogram")
             :: base
            @ [
                ("count", Jsonv.Int count);
                ("sum", Jsonv.Float sum);
                ("min", Jsonv.Float mn);
                ("max", Jsonv.Float mx);
                ("p50", Jsonv.Float p50);
                ("p90", Jsonv.Float p90);
                ("p99", Jsonv.Float p99);
              ])))
    (Metrics.dump t.metrics)

(* --- file plumbing for the CLIs ------------------------------------ *)

let files ?trace ?metrics:metrics_file ?(force = false) () =
  if trace = None && metrics_file = None && not force then
    Ok (disabled, ignore)
  else begin
    let opened = ref [] in
    let open_file path =
      let oc = open_out path in
      opened := (path, oc) :: !opened;
      oc
    in
    match
      let sinks = ref [] in
      (match trace with
      | Some path ->
        let oc = open_file path in
        sinks :=
          Sink.trace ~flush:(fun () -> Stdlib.flush oc) (output_string oc)
          :: !sinks
      | None -> ());
      let metrics_oc =
        match metrics_file with
        | Some path ->
          let oc = open_file path in
          output_string oc (metrics_header ^ "\n");
          sinks :=
            Sink.filter Sink.is_point
              (Sink.jsonl ~flush:(fun () -> Stdlib.flush oc)
                 (output_string oc))
            :: !sinks;
          Some oc
        | None -> None
      in
      let t = create (List.rev !sinks) in
      let close () =
        finish t;
        (match metrics_oc with
        | Some oc -> write_metrics t (output_string oc)
        | None -> ());
        List.iter (fun (_, oc) -> close_out_noerr oc) !opened
      in
      (t, close)
    with
    | pair -> Ok pair
    | exception Sys_error msg ->
      List.iter (fun (_, oc) -> close_out_noerr oc) !opened;
      Error msg
  end
