(** The flight recorder: a bounded lock-free ring of recent
    operational events, always on, dumped as JSONL on anomalies
    (crash-recovery boot, watchdog stalls, exhaustion, load sheds).

    [record] is wait-free and never does I/O; [dump] never raises. *)

type entry = {
  ts_us : float;  (** absolute epoch microseconds *)
  kind : string;
  name : string;
  detail : string;
}

val size : int
(** Ring capacity: the newest [size] records are retained. *)

val record : kind:string -> name:string -> string -> unit
(** Always-on, lock-free, no I/O. *)

val recorded : unit -> int
(** Total records ever written (≥ retained). *)

val entries : unit -> entry list
(** Snapshot of retained records, oldest first. *)

val configure : path:string option -> unit
(** Where [dump] appends its post-mortems; [None] (the default)
    disables dumping while recording continues. *)

val configured : unit -> string option

val dump : reason:string -> unit
(** Append a post-mortem (header line + retained entries) to the
    configured path.  No-op when unconfigured; never raises. *)

val dump_to : (string -> unit) -> reason:string -> unit
(** The same post-mortem through an arbitrary line writer. *)

val drops : unit -> int
(** Dumps lost to sink failure. *)

val reset : unit -> unit
(** Test hook: clear the ring and counters. *)
