(** Metric registry: counters, gauges and log-bucket histograms.

    A registry is a flat table keyed by metric name plus an optional
    label (we use labels for per-rule breakdowns: the metric is
    ["chase.rule.firings"], the label the rule display string).  All
    operations are total — recording to a name that already exists with
    a different kind is ignored rather than an error, because telemetry
    must never take down the computation it observes.

    Histograms use geometric buckets with ratio [sqrt 2] (two buckets
    per octave), which bounds any quantile estimate by a factor of
    [2**0.25 ≈ 1.19] while keeping the bucket array tiny and the record
    path allocation-free.  Count, sum, min and max are tracked exactly. *)

type histogram = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type kind =
  | Counter of int ref
  | Gauge of float ref
  | Hist of histogram

type t = { table : (string * string, kind) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let no_label = ""

(* --- histogram geometry ------------------------------------------- *)

(* Bucket [i] covers values in [ratio^(i-mid-1), ratio^(i-mid)) with
   ratio = sqrt 2.  [mid] centres the range so that both sub-nanosecond
   latencies (as seconds) and large byte counts fit; values at or below
   zero land in bucket 0. *)
let n_buckets = 132
let mid = 66
let half_log2 = 0.5 *. log 2.

let bucket_of v =
  if v <= 0. then 0
  else
    let i = mid + 1 + int_of_float (Float.floor (log v /. half_log2)) in
    if i < 1 then 1 else if i > n_buckets - 1 then n_buckets - 1 else i

(* Geometric midpoint of bucket [i]'s range; used for quantile
   estimation.  Bucket 0 reports 0. *)
let bucket_mid i =
  if i <= 0 then 0.
  else
    let hi = exp (float_of_int (i - mid) *. half_log2) in
    let lo = exp (float_of_int (i - mid - 1) *. half_log2) in
    sqrt (lo *. hi)

let new_hist () =
  {
    buckets = Array.make n_buckets 0;
    h_count = 0;
    h_sum = 0.;
    h_min = infinity;
    h_max = neg_infinity;
  }

(* --- recording ----------------------------------------------------- *)

let find t name label = Hashtbl.find_opt t.table (name, label)

let incr t ?(label = no_label) ?(by = 1) name =
  match find t name label with
  | Some (Counter r) -> r := !r + by
  | Some _ -> ()
  | None -> Hashtbl.replace t.table (name, label) (Counter (ref by))

let set_gauge t ?(label = no_label) name v =
  match find t name label with
  | Some (Gauge r) -> r := v
  | Some _ -> ()
  | None -> Hashtbl.replace t.table (name, label) (Gauge (ref v))

let observe t ?(label = no_label) name v =
  let h =
    match find t name label with
    | Some (Hist h) -> Some h
    | Some _ -> None
    | None ->
      let h = new_hist () in
      Hashtbl.replace t.table (name, label) (Hist h);
      Some h
  in
  match h with
  | None -> ()
  | Some h ->
    h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v

(* --- reading ------------------------------------------------------- *)

let counter_value t ?(label = no_label) name =
  match find t name label with Some (Counter r) -> !r | _ -> 0

let gauge_value t ?(label = no_label) name =
  match find t name label with Some (Gauge r) -> Some !r | _ -> None

let quantile h q =
  if h.h_count = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = q *. float_of_int h.h_count in
    let acc = ref 0. and i = ref 0 and found = ref (-1) in
    while !found < 0 && !i < n_buckets do
      acc := !acc +. float_of_int h.buckets.(!i);
      if !acc >= rank then found := !i;
      i := !i + 1
    done;
    let est = bucket_mid (if !found < 0 then n_buckets - 1 else !found) in
    (* the exact extrema tighten the bucket estimate *)
    Float.min h.h_max (Float.max h.h_min est)
  end

let hist_stats t ?(label = no_label) name =
  match find t name label with
  | Some (Hist h) when h.h_count > 0 ->
    Some
      ( h.h_count,
        h.h_sum,
        h.h_min,
        h.h_max,
        quantile h 0.5,
        quantile h 0.9,
        quantile h 0.99 )
  | _ -> None

type entry =
  | E_counter of int
  | E_gauge of float
  | E_hist of histogram

let dump t =
  Hashtbl.fold
    (fun (name, label) kind acc ->
      let e =
        match kind with
        | Counter r -> E_counter !r
        | Gauge r -> E_gauge !r
        | Hist h -> E_hist h
      in
      (name, label, e) :: acc)
    t.table []
  |> List.sort (fun (n1, l1, _) (n2, l2, _) ->
         match compare n1 n2 with 0 -> compare l1 l2 | c -> c)

let labels_of t name =
  Hashtbl.fold
    (fun (n, label) _ acc -> if n = name then label :: acc else acc)
    t.table []
  |> List.sort_uniq compare
