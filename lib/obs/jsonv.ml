(** Minimal JSON values: printing and parsing, no dependencies.

    The observability subsystem speaks JSON in two dialects — JSONL
    metric/event lines and the Chrome [trace_event] array — and the
    toolchain must be able to {e re-read} what it wrote (the trace
    checker, the test-suite's well-formedness properties).  This module
    is the shared vocabulary: a small value type, a serializer that only
    emits valid JSON (non-finite floats degrade to [null]), and a strict
    recursive-descent parser with a nesting-depth guard. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> (
    match Float.classify_float f with
    | FP_nan | FP_infinite ->
      (* not representable in JSON: degrade rather than emit junk *)
      Buffer.add_string b "null"
    | FP_zero | FP_normal | FP_subnormal ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.12g" f))
  | String s ->
    Buffer.add_char b '"';
    add_escaped b s;
    Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        add_escaped b k;
        Buffer.add_string b "\":";
        to_buffer b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  to_buffer b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let default_max_depth = 512

(* Duplicate object keys are deliberately preserved in [Obj] (source
   order); [member] resolves to the first binding.  The depth cap is the
   defense against adversarial nesting — the parser is recursive, so an
   unbounded [[[[… input would otherwise exhaust the stack. *)
let of_string ?(max_depth = default_max_depth) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    match v with Some v -> v | None -> fail "bad \\u escape"
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'; incr pos
          | '\\' -> Buffer.add_char b '\\'; incr pos
          | '/' -> Buffer.add_char b '/'; incr pos
          | 'b' -> Buffer.add_char b '\b'; incr pos
          | 'f' -> Buffer.add_char b '\012'; incr pos
          | 'n' -> Buffer.add_char b '\n'; incr pos
          | 'r' -> Buffer.add_char b '\r'; incr pos
          | 't' -> Buffer.add_char b '\t'; incr pos
          | 'u' ->
            incr pos;
            let cp = hex4 () in
            let u =
              if Uchar.is_valid cp then Uchar.of_int cp else Uchar.rep
            in
            Buffer.add_utf_8_uchar b u
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let is_num_char c =
      match c with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let lit = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec elements acc =
          let v = value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some '"' -> String (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after the value";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors (for the checker and the tests)                           *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let pp fm v = Fmt.string fm (to_string v)
