(** Minimal JSON values shared by the observability sinks and the
    trace/metrics checker.  Zero dependencies beyond [fmt]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact serialization.  Always valid JSON: control characters are
    escaped, NaN/infinite floats are emitted as [null]. *)

val to_buffer : Buffer.t -> t -> unit

val default_max_depth : int
(** The default nesting-depth cap, 512. *)

val of_string : ?max_depth:int -> string -> (t, string) result
(** Strict parser: exactly one value, no trailing bytes, nesting depth
    capped at [max_depth] (default {!default_max_depth}; adversarial
    inputs like [\[\[\[\[…] fail with a depth error instead of
    overflowing the stack).  Never raises.

    Duplicate object keys are {e preserved}: every [(key, value)] pair
    appears in [Obj], in source order, and {!member} returns the
    {e first} binding — RFC 8259 leaves the behavior undefined, so
    consumers that care must inspect the full pair list. *)

val member : string -> t -> t option
(** [member k v] is the value of field [k] when [v] is an object.  When
    the object carries duplicate keys, the first binding wins (see
    {!of_string}). *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option
(** [to_float_opt] accepts both [Int] and [Float]. *)

val pp : Format.formatter -> t -> unit
