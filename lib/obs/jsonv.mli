(** Minimal JSON values shared by the observability sinks and the
    trace/metrics checker.  Zero dependencies beyond [fmt]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact serialization.  Always valid JSON: control characters are
    escaped, NaN/infinite floats are emitted as [null]. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Strict parser: exactly one value, no trailing bytes, nesting depth
    capped.  Never raises. *)

val member : string -> t -> t option
(** [member k v] is the value of field [k] when [v] is an object. *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option
(** [to_float_opt] accepts both [Int] and [Float]. *)

val pp : Format.formatter -> t -> unit
