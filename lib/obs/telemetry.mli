(** Point-in-time telemetry snapshots of a metric registry, rendered
    as JSON ([chase-telemetry/1]) and as Prometheus-style text
    exposition.  Pure functions of the registry — callers snapshot
    under their own lock and format outside it. *)

val schema : string
(** ["chase-telemetry/1"]. *)

val build_id : string
(** Server build identity: version, compiler, backend. *)

val snapshot_json :
  ?extra:(string * Jsonv.t) list -> uptime_s:float -> Metrics.t -> Jsonv.t
(** The snapshot document: type/schema/build/uptime, any [extra]
    top-level fields (spool path, role, …), then [counters], [gauges]
    and [histograms] (count/sum/min/max/p50/p90/p99) arrays in the
    registry's deterministic (name, label) order. *)

val json : ?extra:(string * Jsonv.t) list -> uptime_s:float -> Metrics.t -> string

val prometheus :
  ?extra:(string * Jsonv.t) list -> uptime_s:float -> Metrics.t -> string
(** Text exposition: [# TYPE] lines, [chase_]-namespaced sanitized
    metric names, labels quoted and escaped, histograms as summaries
    with 0.5/0.9/0.99 quantiles plus [_sum]/[_count].  String-valued
    [extra] fields become labels on [chase_build_info]. *)
