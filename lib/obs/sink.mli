(** Event sinks: pluggable back-ends for the telemetry stream. *)

type args = (string * Jsonv.t) list

type event =
  | Span_begin of { name : string; ts : float; args : args }
  | Span_end of { name : string; ts : float }
  | Instant of { name : string; ts : float; args : args }
  | Series of { name : string; ts : float; values : (string * float) list }
      (** A sampled set of gauges, rendered as Chrome counter tracks. *)

type t = {
  emit : event -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

val null : t
(** Drops everything; all three closures are [ignore]. *)

val tee : t list -> t
(** Broadcast to several sinks. *)

val filter : (event -> bool) -> t -> t

val is_point : event -> bool
(** True for [Instant] and [Series] — the events a metrics stream
    wants; span begin/end are trace-file structure. *)

val jsonl : ?flush:(unit -> unit) -> (string -> unit) -> t
(** One JSON object per line with a ["type"] discriminator field
    (["begin"], ["end"], ["instant"], ["series"]). *)

val trace : ?flush:(unit -> unit) -> (string -> unit) -> t
(** Chrome [trace_event] JSON array (phases B/E/i/C, timestamps in
    microseconds) — loadable in Perfetto or about:tracing.  [close]
    terminates the array; an empty stream still closes to valid
    JSON. *)
