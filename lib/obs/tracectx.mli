(** Distributed trace context: id minting, the wire form carried in
    protocol frames, per-process JSONL span shards, and the offline
    merge into one Chrome-trace file.

    Doctrine: {e propagate ids, ship spans, merge offline}.  A request
    carries only the compact context string across process boundaries;
    each process writes spans to its own local shard with absolute
    wall-clock timestamps; [chasec trace-merge] joins shards by trace
    id after the fact.  The shard writer never raises and never blocks
    on a sick sink — it counts drops instead. *)

type t = {
  trace : string;  (** 16 lowercase hex digits naming the request tree *)
  span : string;  (** 16 lowercase hex digits naming the current span *)
}

val genesis : unit -> t
(** A fresh trace with its root span — minted by the client. *)

val child : t -> t
(** Same trace, fresh span id: the callee's span, parented by whoever
    held the input context. *)

val fresh_id : unit -> string
(** A bare 16-hex-digit id from the process-wide splitmix64 stream. *)

val is_hex_id : string -> bool

val to_string : t -> string
(** ["<trace>-<span>"] — the 33-byte wire form. *)

val of_string : string -> t option
(** Strict parse of the wire form; [None] on anything malformed. *)

val now_us : unit -> float
(** Absolute wall-clock microseconds — the shard timestamp base, so
    same-host shards merge without clock alignment. *)

(** One span record as it appears on a shard line. *)
type record = {
  r_trace : string;
  r_span : string;
  r_parent : string option;
  r_name : string;
  r_proc : string;
  r_pid : int;
  r_ts_us : float;
  r_dur_us : float;
  r_args : (string * Jsonv.t) list;
}

val record_to_json : record -> Jsonv.t
val record_of_json : Jsonv.t -> (record, string) result

val parse_shard_line : string -> record option
(** One JSONL shard line → record; [None] on blank or malformed lines
    (a torn final line from a killed process is expected litter). *)

val merge_to_chrome : record list -> Jsonv.t
(** Join shard records into one Chrome trace-event array: [ph:"M"]
    process-name metadata plus one [ph:"X"] complete event per span,
    args carrying trace/span/parent ids, ordered by trace then start
    time. *)

(** The per-process shard writer: append-only JSONL, one flushed line
    per record, mutex-guarded, and {e never} raising — open or write
    failures (and armed [check] faults) turn it into a black hole that
    counts drops. *)
module Shard : sig
  type writer

  val open_ : ?check:(unit -> bool) -> proc:string -> string -> writer
  (** [open_ ~proc path] appends to [path]; [proc] labels every record
      (e.g. ["chasec"], ["chased"]).  [check] is a fault hook: when it
      returns [true] the next write fails as if the disk died — used
      by the sink back-pressure tests. *)

  val proc : writer -> string
  val path : writer -> string

  val drops : writer -> int
  (** Records lost to sink failure since open. *)

  val span :
    writer ->
    ctx:t ->
    ?parent:string ->
    name:string ->
    ts_us:float ->
    dur_us:float ->
    ?args:(string * Jsonv.t) list ->
    unit ->
    unit

  val instant :
    writer ->
    ctx:t ->
    ?parent:string ->
    name:string ->
    ts_us:float ->
    ?args:(string * Jsonv.t) list ->
    unit ->
    unit

  val write_record : writer -> record -> unit
  val close : writer -> unit
end
