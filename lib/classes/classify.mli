(** Recognizers for the TGD classes of the paper: SL ⊆ L ⊆ G.

    - {b guarded} (G): some body atom — the guard — contains every
      universally quantified variable;
    - {b linear} (L): the body is a single atom;
    - {b simple linear} (SL): linear with no repeated body variable.

    Also: {b full} (Datalog) rules and the {b single-head} restriction
    of §4. *)

open Chase_logic

type cls =
  | Simple_linear
  | Linear
  | Guarded
  | Unguarded

val cls_to_string : cls -> string
val pp_cls : Format.formatter -> cls -> unit

val guard_of : Tgd.t -> Atom.t option
(** The first body atom containing all body variables, if any. *)

val rule_is_guarded : Tgd.t -> bool

val best_guard_candidate : Tgd.t -> Atom.t option
(** The body atom covering the most body variables (first among ties);
    the guard itself when the rule is guarded. *)

val unguarded_witness : Tgd.t -> Term.t list
(** The body variables the best guard candidate does not cover, i.e. the
    reason the rule is unguarded; [[]] on guarded rules. *)

val rule_is_linear : Tgd.t -> bool
val rule_is_simple_linear : Tgd.t -> bool

val classify_rule : Tgd.t -> cls
(** The most specific class of a rule. *)

val classify : Tgd.t list -> cls
(** The most specific class containing every rule of the set. *)

val is_simple_linear : Tgd.t list -> bool
val is_linear : Tgd.t list -> bool
val is_guarded : Tgd.t list -> bool

val is_full : Tgd.t list -> bool
(** No existential variables anywhere (Datalog). *)

val is_single_head : Tgd.t list -> bool
(** Every rule has one head atom and no predicate heads two rules (§4). *)
