(** Recognizers for the TGD classes of the paper.

    The classes form the chain SL ⊆ L ⊆ G:

    - {b guarded} (G): some body atom — the guard — contains every
      universally quantified variable of the rule;
    - {b linear} (L): the body is a single atom (hence trivially guarded);
    - {b simple linear} (SL): linear, and no variable is repeated in the
      body atom.

    Also recognized: {b full} TGDs (no existential variable, i.e. Datalog
    rules possibly with multiple head atoms), and the {b single-head}
    restriction of §4 (each predicate occurs in the head of at most one
    rule, each rule has one head atom). *)

open Chase_logic

type cls =
  | Simple_linear
  | Linear
  | Guarded
  | Unguarded

let cls_to_string = function
  | Simple_linear -> "simple-linear"
  | Linear -> "linear"
  | Guarded -> "guarded"
  | Unguarded -> "unguarded"

let pp_cls fm c = Fmt.string fm (cls_to_string c)

(** [guard_of r] is the first body atom containing all body variables of
    [r], if any. *)
let guard_of r =
  let bvars = Tgd.body_vars r in
  List.find_opt (fun a -> Util.Sset.subset bvars (Atom.var_set a)) (Tgd.body r)

let rule_is_guarded r = Option.is_some (guard_of r)

(** The body atom covering the most body variables — the best guard
    candidate (first among ties); the guard itself on guarded rules. *)
let best_guard_candidate r =
  let bvars = Tgd.body_vars r in
  let coverage a = Util.Sset.cardinal (Util.Sset.inter bvars (Atom.var_set a)) in
  match Tgd.body r with
  | [] -> None
  | a :: rest ->
    let best, _ =
      List.fold_left
        (fun (best, c) a' ->
          let c' = coverage a' in
          if c' > c then (a', c') else (best, c))
        (a, coverage a) rest
    in
    Some best

(** The body variables left uncovered by the best guard candidate — why
    the rule is not guarded ([[]] on guarded rules). *)
let unguarded_witness r =
  if rule_is_guarded r then []
  else
    match best_guard_candidate r with
    | None -> []
    | Some a ->
      Util.Sset.diff (Tgd.body_vars r) (Atom.var_set a)
      |> Util.Sset.elements
      |> List.map (fun v -> Term.Var v)

let rule_is_linear r = match Tgd.body r with [ _ ] -> true | _ -> false

let rule_is_simple_linear r =
  match Tgd.body r with [ a ] -> Atom.no_repeated_var a | _ -> false

(** The most specific class of a single rule. *)
let classify_rule r =
  if rule_is_simple_linear r then Simple_linear
  else if rule_is_linear r then Linear
  else if rule_is_guarded r then Guarded
  else Unguarded

(** The most specific class containing every rule of the set. *)
let classify rules =
  let join c1 c2 =
    match c1, c2 with
    | Unguarded, _ | _, Unguarded -> Unguarded
    | Guarded, _ | _, Guarded -> Guarded
    | Linear, _ | _, Linear -> Linear
    | Simple_linear, Simple_linear -> Simple_linear
  in
  List.fold_left (fun acc r -> join acc (classify_rule r)) Simple_linear rules

let is_simple_linear rules = List.for_all rule_is_simple_linear rules
let is_linear rules = List.for_all rule_is_linear rules
let is_guarded rules = List.for_all rule_is_guarded rules

(** Full (Datalog) rules: no existential variables. *)
let is_full rules = List.for_all Tgd.is_full rules

(** Single-head rule sets in the sense of §4: every rule has exactly one
    head atom, and no predicate occurs in the head of two distinct rules. *)
let is_single_head rules =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun r ->
      match Tgd.head r with
      | [ a ] ->
        let p = Atom.pred a in
        if Hashtbl.mem seen p then false
        else begin
          Hashtbl.add seen p ();
          true
        end
      | _ -> false)
    rules
