(** Verdict explanation: the {!Chase_termination.Decide} dispatch with
    causal diagnostics recovered from the deciding procedure itself. *)

open Chase_logic
module Classify = Chase_classes.Classify
module Critical_linear = Chase_acyclicity.Critical_linear
module Rich = Chase_acyclicity.Rich
module Weak = Chase_acyclicity.Weak
module Variant = Chase_engine.Variant
module Verdict = Chase_termination.Verdict

type t = {
  verdict : Verdict.t;
  diagnostics : Diagnostic.t list;
}

let line_of_rule lrules idx =
  match List.nth_opt lrules idx with Some (_, line) -> Some line | None -> None

let label_of_rule lrules idx =
  match List.nth_opt lrules idx with
  | Some (r, _) -> Some (Diagnostic.rule_label idx r)
  | None -> None

(* ---- simple linear: the dangerous cycle IS the cause (Theorem 1) ---- *)

let simple_linear_cause ~variant rules =
  let graph, cycle =
    match (variant : Variant.t) with
    | Oblivious -> ("extended-dependency", Rich.check rules)
    | Semi_oblivious -> ("dependency", Weak.check rules)
    | Restricted -> invalid_arg "Explain: restricted has no graph cause"
  in
  match cycle with
  | None -> []
  | Some positions ->
    let msg =
      Fmt.str
        "the %s graph has a cycle through a special edge: %a — on simple \
         linear rules every such cycle is realizable (Theorem 1), so the \
         chase diverges"
        graph
        (Util.pp_list " -> " Chase_acyclicity.Dep_graph.pp_position)
        positions
    in
    [
      Diagnostic.make Diagnostic.W020
        ~witness:(Diagnostic.Position_cycle { graph; positions })
        msg;
    ]

(* ---- linear: confirmed pump of the critical procedure (Theorem 2) ---- *)

let pump_diagnostic lrules rules cert =
  let real = Critical_linear.realize rules cert in
  let steps =
    List.map
      (fun (tr : Critical_linear.transition) -> (tr.rule_idx, tr.head_idx))
      cert.Critical_linear.cycle
  in
  let rule_idxs = List.sort_uniq compare (List.map fst steps) in
  let first_idx = List.hd (List.map fst steps) in
  let msg =
    Fmt.str
      "confirmed pump through rule%s %a (replayed %d laps); one lap with \
       fresh nulls: %a"
      (match rule_idxs with [ _ ] -> "" | _ -> "s")
      (Util.pp_list ", " Fmt.string)
      (List.filter_map (label_of_rule lrules) rule_idxs)
      cert.Critical_linear.laps_checked
      (Util.pp_list " -> " Atom.pp)
      real.Critical_linear.facts
  in
  Diagnostic.make Diagnostic.W021
    ?line:(line_of_rule lrules first_idx)
    ?rule:(label_of_rule lrules first_idx)
    ~witness:
      (Diagnostic.Pump
         {
           start = Pattern.to_string cert.Critical_linear.start;
           steps;
           facts = real.Critical_linear.facts;
           substitution = Subst.to_list real.Critical_linear.first_subst;
           laps = cert.Critical_linear.laps_checked;
         })
    msg

(* The verdict construction mirrors {!Chase_termination.Linear.check}
   (same procedure names and answers); running the critical procedure
   once here yields both the verdict and the certificate. *)
let linear_explain ~standard ~variant lrules rules =
  let procedure, outcome =
    match (variant : Variant.t) with
    | Oblivious ->
      ("critical-rich-acyclicity", Critical_linear.check_oblivious ~standard rules)
    | Semi_oblivious ->
      ( "critical-weak-acyclicity",
        Critical_linear.check_semi_oblivious ~standard rules )
    | Restricted -> invalid_arg "Explain: restricted is not Theorem 2 territory"
  in
  match outcome with
  | Critical_linear.Terminating ->
    {
      verdict =
        Verdict.terminates ~procedure
          ~evidence:
            "no productive lasso in the pattern-transition system, and the \
             chase of the critical instance closes";
      diagnostics = [];
    }
  | Critical_linear.Inconclusive msg ->
    { verdict = Verdict.unknown ~procedure ~evidence:msg; diagnostics = [] }
  | Critical_linear.Non_terminating cert ->
    {
      verdict =
        Verdict.diverges ~procedure
          ~evidence:
            (Fmt.str "confirmed pump (%d laps replayed): %a"
               cert.Critical_linear.laps_checked
               (Critical_linear.pp_certificate rules)
               cert);
      diagnostics = [ pump_diagnostic lrules rules cert ];
    }

(* ---- guarded: recurring cloud type along a guard chain (Theorem 4) ---- *)

let guarded_cause ~standard ~budget ~variant rules =
  let open Chase_engine in
  let crit = Critical.of_rules ~standard rules in
  let config = { Engine.variant; limits = Limits.of_budget budget } in
  let result = Engine.run ~config rules (Instance.to_list crit) in
  match Chase_termination.Guarded.find_pump result with
  | None -> []
  | Some pump ->
    let occurrences = pump.Chase_termination.Guarded.occurrences in
    let chain_length = pump.Chase_termination.Guarded.chain_length in
    let shown = List.filteri (fun i _ -> i < 4) occurrences in
    let msg =
      Fmt.str
        "recurring cloud type along one guard chain of the critical \
         instance (%d occurrences, chain length %d): %a%s — the branch is \
         self-similar, so the chase diverges (Theorem 4)"
        (List.length occurrences)
        chain_length
        (Util.pp_list " -> " Atom.pp)
        shown
        (if List.length occurrences > 4 then ", ..." else "")
    in
    [
      Diagnostic.make Diagnostic.W021
        ~witness:(Diagnostic.Guard_chain { occurrences; chain_length })
        msg;
    ]

(* ---- the front door ---- *)

let check ?(standard = true) ?(budget = Chase_termination.Guarded.default_budget)
    ~variant lrules =
  let rules = List.map fst lrules in
  match (variant : Variant.t) with
  | Restricted ->
    {
      verdict = Chase_termination.Decide.check ~standard ~budget ~variant rules;
      diagnostics = [];
    }
  | Oblivious | Semi_oblivious -> (
    match Classify.classify rules with
    | Classify.Simple_linear ->
      let verdict = Chase_termination.Sl.check ~variant rules in
      let diagnostics =
        if Verdict.is_diverging verdict then simple_linear_cause ~variant rules
        else []
      in
      { verdict; diagnostics }
    | Classify.Linear -> linear_explain ~standard ~variant lrules rules
    | Classify.Guarded ->
      let verdict =
        Chase_termination.Guarded.check ~standard ~budget ~variant rules
      in
      let diagnostics =
        if Verdict.is_diverging verdict then
          guarded_cause ~standard ~budget ~variant rules
        else []
      in
      { verdict; diagnostics }
    | Classify.Unguarded ->
      {
        verdict = Chase_termination.Decide.check ~standard ~budget ~variant rules;
        diagnostics = [];
      })
