(** The verdict explainer: run the termination front door and surface the
    {e cause} of a non-termination answer as diagnostics with
    machine-checkable witnesses.

    The dispatch mirrors {!Chase_termination.Decide.check} exactly — same
    classification, same procedures, same budgets — so the verdict here
    is the verdict the [termination] CLI prints.  What is added is the
    causal reading:

    - simple linear, diverging: the dangerous cycle of the (extended)
      dependency graph as a [W020] — on simple linear rules every such
      cycle is realizable (Theorem 1), which is why [W020] explains a
      verdict rather than merely flagging a risk;
    - linear, diverging: the confirmed pump of the critical-instance
      procedure (Theorem 2) as a [W021], with one lap replayed into a
      concrete fact chain and its realizing substitution
      ({!Chase_acyclicity.Critical_linear.realize});
    - guarded, diverging: the recurring cloud type along a guard chain
      (Theorem 4) as a [W021] with a guard-chain witness;
    - anything else (terminating, unknown, unguarded, restricted): the
      verdict alone — no diagnostic is fabricated without a witness.

    Consequently a [Diverges] answer for a (simple) linear or guarded set
    always comes with exactly one warning whose witness realizes it, and
    a [Terminates]/[Unknown] answer comes with none — the agreement
    property the test suite checks over seeded rule sets. *)

open Chase_logic

type t = {
  verdict : Chase_termination.Verdict.t;
  diagnostics : Diagnostic.t list;
}

val check :
  ?standard:bool ->
  ?budget:int ->
  variant:Chase_engine.Variant.t ->
  (Tgd.t * int) list ->
  t
(** [standard] (default true) includes the constants 0, 1 in the critical
    instance; [budget] bounds the guarded forest search (default
    {!Chase_termination.Guarded.default_budget}). *)
