(** Safe stratification: condense the Σ-flow may-trigger relation and
    require weak acyclicity within each component. *)

module Flow = Chase_flow.Flow

type t = {
  strata : int list list;
  stratum_of : int array;
  cyclic : int list option;
}

let compute rules =
  let flow = Flow.build rules in
  let arr = Flow.rules flow in
  let strata = Flow.strata flow in
  let cyclic =
    List.find_opt
      (fun group ->
        not
          (Chase_acyclicity.Weak.is_weakly_acyclic
             (List.map (fun i -> arr.(i)) group)))
      strata
  in
  { strata; stratum_of = Flow.stratum_of flow; cyclic }

let is_safe rules = (compute rules).cyclic = None
