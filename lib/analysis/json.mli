(** A minimal JSON tree and printer — just enough for the [--format=json]
    renderer of the diagnostics engine, so the library adds no external
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Compact (single-line) rendering with proper string escaping. *)

val to_string : t -> string
