(** Σ-flow: the shared position-dataflow substrate over rule sets.

    One analysis framework, three consumers (DESIGN.md §3.11):

    - the {e termination} layer builds super-weak acyclicity
      ({!Chase_acyclicity.Super_weak}) and safe stratification
      ({!Chase_strata.Strata}) on top of it;
    - the {e lint} layer renders its summary through [lint --analyze];
    - the {e engine} consumes the same may-trigger idea in its
      trigger-relevance index ({!Chase_engine.Relevance}).

    The framework computes, for a rule set Σ:

    - the {e predicate-position} universe and the {e affected-position}
      lattice (Calì–Gottlob–Kifer): positions that can ever hold a
      labelled null during any chase of Σ;
    - Marnette-style {e places} — occurrences of a variable at one
      argument position of one body or head atom — with place
      unification (same position index, atoms syntactically unifiable,
      variable spaces renamed apart, constants rigid) and the
      [Move] closure tracking where the nulls invented for an
      existential variable can travel;
    - two inter-rule relations: [fires] (a head atom of R unifies with
      a body atom of R' — R's output can feed R''s input, refined by
      position/constant compatibility) and [null_edges] (a null
      invented by R can reach {e every} body occurrence of a frontier
      variable of R' and so cause R' to invent a fresh null — the
      super-weak-acyclicity trigger relation).

    All relations are deliberate over-approximations: more edges mean
    strictly weaker sufficient conditions downstream, never unsound
    ones.  This library sits below the acyclicity layer (it depends
    only on the logic substrate), so every layer above — engine,
    acyclicity, termination, analysis — can consume it. *)

open Chase_logic

type position = string * int
(** A predicate-position: (predicate, 0-based argument index). *)

module Pos_set : Set.S with type elt = position

type side =
  | Body
  | Head

type place = {
  rule : int;  (** rule index in input order *)
  side : side;
  atom : int;  (** atom index within that side, in rule order *)
  pos : int;  (** 0-based argument position *)
}
(** One argument position of one atom occurrence of one rule. *)

type null_edge = {
  src : int;  (** the rule inventing the null *)
  dst : int;  (** the rule the null can re-trigger *)
  existential : string;  (** the existential variable of [src] *)
  frontier : string;  (** the frontier variable of [dst] it feeds *)
  landing : position;  (** a head position of [existential] — where the
                           invented null first lands *)
}
(** An edge of the super-weak-acyclicity trigger relation. *)

type t

val build : Tgd.t list -> t
(** Analyze a rule set.  Total: never raises, even on rule sets a
    schema check would reject (positions are keyed by (pred, index), so
    arity clashes just widen the universe). *)

val rules : t -> Tgd.t array
val positions : t -> position list
(** The position universe, sorted. *)

val affected : t -> position list
(** The affected positions, sorted: existential landing sites closed
    under frontier-variable propagation (a head position of x joins
    when every body position of x is already affected). *)

val affected_set : t -> Pos_set.t

val place_atom : t -> place -> Atom.t
val place_position : t -> place -> position
val pp_place : t -> Format.formatter -> place -> unit
(** Renders as [pred[i]@rule#k:body] — stable, witness-friendly. *)

val places_of_var : t -> rule:int -> side -> string -> place list
(** The places where a variable occurs on one side of a rule. *)

val place_unifies : t -> place -> place -> bool
(** [place_unifies t p q] — same argument position and the two atom
    occurrences unify (variable spaces kept apart; constants only unify
    with themselves; existential variables are treated as plain
    variables, a sound over-approximation of skolem-term unification). *)

val move : t -> place list -> place list
(** Marnette's [Move]: the least superset [P] of the given head places
    closed under — for every rule σ and frontier variable x of σ, if
    every body place of x unifies with some place of [P], then the head
    places of x join [P]. *)

val fires : t -> (int * int) list
(** The may-trigger relation, deduplicated and sorted: (r, r') when
    some head atom of rule r unifies with some body atom of rule r'. *)

val null_edges : t -> null_edge list
(** The super-weak-acyclicity trigger relation: (σ, σ') when a null
    invented for an existential of σ can reach every body occurrence of
    a frontier variable of σ' (via [move]), making σ' invent nulls in
    turn.  Acyclicity of this relation is checked by
    {!Chase_acyclicity.Super_weak}. *)

val strata : t -> int list list
(** The condensation of [fires]: rule indices grouped into strongly
    connected components, in topological order (producers before
    consumers), ascending within each stratum.  Rules in stratum [k]
    can only be (re-)triggered by rules in strata [<= k]. *)

val stratum_of : t -> int array
(** Per-rule stratum index into {!strata}. *)

val pp_summary : Format.formatter -> t -> unit
(** A short human summary: strata / affected positions / edge counts. *)
