(** Safe rule stratification: weak acyclicity per stratum.

    The Σ-flow may-trigger relation ([Flow.fires]) is condensed into
    strongly connected components; the components, in topological
    order, are the {e strata}.  A rule in stratum [k] can only be
    (re-)triggered by rules in strata [<= k] — there are no back
    edges — so if every stratum's rule subset is weakly acyclic on its
    own, the semi-oblivious chase terminates on every database: by
    induction along the strata, each stratum saturates over the finite
    output of its predecessors, and a WA subset chased over a finite
    instance is finite.  (Sound for the semi-oblivious and restricted
    chases; not for the oblivious one, where even WA is unsound.)

    This is a c-stratification-style condition with a deliberately
    coarse, purely syntactic edge relation: over-approximated edges
    merge components, which only strengthens the per-stratum demand —
    never an unsound verdict. *)

open Chase_logic

type t = {
  strata : int list list;
      (** rule indices grouped by stratum, topological order,
          ascending within each stratum *)
  stratum_of : int array;  (** per-rule stratum index *)
  cyclic : int list option;
      (** the first stratum (in order) whose rule subset is not weakly
          acyclic; [None] when the set is safely stratified *)
}

val compute : Tgd.t list -> t

val is_safe : Tgd.t list -> bool
(** Every stratum weakly acyclic — the chase terminates (semi-oblivious
    and below) on every database. *)
