(** Per-rule hygiene passes.

    - [W010] unguarded-rule: no single body atom covers every body
      variable; the witness names the uncovered variables (via
      {!Chase_classes.Classify.unguarded_witness}) and the best guard
      candidate.
    - [I031] subsumed-rule: a rule logically implied by another — its
      body is an instance-preserving specialization and its head adds
      nothing.  Exact duplicates (up to variable renaming) are the
      degenerate case; among mutually subsuming rules only the later one
      is flagged.
    - [I032] unused-existential: an existential variable all of whose
      landing predicates appear in no rule body, so the invented nulls
      are never read downstream. *)

open Chase_logic

val unguarded : (Tgd.t * int) list -> Diagnostic.t list
(** The [W010] pass. *)

val subsumed : (Tgd.t * int) list -> Diagnostic.t list
(** The [I031] pass. *)

val subsumes : Tgd.t -> Tgd.t -> Subst.t option
(** [subsumes r1 r2] is a substitution θ over the variables of [r1] with
    θ(body r1) ⊆ body r2 and θ(head r1) ⊆ head r2 (existentials of [r2]
    matched consistently), i.e. evidence that [r1 ⊨ r2]; exposed for the
    structural witness tests. *)

val unused_existentials :
  ?extra_consumers:Util.Sset.t -> (Tgd.t * int) list -> Diagnostic.t list
(** The [I032] pass.  [extra_consumers] adds predicates read outside the
    TGDs (EGD bodies, queries). *)

val check :
  ?extra_consumers:Util.Sset.t -> (Tgd.t * int) list -> Diagnostic.t list
(** All three passes. *)
