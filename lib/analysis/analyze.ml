(** The [--analyze] battery: Σ-flow summary + diagnostics. *)

module Flow = Chase_flow.Flow
module Strata = Chase_strata.Strata
module Super_weak = Chase_acyclicity.Super_weak
module Json = Chase_obs.Jsonv

type t = {
  flow : Flow.t;
  swa_cycle : Super_weak.hop list option;
  strata : Strata.t;
}

let run rules =
  {
    flow = Flow.build rules;
    swa_cycle = Super_weak.check rules;
    strata = Strata.compute rules;
  }

let label t i = Diagnostic.rule_label i (Flow.rules t.flow).(i)

let diagnostics t =
  let strata_diag =
    Diagnostic.make Diagnostic.I035
      ~witness:
        (Diagnostic.Strata_assignment
           { strata = t.strata.Strata.strata; cyclic = t.strata.Strata.cyclic })
      (match t.strata.Strata.cyclic with
      | None ->
        Fmt.str
          "safely stratified: %d strat%s, each weakly acyclic — the \
           semi-oblivious chase terminates on every database"
          (List.length t.strata.Strata.strata)
          (if List.length t.strata.Strata.strata = 1 then "um" else "a")
      | Some group ->
        Fmt.str "stratum {%s} is not weakly acyclic on its own"
          (String.concat ", " (List.map (label t) group)))
  in
  match t.swa_cycle with
  | None -> [ strata_diag ]
  | Some hops ->
    let cycle_diag =
      Diagnostic.make Diagnostic.I034
        ~witness:
          (Diagnostic.Trigger_cycle
             {
               rules = List.map (fun h -> h.Super_weak.rule) hops;
               places = List.map (fun h -> h.Super_weak.landing) hops;
             })
        (Fmt.str
           "not super-weakly acyclic: invented nulls can cycle through %s"
           (String.concat " -> "
              (List.map
                 (fun (h : Super_weak.hop) ->
                   let p, i = h.Super_weak.landing in
                   Fmt.str "%s (%s[%d])" (label t h.Super_weak.rule) p i)
                 hops)))
    in
    [ cycle_diag; strata_diag ]

let pp_human ?file fm t =
  let pp_prefix fm () =
    match file with None -> () | Some f -> Fmt.pf fm "%s: " f
  in
  Fmt.pf fm "%aanalysis: %a@." pp_prefix () Flow.pp_summary t.flow;
  List.iteri
    (fun k group ->
      Fmt.pf fm "%astratum %d: %s@." pp_prefix () (k + 1)
        (String.concat " " (List.map (label t) group)))
    t.strata.Strata.strata;
  (match Flow.affected t.flow with
  | [] -> ()
  | affected ->
    Fmt.pf fm "%aaffected: %s@." pp_prefix ()
      (String.concat ", "
         (List.map (fun (p, i) -> Fmt.str "%s[%d]" p i) affected)));
  (match Flow.fires t.flow with
  | [] -> ()
  | edges ->
    Fmt.pf fm "%amay-trigger: %s@." pp_prefix ()
      (String.concat ", "
         (List.map (fun (i, j) -> Fmt.str "%s -> %s" (label t i) (label t j))
            edges)));
  Fmt.pf fm "%asuper-weak-acyclic: %s@." pp_prefix ()
    (match t.swa_cycle with
    | None -> "yes"
    | Some hops ->
      Fmt.str "no (cycle: %s)"
        (String.concat " -> "
           (List.map (fun (h : Super_weak.hop) -> label t h.Super_weak.rule)
              hops)));
  Fmt.pf fm "%astratified: %s@." pp_prefix ()
    (match t.strata.Strata.cyclic with
    | None -> "yes"
    | Some group ->
      Fmt.str "no (stratum {%s})"
        (String.concat ", " (List.map (label t) group)))

let to_json t =
  let ints is = Json.List (List.map (fun i -> Json.Int i) is) in
  let position (p, i) =
    Json.Obj [ ("pred", Json.String p); ("index", Json.Int i) ]
  in
  Json.Obj
    [
      ( "strata",
        Json.List (List.map (fun g -> ints g) t.strata.Strata.strata) );
      ("affected", Json.List (List.map position (Flow.affected t.flow)));
      ( "may_trigger",
        Json.List
          (List.map
             (fun (i, j) ->
               Json.Obj [ ("from", Json.Int i); ("to", Json.Int j) ])
             (Flow.fires t.flow)) );
      ("null_flow_edges", Json.Int (List.length (Flow.null_edges t.flow)));
      ("super_weak_acyclic", Json.Bool (t.swa_cycle = None));
      ( "trigger_cycle",
        match t.swa_cycle with
        | None -> Json.Null
        | Some hops ->
          Json.List
            (List.map
               (fun (h : Super_weak.hop) ->
                 Json.Obj
                   [
                     ("rule", Json.Int h.Super_weak.rule);
                     ("existential", Json.String h.Super_weak.existential);
                     ("landing", position h.Super_weak.landing);
                   ])
               hops) );
      ("stratified", Json.Bool (t.strata.Strata.cyclic = None));
      ( "cyclic_stratum",
        match t.strata.Strata.cyclic with
        | None -> Json.Null
        | Some g -> ints g );
    ]
