(** Structured diagnostics for Σ-lint: stable codes, severities, source
    spans, human messages and machine-readable witnesses.  See the
    interface for the catalogue of codes. *)

open Chase_logic
module Json = Chase_obs.Jsonv

type severity =
  | Error
  | Warning
  | Info

type code =
  | E001
  | W010
  | W020
  | W021
  | I030
  | I031
  | I032
  | I033
  | I034
  | I035

let code_id = function
  | E001 -> "E001"
  | W010 -> "W010"
  | W020 -> "W020"
  | W021 -> "W021"
  | I030 -> "I030"
  | I031 -> "I031"
  | I032 -> "I032"
  | I033 -> "I033"
  | I034 -> "I034"
  | I035 -> "I035"

let code_name = function
  | E001 -> "arity-clash"
  | W010 -> "unguarded-rule"
  | W020 -> "special-edge-cycle"
  | W021 -> "realizable-cycle"
  | I030 -> "unreachable-predicate"
  | I031 -> "subsumed-rule"
  | I032 -> "unused-existential"
  | I033 -> "dead-rule"
  | I034 -> "trigger-cycle"
  | I035 -> "stratification"

let severity_of_code = function
  | E001 -> Error
  | W010 | W020 | W021 -> Warning
  | I030 | I031 | I032 | I033 | I034 | I035 -> Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let all_codes = [ E001; W010; W020; W021; I030; I031; I032; I033; I034; I035 ]

type witness =
  | Arity_uses of {
      pred : string;
      uses : (int * int) list;
    }
  | Uncovered_vars of {
      rule : int;
      vars : Term.t list;
      candidate : Atom.t option;
    }
  | Position_cycle of {
      graph : string;
      positions : (string * int) list;
    }
  | Pump of {
      start : string;
      steps : (int * int) list;
      facts : Atom.t list;
      substitution : (string * Term.t) list;
      laps : int;
    }
  | Guard_chain of {
      occurrences : Atom.t list;
      chain_length : int;
    }
  | Unreachable of {
      pred : string;
      used_by : int list;
    }
  | Subsumed_by of {
      rule : int;
      by : int;
      substitution : (string * Term.t) list;
    }
  | Unused_existential of {
      rule : int;
      var : string;
      positions : (string * int) list;
    }
  | Dead_rule of {
      rule : int;
      missing : string list;
    }
  | Trigger_cycle of {
      rules : int list;
      places : (string * int) list;
    }
  | Strata_assignment of {
      strata : int list list;
      cyclic : int list option;
    }

type t = {
  code : code;
  severity : severity;
  line : int option;
  rule : string option;
  message : string;
  witness : witness;
}

(** Display label of the [idx]-th rule: its name, or a positional
    ["rule#k"] (1-based, as the engine's exhaustion diagnostics). *)
let rule_label idx r =
  match Tgd.name r with "" -> Fmt.str "rule#%d" (idx + 1) | n -> n

let make code ?line ?rule ~witness message =
  { code; severity = severity_of_code code; line; rule; message; witness }

let is_error d = d.severity = Error
let is_warning d = d.severity = Warning

let compare_for_report d1 d2 =
  let line d = Option.value d.line ~default:max_int in
  let c = Int.compare (line d1) (line d2) in
  if c <> 0 then c
  else
    let c = String.compare (code_id d1.code) (code_id d2.code) in
    if c <> 0 then c else String.compare d1.message d2.message

let pp ?file fm d =
  (match file, d.line with
  | Some f, Some ln -> Fmt.pf fm "%s:%d: " f ln
  | Some f, None -> Fmt.pf fm "%s: " f
  | None, Some ln -> Fmt.pf fm "line %d: " ln
  | None, None -> ());
  Fmt.pf fm "%s[%s] %s"
    (severity_to_string d.severity)
    (code_id d.code) d.message

(* --- JSON rendering ------------------------------------------------ *)

let json_term t = Json.String (Term.to_string t)
let json_atom a = Json.String (Atom.to_string a)

let json_position (p, i) = Json.Obj [ ("pred", Json.String p); ("index", Json.Int i) ]

let json_subst bindings =
  Json.Obj (List.map (fun (v, t) -> (v, json_term t)) bindings)

let witness_to_json = function
  | Arity_uses { pred; uses } ->
    Json.Obj
      [
        ("kind", Json.String "arity-uses");
        ("pred", Json.String pred);
        ( "uses",
          Json.List
            (List.map
               (fun (arity, line) ->
                 Json.Obj [ ("arity", Json.Int arity); ("line", Json.Int line) ])
               uses) );
      ]
  | Uncovered_vars { rule; vars; candidate } ->
    Json.Obj
      [
        ("kind", Json.String "uncovered-variables");
        ("rule", Json.Int rule);
        ("variables", Json.List (List.map json_term vars));
        ( "candidate",
          match candidate with None -> Json.Null | Some a -> json_atom a );
      ]
  | Position_cycle { graph; positions } ->
    Json.Obj
      [
        ("kind", Json.String "position-cycle");
        ("graph", Json.String graph);
        ("positions", Json.List (List.map json_position positions));
      ]
  | Pump { start; steps; facts; substitution; laps } ->
    Json.Obj
      [
        ("kind", Json.String "pump");
        ("start", Json.String start);
        ( "steps",
          Json.List
            (List.map
               (fun (r, h) ->
                 Json.Obj [ ("rule", Json.Int r); ("head", Json.Int h) ])
               steps) );
        ("facts", Json.List (List.map json_atom facts));
        ("substitution", json_subst substitution);
        ("laps", Json.Int laps);
      ]
  | Guard_chain { occurrences; chain_length } ->
    Json.Obj
      [
        ("kind", Json.String "guard-chain");
        ("occurrences", Json.List (List.map json_atom occurrences));
        ("chain_length", Json.Int chain_length);
      ]
  | Unreachable { pred; used_by } ->
    Json.Obj
      [
        ("kind", Json.String "unreachable-predicate");
        ("pred", Json.String pred);
        ("used_by", Json.List (List.map (fun i -> Json.Int i) used_by));
      ]
  | Subsumed_by { rule; by; substitution } ->
    Json.Obj
      [
        ("kind", Json.String "subsumed-by");
        ("rule", Json.Int rule);
        ("by", Json.Int by);
        ("substitution", json_subst substitution);
      ]
  | Unused_existential { rule; var; positions } ->
    Json.Obj
      [
        ("kind", Json.String "unused-existential");
        ("rule", Json.Int rule);
        ("variable", Json.String var);
        ("positions", Json.List (List.map json_position positions));
      ]
  | Dead_rule { rule; missing } ->
    Json.Obj
      [
        ("kind", Json.String "dead-rule");
        ("rule", Json.Int rule);
        ("missing", Json.List (List.map (fun p -> Json.String p) missing));
      ]
  | Trigger_cycle { rules; places } ->
    Json.Obj
      [
        ("kind", Json.String "trigger-cycle");
        ("rules", Json.List (List.map (fun i -> Json.Int i) rules));
        ("places", Json.List (List.map json_position places));
      ]
  | Strata_assignment { strata; cyclic } ->
    Json.Obj
      [
        ("kind", Json.String "strata");
        ( "strata",
          Json.List
            (List.map
               (fun g -> Json.List (List.map (fun i -> Json.Int i) g))
               strata) );
        ( "cyclic",
          match cyclic with
          | None -> Json.Null
          | Some g -> Json.List (List.map (fun i -> Json.Int i) g) );
      ]

let to_json d =
  Json.Obj
    [
      ("code", Json.String (code_id d.code));
      ("name", Json.String (code_name d.code));
      ("severity", Json.String (severity_to_string d.severity));
      ("line", match d.line with None -> Json.Null | Some n -> Json.Int n);
      ("rule", match d.rule with None -> Json.Null | Some r -> Json.String r);
      ("message", Json.String d.message);
      ("witness", witness_to_json d.witness);
    ]
