(** The Σ-lint driver. *)

open Chase_logic
module Variant = Chase_engine.Variant
module Verdict = Chase_termination.Verdict
module Json = Chase_obs.Jsonv

type source = {
  rules : (Tgd.t * int) list;
  egds : (Egd.t * int) list;
  facts : (Atom.t * int) list;
}

let of_program (p : Parser.located_program) =
  { rules = p.Parser.lrules; egds = p.Parser.legds; facts = p.Parser.lfacts }

type report = {
  diagnostics : Diagnostic.t list;
  verdicts : (Variant.t * Verdict.t) list;
  analysis : Analyze.t option;
}

let dedup diags =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : Diagnostic.t) ->
      let key = (d.Diagnostic.code, d.Diagnostic.line, d.Diagnostic.message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    diags

let analyze ?(explain = []) ?(dataflow = false) ?standard ?budget src =
  match
    Schema_check.check ~rules:src.rules ~egds:src.egds ~facts:src.facts ()
  with
  | _ :: _ as errors ->
    (* Inconsistent schema: the deeper passes assume it away. *)
    { diagnostics = errors; verdicts = []; analysis = None }
  | [] ->
    let extra_consumers =
      List.fold_left
        (fun acc (e, _) ->
          List.fold_left
            (fun acc a -> Util.Sset.add (Atom.pred a) acc)
            acc (Egd.body e))
        Util.Sset.empty src.egds
    in
    let static =
      Rule_lint.check ~extra_consumers src.rules
      @ Graph_lint.reachability ~rules:src.rules ~facts:src.facts
    in
    let explained =
      List.map
        (fun variant ->
          let e = Explain.check ?standard ?budget ~variant src.rules in
          (e.Explain.diagnostics, (variant, e.Explain.verdict)))
        explain
    in
    let analysis =
      if dataflow then Some (Analyze.run (List.map fst src.rules)) else None
    in
    let flow_diags =
      match analysis with None -> [] | Some a -> Analyze.diagnostics a
    in
    {
      diagnostics =
        dedup
          (List.sort Diagnostic.compare_for_report
             (static @ flow_diags @ List.concat_map fst explained));
      verdicts = List.map snd explained;
      analysis;
    }

let count sev report =
  List.length
    (List.filter (fun d -> d.Diagnostic.severity = sev) report.diagnostics)

let errors = count Diagnostic.Error
let warnings = count Diagnostic.Warning
let infos = count Diagnostic.Info

let exit_code report =
  if errors report > 0 then 2 else if warnings report > 0 then 1 else 0

let summary report =
  let n = errors report and w = warnings report and i = infos report in
  if n + w + i = 0 then "clean"
  else
    let part count noun =
      if count = 0 then []
      else [ Fmt.str "%d %s%s" count noun (if count = 1 then "" else "s") ]
    in
    String.concat ", " (part n "error" @ part w "warning" @ part i "info")

let pp_human ?file fm report =
  let pp_prefix fm () =
    match file with None -> () | Some f -> Fmt.pf fm "%s: " f
  in
  List.iter (fun d -> Fmt.pf fm "%a@." (Diagnostic.pp ?file) d) report.diagnostics;
  (match report.analysis with
  | None -> ()
  | Some a -> Analyze.pp_human ?file fm a);
  List.iter
    (fun (variant, v) ->
      Fmt.pf fm "%averdict (%a): %s [%s]@." pp_prefix () Variant.pp variant
        (Verdict.answer_to_string v.Verdict.answer)
        v.Verdict.procedure)
    report.verdicts;
  Fmt.pf fm "%a%s@." pp_prefix () (summary report)

let to_json ?file report =
  let fields =
    (match file with None -> [] | Some f -> [ ("file", Json.String f) ])
    @ [
        ( "diagnostics",
          Json.List (List.map Diagnostic.to_json report.diagnostics) );
        ( "verdicts",
          Json.List
            (List.map
               (fun (variant, v) ->
                 Json.Obj
                   [
                     ("variant", Json.String (Variant.to_string variant));
                     ( "answer",
                       Json.String (Verdict.answer_to_string v.Verdict.answer) );
                     ("procedure", Json.String v.Verdict.procedure);
                     ("evidence", Json.String v.Verdict.evidence);
                   ])
               report.verdicts) );
        ( "summary",
          Json.Obj
            [
              ("errors", Json.Int (errors report));
              ("warnings", Json.Int (warnings report));
              ("infos", Json.Int (infos report));
            ] );
      ]
    @
    match report.analysis with
    | None -> []
    | Some a -> [ ("analysis", Analyze.to_json a) ]
  in
  Json.Obj fields
