(** The Σ-lint driver: run the batteries over a parsed program and render
    the findings.

    The {e default battery} is purely static and cheap: schema/arity
    consistency ([E001]), rule hygiene ([W010], [I031], [I032]) and, when
    the program carries a database, reachability ([I030], [I033]).  The
    {e explain battery} ([W020], [W021]) additionally runs the
    termination front door per requested chase variant and attaches the
    causal witness of every divergence verdict — it is opt-in because a
    deliberately diverging rule set (half the interesting corpus) is not
    thereby ill-formed.

    An [E001] is a hard stop: the deeper passes assume a consistent
    schema, so when the schema check fails only its diagnostics are
    reported. *)

open Chase_logic

type source = {
  rules : (Tgd.t * int) list;
  egds : (Egd.t * int) list;
  facts : (Atom.t * int) list;
}

val of_program : Parser.located_program -> source

type report = {
  diagnostics : Diagnostic.t list;  (** sorted by {!Diagnostic.compare_for_report} *)
  verdicts : (Chase_engine.Variant.t * Chase_termination.Verdict.t) list;
      (** one per explained variant, in request order *)
  analysis : Analyze.t option;
      (** the Σ-flow summary, when the analyze battery ran *)
}

val analyze :
  ?explain:Chase_engine.Variant.t list ->
  ?dataflow:bool ->
  ?standard:bool ->
  ?budget:int ->
  source ->
  report
(** Run the default battery, plus the explain battery for each variant in
    [explain] (default none), plus — when [dataflow] (default false) —
    the Σ-flow analyze battery ([I034]/[I035] and the
    {!field-report.analysis} summary).  [standard]/[budget] parameterize
    the explain battery as in {!Explain.check}. *)

val errors : report -> int
val warnings : report -> int
val infos : report -> int

val exit_code : report -> int
(** 2 when any error, 1 when any warning, 0 otherwise — infos never
    gate. *)

val summary : report -> string
(** ["clean"], or e.g. ["1 error, 2 warnings, 1 info"]. *)

val pp_human : ?file:string -> Format.formatter -> report -> unit
(** One line per diagnostic, one line per explained verdict, and a
    closing summary line. *)

val to_json : ?file:string -> report -> Chase_obs.Jsonv.t
