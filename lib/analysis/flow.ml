(** Σ-flow: position-dataflow analysis over rule sets.  See the
    interface for the framework's vocabulary; implementation notes:

    - {e unification} is first-order unification of two atoms whose
      variable spaces are kept apart (no function symbols, so a
      union-find over tagged variables with one rigid constant per
      class suffices);
    - the head-occurrence × body-occurrence unifiability matrix is
      precomputed once and shared by [fires], [place_unifies] and the
      [move] fixpoint;
    - every relation over-approximates: when in doubt an edge is
      {e added}, which only ever weakens the sufficient conditions
      built on top. *)

open Chase_logic

type position = string * int

module Pos_set = Set.Make (struct
  type t = position

  let compare (p1, i1) (p2, i2) =
    let c = String.compare p1 p2 in
    if c <> 0 then c else Int.compare i1 i2
end)

type side =
  | Body
  | Head

type place = {
  rule : int;
  side : side;
  atom : int;
  pos : int;
}

type null_edge = {
  src : int;
  dst : int;
  existential : string;
  frontier : string;
  landing : position;
}

module Place_set = Set.Make (struct
  type t = place

  let compare = compare
end)

(* First-order unifiability of two atoms with disjoint variable spaces
   (tags 0/1).  Union-find over tagged variables; each class carries at
   most one constant.  Rules never contain nulls ([Tgd.make] rejects
   them), so a [Null] argument is treated as unmatchable. *)
let unifiable a b =
  Atom.pred a = Atom.pred b
  && Atom.arity a = Atom.arity b
  &&
  let parent : (int * string, int * string) Hashtbl.t = Hashtbl.create 8 in
  let const : (int * string, string) Hashtbl.t = Hashtbl.create 8 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None -> v
    | Some p ->
      let r = find p in
      Hashtbl.replace parent v r;
      r
  in
  let ok = ref true in
  let bind_const v c =
    let rv = find v in
    match Hashtbl.find_opt const rv with
    | Some c' -> if c' <> c then ok := false
    | None -> Hashtbl.replace const rv c
  in
  let union v w =
    let rv = find v and rw = find w in
    if rv <> rw then begin
      (match (Hashtbl.find_opt const rv, Hashtbl.find_opt const rw) with
      | Some c1, Some c2 when c1 <> c2 -> ok := false
      | Some c, None -> Hashtbl.replace const rw c
      | _ -> ());
      Hashtbl.replace parent rv rw
    end
  in
  Array.iteri
    (fun i ta ->
      if !ok then
        match (ta, Atom.arg b i) with
        | Term.Const c1, Term.Const c2 -> if c1 <> c2 then ok := false
        | Term.Var v, Term.Const c -> bind_const (0, v) c
        | Term.Const c, Term.Var w -> bind_const (1, w) c
        | Term.Var v, Term.Var w -> union (0, v) (1, w)
        | Term.Null _, _ | _, Term.Null _ -> ok := false)
    (Atom.args a);
  !ok

type t = {
  rules : Tgd.t array;
  bodies : Atom.t array array;
  heads : Atom.t array array;
  positions : position list;
  affected : Pos_set.t;
  unif : (int * int * int * int, unit) Hashtbl.t;
      (* (rule, head atom idx, rule', body atom idx) present iff the two
         occurrences are unifiable *)
  frontier_places : (int * string * place list * place list) list;
      (* per (rule, frontier var): In = body places, Out = head places *)
  fires : (int * int) list;
  null_edges : null_edge list;
  strata : int list list;
  stratum_of : int array;
}

let rules t = t.rules
let positions t = t.positions
let affected_set t = t.affected
let affected t = Pos_set.elements t.affected
let fires t = t.fires
let null_edges t = t.null_edges
let strata t = t.strata
let stratum_of t = t.stratum_of

let place_atom t p =
  (match p.side with Body -> t.bodies | Head -> t.heads).(p.rule).(p.atom)

let place_position t p = (Atom.pred (place_atom t p), p.pos)

let pp_place t fm p =
  Fmt.pf fm "%s[%d]@@rule#%d:%s"
    (Atom.pred (place_atom t p))
    p.pos (p.rule + 1)
    (match p.side with Body -> "body" | Head -> "head")

let places_of atoms rule side x =
  let acc = ref [] in
  Array.iteri
    (fun ai a ->
      Array.iteri
        (fun i arg -> if Term.equal arg (Term.Var x) then
            acc := { rule; side; atom = ai; pos = i } :: !acc)
        (Atom.args a))
    atoms;
  List.rev !acc

let places_of_var t ~rule side x =
  places_of (match side with Body -> t.bodies | Head -> t.heads).(rule) rule
    side x

(* Place unification: same argument index and the atom occurrences unify
   (the precomputed matrix answers head×body lookups; the rare remaining
   side combinations recompute). *)
let place_unifies t p q =
  p.pos = q.pos
  &&
  match (p.side, q.side) with
  | Head, Body -> Hashtbl.mem t.unif (p.rule, p.atom, q.rule, q.atom)
  | Body, Head -> Hashtbl.mem t.unif (q.rule, q.atom, p.rule, p.atom)
  | _ -> unifiable (place_atom t p) (place_atom t q)

let move t places =
  let p = ref (Place_set.of_list places) in
  let reaches q = Place_set.exists (fun pl -> place_unifies t pl q) !p in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (_, _, inp, outp) ->
        if
          inp <> []
          && List.for_all reaches inp
          && List.exists (fun o -> not (Place_set.mem o !p)) outp
        then begin
          List.iter (fun o -> p := Place_set.add o !p) outp;
          changed := true
        end)
      t.frontier_places
  done;
  Place_set.elements !p

(* Tarjan SCC over 0..n-1; returns (component id per node, #components)
   with ids in reverse topological order (sinks first). *)
let scc_of ~n succs =
  let index = Array.make n (-1)
  and low = Array.make n 0
  and onstack = Array.make n false
  and comp = Array.make n (-1) in
  let stack = ref [] and counter = ref 0 and ncomp = ref 0 in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    onstack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if onstack.(w) then low.(v) <- min low.(v) index.(w))
      (succs v);
    if low.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | w :: rest ->
          stack := rest;
          onstack.(w) <- false;
          comp.(w) <- !ncomp;
          if w <> v then pop ()
        | [] -> ()
      in
      pop ();
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  (comp, !ncomp)

let build rule_list =
  let rules = Array.of_list rule_list in
  let n = Array.length rules in
  let bodies = Array.map (fun r -> Array.of_list (Tgd.body r)) rules in
  let heads = Array.map (fun r -> Array.of_list (Tgd.head r)) rules in
  (* position universe: every (pred, index) that occurs anywhere *)
  let positions =
    Array.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc (p, ar) ->
            let rec add acc i =
              if i >= ar then acc else add (Pos_set.add (p, i) acc) (i + 1)
            in
            add acc 0)
          acc (Tgd.predicates r))
      Pos_set.empty rules
  in
  (* affected positions: existential landing sites, closed under
     frontier propagation (all body occurrences affected => head
     occurrences affected) *)
  let pos_of_var atoms x =
    Array.fold_left
      (fun acc a ->
        List.fold_left
          (fun acc i -> Pos_set.add (Atom.pred a, i) acc)
          acc
          (Atom.positions_of_term a (Term.Var x)))
      Pos_set.empty atoms
  in
  let affected = ref Pos_set.empty in
  Array.iteri
    (fun ri r ->
      Util.Sset.iter
        (fun z -> affected := Pos_set.union (pos_of_var heads.(ri) z) !affected)
        (Tgd.existentials r))
    rules;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun ri r ->
        Util.Sset.iter
          (fun x ->
            let bp = pos_of_var bodies.(ri) x in
            if (not (Pos_set.is_empty bp)) && Pos_set.subset bp !affected then begin
              let hp = pos_of_var heads.(ri) x in
              if not (Pos_set.subset hp !affected) then begin
                affected := Pos_set.union hp !affected;
                changed := true
              end
            end)
          (Tgd.frontier r))
      rules
  done;
  (* head-occurrence × body-occurrence unifiability matrix *)
  let unif = Hashtbl.create 64 in
  Array.iteri
    (fun ri _ ->
      Array.iteri
        (fun ai a ->
          Array.iteri
            (fun rj _ ->
              Array.iteri
                (fun bi b ->
                  if unifiable a b then
                    Hashtbl.replace unif (ri, ai, rj, bi) ())
                bodies.(rj))
            rules)
        heads.(ri))
    rules;
  let frontier_places =
    Array.to_list
      (Array.mapi
         (fun ri r ->
           List.map
             (fun x ->
               ( ri,
                 x,
                 places_of bodies.(ri) ri Body x,
                 places_of heads.(ri) ri Head x ))
             (Util.Sset.elements (Tgd.frontier r)))
         rules)
    |> List.concat
  in
  (* the may-trigger relation straight off the matrix *)
  let fires =
    Hashtbl.fold (fun (ri, _, rj, _) () acc -> (ri, rj) :: acc) unif []
    |> List.sort_uniq compare
  in
  let t0 =
    {
      rules;
      bodies;
      heads;
      positions = Pos_set.elements positions;
      affected = !affected;
      unif;
      frontier_places;
      fires;
      null_edges = [];
      strata = [];
      stratum_of = Array.make n 0;
    }
  in
  (* super-weak trigger relation: one Move closure per existential *)
  let null_edges =
    Array.to_list
      (Array.mapi
         (fun ri r ->
           List.concat_map
             (fun z ->
               let out_z = places_of heads.(ri) ri Head z in
               match out_z with
               | [] -> []
               | first :: _ ->
                 let landing = place_position t0 first in
                 let m = move t0 out_z in
                 let mset = Place_set.of_list m in
                 let reaches q =
                   Place_set.exists (fun pl -> place_unifies t0 pl q) mset
                 in
                 List.filter_map
                   (fun (rj, x, inp, _) ->
                     if inp <> [] && List.for_all reaches inp then
                       Some
                         {
                           src = ri;
                           dst = rj;
                           existential = z;
                           frontier = x;
                           landing;
                         }
                     else None)
                   frontier_places)
             (Util.Sset.elements (Tgd.existentials r)))
         rules)
    |> List.concat
  in
  (* condensation of [fires], topological (producers first) *)
  let succs =
    let tbl = Array.make n [] in
    List.iter (fun (ri, rj) -> tbl.(ri) <- rj :: tbl.(ri)) fires;
    fun v -> tbl.(v)
  in
  let comp, ncomp = scc_of ~n succs in
  (* Tarjan numbers sinks first; strata want producers first *)
  let stratum_of = Array.map (fun c -> ncomp - 1 - c) comp in
  let groups = Array.make ncomp [] in
  for v = n - 1 downto 0 do
    groups.(stratum_of.(v)) <- v :: groups.(stratum_of.(v))
  done;
  { t0 with null_edges; strata = Array.to_list groups; stratum_of }

let pp_summary fm t =
  Fmt.pf fm "%d rules, %d strata, %d/%d affected positions, %d may-trigger \
             edges, %d null-flow edges"
    (Array.length t.rules) (List.length t.strata)
    (Pos_set.cardinal t.affected)
    (List.length t.positions) (List.length t.fires)
    (List.length t.null_edges)
