(** Schema/arity consistency across rules, EGDs and database ([E001]). *)

open Chase_logic
module Smap = Util.Smap

(* For each predicate, every arity in use with the line of its first
   use, in first-use order. *)
type uses = (int * int) list

let record (tbl : uses Smap.t ref) pred arity line =
  let old = Option.value (Smap.find_opt pred !tbl) ~default:[] in
  if not (List.mem_assoc arity old) then
    tbl := Smap.add pred (old @ [ (arity, line) ]) !tbl

let collect ~rules ~egds ~facts =
  let tbl = ref Smap.empty in
  List.iter
    (fun (r, line) ->
      List.iter (fun (p, n) -> record tbl p n line) (Tgd.predicates r))
    rules;
  List.iter
    (fun (e, line) ->
      List.iter
        (fun a -> record tbl (Atom.pred a) (Atom.arity a) line)
        (Egd.body e))
    egds;
  List.iter
    (fun (a, line) -> record tbl (Atom.pred a) (Atom.arity a) line)
    facts;
  !tbl

let pp_use fm (arity, line) = Fmt.pf fm "arity %d (line %d)" arity line

let check ~rules ?(egds = []) ~facts () =
  let tbl = collect ~rules ~egds ~facts in
  Smap.fold
    (fun pred uses acc ->
      match uses with
      | [] | [ _ ] -> acc
      | _ :: (_, clash_line) :: _ ->
        let msg =
          Fmt.str "predicate %s is used with clashing arities: %a" pred
            (Util.pp_list " vs " pp_use) uses
        in
        Diagnostic.make Diagnostic.E001 ~line:clash_line
          ~witness:(Diagnostic.Arity_uses { pred; uses })
          msg
        :: acc)
    tbl []
  |> List.sort Diagnostic.compare_for_report

let run ~rules ?(egds = []) ~facts () =
  match check ~rules ~egds ~facts () with
  | [] ->
    (* No clash: the exception-raising builders cannot fire. *)
    let s = ref Schema.empty in
    List.iter
      (fun (r, _) ->
        List.iter (fun (p, n) -> s := Schema.add_exn !s p n) (Tgd.predicates r))
      rules;
    List.iter
      (fun (e, _) ->
        List.iter
          (fun a -> s := Schema.add_exn !s (Atom.pred a) (Atom.arity a))
          (Egd.body e))
      egds;
    List.iter
      (fun (a, _) -> s := Schema.add_exn !s (Atom.pred a) (Atom.arity a))
      facts;
    Ok !s
  | diags -> Error diags
