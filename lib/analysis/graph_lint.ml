(** Whole-set graph passes: dangerous cycles ([W020]) and reachability
    from the database ([I030], [I033]). *)

open Chase_logic
module Dep_graph = Chase_acyclicity.Dep_graph
module Sset = Util.Sset

(* ------------------------------------------------------------------ *)
(* Predicate-level reachability                                        *)
(* ------------------------------------------------------------------ *)

let body_preds r =
  List.fold_left (fun s a -> Sset.add (Atom.pred a) s) Sset.empty (Tgd.body r)

let head_preds r =
  List.fold_left (fun s a -> Sset.add (Atom.pred a) s) Sset.empty (Tgd.head r)

let reachable_predicates ~rules ~facts =
  let start =
    List.fold_left (fun s a -> Sset.add (Atom.pred a) s) Sset.empty facts
  in
  let step reach =
    List.fold_left
      (fun reach r ->
        if Sset.subset (body_preds r) reach then
          Sset.union reach (head_preds r)
        else reach)
      reach rules
  in
  let rec fix reach =
    let reach' = step reach in
    if Sset.equal reach reach' then reach else fix reach'
  in
  fix start

let reachability ~rules ~facts =
  if facts = [] then []
  else
    let reach =
      reachable_predicates
        ~rules:(List.map fst rules)
        ~facts:(List.map fst facts)
    in
    (* I030: one diagnostic per unreachable predicate read by some body. *)
    let readers = Hashtbl.create 16 in
    List.iteri
      (fun idx (r, _) ->
        Sset.iter
          (fun p ->
            if not (Sset.mem p reach) then
              Hashtbl.replace readers p
                (idx :: Option.value (Hashtbl.find_opt readers p) ~default:[]))
          (body_preds r))
      rules;
    let unreachable =
      Hashtbl.fold (fun p idxs acc -> (p, List.rev idxs) :: acc) readers []
      |> List.sort (fun (p, _) (q, _) -> String.compare p q)
    in
    let i030 =
      List.map
        (fun (p, used_by) ->
          let first_line =
            List.nth_opt rules (List.hd used_by) |> Option.map snd
          in
          let msg =
            Fmt.str
              "predicate %s is unreachable: no database fact or derivable \
               head can populate it"
              p
          in
          Diagnostic.make Diagnostic.I030 ?line:first_line
            ~witness:(Diagnostic.Unreachable { pred = p; used_by })
            msg)
        unreachable
    in
    (* I033: rules blocked by at least one unreachable body predicate. *)
    let i033 =
      List.concat
        (List.mapi
           (fun idx (r, line) ->
             let missing =
               Sset.elements (Sset.diff (body_preds r) reach)
             in
             if missing = [] then []
             else
               let msg =
                 Fmt.str
                   "rule %s can never fire on this database: %a %s never \
                    populated"
                   (Diagnostic.rule_label idx r)
                   (Util.pp_list ", " Fmt.string)
                   missing
                   (match missing with [ _ ] -> "is" | _ -> "are")
               in
               [
                 Diagnostic.make Diagnostic.I033 ~line
                   ~rule:(Diagnostic.rule_label idx r)
                   ~witness:(Diagnostic.Dead_rule { rule = idx; missing })
                   msg;
               ])
           rules)
    in
    i030 @ i033

(* ------------------------------------------------------------------ *)
(* Dangerous cycles                                                    *)
(* ------------------------------------------------------------------ *)

let graph_name = function
  | Dep_graph.Plain -> "dependency"
  | Dep_graph.Extended -> "extended-dependency"

let dangerous_cycle ~mode lrules =
  let rules = List.map fst lrules in
  let g = Dep_graph.build ~mode rules in
  match Dep_graph.dangerous_cycle g with
  | None -> []
  | Some positions ->
    let msg =
      Fmt.str
        "the %s graph has a cycle through a special edge: %a — invented \
         values can feed back into the positions that invented them"
        (graph_name mode)
        (Util.pp_list " -> " Dep_graph.pp_position)
        positions
    in
    [
      Diagnostic.make Diagnostic.W020
        ~witness:
          (Diagnostic.Position_cycle { graph = graph_name mode; positions })
        msg;
    ]
