(** Per-rule hygiene: guardedness witnesses ([W010]), subsumed and
    duplicate rules ([I031]), write-only existentials ([I032]). *)

open Chase_logic
module Classify = Chase_classes.Classify
module Sset = Util.Sset

(* ------------------------------------------------------------------ *)
(* W010 — unguarded rules, with the uncovered variables as witness      *)
(* ------------------------------------------------------------------ *)

let unguarded lrules =
  List.concat
    (List.mapi
       (fun idx (r, line) ->
         if Classify.rule_is_guarded r then []
         else
           let vars = Classify.unguarded_witness r in
           let candidate = Classify.best_guard_candidate r in
           let msg =
             Fmt.str "rule %s is unguarded: no single body atom covers %a%a"
               (Diagnostic.rule_label idx r)
               (Util.pp_list ", " Term.pp) vars
               (fun fm -> function
                 | None -> ()
                 | Some a -> Fmt.pf fm " (best candidate: %a)" Atom.pp a)
               candidate
           in
           [
             Diagnostic.make Diagnostic.W010 ~line
               ~rule:(Diagnostic.rule_label idx r)
               ~witness:(Diagnostic.Uncovered_vars { rule = idx; vars; candidate })
               msg;
           ])
       lrules)

(* ------------------------------------------------------------------ *)
(* I031 — subsumed rules                                               *)
(* ------------------------------------------------------------------ *)

(* Subsumption is checked by freezing: the candidate subsumed rule r2 has
   its universally quantified variables turned into marker constants
   ("?v"), making its body a concrete instance.  r1 ⊨ r2 iff some
   homomorphism θ maps body(r1) into that instance and extends over
   head(r1) — existentials of r1 frozen as distinct markers ("!z"), since
   each application invents fresh nulls — such that every head atom of r2
   (its own existentials still free, matched consistently) maps into
   θ(head r1).  Marker constants cannot collide with user constants: the
   parser accepts neither '?' nor '!' in identifiers. *)

let freeze_all prefix a =
  Atom.map_terms
    (function Term.Var v -> Term.Const (prefix ^ v) | t -> t)
    a

let freeze_except keep a =
  Atom.map_terms
    (function
      | Term.Var v when not (Sset.mem v keep) -> Term.Const ("?" ^ v)
      | t -> t)
    a

let subsumes r1 r2 =
  let body2 = Instance.of_list (List.map (freeze_all "?") (Tgd.body r2)) in
  let head2 = List.map (freeze_except (Tgd.existentials r2)) (Tgd.head r2) in
  let found = ref None in
  (try
     Hom.iter body2 (Tgd.body r1) (fun theta ->
         let head1 =
           List.map (freeze_all "!") (Subst.apply_atoms theta (Tgd.head r1))
         in
         if Hom.exists (Instance.of_list head1) head2 then begin
           found := Some theta;
           raise Exit
         end)
   with Exit -> ());
  !found

let subsumed lrules =
  let arr = Array.of_list lrules in
  let n = Array.length arr in
  let diags = ref [] in
  for j = 0 to n - 1 do
    let rj, line = arr.(j) in
    let found = ref false in
    for i = 0 to n - 1 do
      if (not !found) && i <> j then begin
        let ri, _ = arr.(i) in
        match subsumes ri rj with
        | None -> ()
        | Some theta ->
          (* among mutually subsuming (duplicate) rules keep the first *)
          if i < j || Option.is_none (subsumes rj ri) then begin
            found := true;
            let mutual = i < j && Option.is_some (subsumes rj ri) in
            let msg =
              Fmt.str "rule %s is %s rule %s: it can derive nothing new"
                (Diagnostic.rule_label j rj)
                (if mutual then "a duplicate of" else "subsumed by")
                (Diagnostic.rule_label i ri)
            in
            diags :=
              Diagnostic.make Diagnostic.I031 ~line
                ~rule:(Diagnostic.rule_label j rj)
                ~witness:
                  (Diagnostic.Subsumed_by
                     { rule = j; by = i; substitution = Subst.to_list theta })
                msg
              :: !diags
          end
      end
    done
  done;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* I032 — write-only existentials                                      *)
(* ------------------------------------------------------------------ *)

let positions_in_head r z =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun i ->
          match Atom.arg a i with
          | Term.Var v when String.equal v z -> Some (Atom.pred a, i)
          | _ -> None)
        (List.init (Atom.arity a) Fun.id))
    (Tgd.head r)

let unused_existentials ?(extra_consumers = Sset.empty) lrules =
  let consumed =
    List.fold_left
      (fun acc (r, _) ->
        List.fold_left
          (fun acc a -> Sset.add (Atom.pred a) acc)
          acc (Tgd.body r))
      extra_consumers lrules
  in
  List.concat
    (List.mapi
       (fun idx (r, line) ->
         Sset.fold
           (fun z acc ->
             let positions = positions_in_head r z in
             let landing =
               List.fold_left (fun s (p, _) -> Sset.add p s) Sset.empty positions
             in
             if Sset.exists (fun p -> Sset.mem p consumed) landing then acc
             else
               let msg =
                 Fmt.str
                   "existential variable %s of rule %s is write-only: no rule \
                    body reads %a"
                   z
                   (Diagnostic.rule_label idx r)
                   (Util.pp_list ", " Fmt.string)
                   (Sset.elements landing)
               in
               Diagnostic.make Diagnostic.I032 ~line
                 ~rule:(Diagnostic.rule_label idx r)
                 ~witness:
                   (Diagnostic.Unused_existential { rule = idx; var = z; positions })
                 msg
               :: acc)
           (Tgd.existentials r) []
         |> List.rev)
       lrules)

let check ?extra_consumers lrules =
  unguarded lrules @ subsumed lrules @ unused_existentials ?extra_consumers lrules
