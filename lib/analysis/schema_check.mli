(** Schema and arity consistency across the whole program — rules, EGDs
    {e and} the database ([E001]).

    This is the checked replacement for the [Invalid_argument] escape of
    {!Chase_logic.Schema.of_rules}: clashes inside one rule are caught by
    [Tgd.make] at parse time, but a predicate used with different arities
    in two different statements only surfaces once something builds the
    joint schema — which used to be an exception deep inside a dependency
    graph or engine run.  Here it is a diagnostic with the clashing
    lines. *)

open Chase_logic

val run :
  rules:(Tgd.t * int) list ->
  ?egds:(Egd.t * int) list ->
  facts:(Atom.t * int) list ->
  unit ->
  (Schema.t, Diagnostic.t list) result
(** The joint schema of the program, or one [E001] per clashing
    predicate.  Each witness lists every arity in use with the line of
    its first use; the diagnostic's span is the line where the clash
    first becomes visible (the second arity's first use). *)

val check :
  rules:(Tgd.t * int) list ->
  ?egds:(Egd.t * int) list ->
  facts:(Atom.t * int) list ->
  unit ->
  Diagnostic.t list
(** Just the diagnostics ([[]] when the schema is consistent). *)
