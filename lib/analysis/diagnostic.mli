(** Structured diagnostics for Σ-lint.

    Every diagnostic carries a stable code, a severity derived from the
    code, an optional source span (the 1-based line the parser recorded
    for the offending statement), a human message, and a machine-readable
    {e witness} — the structure that makes the verdict checkable rather
    than merely readable.

    Codes:
    - [E001] arity-clash — a predicate used with two different arities
      across rules and/or the database;
    - [W010] unguarded-rule — no single body atom covers all body
      variables (witness: the uncovered variables);
    - [W020] special-edge-cycle — a dangerous cycle in the (extended)
      dependency graph (witness: the position path);
    - [W021] realizable-cycle — a concretely confirmed pump of the
      critical-instance analysis (witness: the cycle steps, the replayed
      fact chain and the realizing substitution);
    - [I030] unreachable-predicate — a body predicate the given database
      can never populate;
    - [I031] subsumed-rule — a rule logically implied by an earlier one;
    - [I032] unused-existential — an existential variable whose invented
      values no rule body ever reads;
    - [I033] dead-rule — a rule that can never fire on the given
      database;
    - [I034] trigger-cycle — the rule set is not super-weakly acyclic:
      a cycle of the Σ-flow trigger relation (witness: the rules around
      the cycle and the places where each invented null lands);
    - [I035] stratification — the may-trigger stratum assignment, and
      whether every stratum is weakly acyclic (both only emitted by the
      opt-in [--analyze] battery). *)

open Chase_logic

type severity =
  | Error  (** the rule set is malformed; the engine refuses it *)
  | Warning  (** suspicious; termination or performance is at risk *)
  | Info  (** hygiene: redundancy, dead weight *)

type code =
  | E001  (** arity-clash *)
  | W010  (** unguarded-rule *)
  | W020  (** special-edge-cycle *)
  | W021  (** realizable-cycle *)
  | I030  (** unreachable-predicate *)
  | I031  (** subsumed-rule *)
  | I032  (** unused-existential *)
  | I033  (** dead-rule *)
  | I034  (** trigger-cycle *)
  | I035  (** stratification *)

val code_id : code -> string
(** ["E001"], ["W010"], … *)

val code_name : code -> string
(** The stable slug: ["arity-clash"], ["unguarded-rule"], … *)

val severity_of_code : code -> severity
val severity_to_string : severity -> string
val all_codes : code list

(** The machine-readable witness attached to each diagnostic. *)
type witness =
  | Arity_uses of {
      pred : string;
      uses : (int * int) list;  (** (arity, line of first use) per arity *)
    }
  | Uncovered_vars of {
      rule : int;  (** rule index in file order *)
      vars : Term.t list;  (** variables no single body atom covers *)
      candidate : Atom.t option;  (** the best guard candidate *)
    }
  | Position_cycle of {
      graph : string;  (** ["dependency"] or ["extended-dependency"] *)
      positions : (string * int) list;  (** the cycle, as visited *)
    }
  | Pump of {
      start : string;  (** the start pattern, rendered *)
      steps : (int * int) list;  (** (rule index, head index) per step *)
      facts : Atom.t list;  (** one replayed lap, start fact first *)
      substitution : (string * Term.t) list;
          (** realizing substitution of the first step *)
      laps : int;  (** laps concretely replayed by the checker *)
    }
  | Guard_chain of {
      occurrences : Atom.t list;  (** same-type facts along a guard chain *)
      chain_length : int;
    }
  | Unreachable of {
      pred : string;
      used_by : int list;  (** indices of the rules reading it *)
    }
  | Subsumed_by of {
      rule : int;
      by : int;
      substitution : (string * Term.t) list;
          (** maps the subsuming rule's variables into the subsumed one *)
    }
  | Unused_existential of {
      rule : int;
      var : string;
      positions : (string * int) list;  (** where its nulls land *)
    }
  | Dead_rule of {
      rule : int;
      missing : string list;  (** the unpopulatable body predicates *)
    }
  | Trigger_cycle of {
      rules : int list;  (** rule indices around the cycle, in order *)
      places : (string * int) list;
          (** per hop, the (pred, position) where the invented null
              lands *)
    }
  | Strata_assignment of {
      strata : int list list;
          (** rule indices per stratum, topological order *)
      cyclic : int list option;
          (** the first stratum that is not weakly acyclic, if any *)
    }

type t = {
  code : code;
  severity : severity;
  line : int option;  (** 1-based source line, when the span is known *)
  rule : string option;  (** offending rule's name or positional label *)
  message : string;
  witness : witness;
}

val rule_label : int -> Tgd.t -> string
(** Display label of the [idx]-th rule: its name, or a positional
    ["rule#k"] (1-based). *)

val make :
  code -> ?line:int -> ?rule:string -> witness:witness -> string -> t
(** [make code ~witness message]; the severity comes from the code. *)

val is_error : t -> bool
val is_warning : t -> bool

val compare_for_report : t -> t -> int
(** Source order: by line (unspanned last), then code, then message. *)

val pp : ?file:string -> Format.formatter -> t -> unit
(** One human line: [file:line: severity[CODE] message]. *)

val witness_to_json : witness -> Chase_obs.Jsonv.t
val to_json : t -> Chase_obs.Jsonv.t
