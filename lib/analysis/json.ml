(** A minimal JSON tree and printer (no external dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Escape per RFC 8259: quote, backslash, and control characters. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp fm = function
  | Null -> Fmt.string fm "null"
  | Bool b -> Fmt.string fm (if b then "true" else "false")
  | Int n -> Fmt.int fm n
  | Str s -> Fmt.pf fm "\"%s\"" (escape s)
  | List xs ->
    Fmt.pf fm "[%a]" (Fmt.list ~sep:(fun fm () -> Fmt.string fm ",") pp) xs
  | Obj fields ->
    let pp_field fm (k, v) = Fmt.pf fm "\"%s\":%a" (escape k) pp v in
    Fmt.pf fm "{%a}"
      (Fmt.list ~sep:(fun fm () -> Fmt.string fm ",") pp_field)
      fields

let to_string t = Fmt.str "%a" pp t
