(** Whole-set graph passes.

    - [W020] special-edge-cycle: a dangerous cycle (through a special
      edge) in the dependency graph ([Plain]) or the extended dependency
      graph ([Extended]); the witness is the cycle as a position path.
      This is exactly the obstruction {!Chase_acyclicity.Weak} /
      {!Chase_acyclicity.Rich} report, surfaced as a diagnostic.
    - [I030] unreachable-predicate: a predicate some rule body reads that
      the given database can never populate (predicate-level
      over-approximation of firability).
    - [I033] dead-rule: a rule with at least one unreachable body
      predicate — it can never fire on this database.

    The reachability passes are only meaningful relative to a database;
    with no facts they emit nothing. *)

open Chase_logic

val reachable_predicates :
  rules:Tgd.t list -> facts:Atom.t list -> Util.Sset.t
(** Least fixpoint: the database's predicates, closed under "if every
    body predicate of a rule is reachable, its head predicates are". *)

val reachability :
  rules:(Tgd.t * int) list -> facts:(Atom.t * int) list -> Diagnostic.t list
(** The [I030] and [I033] passes; [[]] when [facts] is empty. *)

val dangerous_cycle :
  mode:Chase_acyclicity.Dep_graph.mode ->
  (Tgd.t * int) list ->
  Diagnostic.t list
(** The [W020] pass over the chosen graph. *)
