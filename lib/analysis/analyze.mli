(** The [--analyze] battery: run the Σ-flow framework over a rule set
    and render the dataflow summary — strata, affected positions,
    may-trigger edges, the super-weak-acyclicity and stratification
    verdicts — in human and JSON forms, plus the witness-carrying
    [I034]/[I035] diagnostics the lint report embeds. *)

open Chase_logic

type t = {
  flow : Chase_flow.Flow.t;
  swa_cycle : Chase_acyclicity.Super_weak.hop list option;
      (** [None] = super-weakly acyclic *)
  strata : Chase_strata.Strata.t;
}

val run : Tgd.t list -> t

val diagnostics : t -> Diagnostic.t list
(** [I035] always (the stratum assignment); [I034] when the trigger
    relation has a cycle. *)

val pp_human : ?file:string -> Format.formatter -> t -> unit
(** The dataflow summary block, one prefixed line per fact. *)

val to_json : t -> Chase_obs.Jsonv.t
