(** The replication wire vocabulary: what a primary ships to its
    standby, and what the standby answers.  Framing reuses the service
    protocol's length-prefixed JSON ({!Chase_service.Proto}); this
    module is only the payload codec.

    Binary payloads (spool files, journal byte ranges) travel
    hex-encoded — the JSON layer escapes control characters, and hex
    keeps the frames printable in traces — and carry their own CRC-32
    over the {e decoded} bytes, so corruption of the hex text (or of
    the decode) is caught structurally by {!decode} before the standby
    applies anything.

    Sequencing: ship frames are numbered 1, 2, 3… {e per session}; a
    session starts with [Hello] and restarts from scratch on every
    reconnect, nack, or shipper-side overflow.  Every (re)start ships
    the complete durable state, so the receiver's application being
    idempotent is the only invariant needed for correctness — there is
    no retransmission window to get wrong.  [head] carries the highest
    sequence number the shipper had enqueued when the frame was sent;
    [head - seq] is the receiver's measure of replication lag. *)

module Jsonv = Chase_obs.Jsonv
module Codec = Chase_persist.Codec

type kind =
  | File
      (** a whole spool file ([.req], [.resp], [.jnl.snap]): the
          receiver publishes it atomically *)
  | Journal of int
      (** journal bytes at this offset; offset 0 replaces the file
          (shipper resync or post-compaction reset), any other offset
          must equal the receiver's current file size *)
  | Delete  (** the file was removed on the primary *)

type ship = {
  seq : int;  (** 1-based within the session *)
  head : int;  (** shipper's highest enqueued seq at send time *)
  kind : kind;
  name : string;  (** flat file name inside the spool directory *)
  data : string;  (** raw bytes (empty for [Delete]) *)
  trace : string option;
      (** distributed trace context of the request that made these
          bytes durable; absent for resyncs and for trace-unaware
          primaries (encoding omits it, keeping old frames identical) *)
}

type msg =
  | Hello of int  (** session number; resets the receiver to seq 1 *)
  | Ship of ship
  | Ack of int  (** cumulative: every frame up to [seq] is applied *)
  | Nack of int * string
      (** expected seq + reason; the shipper restarts the session *)

(* A spool file name must stay inside the spool directory: path
   separators or traversal in a shipped name is an attack or a bug,
   either way a structural reject. *)
let valid_name name =
  String.length name > 0
  && String.length name <= 255
  && (not (String.contains name '/'))
  && (not (String.contains name '\\'))
  && name.[0] <> '.'

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Fmt.str "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex payload"
  else begin
    let b = Buffer.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Buffer.contents b)
      else
        match (hex_digit s.[i], hex_digit s.[i + 1]) with
        | Some hi, Some lo ->
          Buffer.add_char b (Char.chr ((hi lsl 4) lor lo));
          go (i + 2)
        | _ -> Error (Fmt.str "bad hex digit at byte %d" i)
    in
    go 0
  end

let encode msg =
  let obj fields = Jsonv.to_string (Jsonv.Obj fields) in
  match msg with
  | Hello session -> obj [ ("t", Jsonv.String "hello"); ("session", Jsonv.Int session) ]
  | Ack seq -> obj [ ("t", Jsonv.String "ack"); ("seq", Jsonv.Int seq) ]
  | Nack (seq, why) ->
    obj
      [
        ("t", Jsonv.String "nack");
        ("seq", Jsonv.Int seq);
        ("why", Jsonv.String why);
      ]
  | Ship s ->
    let kind, off =
      match s.kind with
      | File -> ("file", None)
      | Journal off -> ("jnl", Some off)
      | Delete -> ("del", None)
    in
    obj
      ([
         ("t", Jsonv.String "ship");
         ("seq", Jsonv.Int s.seq);
         ("head", Jsonv.Int s.head);
         ("kind", Jsonv.String kind);
         ("name", Jsonv.String s.name);
       ]
      @ (match off with Some o -> [ ("off", Jsonv.Int o) ] | None -> [])
      @ [
          ("data", Jsonv.String (hex_encode s.data));
          ("crc", Jsonv.Int (Codec.Crc32.digest s.data));
        ]
      @
      match s.trace with
      | Some tc -> [ ("trace", Jsonv.String tc) ]
      | None -> [])

let get_int key v =
  match Jsonv.member key v with
  | Some (Jsonv.Int n) -> Ok n
  | _ -> Error (Fmt.str "missing or non-integer %S" key)

let get_str key v =
  match Jsonv.member key v with
  | Some (Jsonv.String s) -> Ok s
  | _ -> Error (Fmt.str "missing or non-string %S" key)

let ( let* ) = Result.bind

let decode payload =
  match Jsonv.of_string payload with
  | Error msg -> Error (Fmt.str "not JSON: %s" msg)
  | Ok v -> (
    let* t = get_str "t" v in
    match t with
    | "hello" ->
      let* session = get_int "session" v in
      Ok (Hello session)
    | "ack" ->
      let* seq = get_int "seq" v in
      Ok (Ack seq)
    | "nack" ->
      let* seq = get_int "seq" v in
      let* why = get_str "why" v in
      Ok (Nack (seq, why))
    | "ship" ->
      let* seq = get_int "seq" v in
      let* head = get_int "head" v in
      let* kind_s = get_str "kind" v in
      let* name = get_str "name" v in
      let* hex = get_str "data" v in
      let* crc = get_int "crc" v in
      let* kind =
        match kind_s with
        | "file" -> Ok File
        | "del" -> Ok Delete
        | "jnl" ->
          let* off = get_int "off" v in
          if off < 0 then Error "negative journal offset" else Ok (Journal off)
        | other -> Error (Fmt.str "unknown ship kind %S" other)
      in
      if not (valid_name name) then Error (Fmt.str "invalid file name %S" name)
      else
        let* data = hex_decode hex in
        if Codec.Crc32.digest data <> crc then
          Error (Fmt.str "crc mismatch on %S (seq %d)" name seq)
        else
          let trace =
            match Jsonv.member "trace" v with
            | Some (Jsonv.String tc) -> Some tc
            | _ -> None
          in
          Ok (Ship { seq; head; kind; name; data; trace })
    | other -> Error (Fmt.str "unknown message type %S" other))

let pp_kind fm = function
  | File -> Fmt.string fm "file"
  | Journal off -> Fmt.pf fm "jnl@%d" off
  | Delete -> Fmt.string fm "del"

let pp fm = function
  | Hello s -> Fmt.pf fm "hello(session %d)" s
  | Ack n -> Fmt.pf fm "ack %d" n
  | Nack (n, why) -> Fmt.pf fm "nack %d (%s)" n why
  | Ship s ->
    Fmt.pf fm "ship %d/%d %a %s (%d bytes)" s.seq s.head pp_kind s.kind s.name
      (String.length s.data)
