(** The primary side of replication: watches the durable spool and
    streams it to a standby over a Unix-domain socket, as {!Shipframe}
    messages inside {!Chase_service.Proto} frames.

    Two sources feed the ship queue.  The {e hook} path is synchronous
    with the request plane: the server's [on_durable] callback hands
    over every spool file the moment its local fsync completes, and —
    in semi-synchronous mode — blocks the acknowledgement until the
    standby has confirmed that very frame or [sync_timeout] elapses,
    whichever is first.  The {e tailer} path is a polling thread that
    picks up what the hook cannot see: journal appends (the engine
    writes them deep below the server), snapshot publications, journal
    compactions, and spool removals.

    The queue is bounded.  A standby slow enough to back it up does not
    stall the primary: the queue is dropped wholesale, the [lagging]
    degradation is recorded, and the next (re)connect ships the
    complete durable state from scratch — which is also what every
    ordinary reconnect does, so slow standbys exercise no special
    machinery.  Sessions restart their sequence numbers at 1 and the
    receiver applies idempotently; a cumulative ack maps back to the
    shipper's global frame counter to wake semi-sync waiters.

    Chaos: {!Chase_engine.Faults.replica_fault}s act on the real
    stream — the connection is really cut, the frame really duplicated
    or corrupted, the send really delayed.  Each fault fires once,
    counted by frames sent over the shipper's lifetime. *)

module Proto = Chase_service.Proto
module Journal = Chase_persist.Journal
module Faults = Chase_engine.Faults
module Obs = Chase_obs.Obs
module Tracectx = Chase_obs.Tracectx

type config = {
  spool_dir : string;  (** the primary's spool — the state to ship *)
  ship_socket : string;  (** the standby receiver's socket *)
  sync_timeout : float;
      (** how long [on_durable] waits for the standby's ack before
          degrading to asynchronous shipping; 0 never waits *)
  buffer_cap : int;  (** queued frames before degrade-and-resync *)
  poll_interval : float;  (** journal tailer cadence, seconds *)
  connect_retry : float;  (** pause between standby connect attempts *)
  faults : Faults.replica_fault list;
}

let config ?(sync_timeout = 0.25) ?(buffer_cap = 256) ?(poll_interval = 0.05)
    ?(connect_retry = 0.1) ?(faults = []) ~spool_dir ~ship_socket () =
  {
    spool_dir;
    ship_socket;
    sync_timeout;
    buffer_cap;
    poll_interval;
    connect_retry;
    faults;
  }

type pending = {
  g : int;  (** global enqueue number, monotone across sessions *)
  kind : Shipframe.kind;
  name : string;
  data : string;
  trace : string option;  (** request trace ctx, hook path only *)
}

type t = {
  cfg : config;
  obs : Obs.t;
  obs_mu : Mutex.t;
  shard : Tracectx.Shard.writer option;  (** this process's trace shard *)
  mu : Mutex.t;
  cond : Condition.t;
  queue : pending Queue.t;
  mutable total : int;  (** global enqueue counter *)
  mutable synced : int;  (** highest global number the standby acked *)
  mutable sessions : int;
  mutable laggings : int;  (** semi-sync waits that timed out *)
  mutable overflows : int;  (** queue drops forcing a resync *)
  mutable sent : int;  (** ship frames sent ever (fault counting) *)
  mutable degraded : bool;  (** currently behind (async) *)
  mutable stop : bool;
  mutable conn : Unix.file_descr option;  (** live shipping connection *)
  mutable unfired : Faults.replica_fault list;
  jnl_off : (string, int) Hashtbl.t;  (** journal name -> shipped offset *)
  file_sig : (string, Digest.t) Hashtbl.t;  (** file name -> shipped MD5 *)
  mutable sender : Thread.t option;
  mutable tailer : Thread.t option;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let with_obs t f =
  Mutex.lock t.obs_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.obs_mu) (fun () -> f t.obs)

(* ------------------------------------------------------------------ *)
(* Enqueueing                                                          *)
(* ------------------------------------------------------------------ *)

(* Must hold [t.mu].  A full queue means the standby is not keeping up:
   drop everything, record the degradation, and let the next session
   re-ship the full state — never stall the caller. *)
let enqueue_locked ?trace t kind name data =
  if Queue.length t.queue >= t.cfg.buffer_cap then begin
    Queue.clear t.queue;
    Hashtbl.reset t.jnl_off;
    Hashtbl.reset t.file_sig;
    t.overflows <- t.overflows + 1;
    t.degraded <- true;
    (* poison the live session: the sender drops the connection and
       reconnects, and reconnecting ships everything from scratch *)
    match t.conn with
    | Some fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ()
  end;
  t.total <- t.total + 1;
  Queue.add { g = t.total; kind; name; data; trace } t.queue;
  Condition.broadcast t.cond;
  t.total

let enqueue ?trace t kind name data =
  let g = locked t (fun () -> enqueue_locked ?trace t kind name data) in
  (match kind with
  | Shipframe.File ->
    with_obs t (fun obs -> Obs.incr obs ~label:"file" "repl.shipped")
  | Shipframe.Journal _ ->
    with_obs t (fun obs -> Obs.incr obs ~label:"jnl" "repl.shipped")
  | Shipframe.Delete ->
    with_obs t (fun obs -> Obs.incr obs ~label:"del" "repl.shipped"));
  g

(* ------------------------------------------------------------------ *)
(* The semi-synchronous hook                                           *)
(* ------------------------------------------------------------------ *)

(* Wired as the server's [on_durable]: ship the bytes, then wait for
   the standby to confirm — bounded by [sync_timeout], after which the
   primary answers its client anyway and the stream is (temporarily)
   asynchronous.  The wait is on the global counter, not the session
   seq: if the session restarts meanwhile, the resync re-ships this
   very file, and the resync's acks advance the same counter. *)
let on_durable t what ~key ~trace bytes =
  let suffix = match what with `Req -> ".req" | `Resp -> ".resp" in
  let name = key ^ suffix in
  let ts_us = Tracectx.now_us () in
  Hashtbl.replace t.file_sig name (Digest.string bytes);
  let g = enqueue ?trace t Shipframe.File name bytes in
  let timed_out =
    if t.cfg.sync_timeout <= 0. then false
    else begin
      let deadline = Unix.gettimeofday () +. t.cfg.sync_timeout in
      let timed_out =
        locked t (fun () ->
            let rec wait () =
              if t.synced >= g || t.stop then false
              else begin
                let remaining = deadline -. Unix.gettimeofday () in
                if remaining <= 0. then true
                else begin
                  (* no timed wait on [Condition]: poll on a short leash *)
                  Mutex.unlock t.mu;
                  Thread.delay (Float.min 0.005 remaining);
                  Mutex.lock t.mu;
                  wait ()
                end
              end
            in
            wait ())
      in
      if timed_out then begin
        locked t (fun () -> t.laggings <- t.laggings + 1; t.degraded <- true);
        with_obs t (fun obs -> Obs.incr obs "repl.lagging")
      end;
      timed_out
    end
  in
  (* the semi-sync wait, as a span under the request's server span:
     its duration is the ship→ack latency the client actually paid *)
  match (t.shard, trace) with
  | Some w, Some tc -> (
    match Tracectx.of_string tc with
    | None -> ()
    | Some parent ->
      let ctx = Tracectx.child parent in
      Tracectx.Shard.span w ~ctx ~parent:parent.Tracectx.span
        ~name:"shipper.sync" ~ts_us
        ~dur_us:(Tracectx.now_us () -. ts_us)
        ~args:
          [
            ("name", Chase_obs.Jsonv.String name);
            ("lagging", Chase_obs.Jsonv.Bool timed_out);
          ]
        ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Scanning the spool                                                  *)
(* ------------------------------------------------------------------ *)

let read_file path =
  match open_in_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None

let is_journal name = Filename.check_suffix name ".jnl"

let spool_files t =
  match Sys.readdir t.cfg.spool_dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Shipframe.valid_name n)
    |> List.filter (fun n -> not (Filename.check_suffix n ".tmp"))
    |> List.sort String.compare

(* Full resync: forget all shipping state and enqueue the complete
   durable spool.  Runs under [t.mu] (via caller) — the queue was just
   cleared, so the bound cannot trip mid-scan.  Journals ship their
   valid frame prefix from offset 0 (magic and header included: the
   standby's copy is a byte-identical prefix of the primary's). *)
let resync t =
  locked t (fun () ->
      Queue.clear t.queue;
      Hashtbl.reset t.jnl_off;
      Hashtbl.reset t.file_sig);
  List.iter
    (fun name ->
      let path = Filename.concat t.cfg.spool_dir name in
      if is_journal name then (
        match Journal.tail path ~offset:0 with
        | Ok (bytes, stop) when bytes <> "" ->
          Hashtbl.replace t.jnl_off name stop;
          ignore (enqueue t (Shipframe.Journal 0) name bytes)
        | Ok _ | Error _ -> () (* headerless or mid-create: tail later *))
      else
        match read_file path with
        | Some data ->
          Hashtbl.replace t.file_sig name (Digest.string data);
          ignore (enqueue t Shipframe.File name data)
        | None -> ())
    (spool_files t)

(* One tailer sweep: pick up journal growth/truncation, changed files
   (snapshots), and removals the hook path never sees. *)
let sweep t =
  let seen = spool_files t in
  List.iter
    (fun name ->
      let path = Filename.concat t.cfg.spool_dir name in
      if is_journal name then begin
        let off =
          Option.value ~default:0 (locked t (fun () -> Hashtbl.find_opt t.jnl_off name))
        in
        let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
        if size < off then (
          (* compaction rewrote the journal: start over *)
          match Journal.tail path ~offset:0 with
          | Ok (bytes, stop) when bytes <> "" ->
            Hashtbl.replace t.jnl_off name stop;
            ignore (enqueue t (Shipframe.Journal 0) name bytes)
          | Ok _ | Error _ -> Hashtbl.remove t.jnl_off name)
        else if size > off then (
          match Journal.tail path ~offset:off with
          | Ok (bytes, stop) when bytes <> "" ->
            Hashtbl.replace t.jnl_off name stop;
            ignore (enqueue t (Shipframe.Journal off) name bytes)
          | Ok _ -> () (* grew, but no complete new frame yet *)
          | Error _ ->
            (* offset no longer a frame boundary: rewritten under us *)
            Hashtbl.remove t.jnl_off name)
      end
      else
        match read_file path with
        | Some data ->
          let d = Digest.string data in
          let changed =
            locked t (fun () ->
                match Hashtbl.find_opt t.file_sig name with
                | Some d' when d' = d -> false
                | _ -> Hashtbl.replace t.file_sig name d; true)
          in
          if changed then ignore (enqueue t Shipframe.File name data)
        | None -> ())
    seen;
  (* removals: tracked names that vanished from the spool *)
  let gone tracked =
    locked t (fun () ->
        Hashtbl.fold (fun name _ acc -> if List.mem name seen then acc else name :: acc)
          tracked [])
  in
  List.iter
    (fun name ->
      Hashtbl.remove t.file_sig name;
      Hashtbl.remove t.jnl_off name;
      ignore (enqueue t Shipframe.Delete name ""))
    (gone t.file_sig @ gone t.jnl_off)

let tailer_loop t =
  while not t.stop do
    (try sweep t with _ -> ());
    Thread.delay t.cfg.poll_interval
  done

(* ------------------------------------------------------------------ *)
(* The sender: connect, resync, drain, with chaos applied              *)
(* ------------------------------------------------------------------ *)

let take_fault t pred =
  locked t (fun () ->
      let rec split acc = function
        | [] -> None
        | f :: rest when pred f ->
          t.unfired <- List.rev_append acc rest;
          Some f
        | f :: rest -> split (f :: acc) rest
      in
      split [] t.unfired)

(* Send one encoded ship frame with any armed fault applied.  Returns
   [false] when the connection must be considered dead. *)
let send_frame t fd payload =
  let k = locked t (fun () -> t.sent <- t.sent + 1; t.sent) in
  (match take_fault t (function Faults.Delay_ship (k', _) -> k' = k | _ -> false) with
  | Some (Faults.Delay_ship (_, s)) -> Thread.delay s
  | _ -> ());
  let payload =
    match
      take_fault t (function Faults.Corrupt_ship k' -> k' = k | _ -> false)
    with
    | Some (Faults.Corrupt_ship _) -> (
      (* flip one hex digit of the payload, leaving the declared CRC
         intact: the receiver's decode must catch it *)
      let marker = "\"data\":\"" in
      let rec find i =
        if i + String.length marker > String.length payload then None
        else if String.sub payload i (String.length marker) = marker then
          Some (i + String.length marker)
        else find (i + 1)
      in
      match find 0 with
      | Some i when i < String.length payload && payload.[i] <> '"' ->
        let b = Bytes.of_string payload in
        Bytes.set b i (if payload.[i] = '0' then '1' else '0');
        Bytes.to_string b
      | _ -> payload)
    | _ -> payload
  in
  let dup =
    match take_fault t (function Faults.Dup_ship k' -> k' = k | _ -> false) with
    | Some _ -> 2
    | None -> 1
  in
  let ok =
    try
      for _ = 1 to dup do
        Proto.write_frame fd payload
      done;
      true
    with Unix.Unix_error _ -> false
  in
  match
    take_fault t (function Faults.Cut_ship_after k' -> k' = k | _ -> false)
  with
  | Some _ ->
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    false
  | None -> ok

(* Reader side of one session: cumulative acks advance the global
   sync point through the in-flight (seq -> g) map; a nack poisons the
   session.  Runs in its own thread; exits on EOF/error. *)
let reader_loop t fd inflight dead =
  let rec loop () =
    match Proto.read_frame fd with
    | `Closed | `Bad _ ->
      locked t (fun () -> dead := true; Condition.broadcast t.cond)
    | exception Unix.Unix_error _ ->
      locked t (fun () -> dead := true; Condition.broadcast t.cond)
    | `Frame payload -> (
      match Shipframe.decode payload with
      | Ok (Shipframe.Ack seq) ->
        locked t (fun () ->
            let best = ref t.synced in
            Hashtbl.iter (fun s g -> if s <= seq && g > !best then best := g) inflight;
            t.synced <- !best;
            if t.synced >= t.total then t.degraded <- false;
            Condition.broadcast t.cond);
        loop ()
      | Ok (Shipframe.Nack _) | Ok _ | Error _ ->
        (* anything but an ack restarts the session *)
        locked t (fun () -> dead := true; Condition.broadcast t.cond))
  in
  loop ()

let connect_standby t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX t.cfg.ship_socket) with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None

let session t fd =
  let session_no = locked t (fun () -> t.sessions <- t.sessions + 1; t.sessions) in
  with_obs t (fun obs -> Obs.incr obs "repl.sessions");
  (* every session begins with the complete durable state *)
  resync t;
  let inflight : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let dead = ref false in
  match
    try Proto.write_frame fd (Shipframe.encode (Shipframe.Hello session_no)); true
    with Unix.Unix_error _ -> false
  with
  | false -> ()
  | true ->
    let reader = Thread.create (fun () -> reader_loop t fd inflight dead) () in
    let seq = ref 0 in
    let rec drain () =
      let next =
        locked t (fun () ->
            let rec wait () =
              if t.stop || !dead then None
              else
                match Queue.take_opt t.queue with
                | Some p -> Some p
                | None ->
                  Condition.wait t.cond t.mu;
                  wait ()
            in
            wait ())
      in
      match next with
      | None -> ()
      | Some p ->
        incr seq;
        Hashtbl.replace inflight !seq p.g;
        let head = !seq + locked t (fun () -> Queue.length t.queue) in
        let frame =
          Shipframe.encode
            (Shipframe.Ship
               { Shipframe.seq = !seq; head; kind = p.kind; name = p.name;
                 data = p.data; trace = p.trace })
        in
        if send_frame t fd frame then drain ()
        else locked t (fun () -> dead := true; Condition.broadcast t.cond)
    in
    drain ();
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Thread.join reader

let sender_loop t =
  while not t.stop do
    match connect_standby t with
    | None -> Thread.delay t.cfg.connect_retry
    | Some fd ->
      locked t (fun () -> t.conn <- Some fd);
      session t fd;
      locked t (fun () -> t.conn <- None);
      if not t.stop then Thread.delay t.cfg.connect_retry
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?(obs = Obs.disabled) ?shard cfg =
  let t =
    {
      cfg;
      obs;
      obs_mu = Mutex.create ();
      shard;
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      total = 0;
      synced = 0;
      sessions = 0;
      laggings = 0;
      overflows = 0;
      sent = 0;
      degraded = false;
      stop = false;
      conn = None;
      unfired = cfg.faults;
      jnl_off = Hashtbl.create 16;
      file_sig = Hashtbl.create 64;
      sender = None;
      tailer = None;
    }
  in
  t.sender <- Some (Thread.create (fun () -> sender_loop t) ());
  t.tailer <- Some (Thread.create (fun () -> tailer_loop t) ());
  t

let stop t =
  locked t (fun () ->
      t.stop <- true;
      Condition.broadcast t.cond;
      match t.conn with
      | Some fd ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      | None -> ());
  Option.iter Thread.join t.sender;
  Option.iter Thread.join t.tailer

(* Best-effort drain for orderly failback: wait until everything
   enqueued so far is acked, or the deadline passes. *)
let quiesce t ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    let done_ = locked t (fun () -> t.synced >= t.total && Queue.is_empty t.queue) in
    if done_ then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.01;
      wait ()
    end
  in
  wait ()

let stats t =
  locked t (fun () ->
      [
        ("degraded", if t.degraded then 1 else 0);
        ("enqueued", t.total);
        ("laggings", t.laggings);
        ("overflows", t.overflows);
        ("queue", Queue.length t.queue);
        ("sent", t.sent);
        ("sessions", t.sessions);
        ("synced", t.synced);
      ])
