(** The standby side of replication: accepts one shipper at a time,
    validates every {!Shipframe} structurally (sequencing, name
    hygiene, CRC over the decoded bytes) and applies it idempotently
    to its own spool directory — whole files are published atomically
    through {!Chase_persist.Fsutil}, journal ranges append only at the
    exact offset the file already has (offset 0 replaces the file).
    Anything out of order, unparseable or corrupt draws a structured
    nack naming the expected sequence number and closes the
    connection; the shipper answers by restarting the session with a
    full resync, so the two sides can never creep apart.

    Duplicated frames (at-least-once retransmits, chaos [Dup_ship])
    are detected by their stale sequence number, re-acked — the
    cumulative ack stays monotone — and not applied again.

    Continuous certification: a background thread replays every
    received journal through {!Chase_persist.Recovery} (repair
    disabled — certification must never mutate shipped state) against
    the program text of its own shipped [.req] file, so the standby
    knows {e before} promotion that its state re-derives.  Promotion
    itself is not this module's business: {!Standby} stops the
    receiver and boots a {!Chase_service.Server}, whose ordinary boot
    recovery completes every acknowledged request by deterministic
    re-run from step zero.

    Replication lag: each ship frame carries the shipper's queue head;
    [head - seq] lands in the [repl.lag] histogram of this receiver's
    metrics file — the artifact the failover soak validates. *)

module Proto = Chase_service.Proto
module Fsutil = Chase_persist.Fsutil
module Recovery = Chase_persist.Recovery
module Variant = Chase_engine.Variant
module Obs = Chase_obs.Obs
module Parser = Chase_logic.Parser
module Tracectx = Chase_obs.Tracectx

type config = {
  spool_dir : string;  (** the standby's spool — the state received *)
  socket : string;  (** where the shipper connects *)
  cert_interval : float;  (** certification cadence; 0 disables *)
  metrics : string option;
  trace_shard : string option;  (** this process's trace-shard JSONL *)
}

let config ?(cert_interval = 0.25) ?metrics ?trace_shard ~spool_dir ~socket () =
  { spool_dir; socket; cert_interval; metrics; trace_shard }

type t = {
  cfg : config;
  listener : Unix.file_descr;
  obs : Obs.t;
  obs_close : unit -> unit;
  obs_mu : Mutex.t;
  shard : Tracectx.Shard.writer option;
  mu : Mutex.t;
  mutable conn : Unix.file_descr option;
  mutable sessions : int;
  mutable applied : int;
  mutable dups : int;
  mutable nacks : int;
  mutable certified : int;  (** journals that certified at least once *)
  mutable cert_fails : int;
  mutable last_error : string option;
  mutable stop : bool;
  cert_state : (string, int * bool) Hashtbl.t;
      (** journal name -> (size last certified, passed) *)
  mutable accepter : Thread.t option;
  mutable certifier : Thread.t option;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let with_obs t f =
  Mutex.lock t.obs_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.obs_mu) (fun () -> f t.obs)

(* ------------------------------------------------------------------ *)
(* Applying one validated frame                                        *)
(* ------------------------------------------------------------------ *)

let apply t (s : Shipframe.ship) =
  let path = Filename.concat t.cfg.spool_dir s.Shipframe.name in
  match s.Shipframe.kind with
  | Shipframe.File ->
    Fsutil.write_atomic path s.Shipframe.data;
    Ok ()
  | Shipframe.Delete ->
    (try Sys.remove path with Sys_error _ -> ());
    Fsutil.fsync_dir t.cfg.spool_dir;
    Ok ()
  | Shipframe.Journal 0 ->
    (* replace: a resync or a post-compaction reset *)
    Fsutil.write_atomic path s.Shipframe.data;
    Ok ()
  | Shipframe.Journal off -> (
    let size =
      try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> -1
    in
    if size <> off then
      Error (Fmt.str "journal %s is %d bytes, frame expects %d"
               s.Shipframe.name size off)
    else
      match
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
      with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Fmt.str "cannot append to %s: %s" s.Shipframe.name
                 (Unix.error_message e))
      | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let b = Bytes.of_string s.Shipframe.data in
            let n = Bytes.length b in
            let pos = ref 0 in
            while !pos < n do
              pos := !pos + Unix.write fd b !pos (n - !pos)
            done;
            (try Unix.fsync fd with Unix.Unix_error _ -> ());
            Ok ()))

(* ------------------------------------------------------------------ *)
(* One shipping session                                                *)
(* ------------------------------------------------------------------ *)

let send fd msg =
  try Proto.write_frame fd (Shipframe.encode msg); true
  with Unix.Unix_error _ -> false

let serve_conn t fd =
  let expected = ref 1 in
  let nack why =
    locked t (fun () ->
        t.nacks <- t.nacks + 1;
        t.last_error <- Some why);
    with_obs t (fun obs -> Obs.incr obs "repl.nacks");
    ignore (send fd (Shipframe.Nack (!expected, why)))
  in
  let rec loop () =
    if t.stop then ()
    else
      match Proto.read_frame fd with
      | exception Unix.Unix_error _ -> ()
      | `Closed -> ()
      | `Bad _ -> () (* transport desync: drop; shipper reconnects *)
      | `Frame payload -> (
        match Shipframe.decode payload with
        | Error why ->
          (* structural reject — bad CRC lands here — and the nack is
             the re-request: the shipper restarts with a full resync *)
          nack why
        | Ok (Shipframe.Hello n) ->
          locked t (fun () -> t.sessions <- t.sessions + 1);
          with_obs t (fun obs ->
              Obs.incr obs "repl.sessions";
              Obs.set_gauge obs "repl.session" (float_of_int n));
          expected := 1;
          loop ()
        | Ok (Shipframe.Ack _) | Ok (Shipframe.Nack _) ->
          nack "unexpected ack/nack from shipper"
        | Ok (Shipframe.Ship s) ->
          if s.Shipframe.seq < !expected then begin
            (* duplicate delivery: already applied; keep the
               cumulative ack monotone and move on *)
            locked t (fun () -> t.dups <- t.dups + 1);
            with_obs t (fun obs -> Obs.incr obs "repl.dups");
            if send fd (Shipframe.Ack (!expected - 1)) then loop ()
          end
          else if s.Shipframe.seq > !expected then
            nack
              (Fmt.str "sequence gap: got %d, expected %d" s.Shipframe.seq
                 !expected)
          else (
            let ts_us = Tracectx.now_us () in
            match apply t s with
            | Error why -> nack why
            | Ok () ->
              incr expected;
              locked t (fun () -> t.applied <- t.applied + 1);
              with_obs t (fun obs ->
                  Obs.incr obs "repl.applied";
                  Obs.observe obs "repl.lag"
                    (float_of_int (max 0 (s.Shipframe.head - s.Shipframe.seq))));
              (* a traced frame: the apply becomes a span of the
                 request's own trace, parented on the primary's ctx *)
              (match (t.shard, s.Shipframe.trace) with
              | Some w, Some tc -> (
                match Tracectx.of_string tc with
                | None -> ()
                | Some parent ->
                  let ctx = Tracectx.child parent in
                  Tracectx.Shard.span w ~ctx ~parent:parent.Tracectx.span
                    ~name:"receiver.apply" ~ts_us
                    ~dur_us:(Tracectx.now_us () -. ts_us)
                    ~args:
                      [
                        ("name", Chase_obs.Jsonv.String s.Shipframe.name);
                        ( "lag",
                          Chase_obs.Jsonv.Int
                            (max 0 (s.Shipframe.head - s.Shipframe.seq)) );
                      ]
                    ())
              | _ -> ());
              if send fd (Shipframe.Ack s.Shipframe.seq) then loop ()))
  in
  loop ()

let accept_loop t =
  let rec loop () =
    if t.stop then ()
    else
      match Unix.accept t.listener with
      | exception Unix.Unix_error _ -> () (* listener closed: stop *)
      | fd, _ when t.stop ->
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | fd, _ ->
        locked t (fun () -> t.conn <- Some fd);
        (try serve_conn t fd with _ -> ());
        locked t (fun () -> t.conn <- None);
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Continuous certification                                            *)
(* ------------------------------------------------------------------ *)

let read_file path =
  match open_in_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None

(* Re-derive the journal against the program of its own shipped [.req]:
   the same certification path boot recovery runs, minus any repair —
   the standby must never mutate what the primary shipped. *)
let certify_one t name =
  let jnl = Filename.concat t.cfg.spool_dir name in
  let key = Filename.chop_suffix name ".jnl" in
  let req_path = Filename.concat t.cfg.spool_dir (key ^ ".req") in
  match read_file req_path with
  | None -> None (* request not shipped yet: certify later *)
  | Some bytes -> (
    match Proto.decode_request bytes with
    | Error why -> Some (Error (Fmt.str "unreadable .req: %s" why))
    | Ok req -> (
      let variant =
        match Option.bind req.Proto.variant Variant.of_string with
        | Some v -> v
        | None -> Variant.Oblivious
      in
      match Parser.parse_program req.Proto.program with
      | Error why -> Some (Error (Fmt.str "unparseable program: %s" why))
      | Ok (rules, db) -> (
        let snapshot =
          let s = jnl ^ ".snap" in
          if Sys.file_exists s then Some s else None
        in
        match
          Recovery.recover ?snapshot ~repair:false ~journal:jnl ~variant
            ~rules ~db ()
        with
        | Ok report -> Some (Ok report.Recovery.journal_step)
        | Error why -> Some (Error why))))

let certify_sweep t =
  match Sys.readdir t.cfg.spool_dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        if Filename.check_suffix name ".jnl" then begin
          let size =
            try (Unix.stat (Filename.concat t.cfg.spool_dir name)).Unix.st_size
            with Unix.Unix_error _ -> -1
          in
          let due =
            size >= 0
            && locked t (fun () ->
                   match Hashtbl.find_opt t.cert_state name with
                   | Some (s, _) when s = size -> false
                   | _ -> true)
          in
          if due then
            match certify_one t name with
            | None -> ()
            | Some (Ok step) ->
              locked t (fun () ->
                  let first =
                    match Hashtbl.find_opt t.cert_state name with
                    | Some (_, true) -> false
                    | _ -> true
                  in
                  if first then t.certified <- t.certified + 1;
                  Hashtbl.replace t.cert_state name (size, true));
              with_obs t (fun obs ->
                  Obs.incr obs "repl.certified";
                  Obs.set_gauge obs "repl.certified_step" (float_of_int step))
            | Some (Error why) ->
              locked t (fun () ->
                  t.cert_fails <- t.cert_fails + 1;
                  t.last_error <- Some why;
                  Hashtbl.replace t.cert_state name (size, false));
              with_obs t (fun obs -> Obs.incr obs "repl.cert_fail")
        end)
      names

let certify_loop t =
  while not t.stop do
    (try certify_sweep t with _ -> ());
    Thread.delay t.cfg.cert_interval
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Unix.mkdir cfg.spool_dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listener 8;
  let obs, obs_close =
    match Obs.files ?metrics:cfg.metrics () with
    | Ok pair -> pair
    | Error _ -> (Obs.disabled, ignore)
  in
  let shard =
    Option.map (Tracectx.Shard.open_ ~proc:"receiver") cfg.trace_shard
  in
  let t =
    {
      cfg;
      listener;
      obs;
      obs_close;
      obs_mu = Mutex.create ();
      shard;
      mu = Mutex.create ();
      conn = None;
      sessions = 0;
      applied = 0;
      dups = 0;
      nacks = 0;
      certified = 0;
      cert_fails = 0;
      last_error = None;
      stop = false;
      cert_state = Hashtbl.create 16;
      accepter = None;
      certifier = None;
    }
  in
  t.accepter <- Some (Thread.create (fun () -> accept_loop t) ());
  if cfg.cert_interval > 0. then
    t.certifier <- Some (Thread.create (fun () -> certify_loop t) ());
  t

let stop t =
  if not t.stop then begin
    t.stop <- true;
    (* wake the accept loop: neither close nor shutdown does, on an
       AF_UNIX listener — a throwaway connection does *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket)
        with Unix.Unix_error _ -> ());
       try Unix.close fd with Unix.Unix_error _ -> ()
     with Unix.Unix_error _ -> ());
    (match locked t (fun () -> t.conn) with
    | Some fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accepter;
    Option.iter Thread.join t.certifier;
    Option.iter Tracectx.Shard.close t.shard;
    (* final metric summaries — the artifact obs_check validates *)
    Mutex.lock t.obs_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.obs_mu)
      (fun () -> t.obs_close ());
    try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ()
  end

let last_error t = locked t (fun () -> t.last_error)

let stats t =
  locked t (fun () ->
      [
        ("applied", t.applied);
        ("cert_fails", t.cert_fails);
        ("certified", t.certified);
        ("dups", t.dups);
        ("nacks", t.nacks);
        ("sessions", t.sessions);
      ])
