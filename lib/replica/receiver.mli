(** The standby side of replication: accepts one shipper at a time,
    validates every frame structurally (sequencing, name hygiene, CRC)
    and applies it idempotently to its own spool — duplicates are
    re-acked without re-applying, anything corrupt or out of order
    draws a structured nack (which is the re-request: the shipper
    answers with a full-resync session).  A background thread
    continuously re-certifies every received journal through
    {!Chase_persist.Recovery} (repair disabled) against its shipped
    [.req] program, and each frame's [head - seq] lands in the
    [repl.lag] metric histogram. *)

type config = {
  spool_dir : string;
  socket : string;
  cert_interval : float;  (** certification cadence; 0 disables *)
  metrics : string option;  (** JSONL metrics file (chase-metrics/1) *)
  trace_shard : string option;
      (** trace-shard JSONL: traced ship frames yield [receiver.apply]
          spans parented on the primary's server span *)
}

val config :
  ?cert_interval:float ->
  ?metrics:string ->
  ?trace_shard:string ->
  spool_dir:string ->
  socket:string ->
  unit ->
  config

type t

val start : config -> t
val stop : t -> unit
(** Close everything and write final metric summaries. *)

val last_error : t -> string option
(** The most recent nack reason or certification failure. *)

val stats : t -> (string * int) list
(** [applied], [cert_fails], [certified], [dups], [nacks], [sessions]
    — sorted by name. *)
