(** A standby chase daemon: a {!Receiver} soaking up the primary's
    durable state, plus a stub request loop on the {e service} socket
    that answers control ops only — work is refused with a structured
    error naming the condition, so a failover client can tell "standby"
    from "dead".

    Promotion is the whole point: on [promote] (the wire op, or
    {!promote} in process) the receiver and the stub stop, and an
    ordinary {!Chase_service.Server} boots on the same spool — its
    standard boot recovery certifies every received journal by replay
    and completes every acknowledged-but-unanswered request by
    deterministic re-run from step zero.  Nothing about promotion is
    special-cased in the server: a promoted standby {e is} a primary
    that just booted, which is exactly why its responses are
    byte-identical to ones the dead primary would have produced.

    The doctrine, stated once: ship durable state, re-derive
    everything else. *)

module Proto = Chase_service.Proto
module Server = Chase_service.Server
module Jsonv = Chase_obs.Jsonv
module Telemetry = Chase_obs.Telemetry

type config = {
  server : Server.config;
      (** the server this standby becomes when promoted; its
          [spool_dir] (required) is where received state lands *)
  ship_socket : string;
  cert_interval : float;
  metrics : string option;
      (** the {e receiver's} metrics file; the promoted server runs
          with the server config's own [metrics] (usually [None] — one
          file has one owner) *)
}

let config ?(cert_interval = 0.25) ?metrics ~server ~ship_socket () =
  { server; ship_socket; cert_interval; metrics }

type state =
  | Receiving of Receiver.t
  | Promoted of Server.t

type t = {
  cfg : config;
  started : float;  (** boot wall-clock, for uptime reporting *)
  mu : Mutex.t;
  cond : Condition.t;
  mutable state : state;
  mutable listener : Unix.file_descr option;
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
  mutable stub_stopping : bool;
  mutable finished : bool;
  mutable accepter : Thread.t option;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let spool_dir cfg =
  match cfg.server.Server.spool_dir with
  | Some d -> d
  | None -> invalid_arg "Standby.start: the server config needs a spool_dir"

(* ------------------------------------------------------------------ *)
(* Promotion                                                           *)
(* ------------------------------------------------------------------ *)

(* Stop the stub listener and the receiver, then boot the real server
   on the same socket and spool.  Idempotent: a second call (or a
   [promote] op reaching an already-promoted standby) is a no-op. *)
let promote t =
  let receiver =
    locked t (fun () ->
        match t.state with
        | Promoted _ -> None
        | Receiving r ->
          t.stub_stopping <- true;
          Some r)
  in
  match receiver with
  | None -> ()
  | Some r ->
    (* order matters: no ship frame may land after boot recovery starts
       reading the spool, and the stub's listener must release the
       service socket before the server binds it *)
    Receiver.stop r;
    (match locked t (fun () -> t.listener) with
    | Some fd ->
      (try
         (* wake the stub accept loop with a throwaway connection *)
         let poke = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         (try Unix.connect poke (Unix.ADDR_UNIX t.cfg.server.Server.socket)
          with Unix.Unix_error _ -> ());
         try Unix.close poke with Unix.Unix_error _ -> ()
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    (match locked t (fun () -> t.accepter) with
    | Some th -> Thread.join th
    | None -> ());
    List.iter
      (fun fd ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      (locked t (fun () -> t.conns));
    List.iter Thread.join (locked t (fun () -> t.threads));
    (* every stub fd is closed exactly once: a later [stop] must not
       close them again (the numbers may have been reused by now) *)
    locked t (fun () ->
        t.conns <- [];
        t.threads <- [];
        t.listener <- None;
        t.accepter <- None);
    let server = Server.start t.cfg.server in
    locked t (fun () ->
        t.state <- Promoted server;
        Condition.broadcast t.cond)

(* ------------------------------------------------------------------ *)
(* The stub request loop                                               *)
(* ------------------------------------------------------------------ *)

let ok_result stdout =
  Proto.Ok_response
    { Proto.exit_code = 0; stdout; stderr = ""; cached = false }

(* The standby's ping mirrors the primary's shape (role is the
   discriminator) so `chasec ping` renders either end uniformly. *)
let ping_body t =
  Jsonv.to_string
    (Jsonv.Obj
       [
         ("pong", Jsonv.Bool true);
         ("role", Jsonv.String "standby");
         ("build", Jsonv.String Telemetry.build_id);
         ( "uptime_s",
           Jsonv.Float
             (Float.round ((Unix.gettimeofday () -. t.started) *. 1000.)
             /. 1000.) );
         ("pid", Jsonv.Int (Unix.getpid ()));
         ("socket", Jsonv.String t.cfg.server.Server.socket);
         ("spool", Jsonv.String (spool_dir t.cfg));
       ])

(* A telemetry snapshot from the stub: the receiver's (or promoted
   server's) live counters poured into a registry, same schema the
   primary serves, with role=standby telling the ends apart. *)
let telemetry_body t req =
  let m = Chase_obs.Metrics.create () in
  (match locked t (fun () -> t.state) with
  | Receiving r ->
    List.iter
      (fun (k, v) -> Chase_obs.Metrics.incr m ~by:v ("repl." ^ k))
      (Receiver.stats r)
  | Promoted s ->
    List.iter
      (fun (k, v) -> Chase_obs.Metrics.incr m ~by:v ("svc." ^ k))
      (Server.stats s));
  let extra = [ ("role", Jsonv.String "standby") ] in
  let uptime_s = Unix.gettimeofday () -. t.started in
  match req.Proto.variant with
  | Some "prom" -> Telemetry.prometheus ~extra ~uptime_s m
  | _ -> Telemetry.json ~extra ~uptime_s m ^ "\n"

let stats_json t =
  let counters =
    match locked t (fun () -> t.state) with
    | Receiving r -> Receiver.stats r
    | Promoted s -> Server.stats s
  in
  Jsonv.to_string
    (Jsonv.Obj
       (("role", Jsonv.String "standby")
       :: List.map (fun (k, v) -> (k, Jsonv.Int v)) counters))

let handle_stub_conn t fd =
  let respond ~id resp =
    try Proto.write_frame fd (Proto.encode_response ~id resp)
    with Unix.Unix_error _ -> ()
  in
  let rec loop () =
    if t.stub_stopping then ()
    else
      match Proto.read_frame fd with
      | exception Unix.Unix_error _ -> ()
      | `Closed -> ()
      | `Bad msg -> respond ~id:"0" (Proto.Bad_frame msg)
      | `Frame payload -> (
        match Proto.decode_request payload with
        | Error msg ->
          respond ~id:"0" (Proto.Bad_request msg);
          loop ()
        | Ok req -> (
          let id = req.Proto.id in
          match req.Proto.op with
          | Proto.Ping ->
            respond ~id (ok_result (ping_body t ^ "\n"));
            loop ()
          | Proto.Stats ->
            respond ~id (ok_result (stats_json t ^ "\n"));
            loop ()
          | Proto.Telemetry ->
            respond ~id (ok_result (telemetry_body t req));
            loop ()
          | Proto.Promote ->
            (* answer first: the promoting client's next step is to
               retry its request against the (re)bound socket, and its
               connect-retry loop rides out the boot recovery *)
            respond ~id (ok_result "promoted\n");
            ignore (Thread.create (fun () -> promote t) ())
          | Proto.Shutdown ->
            respond ~id (ok_result "bye\n");
            ignore
              (Thread.create
                 (fun () ->
                   locked t (fun () -> t.stub_stopping <- true);
                   (match locked t (fun () -> t.state) with
                   | Receiving r -> Receiver.stop r
                   | Promoted _ -> ());
                   (match locked t (fun () -> t.listener) with
                   | Some l ->
                     (try Unix.close l with Unix.Unix_error _ -> ())
                   | None -> ());
                   locked t (fun () ->
                       t.finished <- true;
                       Condition.broadcast t.cond))
                 ())
          | Proto.Decide | Proto.Chase | Proto.Lint | Proto.Query ->
            (* the structured refusal a failover client keys on *)
            respond ~id
              (Proto.Server_error "standby: not serving requests (promote first)");
            loop ()))
  in
  loop ()

let stub_accept_loop t listener =
  let rec loop () =
    if t.stub_stopping then ()
    else
      match Unix.accept listener with
      | exception Unix.Unix_error _ -> ()
      | fd, _ when t.stub_stopping ->
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | fd, _ ->
        let th = Thread.create (fun () -> handle_stub_conn t fd) () in
        locked t (fun () ->
            t.conns <- fd :: t.conns;
            t.threads <- th :: t.threads);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let dir = spool_dir cfg in
  let receiver =
    Receiver.start
      (Receiver.config ~cert_interval:cfg.cert_interval ?metrics:cfg.metrics
         ?trace_shard:cfg.server.Server.trace_shard ~spool_dir:dir
         ~socket:cfg.ship_socket ())
  in
  (try Unix.unlink cfg.server.Server.socket with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX cfg.server.Server.socket);
  Unix.listen listener 16;
  let t =
    {
      cfg;
      started = Unix.gettimeofday ();
      mu = Mutex.create ();
      cond = Condition.create ();
      state = Receiving receiver;
      listener = Some listener;
      conns = [];
      threads = [];
      stub_stopping = false;
      finished = false;
      accepter = None;
    }
  in
  t.accepter <- Some (Thread.create (fun () -> stub_accept_loop t listener) ());
  t

let receiver t =
  match locked t (fun () -> t.state) with
  | Receiving r -> Some r
  | Promoted _ -> None

let server t =
  match locked t (fun () -> t.state) with
  | Promoted s -> Some s
  | Receiving _ -> None

let is_promoted t = Option.is_some (server t)

let wait t =
  match locked t (fun () -> t.state) with
  | Promoted s -> Server.wait s
  | Receiving _ ->
    Mutex.lock t.mu;
    while not (t.finished || match t.state with Promoted _ -> true | _ -> false) do
      Condition.wait t.cond t.mu
    done;
    let state = t.state in
    Mutex.unlock t.mu;
    (match state with Promoted s -> Server.wait s | Receiving _ -> ())

let stop ?(graceful = true) t =
  locked t (fun () -> t.stub_stopping <- true);
  (match locked t (fun () -> t.listener) with
  | Some l ->
    (try
       let poke = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect poke (Unix.ADDR_UNIX t.cfg.server.Server.socket)
        with Unix.Unix_error _ -> ());
       try Unix.close poke with Unix.Unix_error _ -> ()
     with Unix.Unix_error _ -> ());
    (try Unix.close l with Unix.Unix_error _ -> ())
  | None -> ());
  (match locked t (fun () -> t.accepter) with
  | Some th -> Thread.join th
  | None -> ());
  List.iter
    (fun fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    (locked t (fun () -> t.conns));
  List.iter Thread.join (locked t (fun () -> t.threads));
  locked t (fun () ->
      t.conns <- [];
      t.threads <- [];
      t.listener <- None;
      t.accepter <- None);
  (match locked t (fun () -> t.state) with
  | Receiving r -> Receiver.stop r
  | Promoted s -> Server.stop ~graceful s);
  (try Unix.unlink t.cfg.server.Server.socket with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.finished <- true;
      Condition.broadcast t.cond)
