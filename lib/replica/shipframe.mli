(** Payload codec of the primary→standby replication stream (framing is
    {!Chase_service.Proto}'s length-prefixed JSON).  Binary payloads
    travel hex-encoded and carry a CRC-32 over the decoded bytes;
    {!decode} rejects corruption structurally, before anything is
    applied.  Sequence numbers are 1-based {e per session}; a session
    ([Hello]) restarts on every reconnect, nack or overflow and always
    re-ships the complete durable state, so idempotent application is
    the receiver's only correctness obligation. *)

type kind =
  | File  (** a whole spool file, published atomically *)
  | Journal of int
      (** journal bytes at this offset; 0 replaces the file, any other
          offset must equal the receiver's current size *)
  | Delete

type ship = {
  seq : int;  (** 1-based within the session *)
  head : int;  (** shipper's highest enqueued seq at send time *)
  kind : kind;
  name : string;  (** flat file name inside the spool directory *)
  data : string;  (** raw bytes (empty for [Delete]) *)
  trace : string option;
      (** distributed trace context of the request that made these
          bytes durable; absent for resyncs and trace-unaware
          primaries — the encoding omits it, so frames from old peers
          stay byte-identical *)
}

type msg =
  | Hello of int  (** session number; resets the receiver to seq 1 *)
  | Ship of ship
  | Ack of int  (** cumulative *)
  | Nack of int * string  (** expected seq + reason; forces a resync *)

val valid_name : string -> bool
(** No path separators, no leading dot, 1–255 bytes. *)

val encode : msg -> string

val decode : string -> (msg, string) result
(** Rejects malformed JSON, unknown types, invalid names, odd or
    non-hex payloads, and CRC mismatches. *)

val pp : Format.formatter -> msg -> unit
