(** Client-side failover across a replicated pair: try each server in
    order; a dead server (retries exhausted) falls through to the
    next, a standby's structured refusal triggers promotion (when
    [promote], the default) followed by a re-send.  Safe because
    requests are idempotent by key and acknowledged durable requests
    were shipped before their ack — the promoted standby re-derives
    byte-identical responses. *)

type outcome = {
  server : string;  (** the socket that served the final response *)
  promoted : bool;  (** this call promoted it first *)
  failovers : int;  (** servers given up on before this one *)
  response : Chase_service.Proto.response;  (** always [Ok_response] *)
}

type failure =
  | Rejected of {
      server : string;
      response : Chase_service.Proto.response;
    }  (** a live server definitively refused the request *)
  | All_down of (string * string) list
      (** per-server last error, in the order tried *)

val pp_failure : Format.formatter -> failure -> unit

val call :
  ?attempts_per_server:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?seed:int ->
  ?promote:bool ->
  ?on_progress:(Chase_service.Proto.progress -> unit) ->
  ?on_event:(string -> unit) ->
  servers:string list ->
  Chase_service.Proto.request ->
  (outcome, failure) result
(** [on_event] narrates failover decisions (promotions, servers given
    up on) for a verbose CLI. *)
