(** Client-side failover across a replicated pair (or chain): try each
    server in order, distinguish {e dead} (connection attempts
    exhausted) from {e standby} (the structured ["standby: …"]
    refusal), and — when allowed — promote the first live standby
    found and re-send the request to it.

    Safe for the same reason single-server retries are safe: requests
    are idempotent by key, and a durable request acknowledged by the
    dead primary was shipped to the standby before the ack, so the
    promoted standby re-derives the {e same} response bytes (boot
    recovery re-runs from step zero).  An unacknowledged request was
    never promised to anyone, and simply runs fresh on the new
    primary.

    Streaming doubles as liveness: with [rcv_timeout] set the caller's
    progress frames bound how long a silent, wedged primary can hold
    the client; a timeout is a retryable failure that falls through to
    the next server. *)

module Proto = Chase_service.Proto
module Client = Chase_service.Client

type outcome = {
  server : string;  (** the socket that served the final response *)
  promoted : bool;  (** this call promoted it first *)
  failovers : int;  (** servers given up on before this one *)
  response : Proto.response;  (** always [Proto.Ok_response] *)
}

type failure =
  | Rejected of { server : string; response : Proto.response }
      (** a live primary definitively refused the request *)
  | All_down of (string * string) list
      (** per-server last error, in the order tried *)

let pp_failure fm = function
  | Rejected { server; response } ->
    Fmt.pf fm "%s rejected: %a" server Proto.pp_response response
  | All_down log ->
    Fmt.pf fm "no server answered:@ %a"
      (Fmt.list ~sep:Fmt.semi (fun fm (s, e) -> Fmt.pf fm "%s: %s" s e))
      log

let is_standby_refusal = function
  | Proto.Server_error msg ->
    String.length msg >= 8 && String.sub msg 0 8 = "standby:"
  | _ -> false

(* Send [promote] with a short retry budget of its own. *)
let try_promote ?(seed = 0) ~socket () =
  match
    Client.call_retry ~attempts:3 ~seed ~socket
      (Proto.request ~id:"promote" Proto.Promote)
  with
  | Ok (Proto.Ok_response _) -> true
  | Ok _ | Error _ -> false

let call ?(attempts_per_server = 3) ?(base_delay = 0.05) ?(max_delay = 2.0)
    ?(seed = 0) ?(promote = true) ?on_progress
    ?(on_event = fun (_ : string) -> ()) ~servers req =
  let rec go failovers log = function
    | [] -> Error (All_down (List.rev log))
    | socket :: rest -> (
      let attempt () =
        Client.call_retry ~attempts:attempts_per_server ~base_delay ~max_delay
          ~seed ?on_progress ~socket req
      in
      match attempt () with
      | Ok response -> Ok { server = socket; promoted = false; failovers; response }
      | Error (Client.Rejected resp) when is_standby_refusal resp ->
        if promote && try_promote ~seed ~socket () then begin
          on_event (Fmt.str "promoted %s" socket);
          match attempt () with
          | Ok response ->
            Ok { server = socket; promoted = true; failovers; response }
          | Error (Client.Rejected resp) ->
            Error (Rejected { server = socket; response = resp })
          | Error (Client.Gave_up { last; _ }) ->
            on_event (Fmt.str "%s: %s" socket last);
            go (failovers + 1) ((socket, last) :: log) rest
        end
        else begin
          on_event (Fmt.str "%s is a standby" socket);
          go (failovers + 1) ((socket, "standby") :: log) rest
        end
      | Error (Client.Rejected resp) ->
        Error (Rejected { server = socket; response = resp })
      | Error (Client.Gave_up { last; _ }) ->
        on_event (Fmt.str "%s: %s" socket last);
        go (failovers + 1) ((socket, last) :: log) rest)
  in
  go 0 [] servers
