(** The primary side of replication: streams the durable spool
    (request/response files, write-ahead journals, snapshots) to a
    standby {!Receiver} as {!Shipframe} messages.

    Semi-synchronous by default: the server's [on_durable] hook blocks
    the client acknowledgement until the standby confirms the shipped
    bytes or [sync_timeout] elapses — after which shipping degrades to
    asynchronous (recorded as the [repl.lagging] metric and in
    {!stats}) instead of stalling the primary.  Every (re)connect
    ships the complete durable state; the bounded queue overflows into
    exactly that resync path. *)

type config = {
  spool_dir : string;
  ship_socket : string;
  sync_timeout : float;  (** 0 = fully asynchronous *)
  buffer_cap : int;
  poll_interval : float;  (** journal tailer cadence *)
  connect_retry : float;
  faults : Chase_engine.Faults.replica_fault list;
}

val config :
  ?sync_timeout:float ->
  ?buffer_cap:int ->
  ?poll_interval:float ->
  ?connect_retry:float ->
  ?faults:Chase_engine.Faults.replica_fault list ->
  spool_dir:string ->
  ship_socket:string ->
  unit ->
  config

type t

val start :
  ?obs:Chase_obs.Obs.t -> ?shard:Chase_obs.Tracectx.Shard.writer -> config -> t
(** Spawns the sender (connect → hello → resync → drain) and the
    journal tailer.  A missing standby is retried forever — the
    primary serves regardless.  [shard] receives a [shipper.sync] span
    per hook-path ship carrying the ship→ack latency. *)

val on_durable :
  t -> [ `Req | `Resp ] -> key:string -> trace:string option -> string -> unit
(** Wire this as the server's [on_durable] hook.  Ships the bytes and,
    in semi-sync mode, waits for the standby's ack up to
    [sync_timeout].  [trace] — the request's span context — rides the
    ship frame so the standby's apply spans join the same trace. *)

val quiesce : t -> timeout:float -> bool
(** Wait until everything enqueued so far is acked ([true]) or the
    timeout passes ([false]). *)

val stop : t -> unit

val stats : t -> (string * int) list
(** [degraded], [enqueued], [laggings], [overflows], [queue], [sent],
    [sessions], [synced] — sorted by name. *)
