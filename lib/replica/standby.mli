(** A standby chase daemon: a {!Receiver} on the ship socket plus a
    stub loop on the service socket answering control ops only (work
    draws the structured ["standby: …"] refusal a failover client keys
    on).  On [promote] — the wire op or {!promote} — the receiver and
    stub stop and an ordinary {!Chase_service.Server} boots on the
    same spool: its standard boot recovery certifies every received
    journal by replay and completes every acknowledged request by
    deterministic re-run from step zero, so a promoted standby's
    responses are byte-identical to the dead primary's. *)

type config = {
  server : Chase_service.Server.config;
      (** the server this standby becomes; its [spool_dir] (required)
          receives the shipped state *)
  ship_socket : string;
  cert_interval : float;
  metrics : string option;  (** the receiver's metrics file *)
}

val config :
  ?cert_interval:float ->
  ?metrics:string ->
  server:Chase_service.Server.config ->
  ship_socket:string ->
  unit ->
  config

type t

val start : config -> t
(** @raise Invalid_argument when the server config has no spool_dir. *)

val promote : t -> unit
(** Stop receiving, boot the server, run boot recovery.  Idempotent. *)

val is_promoted : t -> bool

val receiver : t -> Receiver.t option
(** [None] once promoted. *)

val server : t -> Chase_service.Server.t option
(** [None] until promoted. *)

val wait : t -> unit
(** Block until shut down (through promotion, if one happens). *)

val stop : ?graceful:bool -> t -> unit
