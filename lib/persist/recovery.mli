(** Deterministic recovery: latest valid snapshot + journal tail →
    a restored {!Engine.resume} state, certified with
    {!Engine.check_provenance} before the chase continues.  Torn or
    corrupt tails are truncated (or the journal rewritten when the
    snapshot is ahead of it) rather than treated as failures. *)

open Chase_logic

type report = {
  header : Journal.header;
  resume : Chase_engine.Engine.resume;
  history : Codec.step_record list;  (** the recovered, validated history *)
  snapshot_step : int;  (** last step held by the snapshot; 0 if none *)
  journal_step : int;  (** last step of the journal's valid prefix *)
  torn : (int * string) option;
      (** byte offset and reason when a corrupt tail was detected *)
  repaired : bool;  (** the journal file was truncated or rewritten *)
}

val pp_report : Format.formatter -> report -> unit

val replay :
  rules:Tgd.t list ->
  db:Atom.t list ->
  Codec.step_record list ->
  (Chase_engine.Engine.resume, string) result
(** Replay a history, re-deriving every step and cross-checking it
    against the recorded creations — the integrity check behind
    {!recover}, exposed for tests. *)

val recover :
  ?snapshot:string ->
  ?repair:bool ->
  journal:string ->
  variant:Chase_engine.Variant.t ->
  rules:Tgd.t list ->
  db:Atom.t list ->
  unit ->
  (report, string) result
(** [Error] when the journal is missing, has a bad magic or corrupt
    header, identifies a different program (digest mismatch), or its
    records do not replay; a torn {e tail} is not an error.  [repair]
    (default [true]) truncates/rewrites the journal file to the
    recovered history so subsequent appends continue a well-formed
    file. *)
