(** The write-ahead derivation journal: an append-only file of
    length-prefixed, CRC-32-checksummed records, one per trigger
    application, preceded by a header identifying the run (variant and
    digests of the rule set and database).  Reading tolerates a torn or
    corrupt tail — it reports the truncation point instead of failing —
    and a writer can be armed with a {!Faults.write_fault} to simulate a
    crash at a chosen record through the real write path. *)

open Chase_logic

(** {1 Run identity} *)

type header = {
  variant : Chase_engine.Variant.t;
  rules_digest : string;  (** MD5 hex of the canonical rule text *)
  db_digest : string;  (** MD5 hex of the sorted database text *)
  rule_count : int;
}

val header_of :
  variant:Chase_engine.Variant.t -> rules:Tgd.t list -> db:Atom.t list -> header

val matches :
  header ->
  variant:Chase_engine.Variant.t ->
  rules:Tgd.t list ->
  db:Atom.t list ->
  (unit, string) result
(** Refuse a resume against the wrong variant, rule set or database. *)

val pp_header : Format.formatter -> header -> unit

val encode_header : header -> string
(** Raw header payload (shared with {!Snapshot}'s embedding). *)

val decode_header_reader : Codec.reader -> header
(** @raise Codec.Corrupt on a malformed header. *)

(** {1 Writing} *)

type writer

val create :
  ?fsync_every:int ->
  ?fault:Chase_engine.Faults.write_fault ->
  ?faults:Chase_engine.Faults.write_fault list ->
  ?obs:Chase_obs.Obs.t ->
  string ->
  header ->
  writer
(** Truncate/create the file and write magic + header.  [fsync_every] is
    the number of appends between [fsync]s (default 64; 0 = only on
    {!sync}/{!close}); every append is flushed to the OS regardless.
    [fault]/[faults] arm simulated write faults; they compose with any
    faults armed for this path in {!Chase_engine.Faults.Writes}, so a
    harness can target one journal among many by path alone.  [obs]
    records append/fsync latency histograms ([journal.append_s],
    [journal.fsync_s]) and record/byte counters. *)

val open_append :
  ?fsync_every:int ->
  ?fault:Chase_engine.Faults.write_fault ->
  ?faults:Chase_engine.Faults.write_fault list ->
  ?obs:Chase_obs.Obs.t ->
  string ->
  writer
(** Append to an existing journal (validated beforehand by recovery). *)

val append : writer -> Codec.step_record -> unit
(** @raise Faults.Crash when an armed write fault schedules the simulated
    process death at this record (after its — possibly partial — bytes
    reached the file). *)

val sync : writer -> unit
val close : writer -> unit

(** {1 Reading} *)

type tail =
  | Clean
  | Torn of {
      offset : int;  (** byte offset of the first unusable frame *)
      reason : string;
    }

val pp_tail : Format.formatter -> tail -> unit

val read : string -> (header * Codec.step_record list * tail, string) result
(** The valid prefix of the journal.  [Error] only for a missing file, an
    unreadable file, a bad magic or a corrupt header; any later damage —
    short frame, checksum mismatch, undecodable payload, out-of-order
    step — ends the prefix and is reported as the {!tail}. *)

val truncate_at : string -> int -> unit
(** Physically truncate the file at the byte offset (drop a torn tail
    before appending again). *)

val rewrite : string -> header -> Codec.step_record list -> unit
(** Atomically replace the journal with exactly the given history
    (write-to-temp + rename + directory fsync) — used when recovery's
    best history does not coincide with the journal's valid prefix. *)

val tail : string -> offset:int -> (string * int, string) result
(** [tail path ~offset] follows a journal that may still be growing:
    the raw bytes of every {e complete} frame past [offset] (never a
    torn tail), plus the new offset to resume from.  [offset = 0]
    includes the magic and header frame, so the concatenation of
    successive tails is a byte-identical, always-valid journal prefix —
    the unit the replication shipper sends.  [offset] must be 0 or a
    value returned by a previous [tail]. *)
