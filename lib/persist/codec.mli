(** Binary encoding for the durability subsystem: CRC-32, varints,
    length-prefixed strings, terms/atoms/substitutions, and the journal's
    step records.  Decoding failures raise {!Corrupt}; the journal reader
    converts them into torn-tail truncation points rather than failures. *)

open Chase_logic

exception Corrupt of string

val corrupt : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format and raise {!Corrupt}. *)

module Crc32 : sig
  val digest : ?pos:int -> ?len:int -> string -> int
  (** CRC-32 (IEEE 802.3) of a substring; the digest of [""] is 0. *)
end

(** {1 Primitive writers and readers} *)

val put_u32 : Buffer.t -> int -> unit
(** Little-endian, low 32 bits. *)

val put_varint : Buffer.t -> int -> unit
(** LEB128; @raise Invalid_argument on a negative value. *)

val put_string : Buffer.t -> string -> unit

type reader

val reader : ?pos:int -> string -> reader
val at_end : reader -> bool
val get_u32 : reader -> int
val get_varint : reader -> int
val get_string : reader -> string

val put_term : Buffer.t -> Term.t -> unit
val get_term : reader -> Term.t
val put_atom : Buffer.t -> Atom.t -> unit
val get_atom : reader -> Atom.t
val put_bindings : Buffer.t -> Subst.t -> unit
val get_bindings : reader -> Subst.t

(** {1 Journal step records} *)

(** One trigger application, as journaled: enough to replay the step
    deterministically and to cross-check the replay against what the
    engine actually did. *)
type step_record = {
  step : int;  (** global step number, 1-based, contiguous *)
  rule_index : int;  (** index into the run's rule list *)
  rule_name : string;  (** redundant, for integrity checking *)
  hom : Subst.t;  (** the full body homomorphism of the trigger *)
  depth : int;  (** derivation depth of the created facts *)
  created_nulls : int list;  (** stamps, ascending, contiguous globally *)
  created_atoms : Atom.t list;  (** facts actually added (possibly none) *)
}

val encode_step : step_record -> string
val decode_step : string -> step_record
(** @raise Corrupt on any malformed payload. *)

val pp_step : Format.formatter -> step_record -> unit
