(** Durable filesystem plumbing shared by every write-temp / fsync /
    rename site in the persistence and service layers.

    The subtlety this module exists for: [rename] alone is atomic but
    not durable — after a power loss the {e directory entry} may still
    be the old one unless the parent directory itself is fsynced.  A
    snapshot or spool file "published" by rename without {!fsync_dir}
    can silently vanish with the crash it was supposed to survive. *)

(** [fsync_dir dir] makes a preceding [rename]/[unlink] in [dir]
    durable.  Errors are swallowed: some filesystems refuse to fsync a
    directory fd, and the write itself already succeeded — degrading to
    rename-without-directory-durability is the best available there. *)
let fsync_dir dir =
  match Unix.openfile dir [ O_RDONLY; O_CLOEXEC ] 0 with
  | dirfd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close dirfd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync dirfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(** [rename_durable tmp path]: atomic publish + durable directory
    entry.  [tmp] and [path] must share a parent. *)
let rename_durable tmp path =
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

(** Full write-temp / fsync / rename / fsync-dir cycle: after
    [write_atomic path data] returns, [path] holds exactly [data] and
    survives a power loss; a kill at any point leaves either the old
    file or [.tmp] litter, never a torn visible file. *)
let write_atomic path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.of_string data in
      let pos = ref 0 in
      while !pos < Bytes.length b do
        pos := !pos + Unix.write fd b !pos (Bytes.length b - !pos)
      done;
      Unix.fsync fd);
  rename_durable tmp path
