(** Atomic snapshots of a chase in progress: the run's full replayable
    history (journal header + step records up to a point) serialized as
    one CRC-32-checked blob, published with write-to-temp + [rename] so
    a reader always sees a complete snapshot or none. *)

type t = {
  header : Journal.header;
  last_step : int;  (** step number of the last record included *)
  records : Codec.step_record list;  (** steps 1..last_step, in order *)
}

val write : string -> t -> unit
(** Atomic: write-to-temp, [fsync], [rename]. *)

val read : string -> (t, string) result
(** [Error] on a missing file, bad magic, wrong length, checksum
    mismatch or undecodable payload — a damaged snapshot is simply
    unusable (recovery falls back to the journal alone). *)
