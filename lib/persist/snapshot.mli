(** Atomic snapshots of a chase in progress: the run's full replayable
    history (journal header + step records up to a point) serialized as
    one CRC-32-checked blob, published with write-to-temp + [rename] so
    a reader always sees a complete snapshot or none. *)

type t = {
  header : Journal.header;
  last_step : int;  (** step number of the last record included *)
  records : Codec.step_record list;  (** steps 1..last_step, in order *)
}

val write : ?obs:Chase_obs.Obs.t -> string -> t -> unit
(** Atomic: write-to-temp, [fsync], [rename].  [obs] records the write
    latency and size ([snapshot.write_s], [snapshot.bytes]) and a write
    counter. *)

val read : string -> (t, string) result
(** [Error] on a missing file, bad magic, wrong length, checksum
    mismatch or undecodable payload — a damaged snapshot is simply
    unusable (recovery falls back to the journal alone). *)
