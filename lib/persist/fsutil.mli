(** Durable filesystem plumbing: the write-temp / fsync / rename /
    fsync-parent-directory cycle used by every site that publishes a
    file atomically ({!Snapshot}, {!Journal.rewrite}, the service
    spool, the replication receiver). *)

val fsync_dir : string -> unit
(** [fsync_dir dir] makes a preceding [rename]/[unlink] inside [dir]
    durable across power loss.  Never raises: filesystems that refuse
    directory fsync degrade to rename-only atomicity. *)

val rename_durable : string -> string -> unit
(** [rename_durable tmp path]: [Unix.rename tmp path] followed by
    {!fsync_dir} on [path]'s parent. *)

val write_atomic : string -> string -> unit
(** [write_atomic path data]: write [data] to [path ^ ".tmp"], fsync,
    rename over [path], fsync the parent directory.  A kill at any
    point leaves the old file or [.tmp] litter, never a torn [path]. *)
