(** Deterministic recovery: latest valid snapshot + journal tail →
    a restored {!Engine.resume} state.

    The best available history is chosen (the snapshot's records when the
    journal's valid prefix is shorter, the journal's otherwise), then
    {e replayed}: every record's homomorphism must map its rule body into
    the instance built so far, the recorded null stamps must continue the
    global stamp sequence, and re-deriving the head must reproduce
    exactly the recorded created atoms and depth.  Replay therefore
    doubles as an integrity check far stronger than the per-record CRC —
    a journal that passes belongs to a real run of these rules on this
    database.  The restored state is finally certified with
    {!Engine.check_provenance} before the chase is allowed to continue.

    Torn or corrupt journal tails are truncated (and, when the snapshot
    is ahead of the journal, the journal is atomically rewritten to the
    recovered history) so that appending after the resume always yields
    a well-formed journal. *)

open Chase_logic
module Engine = Chase_engine.Engine
module Derivation = Chase_engine.Derivation

type report = {
  header : Journal.header;
  resume : Engine.resume;
  history : Codec.step_record list;  (** the recovered, validated history *)
  snapshot_step : int;  (** last step held by the snapshot; 0 if none *)
  journal_step : int;  (** last step of the journal's valid prefix *)
  torn : (int * string) option;
      (** byte offset and reason when a corrupt tail was detected *)
  repaired : bool;  (** the journal file was truncated or rewritten *)
}

let pp_report fm r =
  Fmt.pf fm
    "@[<v>recovered %d steps (%a)@ journal prefix: %d steps%s@ snapshot: %s@]"
    (List.length r.history) Journal.pp_header r.header r.journal_step
    (match r.torn with
    | None -> ""
    | Some (off, why) -> Fmt.str " — torn tail at byte %d (%s)" off why)
    (if r.snapshot_step = 0 then "none"
     else Fmt.str "through step %d" r.snapshot_step)

(* Replay a validated history against the rules and database, rebuilding
   instance, provenance and counters exactly as the engine left them. *)
let replay ~rules ~db records =
  let rules = Array.of_list rules in
  let instance = Instance.create () in
  List.iter (fun a -> ignore (Instance.add instance a)) db;
  let provenance = Atom.Tbl.create 256 in
  let derivations = ref [] in
  let n_derivations = ref 0 in
  let applied = ref [] in
  let n_applied = ref 0 in
  let null_counter = ref 0 in
  let last_step = ref 0 in
  let fail sr fmt =
    Fmt.kstr (fun m -> Error (Fmt.str "journal record %d: %s" sr.Codec.step m))
      fmt
  in
  let atom_depth a =
    match Atom.Tbl.find_opt provenance a with
    | Some d -> Derivation.depth d
    | None -> 0
  in
  let rec go = function
    | [] ->
      Ok
        {
          Engine.facts = Instance.to_list instance;
          derivations = List.rev !derivations;
          applied = List.rev !applied;
          applied_count = !n_applied;
          created_count = !n_derivations;
          next_null = !null_counter;
          next_step = !last_step;
          skipped = 0;
        }
    | sr :: rest -> (
      let open Codec in
      if sr.step <> !last_step + 1 then
        fail sr "out-of-order step (after %d)" !last_step
      else if sr.rule_index < 0 || sr.rule_index >= Array.length rules then
        fail sr "rule index %d out of range" sr.rule_index
      else begin
        let rule = rules.(sr.rule_index) in
        if Tgd.name rule <> sr.rule_name then
          fail sr "rule name mismatch (%S in the journal, %S in the program)"
            sr.rule_name (Tgd.name rule)
        else begin
          let parents = Subst.apply_atoms sr.hom (Tgd.body rule) in
          match
            List.find_opt (fun p -> not (Instance.mem instance p)) parents
          with
          | Some p ->
            fail sr "body image %a is not in the instance" Atom.pp p
          | None ->
            let depth =
              1 + List.fold_left (fun d a -> max d (atom_depth a)) 0 parents
            in
            if depth <> sr.depth then
              fail sr "depth mismatch (recorded %d, replayed %d)" sr.depth
                depth
            else begin
              let existentials =
                Util.Sset.elements (Tgd.existentials rule)
              in
              if List.length existentials <> List.length sr.created_nulls
              then fail sr "null count mismatch for rule %a" Tgd.pp rule
              else if
                not
                  (List.for_all
                     (fun id ->
                       incr null_counter;
                       id = !null_counter)
                     sr.created_nulls)
              then fail sr "null stamps break the global sequence"
              else begin
                let sub' =
                  List.fold_left2
                    (fun acc z id -> Subst.bind_exn acc z (Term.Null id))
                    sr.hom existentials sr.created_nulls
                in
                let guard_parent =
                  Option.map (Subst.apply_atom sr.hom)
                    (Chase_classes.Classify.guard_of rule)
                in
                let added = ref [] in
                List.iter
                  (fun head_atom ->
                    let fact = Subst.apply_atom sub' head_atom in
                    if Instance.add instance fact then begin
                      added := fact :: !added;
                      let d =
                        {
                          Derivation.rule;
                          hom = sr.hom;
                          parents;
                          guard_parent;
                          depth;
                          step = sr.step;
                          created_nulls = sr.created_nulls;
                        }
                      in
                      Atom.Tbl.replace provenance fact d;
                      derivations := (fact, d) :: !derivations;
                      incr n_derivations
                    end)
                  (Tgd.head rule);
                let added = List.rev !added in
                if
                  List.length added <> List.length sr.created_atoms
                  || not (List.for_all2 Atom.equal added sr.created_atoms)
                then
                  fail sr
                    "replayed facts do not match the recorded creations"
                else begin
                  applied := (sr.rule_index, sr.hom) :: !applied;
                  incr n_applied;
                  last_step := sr.step;
                  go rest
                end
              end
            end
        end
      end)
  in
  go records

(* The certified soundness check of the restored state: every restored
   fact is a database fact or carries a derivation that replays. *)
let certify ~variant ~db (resume : Engine.resume) =
  let provenance = Atom.Tbl.create 256 in
  List.iter
    (fun (a, d) -> Atom.Tbl.replace provenance a d)
    resume.Engine.derivations;
  let result =
    {
      Engine.instance = Instance.of_list resume.Engine.facts;
      status = Engine.Terminated;
      variant;
      triggers_applied = resume.Engine.applied_count;
      triggers_skipped = resume.Engine.skipped;
      atoms_created = resume.Engine.created_count;
      nulls_created = resume.Engine.next_null;
      max_depth =
        List.fold_left
          (fun m (_, d) -> max m (Derivation.depth d))
          0 resume.Engine.derivations;
      elapsed = 0.;
      rule_firings = [];
      queue_residual = 0;
      provenance;
    }
  in
  Engine.check_provenance result ~db

let recover ?snapshot ?(repair = true) ~journal ~variant ~rules ~db () =
  match Journal.read journal with
  | Error m -> Error m
  | Ok (header, jrecords, tail) -> (
    match Journal.matches header ~variant ~rules ~db with
    | Error m -> Error m
    | Ok () ->
      let journal_step = List.length jrecords in
      let snap =
        match snapshot with
        | Some path when Sys.file_exists path -> (
          match Snapshot.read path with
          | Ok s when s.Snapshot.header = header -> Some s
          | Ok _ | Error _ -> None (* unusable snapshot: fall back *))
        | Some _ | None -> None
      in
      let snapshot_step =
        match snap with Some s -> s.Snapshot.last_step | None -> 0
      in
      let history =
        match snap with
        | Some s when s.Snapshot.last_step > journal_step ->
          s.Snapshot.records
        | Some _ | None -> jrecords
      in
      match replay ~rules ~db history with
      | Error m -> Error m
      | Ok resume -> (
        match certify ~variant ~db resume with
        | Error m ->
          Error ("recovered state fails provenance validation: " ^ m)
        | Ok () ->
          let repaired =
            if not repair then false
            else if List.length history > journal_step then begin
              (* the snapshot is ahead of the journal's valid prefix:
                 rewrite the journal to the recovered history so appends
                 continue a well-formed file *)
              Journal.rewrite journal header history;
              true
            end
            else begin
              match tail with
              | Journal.Torn { offset; _ } ->
                Journal.truncate_at journal offset;
                true
              | Journal.Clean -> false
            end
          in
          Ok
            {
              header;
              resume;
              history;
              snapshot_step;
              journal_step;
              torn =
                (match tail with
                | Journal.Torn { offset; reason } -> Some (offset, reason)
                | Journal.Clean -> None);
              repaired;
            }))
