(** Binary encoding for the durability subsystem.

    Little-endian fixed-width frame fields, LEB128 varints for counters
    and stamps, length-prefixed strings for names, and a table-driven
    CRC-32 (IEEE 802.3) over record payloads.  Decoding never raises
    past the module boundary: every malformed input surfaces as
    {!Corrupt}, which the journal reader converts into a torn-tail
    truncation point. *)

open Chase_logic

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, as in zlib)                          *)
(* ------------------------------------------------------------------ *)

module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  (** CRC-32 of a substring; the conventional init/final xor is applied
      internally, so the digest of [""] is 0. *)
  let digest ?(pos = 0) ?len s =
    let len = match len with Some l -> l | None -> String.length s - pos in
    let t = Lazy.force table in
    let crc = ref 0xffffffff in
    for i = pos to pos + len - 1 do
      crc := t.((!crc lxor Char.code s.[i]) land 0xff) lxor (!crc lsr 8)
    done;
    !crc lxor 0xffffffff
end

(* ------------------------------------------------------------------ *)
(* Primitive writers (Buffer) and readers (string + cursor)            *)
(* ------------------------------------------------------------------ *)

let put_u32 b n =
  for shift = 0 to 3 do
    Buffer.add_char b (Char.chr ((n lsr (8 * shift)) land 0xff))
  done

let put_varint b n =
  if n < 0 then invalid_arg "Codec.put_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

type reader = {
  data : string;
  mutable pos : int;
}

let reader ?(pos = 0) data = { data; pos }
let at_end r = r.pos >= String.length r.data

let byte r =
  if r.pos >= String.length r.data then corrupt "unexpected end of record";
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_u32 r =
  let b0 = byte r in
  let b1 = byte r in
  let b2 = byte r in
  let b3 = byte r in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let get_varint r =
  let rec go shift acc =
    if shift > 56 then corrupt "varint too wide";
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_string r =
  let len = get_varint r in
  if len < 0 || r.pos + len > String.length r.data then
    corrupt "string overruns the record";
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

(* ------------------------------------------------------------------ *)
(* Terms, atoms, substitutions                                         *)
(* ------------------------------------------------------------------ *)

let put_term b = function
  | Term.Const c ->
    Buffer.add_char b '\000';
    put_string b c
  | Term.Var v ->
    Buffer.add_char b '\001';
    put_string b v
  | Term.Null n ->
    Buffer.add_char b '\002';
    put_varint b n

let get_term r =
  match byte r with
  | 0 -> Term.Const (get_string r)
  | 1 -> Term.Var (get_string r)
  | 2 -> Term.Null (get_varint r)
  | t -> corrupt "unknown term tag %d" t

let put_atom b a =
  put_string b (Atom.pred a);
  put_varint b (Atom.arity a);
  Array.iter (put_term b) (Atom.args a)

let get_atom r =
  let pred = get_string r in
  let arity = get_varint r in
  if arity > 4096 then corrupt "implausible arity %d" arity;
  Atom.of_list pred (List.init arity (fun _ -> get_term r))

let put_list put b xs =
  put_varint b (List.length xs);
  List.iter (put b) xs

let get_list get r =
  let n = get_varint r in
  if n > 0x1000000 then corrupt "implausible list length %d" n;
  List.init n (fun _ -> get r)

let put_bindings b sub =
  put_list
    (fun b (v, t) ->
      put_string b v;
      put_term b t)
    b (Subst.to_list sub)

let get_bindings r =
  Subst.of_list
    (get_list
       (fun r ->
         let v = get_string r in
         let t = get_term r in
         (v, t))
       r)

(* ------------------------------------------------------------------ *)
(* Journal step records                                                *)
(* ------------------------------------------------------------------ *)

(** One trigger application, as journaled: enough to replay the step
    deterministically and to cross-check the replay against what the
    engine actually did. *)
type step_record = {
  step : int;  (** global step number, 1-based, contiguous *)
  rule_index : int;  (** index into the run's rule list *)
  rule_name : string;  (** redundant, for integrity checking *)
  hom : Subst.t;  (** the full body homomorphism of the trigger *)
  depth : int;  (** derivation depth of the created facts *)
  created_nulls : int list;  (** stamps, ascending, contiguous globally *)
  created_atoms : Atom.t list;  (** facts actually added (possibly none) *)
}

let encode_step sr =
  let b = Buffer.create 128 in
  put_varint b sr.step;
  put_varint b sr.rule_index;
  put_string b sr.rule_name;
  put_bindings b sr.hom;
  put_varint b sr.depth;
  put_list put_varint b sr.created_nulls;
  put_list put_atom b sr.created_atoms;
  Buffer.contents b

let decode_step payload =
  let r = reader payload in
  let step = get_varint r in
  let rule_index = get_varint r in
  let rule_name = get_string r in
  let hom = get_bindings r in
  let depth = get_varint r in
  let created_nulls = get_list get_varint r in
  let created_atoms = get_list get_atom r in
  if not (at_end r) then corrupt "trailing bytes in a step record";
  { step; rule_index; rule_name; hom; depth; created_nulls; created_atoms }

let pp_step fm sr =
  Fmt.pf fm "@[step %d: rule#%d%s via %a (+%d facts, %d nulls, depth %d)@]"
    sr.step sr.rule_index
    (if sr.rule_name = "" then "" else " " ^ sr.rule_name)
    Subst.pp sr.hom
    (List.length sr.created_atoms)
    (List.length sr.created_nulls)
    sr.depth
