(** A durability session: the glue between the engine's [on_trigger]
    hook and the journal/snapshot writers.  One journal record per
    trigger application; an atomic snapshot of the full history every
    [snapshot_every] records when a snapshot path is configured. *)

open Chase_logic

type t

val snapshot_path : string -> string
(** The conventional snapshot path for a journal: [journal ^ ".snap"]. *)

val start :
  journal:string ->
  ?snapshot:string ->
  ?snapshot_every:int ->
  ?fsync_every:int ->
  ?fault:Chase_engine.Faults.write_fault ->
  ?faults:Chase_engine.Faults.write_fault list ->
  ?obs:Chase_obs.Obs.t ->
  variant:Chase_engine.Variant.t ->
  rules:Tgd.t list ->
  db:Atom.t list ->
  unit ->
  t
(** Open a fresh journal (truncating any previous file) for a new run.
    [snapshot_every] defaults to 0 (no snapshots); [fsync_every] to 64.
    [obs] flows into the journal and snapshot writers (append/fsync and
    snapshot-write telemetry). *)

val continue_ :
  journal:string ->
  ?snapshot:string ->
  ?snapshot_every:int ->
  ?fsync_every:int ->
  ?fault:Chase_engine.Faults.write_fault ->
  ?faults:Chase_engine.Faults.write_fault list ->
  ?obs:Chase_obs.Obs.t ->
  Recovery.report ->
  t
(** Append to a journal just validated (and repaired) by
    {!Recovery.recover}; the report seeds the in-memory history so
    snapshots stay complete. *)

val on_trigger :
  t ->
  step:int ->
  rule_index:int ->
  depth:int ->
  created_nulls:int list ->
  Tgd.t ->
  Subst.t ->
  Atom.t list ->
  unit
(** Exactly the engine hook's shape: pass as
    [Engine.run ~on_trigger:(Session.on_trigger s)].
    @raise Faults.Crash when an armed write fault fires. *)

val records : t -> Codec.step_record list
(** The full history journaled so far, in step order. *)

val finish : t -> unit
(** Final snapshot (when configured and due) + journal [fsync]/close. *)
