(** A durability session: the glue between the engine's [on_trigger]
    hook and the journal/snapshot writers.

    [start] opens a fresh journal for a run; [continue] appends to a
    recovered one.  {!on_trigger} has exactly the engine hook's shape —
    pass it as [Engine.run ~on_trigger:(Session.on_trigger s)] — and
    appends one journal record per trigger application, publishing an
    atomic snapshot of the full history every [snapshot_every] records
    when a snapshot path is configured. *)

open Chase_logic

type t = {
  writer : Journal.writer;
  header : Journal.header;
  snapshot : string option;
  snapshot_every : int;  (** records between snapshots; 0 = never *)
  obs : Chase_obs.Obs.t;
  mutable history_rev : Codec.step_record list;
  mutable last_step : int;
  mutable since_snapshot : int;
}

let snapshot_path journal = journal ^ ".snap"

let start ~journal ?snapshot ?(snapshot_every = 0) ?(fsync_every = 64) ?fault
    ?faults ?(obs = Chase_obs.Obs.disabled) ~variant ~rules ~db () =
  let header = Journal.header_of ~variant ~rules ~db in
  let writer =
    Journal.create ~fsync_every ?fault ?faults ~obs journal header
  in
  {
    writer;
    header;
    snapshot;
    snapshot_every;
    obs;
    history_rev = [];
    last_step = 0;
    since_snapshot = 0;
  }

let continue_ ~journal ?snapshot ?(snapshot_every = 0) ?(fsync_every = 64)
    ?fault ?faults ?(obs = Chase_obs.Obs.disabled) (report : Recovery.report) =
  let writer = Journal.open_append ~fsync_every ?fault ?faults ~obs journal in
  {
    writer;
    header = report.Recovery.header;
    snapshot;
    snapshot_every;
    obs;
    history_rev = List.rev report.Recovery.history;
    last_step = report.Recovery.resume.Chase_engine.Engine.next_step;
    since_snapshot = 0;
  }

let write_snapshot t =
  match t.snapshot with
  | None -> ()
  | Some path ->
    Snapshot.write ~obs:t.obs path
      {
        Snapshot.header = t.header;
        last_step = t.last_step;
        records = List.rev t.history_rev;
      }

let on_trigger t ~step ~rule_index ~depth ~created_nulls rule hom
    created_atoms =
  let sr =
    {
      Codec.step;
      rule_index;
      rule_name = Tgd.name rule;
      hom;
      depth;
      created_nulls;
      created_atoms;
    }
  in
  Journal.append t.writer sr;
  t.history_rev <- sr :: t.history_rev;
  t.last_step <- step;
  if t.snapshot_every > 0 then begin
    t.since_snapshot <- t.since_snapshot + 1;
    if t.since_snapshot >= t.snapshot_every then begin
      write_snapshot t;
      t.since_snapshot <- 0
    end
  end

let records t = List.rev t.history_rev

let finish t =
  if t.snapshot_every > 0 && t.since_snapshot > 0 then write_snapshot t;
  Journal.close t.writer
