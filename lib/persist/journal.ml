(** The write-ahead derivation journal.

    An append-only file: an 8-byte magic, then length-prefixed,
    CRC-32-checksummed frames.  The first frame is the header (chase
    variant plus digests of the rule set and the database, so a resume
    against the wrong program is refused); every further frame is one
    {!Codec.step_record} — one trigger application.  Appends reach the
    OS on every record and are [fsync]ed on a configurable cadence, so
    a crash loses at most the records since the last sync and at worst
    leaves one torn frame at the tail, which {!read} detects (short
    frame, bad checksum, undecodable payload, out-of-order step) and
    reports as a truncation point instead of failing.

    A writer can be armed with a {!Faults.write_fault} to simulate the
    crash at a chosen record — kill between appends, or a torn partial
    append — through the {e real} write path. *)

open Chase_logic
module Obs = Chase_obs.Obs

let magic = "CHJNL01\n"
let version = 1

(* ------------------------------------------------------------------ *)
(* Header: run identity                                                *)
(* ------------------------------------------------------------------ *)

type header = {
  variant : Chase_engine.Variant.t;
  rules_digest : string;  (** MD5 hex of the canonical rule text *)
  db_digest : string;  (** MD5 hex of the sorted database text *)
  rule_count : int;
}

let digest_rules rules =
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.map Tgd.to_string rules)))

let digest_db db =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          (List.sort String.compare (List.map Atom.to_string db))))

let header_of ~variant ~rules ~db =
  {
    variant;
    rules_digest = digest_rules rules;
    db_digest = digest_db db;
    rule_count = List.length rules;
  }

let matches h ~variant ~rules ~db =
  if h.variant <> variant then
    Error
      (Fmt.str "journal was written for the %s chase, not %s"
         (Chase_engine.Variant.to_string h.variant)
         (Chase_engine.Variant.to_string variant))
  else if h.rules_digest <> digest_rules rules then
    Error "journal was written for a different rule set"
  else if h.db_digest <> digest_db db then
    Error "journal was written for a different database"
  else Ok ()

let pp_header fm h =
  Fmt.pf fm "%a chase, %d rules, rules %s…, db %s…"
    Chase_engine.Variant.pp h.variant h.rule_count
    (String.sub h.rules_digest 0 8)
    (String.sub h.db_digest 0 8)

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let tag_header = 'H'
let tag_step = 'S'

let frame tag payload =
  let body = String.make 1 tag ^ payload in
  let b = Buffer.create (String.length body + 8) in
  Codec.put_u32 b (String.length body);
  Codec.put_u32 b (Codec.Crc32.digest body);
  Buffer.add_string b body;
  Buffer.contents b

let encode_header h =
  let b = Buffer.create 96 in
  Codec.put_varint b version;
  Codec.put_string b (Chase_engine.Variant.to_string h.variant);
  Codec.put_string b h.rules_digest;
  Codec.put_string b h.db_digest;
  Codec.put_varint b h.rule_count;
  Buffer.contents b

let decode_header_reader r =
  let v = Codec.get_varint r in
  if v <> version then Codec.corrupt "unsupported journal version %d" v;
  let variant_s = Codec.get_string r in
  let variant =
    match Chase_engine.Variant.of_string variant_s with
    | Some v -> v
    | None -> Codec.corrupt "unknown chase variant %S" variant_s
  in
  let rules_digest = Codec.get_string r in
  let db_digest = Codec.get_string r in
  let rule_count = Codec.get_varint r in
  { variant; rules_digest; db_digest; rule_count }

let decode_header payload = decode_header_reader (Codec.reader payload)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = {
  oc : out_channel;
  fsync_every : int;  (** records between [fsync]s; 0 = only on close *)
  mutable unsynced : int;
  mutable appended : int;  (** records appended through this writer *)
  mutable fsyncs : int;  (** [fsync]s performed through this writer *)
  faults : Chase_engine.Faults.write_fault list;
  obs : Obs.t;  (** append/fsync latency telemetry *)
}

let fsync_oc oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let crash w msg =
  fsync_oc w.oc;
  close_out_noerr w.oc;
  raise (Chase_engine.Faults.Crash msg)

(* [fsync] through the writer: same call, with the latency observed and
   an armed [Fsync_fail] honoured (the k-th sync dies fatally). *)
let fsync_w w =
  w.fsyncs <- w.fsyncs + 1;
  if
    List.exists
      (function
        | Chase_engine.Faults.Fsync_fail k -> w.fsyncs = k | _ -> false)
      w.faults
  then crash w (Fmt.str "fsync %d failed" w.fsyncs);
  if Obs.enabled w.obs then begin
    let t0 = Obs.now w.obs in
    fsync_oc w.oc;
    Obs.observe w.obs "journal.fsync_s" (Obs.now w.obs -. t0);
    Obs.incr w.obs "journal.fsyncs"
  end
  else fsync_oc w.oc

(* Explicitly passed faults compose with whatever the per-path registry
   has armed for this file — the hook that lets a chaos harness target
   one session among many without threading options through. *)
let armed_faults ?fault ?(faults = []) path =
  Option.to_list fault @ faults @ Chase_engine.Faults.Writes.armed_for path

let create ?(fsync_every = 64) ?fault ?faults ?(obs = Obs.disabled) path h =
  let oc = open_out_bin path in
  output_string oc magic;
  output_string oc (frame tag_header (encode_header h));
  fsync_oc oc;
  {
    oc;
    fsync_every;
    unsynced = 0;
    appended = 0;
    fsyncs = 0;
    faults = armed_faults ?fault ?faults path;
    obs;
  }

let open_append ?(fsync_every = 64) ?fault ?faults ?(obs = Obs.disabled) path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
  in
  {
    oc;
    fsync_every;
    unsynced = 0;
    appended = 0;
    fsyncs = 0;
    faults = armed_faults ?fault ?faults path;
    obs;
  }

let append w sr =
  let tracked = Obs.enabled w.obs in
  let t0 = if tracked then Obs.now w.obs else 0. in
  w.appended <- w.appended + 1;
  let fr = frame tag_step (Codec.encode_step sr) in
  (* A torn write at this record beats a kill at this record: both can
     be armed on one stream, and the torn partial frame is the stronger
     (corrupting) injection. *)
  let torn =
    List.find_map
      (function
        | Chase_engine.Faults.Torn_write (k, bytes) when w.appended = k ->
          Some bytes
        | _ -> None)
      w.faults
  and killed =
    List.exists
      (function
        | Chase_engine.Faults.Kill_after_record k -> w.appended = k
        | _ -> false)
      w.faults
  in
  (match torn with
  | Some bytes ->
    output_string w.oc (String.sub fr 0 (min bytes (String.length fr)));
    crash w (Fmt.str "torn write at journal record %d (%d bytes)" w.appended
               bytes)
  | None ->
    output_string w.oc fr;
    if killed then
      crash w (Fmt.str "killed after journal record %d" w.appended));
  flush w.oc;
  w.unsynced <- w.unsynced + 1;
  if w.fsync_every > 0 && w.unsynced >= w.fsync_every then begin
    fsync_w w;
    w.unsynced <- 0
  end;
  if tracked then begin
    (* includes a cadence fsync when this append triggered one — the
       latency the chase actually saw *)
    Obs.observe w.obs "journal.append_s" (Obs.now w.obs -. t0);
    Obs.incr w.obs "journal.records";
    Obs.incr w.obs ~by:(String.length fr) "journal.bytes"
  end

let sync w =
  fsync_w w;
  w.unsynced <- 0

let close w =
  fsync_w w;
  close_out_noerr w.oc

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type tail =
  | Clean
  | Torn of {
      offset : int;  (** byte offset of the first unusable frame *)
      reason : string;
    }

let pp_tail fm = function
  | Clean -> Fmt.string fm "clean tail"
  | Torn { offset; reason } ->
    Fmt.pf fm "torn tail at byte %d: %s" offset reason

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One frame at [pos]: [Ok (tag, payload, next_pos)] or the torn-tail
   reason.  [`Eof] when [pos] is exactly the end of the data. *)
let parse_frame data pos =
  let len_total = String.length data in
  if pos = len_total then `Eof
  else if pos + 8 > len_total then `Torn "short frame header"
  else begin
    let r = Codec.reader ~pos data in
    let len = Codec.get_u32 r in
    let crc = Codec.get_u32 r in
    if len <= 0 || len > len_total - pos - 8 then
      `Torn "frame length overruns the file"
    else if Codec.Crc32.digest ~pos:(pos + 8) ~len data <> crc then
      `Torn "checksum mismatch"
    else
      `Frame (data.[pos + 8], String.sub data (pos + 9) (len - 1), pos + 8 + len)
  end

let read path =
  if not (Sys.file_exists path) then Error (Fmt.str "no such journal: %s" path)
  else begin
    let data = try Ok (read_file path) with Sys_error m -> Error m in
    match data with
    | Error m -> Error (Fmt.str "cannot read journal %s: %s" path m)
    | Ok data ->
      if
        String.length data < String.length magic
        || String.sub data 0 (String.length magic) <> magic
      then Error (Fmt.str "%s is not a chase journal (bad magic)" path)
      else begin
        match parse_frame data (String.length magic) with
        | `Eof -> Error (Fmt.str "journal %s has no header record" path)
        | `Torn reason ->
          Error (Fmt.str "journal %s: corrupt header record: %s" path reason)
        | `Frame (tag, payload, pos0) -> (
          match
            if tag <> tag_header then
              Error (Fmt.str "journal %s: first record is not a header" path)
            else
              try Ok (decode_header payload)
              with Codec.Corrupt m ->
                Error (Fmt.str "journal %s: corrupt header record: %s" path m)
          with
          | Error _ as e -> e
          | Ok header ->
            let records = ref [] in
            let last_step = ref 0 in
            let rec go pos =
              match parse_frame data pos with
              | `Eof -> Clean
              | `Torn reason -> Torn { offset = pos; reason }
              | `Frame (tag, payload, next) ->
                if tag <> tag_step then
                  Torn { offset = pos; reason = "unknown record tag" }
                else begin
                  match Codec.decode_step payload with
                  | exception Codec.Corrupt m ->
                    Torn { offset = pos; reason = m }
                  | sr ->
                    if sr.Codec.step <> !last_step + 1 then
                      Torn
                        {
                          offset = pos;
                          reason =
                            Fmt.str "out-of-order step %d after %d"
                              sr.Codec.step !last_step;
                        }
                    else begin
                      last_step := sr.Codec.step;
                      records := sr :: !records;
                      go next
                    end
                end
            in
            let tail = go pos0 in
            Ok (header, List.rev !records, tail))
      end
  end

let truncate_at path offset = Unix.truncate path offset

let rewrite path h records =
  let tmp = path ^ ".tmp" in
  let w = create ~fsync_every:0 tmp h in
  List.iter (append w) records;
  close w;
  Fsutil.rename_durable tmp path

(* ------------------------------------------------------------------ *)
(* Tailing                                                             *)
(* ------------------------------------------------------------------ *)

(* The replication shipper follows a journal that is still being
   written: [tail] returns the raw bytes of every {e complete} frame
   past [offset] — never a torn tail, so shipped byte ranges always
   end on a frame boundary and the standby's copy is a valid journal
   prefix at all times.  [offset = 0] includes the magic and the header
   frame, so the standby's file is byte-identical to the primary's
   prefix. *)
let tail path ~offset =
  if not (Sys.file_exists path) then Error (Fmt.str "no such journal: %s" path)
  else begin
    match read_file path with
    | exception Sys_error m -> Error (Fmt.str "cannot read journal %s: %s" path m)
    | data ->
      let mlen = String.length magic in
      if String.length data < mlen || String.sub data 0 mlen <> magic then
        Error (Fmt.str "%s is not a chase journal (bad magic)" path)
      else begin
        let start = if offset = 0 then 0 else offset in
        if start > String.length data then
          Error (Fmt.str "journal %s shrank below offset %d" path offset)
        else begin
          (* walk complete frames from the first frame at-or-after
             [start]; [start] must itself be a frame boundary (or 0) —
             tail offsets only ever come from a previous [tail] *)
          let rec skip_to pos =
            (* frames begin right after the magic *)
            if pos >= start then pos
            else
              match parse_frame data pos with
              | `Frame (_, _, next) -> skip_to next
              | `Eof | `Torn _ -> pos
          in
          let first = skip_to mlen in
          if first <> max start mlen then
            Error (Fmt.str "offset %d is not a frame boundary of %s" offset path)
          else begin
            let rec last_good pos =
              match parse_frame data pos with
              | `Frame (_, _, next) -> last_good next
              | `Eof | `Torn _ -> pos
            in
            let stop = last_good first in
            (* offset 0 ships the magic too: the standby's file is then
               a byte-identical journal prefix *)
            let from = if offset = 0 then 0 else first in
            Ok (String.sub data from (stop - from), stop)
          end
        end
      end
  end
