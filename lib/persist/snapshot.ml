(** Atomic snapshots of a chase in progress.

    A snapshot is the run's full replayable history — the journal header
    plus every step record up to a point — serialized as one
    CRC-32-checked blob and published with write-to-temp + [rename], so
    a reader always sees either the previous snapshot or the new one,
    never a partial file.  Recovery prefers the snapshot when the
    journal's valid prefix is shorter (e.g. the journal lost more bytes
    than the snapshot cadence), and replays the journal tail beyond the
    snapshot otherwise. *)

let magic = "CHSNAP1\n"

type t = {
  header : Journal.header;
  last_step : int;  (** step number of the last record included *)
  records : Codec.step_record list;  (** steps 1..last_step, in order *)
}

let encode s =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Journal.encode_header s.header);
  Codec.put_varint b s.last_step;
  Codec.put_varint b (List.length s.records);
  List.iter (fun sr -> Codec.put_string b (Codec.encode_step sr)) s.records;
  Buffer.contents b

let decode payload =
  let r = Codec.reader payload in
  let header = Journal.decode_header_reader r in
  let last_step = Codec.get_varint r in
  let n = Codec.get_varint r in
  if n > 0x1000000 then Codec.corrupt "implausible record count %d" n;
  let records = List.init n (fun _ -> Codec.decode_step (Codec.get_string r)) in
  if not (Codec.at_end r) then Codec.corrupt "trailing bytes in the snapshot";
  { header; last_step; records }

let fsync_oc oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(** Write-to-temp + rename: the snapshot at [path] is always complete. *)
let write ?(obs = Chase_obs.Obs.disabled) path s =
  let module Obs = Chase_obs.Obs in
  let tracked = Obs.enabled obs in
  let t0 = if tracked then Obs.now obs else 0. in
  let payload = encode s in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc magic;
  let b = Buffer.create 8 in
  Codec.put_u32 b (String.length payload);
  Codec.put_u32 b (Codec.Crc32.digest payload);
  output_string oc (Buffer.contents b);
  output_string oc payload;
  fsync_oc oc;
  close_out_noerr oc;
  (* durable publish: the rename itself must survive a power loss *)
  Fsutil.rename_durable tmp path;
  if tracked then begin
    Obs.observe obs "snapshot.write_s" (Obs.now obs -. t0);
    Obs.observe obs "snapshot.bytes"
      (float_of_int (String.length magic + 8 + String.length payload));
    Obs.incr obs "snapshot.writes"
  end

let read path =
  if not (Sys.file_exists path) then
    Error (Fmt.str "no such snapshot: %s" path)
  else begin
    let data =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Ok (really_input_string ic (in_channel_length ic)))
      with Sys_error m -> Error m
    in
    match data with
    | Error m -> Error (Fmt.str "cannot read snapshot %s: %s" path m)
    | Ok data ->
      let mlen = String.length magic in
      if String.length data < mlen + 8 || String.sub data 0 mlen <> magic then
        Error (Fmt.str "%s is not a chase snapshot (bad magic)" path)
      else begin
        let r = Codec.reader ~pos:mlen data in
        let len = Codec.get_u32 r in
        let crc = Codec.get_u32 r in
        if len < 0 || mlen + 8 + len <> String.length data then
          Error (Fmt.str "snapshot %s: wrong length (truncated?)" path)
        else if Codec.Crc32.digest ~pos:(mlen + 8) ~len data <> crc then
          Error (Fmt.str "snapshot %s: checksum mismatch" path)
        else
          try Ok (decode (String.sub data (mlen + 8) len))
          with Codec.Corrupt m -> Error (Fmt.str "snapshot %s: %s" path m)
      end
  end
