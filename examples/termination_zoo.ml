(** The termination zoo: every named family of the library, classified and
    decided under both chase variants, with the restricted chase run on
    the critical instance for comparison.

    This reproduces, in one table, the landscape the paper maps out:
    where the o- and so-chase differ, where plain acyclicity stops being
    exact, and what guardedness buys.

    Run with: dune exec examples/termination_zoo.exe *)

open Chase

let verdict_cell rules variant =
  match Verdict.answer (Decide.check ~budget:20_000 ~variant rules) with
  | Verdict.Terminates -> "term"
  | Verdict.Diverges -> "DIV"
  | Verdict.Unknown -> "?"

let restricted_cell rules =
  (* the critical-instance reduction is unsound for the restricted chase;
     probe it on the generic (all-distinct-constants) instance instead *)
  let generic = Critical.generic_of_rules rules in
  let config =
    {
      Engine.variant = Variant.Restricted;
      limits = Limits.make ~max_triggers:20_000 ~max_atoms:80_000 ();
    }
  in
  match (Engine.run ~config rules (Instance.to_list generic)).Engine.status with
  | Engine.Terminated -> "term*"
  | Engine.Exhausted _ -> "DIV*"

let acyclicity_cell rules =
  (* the strongest condition in the chain RA ⊆ WA ⊆ JA ⊆ MFA that holds *)
  if Rich.is_richly_acyclic rules then "RA"
  else if Weak.is_weakly_acyclic rules then "WA"
  else if Joint.is_jointly_acyclic rules then "JA"
  else if Mfa.is_mfa rules then "MFA"
  else "-"

let () =
  Fmt.pr "%-24s %-14s %-5s %-6s %-6s %-6s@." "family" "class" "acyc"
    "o" "so" "restr";
  Fmt.pr "%s@." (String.make 66 '-');
  List.iter
    (fun (name, rules) ->
      Fmt.pr "%-24s %-14s %-5s %-6s %-6s %-6s@." name
        (Classify.cls_to_string (Classify.classify rules))
        (acyclicity_cell rules)
        (verdict_cell rules Variant.Oblivious)
        (verdict_cell rules Variant.Semi_oblivious)
        (restricted_cell rules))
    Families.catalogue;
  Fmt.pr
    "@.acyc: strongest acyclicity condition in RA ⊆ WA ⊆ JA ⊆ MFA; restr: \
     restricted chase@.on the generic all-distinct instance (*no all-instance \
     guarantee — DESIGN.md §3.1).@."
