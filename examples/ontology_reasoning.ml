(** Ontology reasoning with inclusion dependencies (DL-Lite style).

    Simple linear TGDs capture inclusion dependencies and the core of
    DL-Lite, the paper's motivating class for Theorem 1.  This example
    models a small university ontology, decides chase termination for the
    TBox with the exact Theorem-1 procedure, and answers queries over the
    chase when it terminates.

    Run with: dune exec examples/ontology_reasoning.exe *)

open Chase

let section title = Fmt.pr "@.== %s ==@.@." title

(* A DL-Lite-ish TBox as simple linear TGDs:
     Professor ⊑ Teacher                 prof(X) → teacher(X)
     Teacher ⊑ ∃teaches                  teacher(X) → teaches(X, C)
     ∃teaches⁻ ⊑ Course                  teaches(X, C) → course(C)
     Course ⊑ ∃taughtBy                  course(C) → taught_by(C, T)
     ∃taughtBy⁻ ⊑ Teacher                taught_by(C, T) → teacher(T)   *)
let tbox =
  Parser.parse_rules_exn
    {|
      a1: prof(X) -> teacher(X).
      a2: teacher(X) -> teaches(X, C).
      a3: teaches(X, C) -> course(C).
      a4: course(C) -> taught_by(C, T).
      a5: taught_by(C, T) -> teacher(T).
    |}

let abox = Parser.parse_database_exn "prof(ada). course(logic101)."

let () =
  section "The TBox is simple linear";
  Fmt.pr "  class: %a@." Classify.pp_cls (Classify.classify tbox);

  section "Theorem 1: acyclicity decides termination exactly";
  List.iter
    (fun variant ->
      let v = Sl.check ~variant tbox in
      Fmt.pr "  %-15s %s (by %s)@." (Variant.to_string variant)
        (Verdict.answer_to_string (Verdict.answer v))
        v.Verdict.procedure)
    [ Variant.Oblivious; Variant.Semi_oblivious ];
  Fmt.pr
    "@.  The axiom loop a2→a3→a4→a5 re-feeds 'teacher' through fresh \
     existentials,@.  so the dependency-graph cycle is dangerous: both \
     chase variants diverge.@.";

  section "A repaired TBox";
  (* Breaking the loop at a5 (auxiliary staff instead of teachers) makes
     the ontology terminating. *)
  let repaired =
    Parser.parse_rules_exn
      {|
        a1: prof(X) -> teacher(X).
        a2: teacher(X) -> teaches(X, C).
        a3: teaches(X, C) -> course(C).
        a4: course(C) -> taught_by(C, T).
        a5: taught_by(C, T) -> staff(T).
      |}
  in
  List.iter
    (fun variant ->
      let v = Sl.check ~variant repaired in
      Fmt.pr "  %-15s %s@." (Variant.to_string variant)
        (Verdict.answer_to_string (Verdict.answer v)))
    [ Variant.Oblivious; Variant.Semi_oblivious ];

  section "Query answering over the terminating chase";
  let result =
    Engine.run
      ~config:
        {
          Engine.variant = Variant.Restricted;
          limits = Limits.make ~max_triggers:10_000 ~max_atoms:10_000 ();
        }
      repaired abox
  in
  assert (result.Engine.status = Engine.Terminated);
  Fmt.pr "  chase of the ABox (%d facts):@." (Instance.cardinal result.Engine.instance);
  List.iter
    (fun a -> Fmt.pr "    %a@." Atom.pp a)
    (Instance.to_sorted_list result.Engine.instance);
  (* certain answer: is there certainly a course ada teaches? *)
  let q = Atom.of_list "teaches" [ Term.Const "ada"; Term.Var "C" ] in
  Fmt.pr "  ∃C teaches(ada, C): %b@." (Hom.exists result.Engine.instance [ q ]);
  (* is any specific course certainly taught by ada?  No — the course is
     anonymous (a labelled null), so there is no constant answer. *)
  let certain =
    Hom.all result.Engine.instance [ q ]
    |> List.filter_map (fun s -> Subst.find_opt "C" s)
    |> List.filter Term.is_const
  in
  Fmt.pr "  certain constant answers for C: %d@." (List.length certain);

  section "Termination is not monotone";
  (* Individually terminating axioms can diverge together: a2 alone and
     a5'=taught_by(C,T) → teacher(T) alone terminate, their union with a4
     does not. *)
  let a2 = Parser.parse_rules_exn "teacher(X) -> teaches(X, C)." in
  let check name rules =
    let v = Decide.check ~variant:Variant.Semi_oblivious rules in
    Fmt.pr "  %-20s %s@." name (Verdict.answer_to_string (Verdict.answer v))
  in
  check "a2 alone" a2;
  check "a3+a4+a5 alone" (List.filteri (fun i _ -> i >= 2) tbox);
  check "whole TBox" tbox
