(** A guided tour of the paper, section by section, with the library.

    Follows "Chase Termination for Guarded Existential Rules" (Calautti,
    Gottlob, Pieris; PODS/AMW 2015): §1's motivating example, §2's chase
    sequences and the CT classes, §3's theorems, and §4's restricted-chase
    outlook.

    Run with: dune exec examples/paper_walkthrough.exe *)

open Chase

let heading title = Fmt.pr "@.%s@.%s@.@." title (String.make (String.length title) '-')

(* ------------------------------------------------------------------ *)

let section_1 () =
  heading "§1  The chase may run forever (Example 1)";
  let rules = Families.example1 in
  let db = Parser.parse_database_exn "person(bob)." in
  let seq, result =
    Sequence.record
      ~config:
        { Engine.variant = Variant.Oblivious;
          limits = Limits.make ~max_triggers:3 ~max_atoms:50 () }
      ~variant:Variant.Oblivious rules db
  in
  Fmt.pr "%a@." Sequence.pp seq;
  Fmt.pr "after %d steps: %d facts — and a trigger is still pending@."
    (Sequence.length seq)
    (Instance.cardinal result.Engine.instance)

let section_2 () =
  heading "§2  Chase sequences and the CT classes";
  (* Example 2: the one-rule set with a single, non-terminating sequence *)
  let rules = Families.example2 in
  let db = Parser.parse_database_exn "p(a, b)." in
  let seq, _ =
    Sequence.record
      ~config:
        { Engine.variant = Variant.Oblivious;
          limits = Limits.make ~max_triggers:4 ~max_atoms:50 () }
      ~variant:Variant.Oblivious rules db
  in
  Fmt.pr "Example 2 from p(a,b) — the sequence I0, I1, …:@.";
  List.iteri
    (fun i atoms -> Fmt.pr "  I%d = {%a}@." i Fmt.(list ~sep:comma Atom.pp) atoms)
    (Sequence.instances seq);
  Fmt.pr "@.the definition's clauses, checked on the prefix:@.";
  Fmt.pr "  (i)  every step maps its body into the current instance: %b@."
    (Sequence.steps_are_valid seq);
  Fmt.pr "  (ii) no trigger is applied twice: %b@." (Sequence.no_repeated_trigger seq);
  (* CT^o = CT^so ⊆ … the variant census on this set *)
  Fmt.pr "@.CT membership of Example 2: o %s, so %s@."
    (Verdict.answer_to_string
       (Verdict.answer (Decide.check ~variant:Variant.Oblivious rules)))
    (Verdict.answer_to_string
       (Verdict.answer (Decide.check ~variant:Variant.Semi_oblivious rules)))

let section_3_1 () =
  heading "§3.1  Linearity: Theorems 1 and 2";
  (* Theorem 1 via the dependency graphs *)
  let show name rules =
    Fmt.pr "  %-22s RA %-5b WA %-5b o:%-11s so:%s@." name
      (Rich.is_richly_acyclic rules)
      (Weak.is_weakly_acyclic rules)
      (Verdict.answer_to_string
         (Verdict.answer (Decide.check ~variant:Variant.Oblivious rules)))
      (Verdict.answer_to_string
         (Verdict.answer (Decide.check ~variant:Variant.Semi_oblivious rules)))
  in
  Fmt.pr "Theorem 1 (simple linear): acyclicity is exact@.";
  show "p(X,Y) -> p(Y,Z)" Families.example2;
  show "p(X,Y) -> p(X,Z)" Families.separator;
  show "chain of 4" (Families.sl_chain 4);
  Fmt.pr "@.Theorem 2 (linear): repeated variables break plain acyclicity@.";
  show "p(X,X) -> p(X,Z)" Families.thm2_counterexample;
  (* and the pump certificate for a genuinely divergent linear set *)
  let v = Linear.check ~variant:Variant.Oblivious (Families.linear_rotating ~arity:3) in
  Fmt.pr "@.a Theorem-2 divergence certificate:@.%a@." Verdict.pp v

let section_3_2 () =
  heading "§3.2  Guardedness: Theorem 4";
  let rules = Families.guarded_divergent ~arity:2 in
  List.iter (fun r -> Fmt.pr "  %a@." Tgd.pp r) rules;
  let v = Guarded.check ~variant:Variant.Semi_oblivious rules in
  Fmt.pr "@.%a@." Verdict.pp v;
  let rules_t = Families.guarded_terminating ~arity:2 in
  let v_t = Guarded.check ~variant:Variant.Semi_oblivious rules_t in
  Fmt.pr "@.and its terminating variant: %s@."
    (Verdict.answer_to_string (Verdict.answer v_t))

let section_3_lower_bounds () =
  heading "§3  The looping operator (lower-bound device)";
  let sigma = Parser.parse_rules_exn "r(X, Y), m(Y) -> s(Y). s(X) -> goal(X)." in
  let db = Parser.parse_database_exn "r(a, b). m(b)." in
  let target = Atom.of_list "goal" [ Term.Var "G" ] in
  Fmt.pr "Σ entails ∃G goal(G) from D: %b@." (Entailment.holds sigma db target);
  let looped = (Looping.apply sigma ~target).Looping.rules in
  List.iter (fun r -> Fmt.pr "  %a@." Tgd.pp r) looped;
  let result =
    Engine.run
      ~config:
        { Engine.variant = Variant.Semi_oblivious;
          limits = Limits.make ~max_triggers:200 ~max_atoms:1000 () }
      looped db
  in
  Fmt.pr "chase of D under loop(Σ, goal): %s — termination flipped into \
          divergence@."
    (match result.Engine.status with
    | Engine.Terminated -> "terminated"
    | Engine.Exhausted _ -> "diverges")

let section_4 () =
  heading "§4  Future work: the restricted chase";
  let rules = Families.restricted_separator in
  List.iter (fun r -> Fmt.pr "  %a@." Tgd.pp r) rules;
  let db = Parser.parse_database_exn "e(a, b)." in
  let restricted =
    Engine.run
      ~config:
        { Engine.variant = Variant.Restricted;
          limits = Limits.make ~max_triggers:1000 ~max_atoms:4000 () }
      rules db
  in
  let oblivious =
    Engine.run
      ~config:
        { Engine.variant = Variant.Oblivious;
          limits = Limits.make ~max_triggers:1000 ~max_atoms:4000 () }
      rules db
  in
  Fmt.pr "@.from e(a,b): restricted %s (%d facts), oblivious %s@."
    (match restricted.Engine.status with
    | Engine.Terminated -> "terminates"
    | Engine.Exhausted _ -> "diverges")
    (Instance.cardinal restricted.Engine.instance)
    (match oblivious.Engine.status with
    | Engine.Terminated -> "terminates"
    | Engine.Exhausted _ -> "diverges");
  Fmt.pr "…the separation the paper's §4 sets out to characterize.@."

let () =
  Fmt.pr "Chase Termination for Guarded Existential Rules — a walkthrough@.";
  section_1 ();
  section_2 ();
  section_3_1 ();
  section_3_2 ();
  section_3_lower_bounds ();
  section_4 ()
