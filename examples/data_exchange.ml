(** Data exchange: computing a universal solution with the chase.

    The original home of the chase-termination question (Fagin et al.,
    "Data exchange: semantics and query answering"): a source database
    must be translated to a target schema under source-to-target and
    target constraints.  The chase of the source under the constraints
    yields a {e universal solution} — the canonical target instance over
    which certain answers to conjunctive queries can be computed directly.

    Run with: dune exec examples/data_exchange.exe *)

open Chase

let section title = Fmt.pr "@.== %s ==@.@." title

(* Source schema:  emp(name, dept)        — employees with departments
   Target schema:  dept(dname, mgr)       — departments with managers
                   works(name, dname)     — employment relation
                   mgr_of(mgr, name)      — management relation *)
let mapping =
  Parser.parse_rules_exn
    {|
      % source-to-target: every employment fact is mirrored, inventing a
      % manager for the department
      st1: emp(N, D) -> works(N, D).
      st2: emp(N, D) -> dept(D, M).
      % target constraints: managers work in their department and manage
      % its employees
      t1: dept(D, M) -> works(M, D).
      t2: works(N, D), dept(D, M) -> mgr_of(M, N).
    |}

let source =
  Parser.parse_database_exn
    "emp(ada, cs). emp(grace, cs). emp(alan, maths)."

let () =
  section "Termination: the mapping is weakly acyclic";
  Fmt.pr "  weakly acyclic: %b — every chase variant terminates on every \
          source@."
    (Weak.is_weakly_acyclic mapping);

  section "Universal solution (restricted chase)";
  let config =
    {
      Engine.variant = Variant.Restricted;
      limits = Limits.make ~max_triggers:10_000 ~max_atoms:10_000 ();
    }
  in
  let result = Engine.run ~config mapping source in
  assert (result.Engine.status = Engine.Terminated);
  List.iter
    (fun a -> Fmt.pr "  %a@." Atom.pp a)
    (Instance.to_sorted_list result.Engine.instance);

  section "Certain answers by querying the universal solution";
  (* Who certainly works in cs?  works(N, cs) with N a constant. *)
  let solution = result.Engine.instance in
  let query = Atom.of_list "works" [ Term.Var "N"; Term.Const "cs" ] in
  let answers =
    Hom.all solution [ query ]
    |> List.filter_map (fun s -> Subst.find_opt "N" s)
    |> List.filter Term.is_const (* nulls are not certain answers *)
    |> List.sort_uniq Term.compare
  in
  Fmt.pr "  works(N, cs) certainly holds for N ∈ {%a}@."
    Fmt.(hbox (list ~sep:(any ", ") Chase.Term.pp))
    answers;

  section "Universality of the solution";
  (* Any other solution, e.g. one naming the invented managers, admits a
     homomorphism from the chase result. *)
  let other =
    Instance.of_list
      (Parser.parse_database_exn
         {|
           emp(ada, cs). emp(grace, cs). emp(alan, maths).
           works(ada, cs). works(grace, cs). works(alan, maths).
           dept(cs, dijkstra). dept(maths, turing).
           works(dijkstra, cs). works(turing, maths).
           mgr_of(dijkstra, ada). mgr_of(dijkstra, grace).
           mgr_of(dijkstra, dijkstra). mgr_of(turing, alan).
           mgr_of(turing, turing).
         |})
  in
  assert (Engine.is_model mapping other);
  Fmt.pr "  chase result embeds into the hand-written solution: %b@."
    (Option.is_some (Hom.instance_hom solution other));

  section "Key constraints: the chase with EGDs";
  (* a department has at most one manager — an EGD; a rule that invents
     two managers per pairing then needs merging *)
  let program =
    match
      Parser.parse_program_full
        {|
          copair(X, Y) -> dept2(X, M1), dept2(Y, M2).
          key: dept2(D, M1), dept2(D, M2) -> M1 = M2.
          copair(cs, cs). copair(maths, physics).
        |}
    with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  let r =
    Egd_chase.run ~tgds:program.Parser.tgds ~egds:program.Parser.egds
      program.Parser.facts
  in
  Fmt.pr "  %a@." Egd_chase.pp_result r;
  List.iter
    (fun a -> Fmt.pr "    %a@." Atom.pp a)
    (List.sort Atom.compare (Instance.atoms_of_pred r.Egd_chase.instance "dept2"));

  section "Cores: the lean universal solution";
  (* the oblivious chase of the mapping over-invents managers; its core
     is the canonical redundancy-free solution *)
  let ob =
    Engine.run
      ~config:
        {
          Engine.variant = Variant.Oblivious;
          limits = Limits.make ~max_triggers:10_000 ~max_atoms:10_000 ();
        }
      mapping source
  in
  let ob_core = Core_model.core ob.Engine.instance in
  Fmt.pr "  oblivious chase: %d facts; its core: %d facts; restricted \
          chase: %d facts@."
    (Instance.cardinal ob.Engine.instance)
    (Instance.cardinal ob_core)
    (Instance.cardinal solution);
  Fmt.pr "  core ≅ restricted result: %b@."
    (Core_model.equivalent ob_core solution);

  section "What would break it";
  (* Adding a feedback axiom — every manager is again an employee of some
     department — makes the mapping non-terminating. *)
  let feedback = Parser.parse_rules_exn "f: dept(D, M) -> emp(M, D2)." in
  (* On the linear core (without the join rule t2) the Theorem 2 procedure
     gives a definite answer with a pumping certificate… *)
  let linear_core =
    List.filter (fun r -> Tgd.name r <> "t2") mapping @ feedback
  in
  let v = Decide.check ~variant:Variant.Semi_oblivious linear_core in
  Fmt.pr "  linear core + feedback: %s (%s)@."
    (Verdict.answer_to_string (Verdict.answer v))
    v.Verdict.procedure;
  (* …while the full set is unguarded, where termination is undecidable in
     general: the library falls back to a budgeted simulation and answers
     honestly. *)
  let v_full = Decide.check ~variant:Variant.Semi_oblivious (mapping @ feedback) in
  Fmt.pr "  full mapping + feedback: %s (%s)@."
    (Verdict.answer_to_string (Verdict.answer v_full))
    v_full.Verdict.procedure
