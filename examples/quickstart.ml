(** Quickstart: the paper's two running examples, end to end.

    Run with: dune exec examples/quickstart.exe *)

open Chase

let section title = Fmt.pr "@.== %s ==@.@." title

let () =
  section "Example 1: every person has a father who is a person";
  (* person(X) → ∃Y hasFather(X,Y) ∧ person(Y) *)
  let rules =
    Parser.parse_rules_exn "person(X) -> hasFather(X, Y), person(Y)."
  in
  let db = Parser.parse_database_exn "person(bob)." in
  (* The chase is infinite; run a bounded prefix and look at it. *)
  let config =
    { Engine.variant = Variant.Oblivious;
      limits = Limits.make ~max_triggers:4 ~max_atoms:100 () }
  in
  let result = Engine.run ~config rules db in
  List.iter
    (fun a -> Fmt.pr "  %a@." Atom.pp a)
    (Instance.to_sorted_list result.Engine.instance);
  Fmt.pr "  … and so on forever: %a@." Engine.pp_result result;

  section "Deciding termination without running the chase";
  (* The set is linear, so Theorem 1/2 machinery applies. *)
  List.iter
    (fun variant ->
      let v = Decide.check ~variant rules in
      Fmt.pr "  %a chase: %s@." Variant.pp variant
        (Verdict.answer_to_string (Verdict.answer v)))
    [ Variant.Oblivious; Variant.Semi_oblivious ];

  section "Example 2 and the oblivious/semi-oblivious separation";
  let show name rules =
    let o = Decide.check ~variant:Variant.Oblivious rules in
    let so = Decide.check ~variant:Variant.Semi_oblivious rules in
    Fmt.pr "  %-28s o: %-10s so: %-10s@." name
      (Verdict.answer_to_string (Verdict.answer o))
      (Verdict.answer_to_string (Verdict.answer so))
  in
  show "p(X,Y) -> p(Y,Z)" Families.example2;
  show "p(X,Y) -> p(X,Z)" Families.separator;
  show "p(X,X) -> p(X,Z)" Families.thm2_counterexample;
  Fmt.pr
    "@.  The second line is the separation behind Theorem 1 (richly acyclic ⊊ \
     weakly acyclic);@.  the third is the repeated-variable effect behind \
     Theorem 2.@.";

  section "A verdict carries its evidence";
  let v = Decide.check ~variant:Variant.Oblivious Families.separator in
  Fmt.pr "  %a@." Verdict.pp v
