The chase daemon serves decide/chase/lint/query over a Unix-domain
socket; the client relays byte-identical output and the op's exit code.

  $ cat > prog.chase <<'EOF'
  > emp(N, D) -> dept(D, M).
  > dept(D, M) -> works(M, D).
  > emp(ada, cs).
  > EOF

  $ ../bin/chased.exe ./d.sock --spool spool --metrics m.jsonl 2> daemon.log &
  $ DPID=$!
  $ for i in $(seq 1 100); do [ -S ./d.sock ] && break; sleep 0.1; done

A ping proves liveness — and identifies the server: build, uptime,
role and the durable paths, one JSON line.

  $ ../bin/chasec.exe -s ./d.sock ping | grep -c '"pong":true.*"role":"primary".*"build":"chase\/.*"uptime_s":.*"pid":.*"socket":.*"spool":"spool"'
  1

The daemon's chase bytes are identical to a single-shot chase_cli run
with the same grant (the daemon derives --max-atoms as 4x the budget).

  $ ../bin/chase_cli.exe prog.chase -b 50000 --max-atoms 200000 > one.out 2> one.err; echo "exit $?"
  exit 0
  $ ../bin/chasec.exe -s ./d.sock chase prog.chase -b 50000 > two.out 2> two.err; echo "exit $?"
  exit 0
  $ cmp one.out two.out && cmp one.err two.err && echo identical
  identical

A repeat of the same request is served from the cache — the client can
prove it — and the bytes still match.

  $ ../bin/chasec.exe -s ./d.sock chase prog.chase -b 50000 --verbose > three.out 2> three.err
  $ grep -c cached three.err
  1
  $ cmp one.out three.out && echo identical
  identical

A durable chase is acknowledged through the spool.

  $ ../bin/chasec.exe -s ./d.sock chase prog.chase -b 50000 -q --durable
  oblivious chase: terminated
  facts: 3 (created 2)
  triggers: 2 applied
  nulls: 1
  max depth: 2

The query op answers conjunctive queries against the universal model
(certain answers only: rows with labelled nulls are not certain).

  $ ../bin/chasec.exe -s ./d.sock query prog.chase --query 'emp(N, D), dept(D, M) -> ans(N, D).'
  ans(ada, cs).

The telemetry op snapshots the live metric registry — as one JSON
document and as Prometheus text exposition — and obs-check validates
both renderings.

  $ ../bin/chasec.exe -s ./d.sock telemetry > tele.json
  $ ../bin/obs_check.exe --telemetry tele.json
  telemetry OK: tele.json
  $ ../bin/chasec.exe -s ./d.sock telemetry -v prom > tele.prom
  $ grep -c '^# TYPE chase_build_info gauge$' tele.prom
  1
  $ ../bin/obs_check.exe --prom tele.prom > prom_ok.out
  $ grep -c '^prom OK: tele.prom' prom_ok.out
  1

chasec top renders the same snapshot for humans.

  $ ../bin/chasec.exe top -s ./d.sock | grep -c 'role primary'
  1

Unknown ops are a usage error, client-side.

  $ ../bin/chasec.exe -s ./d.sock frobnicate prog.chase
  chasec: unknown op "frobnicate"
  [64]

Shutdown is graceful: in-flight work drains, then the daemon exits and
its metrics file validates.

  $ ../bin/chasec.exe -s ./d.sock shutdown
  bye
  $ wait $DPID
  $ ../bin/obs_check.exe --metrics m.jsonl
  metrics OK: m.jsonl (13 lines)
