The termination CLI classifies and decides; exit code 2 signals divergence.

  $ cat > ex2.chase <<'EOF'
  > p(X, Y) -> p(Y, Z).
  > EOF
  $ ../bin/termination_cli.exe ex2.chase -v oblivious
  class: simple-linear
  diverges (by rich-acyclicity)
  dangerous cycle in the extended dependency graph: p[1] — on simple linear rules every such cycle is realizable (Thm 1)
  [2]

The separator terminates under the semi-oblivious chase only.

  $ cat > sep.chase <<'EOF'
  > p(X, Y) -> p(X, Z).
  > EOF
  $ ../bin/termination_cli.exe sep.chase -v so
  class: simple-linear
  terminates (by weak-acyclicity)
  the dependency graph has no cycle through a special edge
  $ ../bin/termination_cli.exe sep.chase -v o > /dev/null 2>&1; echo "exit $?"
  exit 2

The chase CLI computes universal models.

  $ cat > prog.chase <<'EOF'
  > emp(N, D) -> dept(D, M).
  > dept(D, M) -> works(M, D).
  > emp(ada, cs).
  > EOF
  $ ../bin/chase_cli.exe prog.chase -v restricted
  dept(cs, _:n1).
  emp(ada, cs).
  works(_:n1, cs).
  restricted chase: terminated
  facts: 3 (created 2)
  triggers: 2 applied
  nulls: 1
  max depth: 2

The bundled university ontology is terminating simple linear.

  $ ../bin/termination_cli.exe ../data/university.chase -v so | head -2
  class: simple-linear
  terminates (by weak-acyclicity)

Chasing the critical instance of a divergent set stops at the budget
(exit code 2) and leaves a structured exhaustion reason on stderr.

  $ ../bin/chase_cli.exe ex2.chase --critical -b 10 -q > out.txt 2> err.txt; echo "exit $?"
  exit 2
  $ grep -c "budget exhausted" out.txt
  1
  $ grep "exhausted:" err.txt
  exhausted: trigger budget of 10 applications
  $ grep "dominant rule:" err.txt
  dominant rule: rule#1 (10/10 firings)
  $ grep "null growth:" err.txt
  null growth: 1.00 per trigger (window 10)

A wall-clock deadline interrupts a divergent run gracefully: the partial
instance is kept, the exit code is 2 and the reason names the dominant
rule and the null-growth diagnosis.

  $ cat > div.chase <<'EOF'
  > z1: p(X, Y) -> p(Y, Z).
  > p(a, b).
  > EOF
  $ ../bin/chase_cli.exe div.chase --timeout 0.2 -b 100000000 --max-atoms 100000000 -q > /dev/null 2> err2.txt; echo "exit $?"
  exit 2
  $ grep -c "wall-clock deadline" err2.txt
  1
  $ grep -c "dominant rule: z1" err2.txt
  1
  $ grep -c "diverging so far" err2.txt
  1

Parse errors carry line numbers, including statements of the wrong kind.

  $ cat > mixed.chase <<'EOF'
  > p(X) -> q(X).
  > q(X) -> X = X.
  > EOF
  $ ../bin/termination_cli.exe mixed.chase
  parse error: line 2: unexpected EGD: use parse_program_full for programs with EGDs
  [1]

The --report mode prints the whole analysis portfolio.

  $ ../bin/termination_cli.exe sep.chase --report
  rules: 1   class: simple-linear, single-head
  acyclicity: RA no   WA yes   JA yes   SWA yes   STR yes   MFA yes
  oblivious:      diverges (by rich-acyclicity)
                  dangerous cycle in the extended dependency graph: p[1] — on simple linear rules every such cycle is realizable (Thm 1)
  semi-oblivious: terminates (by weak-acyclicity)
                  the dependency graph has no cycle through a special edge
  restricted:     terminates (by weak-acyclicity (sufficient))
                  weakly acyclic: the restricted chase terminates on every database
  critical-instance chase (so, budgeted): terminated — 2 facts, 1 triggers, depth 1, 1 nulls
