The lint CLI: static diagnostics with stable codes and witnesses.

An arity clash is an error (E001) and exits 2.

  $ cat > clash.chase <<'EOF'
  > p(X,Y) -> q(X).
  > q(X,Y) -> p(Y,X).
  > EOF
  $ ../bin/lint_cli.exe clash.chase
  clash.chase:2: error[E001] predicate q is used with clashing arities: arity 1 (line 1) vs arity 2 (line 2)
  clash.chase: 1 error
  [2]

An unguarded rule is a warning (W010) and exits 1; a duplicate rule and
a write-only existential are infos and do not gate.

  $ cat > hygiene.chase <<'EOF'
  > t: e(X, Y), e(Y, Z) -> e(X, Z).
  > a: p(X, Y) -> q(X).
  > b: p(U, V) -> q(U).
  > c: q(X) -> h(X, W).
  > EOF
  $ ../bin/lint_cli.exe hygiene.chase
  hygiene.chase:1: warning[W010] rule t is unguarded: no single body atom covers Z (best candidate: e(X, Y))
  hygiene.chase:3: info[I031] rule b is a duplicate of rule a: it can derive nothing new
  hygiene.chase:4: info[I032] existential variable W of rule c is write-only: no rule body reads h
  hygiene.chase: 1 warning, 2 infos
  [1]

A database enables the reachability passes (I030, I033).

  $ cat > dead.chase <<'EOF'
  > r1: p(X) -> q(X).
  > r2: s(X) -> t(X).
  > p(a).
  > EOF
  $ ../bin/lint_cli.exe dead.chase
  dead.chase:2: info[I030] predicate s is unreachable: no database fact or derivable head can populate it
  dead.chase:2: info[I033] rule r2 can never fire on this database: s is never populated
  dead.chase: 2 infos

--explain runs the termination front door and attaches the causal
witness of a divergence verdict: the dangerous cycle on simple linear
sets (W020), the confirmed pump elsewhere (W021).

  $ cat > ex2.chase <<'EOF'
  > p(X, Y) -> p(Y, Z).
  > EOF
  $ ../bin/lint_cli.exe --explain so ex2.chase
  ex2.chase: warning[W020] the dependency graph has a cycle through a special edge: p[1] — on simple linear rules every such cycle is realizable (Theorem 1), so the chase diverges
  ex2.chase: verdict (semi-oblivious): diverges [weak-acyclicity]
  ex2.chase: 1 warning
  [1]

  $ cat > pump.chase <<'EOF'
  > a: p(X,X) -> q(X,Z).
  > b: q(X,Y) -> p(Y,Y).
  > EOF
  $ ../bin/lint_cli.exe --explain so pump.chase
  pump.chase:1: warning[W021] confirmed pump through rules a, b (replayed 5 laps); one lap with fresh nulls: p(_:n1, _:n1) -> q(_:n1, _:n2) -> p(_:n2, _:n2)
  pump.chase: verdict (semi-oblivious): diverges [critical-weak-acyclicity]
  pump.chase: 1 warning
  [1]

--format json emits one object per file, witnesses included.

  $ ../bin/lint_cli.exe --format json dead.chase
  {"file":"dead.chase","diagnostics":[{"code":"I030","name":"unreachable-predicate","severity":"info","line":2,"rule":null,"message":"predicate s is unreachable: no database fact or derivable head can populate it","witness":{"kind":"unreachable-predicate","pred":"s","used_by":[1]}},{"code":"I033","name":"dead-rule","severity":"info","line":2,"rule":"r2","message":"rule r2 can never fire on this database: s is never populated","witness":{"kind":"dead-rule","rule":1,"missing":["s"]}}],"verdicts":[],"summary":{"errors":0,"warnings":0,"infos":2}}

The corpus ships clean.

  $ ../bin/lint_cli.exe ../data/*.chase ../examples/*.chase
  ../data/company_mapping.chase: clean
  ../data/divergent_zoo.chase: clean
  ../data/genealogy.chase: clean
  ../data/university.chase: clean
  ../examples/bibliography.chase: clean

Both CLIs preflight the schema: an arity clash aborts with the E001
diagnostic instead of an internal error.

  $ ../bin/termination_cli.exe clash.chase
  clash.chase:2: error[E001] predicate q is used with clashing arities: arity 1 (line 1) vs arity 2 (line 2)
  [2]

  $ ../bin/chase_cli.exe clash.chase
  clash.chase:2: error[E001] predicate q is used with clashing arities: arity 1 (line 1) vs arity 2 (line 2)
  [2]

And --lint runs the full battery before the run proper.

  $ ../bin/termination_cli.exe hygiene.chase --lint -v so -b 200
  hygiene.chase:1: warning[W010] rule t is unguarded: no single body atom covers Z (best candidate: e(X, Y))
  hygiene.chase:3: info[I031] rule b is a duplicate of rule a: it can derive nothing new
  hygiene.chase:4: info[I032] existential variable W of rule c is write-only: no rule body reads h
  class: unguarded
  terminates (by weak-acyclicity (sufficient))
  weakly acyclic: the semi-oblivious chase terminates on every database (sound for arbitrary TGDs)

The --analyze battery prints the Σ-flow dataflow summary — strata,
affected positions, may-trigger edges — and the super-weak-acyclicity
and stratification verdicts, with machine-checkable witnesses (I034,
I035).  The constant refinement below (a vs b) breaks the would-be
cycle: the set is not weakly acyclic yet both new conditions prove
termination.

  $ cat > flowy.chase <<'EOF'
  > mk: s(X) -> t(a, X, Y).
  > use: t(b, X, Y) -> s(Y).
  > EOF
  $ ../bin/lint_cli.exe --analyze flowy.chase
  flowy.chase: info[I035] safely stratified: 2 strata, each weakly acyclic — the semi-oblivious chase terminates on every database
  flowy.chase: analysis: 2 rules, 2 strata, 3/4 affected positions, 1 may-trigger edges, 0 null-flow edges
  flowy.chase: stratum 1: use
  flowy.chase: stratum 2: mk
  flowy.chase: affected: s[0], t[1], t[2]
  flowy.chase: may-trigger: use -> mk
  flowy.chase: super-weak-acyclic: yes
  flowy.chase: stratified: yes
  flowy.chase: 1 info

A divergent set draws the trigger cycle.

  $ ../bin/lint_cli.exe --analyze pump.chase
  pump.chase: info[I034] not super-weakly acyclic: invented nulls can cycle through a (q[1])
  pump.chase: info[I035] stratum {a, b} is not weakly acyclic on its own
  pump.chase: analysis: 2 rules, 1 strata, 4/4 affected positions, 2 may-trigger edges, 2 null-flow edges
  pump.chase: stratum 1: a b
  pump.chase: affected: p[0], p[1], q[0], q[1]
  pump.chase: may-trigger: a -> b, b -> a
  pump.chase: super-weak-acyclic: no (cycle: a)
  pump.chase: stratified: no (stratum {a, b})
  pump.chase: 2 infos

--format json carries the analysis block with both witnesses.

  $ ../bin/lint_cli.exe --analyze --format json flowy.chase
  {"file":"flowy.chase","diagnostics":[{"code":"I035","name":"stratification","severity":"info","line":null,"rule":null,"message":"safely stratified: 2 strata, each weakly acyclic — the semi-oblivious chase terminates on every database","witness":{"kind":"strata","strata":[[1],[0]],"cyclic":null}}],"verdicts":[],"summary":{"errors":0,"warnings":0,"infos":1},"analysis":{"strata":[[1],[0]],"affected":[{"pred":"s","index":0},{"pred":"t","index":1},{"pred":"t","index":2}],"may_trigger":[{"from":1,"to":0}],"null_flow_edges":0,"super_weak_acyclic":true,"trigger_cycle":null,"stratified":true,"cyclic_stratum":null}}
