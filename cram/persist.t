Crash-safe chase: write-ahead journal, atomic snapshots, resume.

  $ cat > tc.chase <<'EOF'
  > tc: e(X, Y), e(Y, Z) -> e(X, Z).
  > mk: e(X, Y) -> r(X, W).
  > e(a0, a1). e(a1, a2). e(a2, a3). e(a3, a4). e(a4, a5).
  > e(a5, a6). e(a6, a7). e(a7, a8). e(a8, a9).
  > EOF

A journaled run writes the journal and an atomic snapshot next to it.

  $ ../bin/chase_cli.exe tc.chase --journal full.jnl -q
  oblivious chase: terminated
  facts: 90 (created 81)
  triggers: 165 applied
  nulls: 45
  max depth: 5
  $ ls full.jnl full.jnl.snap
  full.jnl
  full.jnl.snap

A budget-killed run exits 2; --resume picks it up at the exact step and
finishes with the same result as an uninterrupted run (exit 0).

  $ ../bin/chase_cli.exe tc.chase --journal run.jnl -b 50 -q > /dev/null 2>&1; echo "exit $?"
  exit 2
  $ ../bin/chase_cli.exe tc.chase --resume run.jnl -q 2> resume.err; echo "exit $?"
  oblivious chase: terminated
  facts: 90 (created 81)
  triggers: 165 applied
  nulls: 45
  max depth: 5
  exit 0
  $ cat resume.err
  resuming at step 50 (50 journal records, snapshot through step 50)

A journal from a --timeout-killed run resumes and exits 0.

  $ { echo "tc: e(X, Y), e(Y, Z) -> e(X, Z)."; echo "mk: e(X, Y) -> r(X, W)."; \
  >   for i in $(seq 0 59); do echo "e(b$i, b$((i+1)))."; done; } > big.chase
  $ ../bin/chase_cli.exe big.chase --journal slow.jnl --timeout 0.05 -q > /dev/null 2>&1 || true
  $ ../bin/chase_cli.exe big.chase --resume slow.jnl -q > /dev/null 2> /dev/null; echo "exit $?"
  exit 0

Resuming a journal of a finished run is a no-op with the same result.

  $ ../bin/chase_cli.exe tc.chase --resume full.jnl -q 2> /dev/null
  oblivious chase: terminated
  facts: 90 (created 81)
  triggers: 165 applied
  nulls: 45
  max depth: 5

A torn tail is truncated — the truncation point is reported on stderr —
and the resume still succeeds.

  $ head -c $(($(wc -c < full.jnl) - 3)) full.jnl > torn.jnl
  $ ../bin/chase_cli.exe tc.chase --resume torn.jnl -q > /dev/null 2> torn.err; echo "exit $?"
  exit 0
  $ grep -c "truncated torn tail at byte" torn.err
  1

An unusable journal — truncated into the header, or not a journal at
all — cannot support a resume: structured error, exit 2.

  $ head -c 20 full.jnl > bad.jnl
  $ ../bin/chase_cli.exe tc.chase --resume bad.jnl -q
  cannot resume: journal bad.jnl: corrupt header record: frame length overruns the file
  [2]
  $ echo "not a journal" > bad2.jnl
  $ ../bin/chase_cli.exe tc.chase --resume bad2.jnl -q
  cannot resume: bad2.jnl is not a chase journal (bad magic)
  [2]

A journal never resumes against a different program.

  $ cat > other.chase <<'EOF'
  > tc: e(X, Y), e(Y, Z) -> e(X, Z).
  > e(z0, z1).
  > EOF
  $ ../bin/chase_cli.exe other.chase --resume full.jnl -q
  cannot resume: journal was written for a different rule set
  [2]

Both CLIs report a structured error (no backtrace) on unreadable input.

  $ ../bin/chase_cli.exe nope.chase
  error: cannot read input: nope.chase: No such file or directory
  [1]
  $ ../bin/termination_cli.exe nope.chase
  error: cannot read input: nope.chase: No such file or directory
  [1]
