The parallel chase is the same chase: --domains N changes wall-clock,
never bytes.  Both CLIs accept the flag; byte-compare their output
against a single-domain run.

  $ cat > prog.chase <<'EOF'
  > e(X, Y) -> e(Y, Z).
  > e(X, Y), e(Y, Z) -> e(X, Z).
  > e(a, b).
  > EOF
  $ ../bin/chase_cli.exe prog.chase --budget 40 > seq.out 2> seq.err; echo "exit $?"
  exit 2
  $ ../bin/chase_cli.exe prog.chase --budget 40 --domains 4 > par.out 2> par.err; echo "exit $?"
  exit 2
  $ cmp seq.out par.out && echo "stdout identical"
  stdout identical

The exhaustion report on stderr differs only in its wall-clock line.

  $ grep -v '^after:' seq.err > seq.err.notime
  $ grep -v '^after:' par.err > par.err.notime
  $ cmp seq.err.notime par.err.notime && echo "stderr identical modulo timing"
  stderr identical modulo timing

CHASE_DOMAINS is the environment spelling of the same knob.

  $ CHASE_DOMAINS=3 ../bin/chase_cli.exe prog.chase --budget 40 > env.out 2> /dev/null; echo "exit $?"
  exit 2
  $ cmp seq.out env.out && echo "stdout identical"
  stdout identical

A terminating restricted run, byte-compared whole.

  $ cat > model.chase <<'EOF'
  > emp(N, D) -> dept(D, M).
  > dept(D, M) -> works(M, D).
  > emp(ada, cs).
  > EOF
  $ ../bin/chase_cli.exe model.chase -v restricted > m1.out 2>&1
  $ ../bin/chase_cli.exe model.chase -v restricted --domains 4 > m4.out 2>&1
  $ cmp m1.out m4.out && echo "identical"
  identical
  $ cat m4.out
  dept(cs, _:n1).
  emp(ada, cs).
  works(_:n1, cs).
  restricted chase: terminated
  facts: 3 (created 2)
  triggers: 2 applied
  nulls: 1
  max depth: 2

The termination CLI: verdicts are domain-count-independent.

  $ cat > lin.chase <<'EOF'
  > p(X, Y) -> p(X, Z).
  > EOF
  $ ../bin/termination_cli.exe lin.chase -v so > v1.out 2>&1
  $ ../bin/termination_cli.exe lin.chase -v so --domains 2 > v2.out 2>&1
  $ cmp v1.out v2.out && cat v2.out
  class: simple-linear
  terminates (by weak-acyclicity)
  the dependency graph has no cycle through a special edge

Malformed domain counts are rejected at the command line, on both CLIs.

  $ ../bin/chase_cli.exe prog.chase --domains 0 2>&1 | head -n 2
  chase: option '--domains': domain count must be >= 1 (got 0)
  Usage: chase [OPTION]… FILE
  $ ../bin/chase_cli.exe prog.chase --domains 0 > /dev/null 2>&1; echo "exit $?"
  exit 124
  $ ../bin/chase_cli.exe prog.chase --domains many 2>&1 | head -n 1
  chase: option '--domains': domain count must be an integer (got "many")
  $ ../bin/termination_cli.exe lin.chase --domains -2 > /dev/null 2>&1; echo "exit $?"
  exit 124
