End-to-end request tracing across a replicated pair: the client mints
the root context, the primary and its shipper tag their spans with it,
the standby's receiver parents its apply spans on the shipped context,
and `chasec trace-merge` joins the per-process shards into one
Chrome-trace file that obs-check validates as a trace tree.

  $ cat > prog.chase <<'EOF'
  > emp(N, D) -> dept(D, M).
  > dept(D, M) -> works(M, D).
  > emp(ada, cs).
  > EOF

Start a standby first (it binds the ship socket), then the primary
shipping to it; each process appends to its own trace shard.

  $ ../bin/chased.exe ./s.sock --spool sspool --standby-of ./ship.sock --trace-shard standby.trace 2> standby.log &
  $ SPID=$!
  $ for i in $(seq 1 100); do [ -S ./ship.sock ] && break; sleep 0.1; done
  $ ../bin/chased.exe ./p.sock --spool pspool --ship-to ./ship.sock --trace-shard primary.trace 2> primary.log &
  $ PPID2=$!
  $ for i in $(seq 1 100); do [ -S ./p.sock ] && break; sleep 0.1; done

One traced durable chase: the root span is minted client-side and
propagates through admission, the engine, the spool fsync, the
shipper's semi-sync wait, and the standby's apply.

  $ ../bin/chasec.exe -s ./p.sock chase prog.chase -b 50000 -q --durable --trace-out client.trace
  oblivious chase: terminated
  facts: 3 (created 2)
  triggers: 2 applied
  nulls: 1
  max depth: 2

Give the asynchronous tail of the replication stream a moment, then
stop both daemons (closing their shard files).

  $ sleep 1
  $ ../bin/chasec.exe -s ./p.sock shutdown
  bye
  $ wait $PPID2
  $ kill $SPID 2> /dev/null
  $ wait $SPID 2> /dev/null || true

Every process wrote its own shard.

  $ for f in client.trace primary.trace standby.trace; do [ -s $f ] && echo "$f written"; done
  client.trace written
  primary.trace written
  standby.trace written

The merge joins the shards by trace id into one Chrome trace, and
obs-check validates it both as a trace file and as a trace tree (one
root per trace, every parent resolvable, children inside their root).

  $ ../bin/chasec.exe trace-merge client.trace primary.trace standby.trace > merged.json
  $ ../bin/obs_check.exe --trace merged.json > merge_ok.out
  $ grep -c '^trace OK: merged.json' merge_ok.out
  1
  $ ../bin/obs_check.exe --tracectx merged.json > tree_ok.out
  $ grep -c '^tracectx OK: merged.json' tree_ok.out
  1

The one request's trace contains spans from every process in the
pipeline — client, server, engine, shipper, receiver — under a single
trace id.

  $ for name in client.request server.chase engine.run shipper.sync receiver.apply; do
  >   grep -c "\"$name\"" merged.json > /dev/null && echo "$name present"
  > done
  client.request present
  server.chase present
  engine.run present
  shipper.sync present
  receiver.apply present
  $ grep -o '"trace":"[0-9a-f]*"' merged.json | sort -u | wc -l | tr -d ' '
  1
