The static trigger-relevance index (DESIGN.md 3.11) skips provably
empty discovery events; pruned runs are byte-identical to unpruned
ones — same facts, same null stamps, same journal.

  $ cat > prog.chase <<'EOF'
  > e(X, Y) -> e(Y, Z).
  > e(X, Y), e(Y, Z) -> e(X, Z).
  > p(X) -> q(X).
  > e(a, b).
  > EOF
  $ ../bin/chase_cli.exe prog.chase --budget 40 > on.out 2> on.err; echo "exit $?"
  exit 2
  $ ../bin/chase_cli.exe prog.chase --budget 40 --no-prune > off.out 2> off.err; echo "exit $?"
  exit 2
  $ cmp on.out off.out && echo "stdout identical"
  stdout identical

The exhaustion report on stderr differs only in its wall-clock line.

  $ grep -v '^after:' on.err > on.err.notime
  $ grep -v '^after:' off.err > off.err.notime
  $ cmp on.err.notime off.err.notime && echo "stderr identical modulo timing"
  stderr identical modulo timing

CHASE_NO_PRUNE is the environment spelling of the same knob.

  $ CHASE_NO_PRUNE=1 ../bin/chase_cli.exe prog.chase --budget 40 > env.out 2> /dev/null; echo "exit $?"
  exit 2
  $ cmp on.out env.out && echo "stdout identical"
  stdout identical

Pruning composes with the parallel matching plane.

  $ ../bin/chase_cli.exe prog.chase --budget 40 --domains 4 > par.out 2> /dev/null; echo "exit $?"
  exit 2
  $ cmp on.out par.out && echo "stdout identical"
  stdout identical
  $ ../bin/chase_cli.exe prog.chase --budget 40 --domains 4 --no-prune > paroff.out 2> /dev/null; echo "exit $?"
  exit 2
  $ cmp on.out paroff.out && echo "stdout identical"
  stdout identical

The chase.prune.* counters flow through --metrics and validate with
obs_check.

  $ ../bin/chase_cli.exe prog.chase --budget 40 -q --metrics m.jsonl > /dev/null 2>&1; echo "exit $?"
  exit 2
  $ ../bin/obs_check.exe --metrics m.jsonl
  metrics OK: m.jsonl (36 lines)
  $ grep -c '"chase\.prune\.' m.jsonl
  3
