Observability: the --profile hot-spot table, --metrics JSONL and
--trace Chrome trace files, validated by the obs-check tool.

  $ cat > prog.chase <<'EOF'
  > r1: p(X) -> q(X, Y).
  > r2: q(X, Y) -> r(Y).
  > r3: r(X), q(Y, X) -> s(X).
  > p(a). p(b).
  > EOF

The profile table rides after the run statistics.  Its label and
integer columns (rule, firings, nulls, probes) are deterministic —
rows sort by firings, then name — while the time columns are not, so
the test pins the first four columns only.

  $ ../bin/chase_cli.exe prog.chase -q --profile | awk 'NR > 7 && NF { print $1, $2, $3, $4 }'
  r1 2 2 2
  r2 2 0 2
  r3 2 0 0
  TOTAL 6 2 4

The metrics file opens with the schema header line, then JSONL events
and summaries; run counters are deterministic for a fixed program.

  $ ../bin/chase_cli.exe prog.chase -q --metrics m.jsonl > /dev/null
  $ head -n 1 m.jsonl
  {"type":"schema","schema":"chase-metrics/1"}
  $ grep '"chase.triggers_applied"' m.jsonl
  {"type":"counter","name":"chase.triggers_applied","value":6}
  $ grep '"chase.rule.firings"' m.jsonl
  {"type":"counter","name":"chase.rule.firings","label":"r1","value":2}
  {"type":"counter","name":"chase.rule.firings","label":"r2","value":2}
  {"type":"counter","name":"chase.rule.firings","label":"r3","value":2}

The trace file is a balanced Chrome trace-event array; obs-check
validates both outputs (and the event counts are deterministic).

  $ ../bin/chase_cli.exe prog.chase -q --trace t.json --metrics m2.jsonl > /dev/null
  $ ../bin/obs_check.exe --trace t.json --metrics m2.jsonl
  trace OK: t.json (29 events, spans balanced)
  metrics OK: m2.jsonl (36 lines)

obs-check rejects tampered files.

  $ echo '{"truncated": true' > bad.json
  $ ../bin/obs_check.exe --trace bad.json
  obs-check: bad.json: invalid JSON: expected ',' or '}' at byte 19
  [1]
  $ echo '{"type":"note"}' > bad.jsonl
  $ ../bin/obs_check.exe --metrics bad.jsonl
  obs-check: bad.jsonl: first line is not the chase-metrics/1 schema header
  [1]

The termination CLI carries the same flags; the decision procedures
report per-procedure dispatch counters.

  $ cat > div.chase <<'EOF'
  > g1: p(X, Y) -> p(Y, Z).
  > EOF
  $ ../bin/termination_cli.exe div.chase -v oblivious --metrics d.jsonl > /dev/null 2>&1; echo "exit $?"
  exit 2
  $ grep '"decide.dispatch"' d.jsonl
  {"type":"counter","name":"decide.dispatch","label":"simple-linear","value":1}
