(** The experiment harness: regenerates every experiment of EXPERIMENTS.md.

    The paper is a theory paper — its "evaluation" is Theorems 1–4 — so
    each experiment validates one claim empirically: agreement of the
    exact procedures with a chase-simulation oracle (E1, E2, E4),
    complexity {e shape} (E3, E4b), the variant lattice (E5), the
    critical-instance reduction (E6), the looping operator (E7) and the
    §4 restricted-chase preview (E8).  A final section runs Bechamel
    microbenchmarks of the core operations.

    Run with: dune exec bench/main.exe          (full sizes)
              dune exec bench/main.exe -- --quick *)

open Chase

let section title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

let hr () = Fmt.pr "%s@." (String.make 72 '-')

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every experiment records its headline     *)
(* numbers; the harness writes them to BENCH_results.json at the end.  *)
(* ------------------------------------------------------------------ *)

let results : (string * string) list ref = ref []

(* [v] is a ready-to-embed JSON scalar (use the j* helpers below). *)
let record experiment metric v =
  results := (Fmt.str "%s/%s" experiment metric, v) :: !results

let jint = string_of_int
let jbool = string_of_bool
let jfloat f = Fmt.str "%.6g" f

let write_results path =
  let oc = open_out path in
  let fm = Format.formatter_of_out_channel oc in
  Fmt.pf fm "{@\n";
  let entries =
    ("schema_version", "1") :: ("unit_of_time", "\"seconds\"")
    :: List.rev !results
  in
  List.iteri
    (fun i (k, v) ->
      Fmt.pf fm "  %S: %s%s@\n" k v
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Fmt.pf fm "}@.";
  close_out oc;
  Fmt.pr "@.results written to %s@." path

(* ------------------------------------------------------------------ *)
(* Small timing helpers (wall-clock scaling tables)                    *)
(* ------------------------------------------------------------------ *)

let time_avg ?(reps = 3) f =
  let total = ref 0.0 in
  for _ = 1 to reps do
    let t0 = Sys.time () in
    ignore (Sys.opaque_identity (f ()));
    total := !total +. (Sys.time () -. t0)
  done;
  !total /. float_of_int reps

let pp_time fm s =
  if s < 1e-3 then Fmt.pf fm "%8.1f µs" (s *. 1e6)
  else if s < 1.0 then Fmt.pf fm "%8.2f ms" (s *. 1e3)
  else Fmt.pf fm "%8.2f s " s

(* The chase-simulation oracle used throughout. *)
let oracle ?(budget = 20_000) variant rules =
  let crit = Critical.of_rules ~standard:false rules in
  let config =
    { Engine.variant; limits = Limits.of_budget budget }
  in
  (Engine.run ~config rules (Instance.to_list crit)).Engine.status
  = Engine.Terminated

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 1: acyclicity is exact on simple linear TGDs           *)
(* ------------------------------------------------------------------ *)

let e1 seeds =
  section "E1  Theorem 1: RA = CT^o and WA = CT^so on simple linear TGDs";
  let agree_o = ref 0 and agree_so = ref 0 in
  let term_o = ref 0 and term_so = ref 0 in
  for seed = 0 to seeds - 1 do
    let rules = Random_tgds.simple_linear ~seed () in
    let ra = Rich.is_richly_acyclic rules in
    let wa = Weak.is_weakly_acyclic rules in
    let ct_o = oracle Variant.Oblivious rules in
    let ct_so = oracle Variant.Semi_oblivious rules in
    if ra = ct_o then incr agree_o;
    if wa = ct_so then incr agree_so;
    if ct_o then incr term_o;
    if ct_so then incr term_so
  done;
  Fmt.pr "random SL sets: %d  (terminating: o %d, so %d)@." seeds !term_o
    !term_so;
  Fmt.pr "RA vs o-chase oracle agreement:  %d/%d@." !agree_o seeds;
  Fmt.pr "WA vs so-chase oracle agreement: %d/%d@." !agree_so seeds;
  record "E1" "sets" (jint seeds);
  record "E1" "agreement_ra_oblivious" (jint !agree_o);
  record "E1" "agreement_wa_semi_oblivious" (jint !agree_so)

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 2: critical acyclicity is exact on linear TGDs         *)
(* ------------------------------------------------------------------ *)

let e2 seeds =
  section "E2  Theorem 2: critical acyclicity is exact on linear TGDs";
  let agree_o = ref 0 and agree_so = ref 0 in
  let wa_wrong = ref 0 and ra_wrong = ref 0 in
  for seed = 0 to seeds - 1 do
    let rules = Random_tgds.linear ~seed () in
    let ct_o = oracle Variant.Oblivious rules in
    let ct_so = oracle Variant.Semi_oblivious rules in
    let crit_o =
      Verdict.is_terminating
        (Linear.check ~standard:false ~variant:Variant.Oblivious rules)
    in
    let crit_so =
      Verdict.is_terminating
        (Linear.check ~standard:false ~variant:Variant.Semi_oblivious rules)
    in
    if crit_o = ct_o then incr agree_o;
    if crit_so = ct_so then incr agree_so;
    (* plain acyclicity is sound but incomplete: count the gap *)
    if (not (Rich.is_richly_acyclic rules)) && ct_o then incr ra_wrong;
    if (not (Weak.is_weakly_acyclic rules)) && ct_so then incr wa_wrong
  done;
  Fmt.pr "random linear sets: %d@." seeds;
  Fmt.pr "critical-RA vs o-oracle agreement:  %d/%d@." !agree_o seeds;
  Fmt.pr "critical-WA vs so-oracle agreement: %d/%d@." !agree_so seeds;
  Fmt.pr
    "incompleteness of plain acyclicity (dangerous cycle yet terminating): o \
     %d, so %d@."
    !ra_wrong !wa_wrong;
  Fmt.pr "named counterexample p(X,X) -> p(X,Z): WA %b, exact answer %s@."
    (Weak.is_weakly_acyclic Families.thm2_counterexample)
    (Verdict.answer_to_string
       (Verdict.answer
          (Linear.check ~variant:Variant.Oblivious Families.thm2_counterexample)));
  record "E2" "sets" (jint seeds);
  record "E2" "agreement_critical_ra_oblivious" (jint !agree_o);
  record "E2" "agreement_critical_wa_semi_oblivious" (jint !agree_so);
  record "E2" "plain_acyclicity_gap_oblivious" (jint !ra_wrong);
  record "E2" "plain_acyclicity_gap_semi_oblivious" (jint !wa_wrong)


(* ------------------------------------------------------------------ *)
(* E2b - the sufficient-condition lattice WA <= JA on linear sets       *)
(* ------------------------------------------------------------------ *)

let e2b seeds =
  section "E2b  Sufficient conditions: WA ⊆ JA, both sound for the so-chase";
  let wa_yes = ref 0 and ja_yes = ref 0 and mfa_yes = ref 0 in
  let ja_unsound = ref 0 and mfa_unsound = ref 0 and lattice_violation = ref 0 in
  for seed = 0 to seeds - 1 do
    let rules = Random_tgds.linear ~seed () in
    let wa = Weak.is_weakly_acyclic rules in
    let ja = Joint.is_jointly_acyclic rules in
    let mfa = Mfa.is_mfa rules in
    if wa then incr wa_yes;
    if ja then incr ja_yes;
    if mfa then incr mfa_yes;
    if (wa && not ja) || (ja && not mfa) then incr lattice_violation;
    if ja && not (oracle Variant.Semi_oblivious rules) then incr ja_unsound;
    if mfa && not (oracle Variant.Semi_oblivious rules) then incr mfa_unsound
  done;
  Fmt.pr "random linear sets: %d@." seeds;
  Fmt.pr
    "weakly acyclic: %d   jointly acyclic: %d   MFA: %d@." !wa_yes !ja_yes
    !mfa_yes;
  Fmt.pr
    "lattice (WA ⊆ JA ⊆ MFA) violations: %d   unsound cases: JA %d, MFA %d@."
    !lattice_violation !ja_unsound !mfa_unsound;
  Fmt.pr "MFA incompleteness witness (linear, so-terminating, not MFA): %b@."
    (not (Mfa.is_mfa Families.mfa_incomplete_witness));
  record "E2b" "lattice_violations" (jint !lattice_violation);
  record "E2b" "unsound_ja" (jint !ja_unsound);
  record "E2b" "unsound_mfa" (jint !mfa_unsound)

(* ------------------------------------------------------------------ *)
(* E2c - agreement under harder generator profiles                      *)
(* ------------------------------------------------------------------ *)

let e2c seeds_per_profile =
  section "E2c  Theorem 1/2 agreement under harder generator profiles";
  let profiles =
    [
      ("5 rules, arity<=4", { Random_tgds.default_profile with n_rules = 5; max_arity = 4 });
      ("high existential bias", { Random_tgds.default_profile with existential_bias = 0.7 });
      ("low existential bias", { Random_tgds.default_profile with existential_bias = 0.15 });
      ("4 preds, 3 heads", { Random_tgds.default_profile with n_preds = 4; max_head = 3 });
    ]
  in
  List.iter
    (fun (name, profile) ->
      let agree = ref 0 and diverging = ref 0 in
      for seed = 0 to seeds_per_profile - 1 do
        let rules = Random_tgds.linear ~seed ~profile () in
        let ct = oracle ~budget:30_000 Variant.Semi_oblivious rules in
        if not ct then incr diverging;
        let exact =
          Verdict.is_terminating
            (Linear.check ~standard:false ~variant:Variant.Semi_oblivious rules)
        in
        if exact = ct then incr agree
      done;
      Fmt.pr "%-24s agreement %d/%d (diverging: %d)@." name !agree
        seeds_per_profile !diverging;
      record "E2c"
        (Fmt.str "agreement[%s]" name)
        (jint !agree))
    profiles

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 3: complexity shape                                    *)
(* ------------------------------------------------------------------ *)

let e3a () =
  section "E3a  Theorem 3(1): SL checking scales like graph reachability (NL)";
  Fmt.pr "%8s %11s %11s %12s@." "rules" "WA check" "RA check" "positions";
  hr ();
  List.iter
    (fun n ->
      let rules = Families.sl_chain n in
      let twa = time_avg (fun () -> Weak.is_weakly_acyclic rules) in
      let tra = time_avg (fun () -> Rich.is_richly_acyclic rules) in
      let positions = Schema.position_count (Schema.of_rules rules) in
      Fmt.pr "%8d %a %a %12d@." n pp_time twa pp_time tra positions;
      record "E3a" (Fmt.str "wa_seconds[%d]" n) (jfloat twa);
      record "E3a" (Fmt.str "ra_seconds[%d]" n) (jfloat tra))
    [ 16; 64; 256; 1024 ]

let e3b () =
  section "E3b  Theorem 3(2): the linear procedure is exponential in arity only";
  Fmt.pr "%8s %11s %11s@." "arity" "divergent family" "terminating family";
  hr ();
  List.iter
    (fun arity ->
      let div = Families.linear_rotating ~arity in
      let blk = Families.linear_blocked ~arity in
      let t1 =
        time_avg ~reps:1 (fun () ->
            Linear.check ~standard:false ~variant:Variant.Semi_oblivious div)
      in
      let t2 =
        time_avg ~reps:1 (fun () ->
            Linear.check ~standard:false ~variant:Variant.Semi_oblivious blk)
      in
      Fmt.pr "%8d %a %a@." arity pp_time t1 pp_time t2;
      record "E3b" (Fmt.str "divergent_seconds[%d]" arity) (jfloat t1);
      record "E3b" (Fmt.str "terminating_seconds[%d]" arity) (jfloat t2))
    [ 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 4: guarded TGDs                                        *)
(* ------------------------------------------------------------------ *)

let e4a seeds =
  section "E4a  Theorem 4: guarded checker vs chase oracle";
  let agree = ref 0 and unknown = ref 0 in
  for seed = 0 to seeds - 1 do
    let rules = Random_tgds.guarded ~seed () in
    let ct = oracle ~budget:8_000 Variant.Semi_oblivious rules in
    match
      Verdict.answer
        (Guarded.check ~budget:8_000 ~variant:Variant.Semi_oblivious rules)
    with
    | Verdict.Terminates -> if ct then incr agree
    | Verdict.Diverges -> if not ct then incr agree
    | Verdict.Unknown -> incr unknown
  done;
  Fmt.pr "random guarded sets: %d@." seeds;
  Fmt.pr "definite answers agreeing with the oracle: %d/%d (unknown: %d)@."
    !agree seeds !unknown;
  record "E4a" "sets" (jint seeds);
  record "E4a" "definite_agreeing" (jint !agree);
  record "E4a" "unknown" (jint !unknown)

let e4b () =
  section "E4b  Theorem 4: guarded cost grows with arity";
  Fmt.pr "%8s %11s %11s@." "arity" "divergent family" "terminating family";
  hr ();
  List.iter
    (fun arity ->
      let t1 =
        time_avg ~reps:1 (fun () ->
            Guarded.check ~budget:3_000 ~variant:Variant.Semi_oblivious
              (Families.guarded_divergent ~arity))
      in
      let t2 =
        time_avg ~reps:1 (fun () ->
            Guarded.check ~budget:3_000 ~variant:Variant.Semi_oblivious
              (Families.guarded_terminating ~arity))
      in
      Fmt.pr "%8d %a %a@." arity pp_time t1 pp_time t2;
      record "E4b" (Fmt.str "divergent_seconds[%d]" arity) (jfloat t1);
      record "E4b" (Fmt.str "terminating_seconds[%d]" arity) (jfloat t2))
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* E5 — the variant lattice: CT^o ⊆ CT^so, strictly                    *)
(* ------------------------------------------------------------------ *)

let e5 seeds =
  section "E5  Variant census: CT^o ⊆ CT^so (Grahne & Onet), strictly";
  let both = ref 0 and so_only = ref 0 and neither = ref 0 and violations = ref 0 in
  for seed = 0 to seeds - 1 do
    let rules = Random_tgds.linear ~seed () in
    let o = oracle Variant.Oblivious rules in
    let so = oracle Variant.Semi_oblivious rules in
    if o && so then incr both
    else if (not o) && so then incr so_only
    else if (not o) && not so then incr neither
    else incr violations
  done;
  Fmt.pr "random linear sets: %d@." seeds;
  Fmt.pr
    "CT^o ∩ CT^so: %d   CT^so \\ CT^o: %d   neither: %d   violations of CT^o \
     ⊆ CT^so: %d@."
    !both !so_only !neither !violations;
  Fmt.pr "witness of strictness: p(X,Y) -> p(X,Z)  (o diverges, so terminates)@.";
  record "E5" "lattice_violations" (jint !violations);
  record "E5" "so_only" (jint !so_only)

(* ------------------------------------------------------------------ *)
(* E6 — the critical-instance theorem at work                          *)
(* ------------------------------------------------------------------ *)

let e6 seeds =
  section "E6  Critical instance: termination on crit ⇒ termination everywhere";
  let checked = ref 0 and violations = ref 0 in
  let st = Random.State.make [| 4242 |] in
  for seed = 0 to seeds - 1 do
    let rules = Random_tgds.linear ~seed () in
    if oracle Variant.Semi_oblivious rules then begin
      (* try a few random databases; none may diverge *)
      for _ = 1 to 3 do
        incr checked;
        let schema = Schema.of_rules rules in
        let db =
          List.concat_map
            (fun (p, n) ->
              List.init
                (1 + Random.State.int st 3)
                (fun _ ->
                  Atom.of_list p
                    (List.init n (fun _ ->
                         Term.Const (Fmt.str "c%d" (Random.State.int st 5))))))
            (Schema.to_list schema)
        in
        let config =
          {
            Engine.variant = Variant.Semi_oblivious;
            limits = Limits.make ~max_triggers:50_000 ~max_atoms:200_000 ();
          }
        in
        let r = Engine.run ~config rules db in
        if r.Engine.status <> Engine.Terminated then incr violations
      done
    end
  done;
  Fmt.pr
    "crit-terminating linear sets probed on random databases: %d runs, %d \
     divergences@."
    !checked !violations;
  record "E6" "runs" (jint !checked);
  record "E6" "divergences" (jint !violations)

(* ------------------------------------------------------------------ *)
(* E7 — the looping operator                                           *)
(* ------------------------------------------------------------------ *)

let e7 seeds =
  section "E7  Looping operator: chase termination ⟺ non-entailment";
  let correct = ref 0 in
  let entailed_cases = ref 0 in
  let st = Random.State.make [| 77 |] in
  for seed = 0 to seeds - 1 do
    let profile =
      { Random_tgds.default_profile with existential_bias = 0.0; n_rules = 3 }
    in
    let sigma = Random_tgds.guarded ~seed ~profile () in
    let schema = Schema.of_rules sigma in
    match Schema.to_list schema with
    | [] -> incr correct
    | preds ->
      let p, n = List.nth preds (Random.State.int st (List.length preds)) in
      let target =
        Atom.of_list p (List.init n (fun i -> Term.Var (Fmt.str "T%d" i)))
      in
      let q, m = List.hd preds in
      let db =
        [ Atom.of_list q (List.init m (fun i -> Term.Const (Fmt.str "d%d" i))) ]
      in
      let entailed = Entailment.holds sigma db target in
      if entailed then incr entailed_cases;
      let looped = (Looping.apply sigma ~target).Looping.rules in
      let config =
        {
          Engine.variant = Variant.Semi_oblivious;
          limits = Limits.make ~max_triggers:20_000 ~max_atoms:80_000 ();
        }
      in
      let r = Engine.run ~config looped db in
      if (r.Engine.status = Engine.Terminated) = not entailed then incr correct
  done;
  Fmt.pr "random Datalog programs: %d (entailed targets: %d)@." seeds
    !entailed_cases;
  Fmt.pr "loop(Σ,α) termination = ¬entailment: %d/%d@." !correct seeds;
  record "E7" "sets" (jint seeds);
  record "E7" "correct" (jint !correct)

(* ------------------------------------------------------------------ *)
(* E8 — §4 preview: the restricted chase                               *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8  Restricted chase (§4): behaviour on the generic instance";
  Fmt.pr "%-26s %-8s %-8s %-12s@." "family" "o" "so" "restricted";
  hr ();
  let cell rules variant =
    let generic = Critical.generic_of_rules rules in
    let config =
      { Engine.variant; limits = Limits.make ~max_triggers:20_000 ~max_atoms:80_000 () }
    in
    match (Engine.run ~config rules (Instance.to_list generic)).Engine.status with
    | Engine.Terminated -> "term"
    | Engine.Exhausted _ -> "DIV"
  in
  List.iter
    (fun (name, rules) ->
      let o = cell rules Variant.Oblivious
      and so = cell rules Variant.Semi_oblivious
      and r = cell rules Variant.Restricted in
      Fmt.pr "%-26s %-8s %-8s %-12s@." name o so r;
      record "E8" (Fmt.str "verdicts[%s]" name) (Fmt.str "%S" (String.concat "/" [ o; so; r ])))
    [
      ("restricted-separator", Families.restricted_separator);
      ("example2", Families.example2);
      ("single-head-chain-4", Families.single_head_chain 4);
      ("sl-cycle-4", Families.sl_cycle 4);
      ("separator", Families.separator);
    ];
  Fmt.pr
    "@.the first row separates the restricted chase from both \
     (semi-)oblivious variants,@.as §4 of the paper anticipates.@."

(* ------------------------------------------------------------------ *)
(* E9 - beyond the paper: EGDs and cores on data-exchange workloads     *)
(* ------------------------------------------------------------------ *)

let e9 seeds =
  section "E9  Data-exchange extras: the chase with EGDs, and cores";
  let terminated = ref 0 and failed = ref 0 and budget = ref 0 in
  let merges = ref 0 in
  let shrunk = ref 0 and core_runs = ref 0 in
  for seed = 0 to seeds - 1 do
    let tgds = Random_tgds.guarded ~seed () in
    (* one key EGD on a binary-or-wider predicate when available *)
    let egds =
      match
        List.find_opt (fun (_, n) -> n >= 2) (Schema.to_list (Schema.of_rules tgds))
      with
      | None -> []
      | Some (p, n) ->
        let tail tag =
          List.init (n - 1) (fun i -> Term.Var (Fmt.str "%s%d" tag (i + 1)))
        in
        [
          Egd.make_exn
            ~body:
              [ Atom.of_list p (Term.Var "K" :: tail "A");
                Atom.of_list p (Term.Var "K" :: tail "B") ]
            ~equalities:[ ("A1", "B1") ] ();
        ]
    in
    let db = Instance.to_list (Critical.generic_of_rules tgds) in
    let config =
      { Egd_chase.default_config with
        Engine.limits = Limits.make ~max_triggers:2_000 ~max_atoms:6_000 ()
      }
    in
    let r = Egd_chase.run ~config ~tgds ~egds db in
    merges := !merges + r.Egd_chase.merges;
    (match r.Egd_chase.status with
    | Egd_chase.Terminated ->
      incr terminated;
      if
        Instance.cardinal r.Egd_chase.instance <= 12
        && Instance.null_count r.Egd_chase.instance <= 4
      then begin
        incr core_runs;
        let k = Core_model.core r.Egd_chase.instance in
        if Instance.cardinal k < Instance.cardinal r.Egd_chase.instance then
          incr shrunk
      end
    | Egd_chase.Failed _ -> incr failed
    | Egd_chase.Exhausted _ -> incr budget)
  done;
  Fmt.pr "random guarded mappings with a key EGD: %d@." seeds;
  Fmt.pr
    "terminated: %d   failed (constant conflict): %d   budget: %d   null \
     merges: %d@."
    !terminated !failed !budget !merges;
  Fmt.pr "cores computed: %d, of which strictly smaller than the chase: %d@."
    !core_runs !shrunk;
  record "E9" "terminated" (jint !terminated);
  record "E9" "failed" (jint !failed);
  record "E9" "cores_strictly_smaller" (jint !shrunk)

(* ------------------------------------------------------------------ *)
(* E11 — crash-at-every-record determinism of the journaled chase      *)
(* ------------------------------------------------------------------ *)

let e11 kills =
  section "E11  Durability: crash at record k + resume ≡ uninterrupted run";
  let rules =
    Parser.parse_rules_exn
      "tc: e(X, Y), e(Y, Z) -> e(X, Z).  mk: e(X, Y) -> r(X, W)."
  in
  let db =
    Parser.parse_database_exn
      (String.concat " "
         (List.init 9 (fun i -> Fmt.str "e(a%d, a%d)." i (i + 1))))
  in
  let config =
    { Engine.variant = Variant.Oblivious; limits = Limits.of_budget 10_000 }
  in
  let baseline = Engine.run ~config rules db in
  let journal =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "chase_bench_%d.jnl" (Unix.getpid ()))
  in
  let isomorphic = ref 0 and recovered = ref 0 in
  let t0 = Sys.time () in
  for k = 1 to kills do
    let s =
      Session.start ~journal ~fsync_every:0
        ~fault:(Faults.Kill_after_record k) ~variant:Variant.Oblivious ~rules
        ~db ()
    in
    (try
       ignore (Engine.run ~config ~on_trigger:(Session.on_trigger s) rules db)
     with Faults.Crash _ -> ());
    match Recovery.recover ~journal ~variant:Variant.Oblivious ~rules ~db ()
    with
    | Error _ -> ()
    | Ok report ->
      incr recovered;
      let resumed =
        Engine.run ~config ~resume:report.Recovery.resume rules db
      in
      if
        Instance.cardinal resumed.Engine.instance
        = Instance.cardinal baseline.Engine.instance
        && Instance.null_count resumed.Engine.instance
           = Instance.null_count baseline.Engine.instance
        && Option.is_some
             (Hom.instance_hom resumed.Engine.instance
                baseline.Engine.instance)
        && Option.is_some
             (Hom.instance_hom baseline.Engine.instance
                resumed.Engine.instance)
      then incr isomorphic
  done;
  let elapsed = Sys.time () -. t0 in
  if Sys.file_exists journal then Sys.remove journal;
  Fmt.pr
    "kill points: %d (of %d journal records)   recovered: %d   isomorphic to \
     the uninterrupted run: %d@."
    kills baseline.Engine.triggers_applied !recovered !isomorphic;
  Fmt.pr "total crash+recover+rerun time: %a@." pp_time elapsed;
  record "E11" "kill_points" (jint kills);
  record "E11" "recovered" (jint !recovered);
  record "E11" "isomorphic" (jint !isomorphic);
  record "E11" "seconds" (jfloat elapsed)

(* ------------------------------------------------------------------ *)
(* E12 — join-planned vs naive trigger matching                        *)
(* ------------------------------------------------------------------ *)

let e12 quick =
  section "E12  Join planning: planned vs naive matcher (speedup + agreement)";
  let with_matcher m f =
    let saved = Hom.matcher () in
    Hom.set_matcher m;
    Fun.protect ~finally:(fun () -> Hom.set_matcher saved) f
  in
  let same_run a b =
    a.Engine.triggers_applied = b.Engine.triggers_applied
    && a.Engine.triggers_skipped = b.Engine.triggers_skipped
    && List.equal Atom.equal
         (Instance.to_sorted_list a.Engine.instance)
         (Instance.to_sorted_list b.Engine.instance)
  in
  (* The planner's target workload: star joins whose only selective atom
     is written last, so left-to-right matching enumerates the full
     cartesian fan before ever touching it. *)
  Fmt.pr "%6s %6s %11s %11s %9s %12s %12s %7s@." "width" "hubs" "naive"
    "planned" "speedup" "n-examined" "p-examined" "agree";
  hr ();
  let widths = if quick then [ 4; 6 ] else [ 4; 6; 8 ] in
  let hubs = if quick then 1_200 else 2_500 in
  let min_speedup = ref infinity in
  let wide_agree = ref true in
  List.iter
    (fun width ->
      let rules = Families.wide_body ~width in
      let db = Families.wide_body_db ~hubs ~fanout:3 in
      let config =
        {
          Engine.variant = Variant.Oblivious;
          limits = Limits.make ~max_triggers:200_000 ~max_atoms:800_000 ();
        }
      in
      let last = ref None in
      (* [time] also diffs the always-on matcher counters: candidate
         facts examined is the machine-independent cost the wall-clock
         speedup should track. *)
      let time m =
        with_matcher m (fun () ->
            let s0 = Hom.Stats.snapshot () in
            let t =
              time_avg ~reps:1 (fun () ->
                  let r = Engine.run ~config rules db in
                  last := Some r;
                  r)
            in
            (t, Hom.Stats.diff s0 (Hom.Stats.snapshot ())))
      in
      let t_naive, s_naive = time Hom.Naive in
      let r_naive = Option.get !last in
      let t_planned, s_planned = time Hom.Planned in
      let r_planned = Option.get !last in
      let agree = same_run r_naive r_planned in
      let speedup = t_naive /. t_planned in
      if speedup < !min_speedup then min_speedup := speedup;
      if not agree then wide_agree := false;
      Fmt.pr "%6d %6d %a %a %8.2fx %12d %12d %7b@." width hubs pp_time t_naive
        pp_time t_planned speedup s_naive.Hom.Stats.candidates
        s_planned.Hom.Stats.candidates agree;
      record "E12" (Fmt.str "naive_seconds[w%d]" width) (jfloat t_naive);
      record "E12" (Fmt.str "planned_seconds[w%d]" width) (jfloat t_planned);
      record "E12" (Fmt.str "speedup[w%d]" width) (jfloat speedup);
      record "E12"
        (Fmt.str "naive_candidates[w%d]" width)
        (jint s_naive.Hom.Stats.candidates);
      record "E12"
        (Fmt.str "planned_candidates[w%d]" width)
        (jint s_planned.Hom.Stats.candidates);
      record "E12"
        (Fmt.str "planned_probe_cost[w%d]" width)
        (jint s_planned.Hom.Stats.planned_probe_cost);
      record "E12"
        (Fmt.str "planned_naive_probe_estimate[w%d]" width)
        (jint s_planned.Hom.Stats.naive_probe_cost);
      record "E12" (Fmt.str "agree[w%d]" width) (jbool agree))
    widths;
  (* Differential agreement on random guarded critical-instance chases:
     runs must be step-for-step identical, not merely isomorphic, because
     the engine canonicalises trigger discovery order. *)
  let seeds = if quick then 20 else 60 in
  let agree = ref 0 in
  for seed = 0 to seeds - 1 do
    let rules = Random_tgds.guarded ~seed () in
    let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
    let config =
      {
        Engine.variant = Variant.Semi_oblivious;
        limits = Limits.make ~max_triggers:4_000 ~max_atoms:16_000 ();
      }
    in
    let rn = with_matcher Hom.Naive (fun () -> Engine.run ~config rules db) in
    let rp = with_matcher Hom.Planned (fun () -> Engine.run ~config rules db) in
    if same_run rn rp then incr agree
  done;
  Fmt.pr "@.wide-body minimum speedup: %.2fx (agreement on all widths: %b)@."
    !min_speedup !wide_agree;
  Fmt.pr "random guarded sets, planned ≡ naive run-for-run: %d/%d@." !agree
    seeds;
  record "E12" "min_speedup_wide_body" (jfloat !min_speedup);
  record "E12" "wide_body_agreement" (jbool !wide_agree);
  record "E12" "random_sets" (jint seeds);
  record "E12" "random_agreement" (jint !agree)

(* ------------------------------------------------------------------ *)
(* E13 — observability: hot spots, self-consistency, overhead          *)
(* ------------------------------------------------------------------ *)

let e13 quick =
  section "E13  Observability: per-rule hot spots, self-consistency, overhead";
  let tower = Families.guarded_tower ~levels:6 in
  let db = Instance.to_list (Critical.of_rules tower) in
  let config =
    {
      Engine.variant = Variant.Semi_oblivious;
      limits = Limits.make ~max_triggers:10_000 ~max_atoms:40_000 ();
    }
  in
  (* One fully observed run: spans into a JSONL buffer, metrics into a
     fresh registry.  The profile columns must re-sum to the run totals
     the engine reports — the table is self-checking. *)
  let buf = Buffer.create 4096 in
  let metrics = Metrics.create () in
  let obs = Obs.create ~metrics [ Sink.jsonl (Buffer.add_string buf) ] in
  let r = Engine.run ~config ~obs tower db in
  Obs.finish obs;
  Fmt.pr "%a" Profile.pp metrics;
  let rows = Profile.rows metrics in
  let sum f = List.fold_left (fun a row -> a + f row) 0 rows in
  let firings_sum = sum (fun (row : Profile.row) -> row.firings) in
  let nulls_sum = sum (fun (row : Profile.row) -> row.nulls) in
  let nulls_run = Instance.null_count r.Engine.instance in
  let firings_ok = firings_sum = r.Engine.triggers_applied in
  let nulls_ok = nulls_sum = nulls_run in
  let events =
    String.fold_left
      (fun n c -> if c = '\n' then n + 1 else n)
      0 (Buffer.contents buf)
  in
  let hottest, hottest_share =
    match rows with
    | [] -> ("-", 0.)
    | first :: _ ->
      let total =
        List.fold_left (fun a (row : Profile.row) -> a +. row.time_s) 0. rows
      in
      let top =
        List.fold_left
          (fun best (row : Profile.row) ->
            if row.time_s > best.Profile.time_s then row else best)
          first rows
      in
      (top.label, if total > 0. then 100. *. top.time_s /. total else 0.)
  in
  Fmt.pr
    "@.self-check: profile firings %d vs run %d (%b)   nulls %d vs run %d \
     (%b)@."
    firings_sum r.Engine.triggers_applied firings_ok nulls_sum nulls_run
    nulls_ok;
  Fmt.pr "hottest rule: %s (%.1f%% of rule time)   events emitted: %d@."
    hottest hottest_share events;
  (* The off-switch must be nearly free: the same run with no observer
     vs a live observer draining into the null sink. *)
  let reps = if quick then 3 else 5 in
  let t_off = time_avg ~reps (fun () -> Engine.run ~config tower db) in
  let t_on =
    time_avg ~reps (fun () ->
        let obs = Obs.create ~metrics:(Metrics.create ()) [ Sink.null ] in
        let r = Engine.run ~config ~obs tower db in
        Obs.finish obs;
        r)
  in
  Fmt.pr "wall time: obs off %a   obs on (null sink) %a   ratio %.2fx@."
    pp_time t_off pp_time t_on (t_on /. t_off);
  (* Journal latency percentiles from an observed durable run. *)
  let journal =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "chase_obs_%d.jnl" (Unix.getpid ()))
  in
  let jm = Metrics.create () in
  let jobs = Obs.create ~metrics:jm [] in
  let s =
    Session.start ~obs:jobs ~journal ~fsync_every:8
      ~variant:config.Engine.variant ~rules:tower ~db ()
  in
  ignore
    (Engine.run ~config ~obs:jobs ~on_trigger:(Session.on_trigger s) tower db);
  Session.finish s;
  Obs.finish jobs;
  (match Metrics.hist_stats jm "journal.append_s" with
  | Some (n, _, _, _, p50, _, p99) ->
    Fmt.pr "journal appends: %d   p50 %.1f µs   p99 %.1f µs@." n (1e6 *. p50)
      (1e6 *. p99);
    record "E13" "journal_appends" (jint n);
    record "E13" "journal_append_p50_seconds" (jfloat p50);
    record "E13" "journal_append_p99_seconds" (jfloat p99)
  | None -> ());
  (match Metrics.hist_stats jm "journal.fsync_s" with
  | Some (n, _, _, _, p50, _, p99) ->
    Fmt.pr "journal fsyncs:  %d   p50 %.1f µs   p99 %.1f µs@." n (1e6 *. p50)
      (1e6 *. p99);
    record "E13" "journal_fsyncs" (jint n);
    record "E13" "journal_fsync_p50_seconds" (jfloat p50);
    record "E13" "journal_fsync_p99_seconds" (jfloat p99)
  | None -> ());
  if Sys.file_exists journal then Sys.remove journal;
  record "E13" "profile_firings_consistent" (jbool firings_ok);
  record "E13" "profile_nulls_consistent" (jbool nulls_ok);
  record "E13" "hottest_rule" (Fmt.str "%S" hottest);
  record "E13" "hottest_share_percent" (jfloat hottest_share);
  record "E13" "span_events" (jint events);
  record "E13" "obs_off_seconds" (jfloat t_off);
  record "E13" "obs_on_seconds" (jfloat t_on);
  record "E13" "enabled_overhead_ratio" (jfloat (t_on /. t_off))

(* ------------------------------------------------------------------ *)
(* E14 — replication: takeover latency and lag under wide-body load    *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let has_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  go 0

(* Pull ["key":<number>] out of a one-line JSON metrics summary; the
   emitter's formatting is fixed, so no JSON dependency is needed. *)
let scan_num line key =
  let marker = Fmt.str "%S:" key in
  let n = String.length line and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = marker then begin
      let j = ref (i + m) in
      while !j < n && line.[!j] <> ',' && line.[!j] <> '}' do
        incr j
      done;
      float_of_string_opt (String.sub line (i + m) (!j - i - m))
    end
    else find (i + 1)
  in
  find 0

let e14 quick =
  section
    "E14  Replication: takeover latency + ship lag (wide-body workload)";
  (* The E12 star-join workload, printed back to program text and run as
     a durable request through a live primary/standby pair. *)
  let width = 4 in
  let hubs = if quick then 300 else 800 in
  let program =
    let rules = Families.wide_body ~width in
    let db = Families.wide_body_db ~hubs ~fanout:3 in
    String.concat "\n"
      (List.map (fun r -> Tgd.to_string r ^ ".") rules
      @ List.map (fun a -> Atom.to_string a ^ ".") db)
  in
  let req =
    Proto.request ~file:"e14.chase" ~program ~budget:200_000 ~quiet:true
      ~durable:true Proto.Chase
  in
  let tmp suffix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "chase_e14_%d%s" (Unix.getpid ()) suffix)
  in
  let a = tmp ".a.sock" and b = tmp ".b.sock" and ship = tmp ".ship.sock" in
  let spool_p = tmp ".p.spool" and spool_s = tmp ".s.spool" in
  let metrics = tmp ".metrics.jsonl" in
  List.iter rm_rf [ a; b; ship; spool_p; spool_s; metrics ];
  let standby =
    Standby.start
      (Standby.config ~cert_interval:0.2 ~metrics
         ~server:(Server.config ~workers:2 ~spool_dir:spool_s b)
         ~ship_socket:ship ())
  in
  let shipper =
    Shipper.start
      (Shipper.config ~sync_timeout:2.0 ~poll_interval:0.02
         ~connect_retry:0.02 ~spool_dir:spool_p ~ship_socket:ship ())
  in
  let server =
    Server.start
      (Server.config ~workers:2 ~spool_dir:spool_p
         ~on_durable:(Shipper.on_durable shipper) a)
  in
  (* the acknowledged durable request the promoted standby must honour *)
  let t0 = Unix.gettimeofday () in
  let primary =
    match Client.call_retry ~attempts:5 ~base_delay:0.05 ~socket:a req with
    | Ok (Proto.Ok_response r) -> r
    | Ok resp -> Fmt.failwith "E14 primary rejected: %a" Proto.pp_response resp
    | Error f -> Fmt.failwith "E14 primary: %a" Client.pp_failure f
  in
  let primary_seconds = Unix.gettimeofday () -. t0 in
  let shipped = Shipper.quiesce shipper ~timeout:30.0 in
  (* kill the primary mid-fleet; the failover client walks the server
     list, discovers the standby, promotes it over the wire and
     re-sends.  Takeover = kill to first standby-served response. *)
  let t_kill = Unix.gettimeofday () in
  Server.kill server;
  Shipper.stop shipper;
  let outcome =
    match
      Failover.call ~attempts_per_server:2 ~base_delay:0.05 ~servers:[ a; b ]
        req
    with
    | Ok o -> o
    | Error f -> Fmt.failwith "E14 failover: %a" Failover.pp_failure f
  in
  let takeover = Unix.gettimeofday () -. t_kill in
  let standby_r =
    match outcome.Failover.response with
    | Proto.Ok_response r -> r
    | resp -> Fmt.failwith "E14 standby: %a" Proto.pp_response resp
  in
  let parity =
    standby_r.Proto.exit_code = primary.Proto.exit_code
    && String.equal standby_r.Proto.stdout primary.Proto.stdout
    && String.equal standby_r.Proto.stderr primary.Proto.stderr
  in
  (* steady state: the promoted standby serves without another vote *)
  let t2 = Unix.gettimeofday () in
  let warm_ok =
    match Failover.call ~servers:[ a; b ] req with
    | Ok o -> String.equal o.Failover.server b && not o.Failover.promoted
    | Error _ -> false
  in
  let warm_seconds = Unix.gettimeofday () -. t2 in
  Standby.stop standby;
  (* promotion closed the receiver's observer, flushing its metrics
     file; the repl.lag histogram there is frames-behind-head at apply
     time — the replication lag of the drill. *)
  let lag_line =
    if not (Sys.file_exists metrics) then None
    else begin
      let ic = open_in metrics in
      let rec find acc =
        match input_line ic with
        | line ->
          find (if has_sub line "\"repl.lag\"" then Some line else acc)
        | exception End_of_file -> acc
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> find None)
    end
  in
  Fmt.pr
    "primary chase (width %d, %d hubs): %a   shipped before kill: %b@." width
    hubs pp_time primary_seconds shipped;
  Fmt.pr
    "takeover (kill -> standby response): %a   promoted by client: %b   \
     byte parity: %b@."
    pp_time takeover outcome.Failover.promoted parity;
  Fmt.pr "warm standby re-serve: %a (no re-promotion: %b)@." pp_time
    warm_seconds warm_ok;
  record "E14" "width" (jint width);
  record "E14" "hubs" (jint hubs);
  record "E14" "primary_seconds" (jfloat primary_seconds);
  record "E14" "shipped_before_kill" (jbool shipped);
  record "E14" "takeover_seconds" (jfloat takeover);
  record "E14" "promoted_by_client" (jbool outcome.Failover.promoted);
  record "E14" "failovers" (jint outcome.Failover.failovers);
  record "E14" "standby_parity" (jbool parity);
  record "E14" "warm_standby_ok" (jbool warm_ok);
  record "E14" "warm_seconds" (jfloat warm_seconds);
  (match lag_line with
  | None -> Fmt.pr "no repl.lag histogram found in %s@." metrics
  | Some line ->
    let get k = Option.value ~default:(-1.) (scan_num line k) in
    Fmt.pr
      "replication lag (frames behind head): applied %.0f   p50 %.1f   p99 \
       %.1f   max %.0f@."
      (get "count") (get "p50") (get "p99") (get "max");
    record "E14" "lag_frames_applied" (jint (int_of_float (get "count")));
    record "E14" "lag_frames_p50" (jfloat (get "p50"));
    record "E14" "lag_frames_p99" (jfloat (get "p99"));
    record "E14" "lag_frames_max" (jint (int_of_float (get "max"))));
  List.iter rm_rf [ a; b; ship; spool_p; spool_s; metrics ]

(* ------------------------------------------------------------------ *)
(* E15 — parallel chase: multicore scaling + determinism audit         *)
(* ------------------------------------------------------------------ *)

let e15 quick =
  section "E15  Parallel chase: multicore scaling + determinism audit";
  (* Speedup numbers are honest wall-clock on this host — on a
     single-core box the parallel plane can only cost (domain spawns,
     batch handshakes), never gain; the recorded [host_cores] says which
     regime the numbers came from. *)
  let host_cores = Domain.recommended_domain_count () in
  Fmt.pr "host: %d recommended domain(s)%s@.@." host_cores
    (if host_cores = 1 then
       " — expect overhead, not speedup; determinism is the claim under \
        test"
     else "");
  record "E15" "host_cores" (jint host_cores);
  let wall_avg ?(reps = 1) f =
    let total = ref 0.0 in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      total := !total +. (Unix.gettimeofday () -. t0)
    done;
    !total /. float_of_int reps
  in
  let same_run a b =
    a.Engine.triggers_applied = b.Engine.triggers_applied
    && a.Engine.nulls_created = b.Engine.nulls_created
    && List.equal Atom.equal
         (Instance.to_sorted_list a.Engine.instance)
         (Instance.to_sorted_list b.Engine.instance)
  in
  (* Wall-clock scaling on the E12 star-join workload: matching dominates
     there, which is exactly the phase the parallel plane shards. *)
  let width = if quick then 6 else 8 in
  let hubs = if quick then 1_200 else 2_500 in
  let rules = Families.wide_body ~width in
  let db = Families.wide_body_db ~hubs ~fanout:3 in
  let config =
    {
      Engine.variant = Variant.Oblivious;
      limits = Limits.make ~max_triggers:200_000 ~max_atoms:800_000 ();
    }
  in
  Fmt.pr "%8s %11s %9s %7s@." "domains" "wall" "speedup" "agree";
  hr ();
  let baseline = ref None in
  let t1 = ref 1.0 in
  let all_agree = ref true in
  List.iter
    (fun domains ->
      let last = ref None in
      let t =
        wall_avg (fun () ->
            let r = Engine.run ~config ~domains rules db in
            last := Some r;
            r)
      in
      let r = Option.get !last in
      let agree =
        match !baseline with
        | None ->
          baseline := Some r;
          true
        | Some b -> same_run b r
      in
      if domains = 1 then t1 := t;
      if not agree then all_agree := false;
      let speedup = !t1 /. t in
      Fmt.pr "%8d %a %8.2fx %7b@." domains pp_time t speedup agree;
      record "E15" (Fmt.str "wide_body_seconds[d%d]" domains) (jfloat t);
      record "E15" (Fmt.str "wide_body_speedup[d%d]" domains) (jfloat speedup);
      record "E15" (Fmt.str "wide_body_agree[d%d]" domains) (jbool agree))
    [ 1; 2; 4 ];
  record "E15" "wide_body_agreement" (jbool !all_agree);
  (* The parallel plane's own telemetry on an observed 4-domain run:
     achieved parallelism (busy/wall) and the merge-latency histogram. *)
  let obs = Obs.create [] in
  ignore (Engine.run ~config ~obs ~domains:4 rules db);
  let m = Obs.metrics obs in
  (match Metrics.gauge_value m "chase.parallel.parallelism" with
  | Some p ->
    Fmt.pr "@.achieved parallelism @4 domains: %.2fx@." p;
    record "E15" "parallelism[d4]" (jfloat p)
  | None -> ());
  (match Metrics.hist_stats m "chase.parallel.merge_s" with
  | Some (count, sum, _, _, p50, _, p99) ->
    Fmt.pr "merge latency: %d batches, %.1f ms total, p50 %.1f µs, p99 %.1f µs@."
      count (sum *. 1e3) (p50 *. 1e6) (p99 *. 1e6);
    record "E15" "merge_batches" (jint count);
    record "E15" "merge_seconds_total" (jfloat sum);
    record "E15" "merge_p99_seconds" (jfloat p99)
  | None -> ());
  let steals =
    List.fold_left
      (fun acc label -> acc + Metrics.counter_value m ~label "chase.parallel.steals")
      0
      (Metrics.labels_of m "chase.parallel.steals")
  in
  record "E15" "steals[d4]" (jint steals);
  (* Determinism sweep: random guarded critical-instance chases, 4-domain
     vs sequential, literal run equality. *)
  let seeds = if quick then 15 else 50 in
  let agree = ref 0 in
  for seed = 0 to seeds - 1 do
    let rules = Random_tgds.guarded ~seed () in
    let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
    let config =
      {
        Engine.variant = Variant.Semi_oblivious;
        limits = Limits.make ~max_triggers:4_000 ~max_atoms:16_000 ();
      }
    in
    let r1 = Engine.run ~config ~domains:1 rules db in
    let r4 = Engine.run ~config ~domains:4 rules db in
    if same_run r1 r4 then incr agree
  done;
  Fmt.pr "random guarded sets, parallel ≡ sequential run-for-run: %d/%d@."
    !agree seeds;
  record "E15" "guarded_sets" (jint seeds);
  record "E15" "guarded_agreement" (jint !agree)

(* ------------------------------------------------------------------ *)
(* E16 — static trigger-relevance pruning: fewer enqueues, same run    *)
(* ------------------------------------------------------------------ *)

let read_corpus name =
  (* cwd differs between `dune exec` from the root and sandboxed runs *)
  let candidates =
    [ Filename.concat "data" name; Filename.concat "../data" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> None
  | Some path ->
    let ic = open_in_bin path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match Parser.parse_program src with
    | Ok (rules, facts) -> Some (rules, facts)
    | Error _ -> None)

let e16 quick =
  section "E16  Trigger-relevance pruning: fewer enqueues, identical runs";
  let wall_avg ?(reps = if quick then 1 else 3) f =
    let total = ref 0.0 in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      total := !total +. (Unix.gettimeofday () -. t0)
    done;
    !total /. float_of_int reps
  in
  let same_run a b =
    a.Engine.triggers_applied = b.Engine.triggers_applied
    && a.Engine.nulls_created = b.Engine.nulls_created
    && List.equal Atom.equal
         (Instance.to_sorted_list a.Engine.instance)
         (Instance.to_sorted_list b.Engine.instance)
  in
  let without_pruning f =
    Relevance.force_disable true;
    Fun.protect ~finally:(fun () -> Relevance.force_disable false) f
  in
  (* One observed run per leg: chase.prune.considered counts every
     (new fact, rule) pair the delta sweep looked at, enqueues_skipped
     the ones the index proved empty — enqueued = considered - skipped.
     With pruning disabled nothing is skipped, so the unpruned leg's
     enqueue count doubles as the baseline. *)
  let observed ~config rules db =
    let obs = Obs.create [] in
    let r = Engine.run ~config ~obs rules db in
    let m = Obs.metrics obs in
    ( r,
      Metrics.counter_value m "chase.prune.considered",
      Metrics.counter_value m "chase.prune.enqueues_skipped" )
  in
  let all_agree = ref true and all_fewer = ref true in
  let bench name rules db config =
    let on = ref None and off = ref None in
    let t_on =
      wall_avg (fun () ->
          let r, c, s = observed ~config rules db in
          on := Some (r, c, s);
          r)
    in
    let t_off =
      without_pruning (fun () ->
          wall_avg (fun () ->
              let r, c, s = observed ~config rules db in
              off := Some (r, c, s);
              r))
    in
    let r1, c1, s1 = Option.get !on in
    let r0, c0, _ = Option.get !off in
    let enq_on = c1 - s1 and enq_off = c0 in
    let agree = same_run r1 r0 in
    let hit =
      if c1 = 0 then 100.0
      else 100.0 *. float_of_int enq_on /. float_of_int c1
    in
    if not agree then all_agree := false;
    if enq_on >= enq_off then all_fewer := false;
    Fmt.pr "%-14s %9d %9d %7.1f%% %6b %a %a@." name enq_on enq_off hit agree
      pp_time t_on pp_time t_off;
    record "E16" (Fmt.str "enqueues_pruned[%s]" name) (jint enq_on);
    record "E16" (Fmt.str "enqueues_unpruned[%s]" name) (jint enq_off);
    record "E16" (Fmt.str "skipped[%s]" name) (jint s1);
    record "E16" (Fmt.str "agree[%s]" name) (jbool agree);
    record "E16" (Fmt.str "pruned_seconds[%s]" name) (jfloat t_on);
    record "E16" (Fmt.str "unpruned_seconds[%s]" name) (jfloat t_off)
  in
  Fmt.pr "%-14s %9s %9s %8s %6s %11s %11s@." "workload" "enq(on)" "enq(off)"
    "kept" "agree" "wall(on)" "wall(off)";
  hr ();
  (* A long richly-acyclic chain: each delta fact can seed exactly one
     rule, so the index skips almost the whole per-delta sweep. *)
  let n = if quick then 24 else 48 in
  let chain = Families.sl_chain n in
  bench
    (Fmt.str "chain[%d]" n)
    chain
    (Instance.to_list (Critical.of_rules ~standard:false chain))
    {
      Engine.variant = Variant.Oblivious;
      limits = Limits.of_budget 100_000;
    };
  (* The E12/E15 star join: a single wide rule, but the out-facts it
     derives can never re-seed its own body. *)
  let width = if quick then 6 else 8 in
  let hubs = if quick then 1_200 else 2_500 in
  bench "wide-body"
    (Families.wide_body ~width)
    (Families.wide_body_db ~hubs ~fanout:3)
    {
      Engine.variant = Variant.Oblivious;
      limits = Limits.make ~max_triggers:200_000 ~max_atoms:800_000 ();
    };
  (* The shipped corpus, rules + database, including a divergent file
     chased to its trigger budget. *)
  List.iter
    (fun (file, budget) ->
      match read_corpus file with
      | None -> Fmt.pr "corpus file %s not found: skipping@." file
      | Some (rules, facts) ->
        (* rules-only corpus files chase their critical instance *)
        let db =
          if facts = [] then
            Instance.to_list (Critical.of_rules ~standard:false rules)
          else facts
        in
        bench (Filename.remove_extension file) rules db
          {
            Engine.variant = Variant.Semi_oblivious;
            limits = Limits.of_budget budget;
          })
    [
      ("company_mapping.chase", 50_000);
      ("divergent_zoo.chase", (if quick then 6_000 else 20_000));
    ];
  Fmt.pr "@.pruned ≡ unpruned everywhere: %b   strictly fewer enqueues: %b@."
    !all_agree !all_fewer;
  record "E16" "all_agree" (jbool !all_agree);
  record "E16" "strictly_fewer_enqueues" (jbool !all_fewer)

(* ------------------------------------------------------------------ *)
(* E17 — request tracing: overhead in the noise, spans complete        *)
(* ------------------------------------------------------------------ *)

let e17 quick =
  section "E17  Request tracing: overhead vs untraced, span completeness";
  (* The same request fleet twice against a live server: untraced with
     tracing off, then traced end to end (client-minted roots, a server
     shard).  The shard writer is one flushed JSONL append per span off
     the request's critical path, so the traced fleet must stay within
     noise of the untraced one.  Every request gets a distinct marker
     fact so none is a cache hit — this times the full compute path. *)
  let width = 4 in
  let hubs = if quick then 200 else 500 in
  let reqs = if quick then 12 else 30 in
  let base_program =
    let rules = Families.wide_body ~width in
    let db = Families.wide_body_db ~hubs ~fanout:3 in
    String.concat "\n"
      (List.map (fun r -> Tgd.to_string r ^ ".") rules
      @ List.map (fun a -> Atom.to_string a ^ ".") db)
  in
  let req ?trace i =
    Proto.request ?trace ~file:"e17.chase"
      ~program:(Fmt.str "%s\nmarker%d(m)." base_program i)
      ~budget:200_000 ~quiet:true Proto.Chase
  in
  let tmp suffix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "chase_e17_%d%s" (Unix.getpid ()) suffix)
  in
  let sock_off = tmp ".off.sock" and sock_on = tmp ".on.sock" in
  let spool_off = tmp ".off.spool" and spool_on = tmp ".on.spool" in
  let shard_srv = tmp ".server.trace" and shard_cli = tmp ".client.trace" in
  let scratch =
    [ sock_off; sock_on; spool_off; spool_on; shard_srv; shard_cli ]
  in
  List.iter rm_rf scratch;
  let run_fleet ~socket ~traced =
    let shard =
      if traced then Some (Tracectx.Shard.open_ ~proc:"bench" shard_cli)
      else None
    in
    let t0 = Unix.gettimeofday () in
    for i = 0 to reqs - 1 do
      let root = if traced then Some (Tracectx.genesis ()) else None in
      let r = req ?trace:(Option.map Tracectx.to_string root) i in
      let ts = Tracectx.now_us () in
      match Client.call_retry ~attempts:4 ~base_delay:0.05 ~socket r with
      | Ok (Proto.Ok_response _) -> (
        match (shard, root) with
        | Some w, Some ctx ->
          Tracectx.Shard.span w ~ctx ~name:"client.request" ~ts_us:ts
            ~dur_us:(Tracectx.now_us () -. ts)
            ()
        | _ -> ())
      | Ok resp -> Fmt.failwith "E17 rejected: %a" Proto.pp_response resp
      | Error f -> Fmt.failwith "E17: %a" Client.pp_failure f
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Option.iter Tracectx.Shard.close shard;
    dt
  in
  let srv_off =
    Server.start (Server.config ~workers:2 ~spool_dir:spool_off sock_off)
  in
  let t_off = run_fleet ~socket:sock_off ~traced:false in
  Server.stop srv_off;
  let srv_on =
    Server.start
      (Server.config ~workers:2 ~spool_dir:spool_on ~trace_shard:shard_srv
         sock_on)
  in
  let t_on = run_fleet ~socket:sock_on ~traced:true in
  Server.stop srv_on;
  (* completeness: join both shards by trace id; every traced request
     must show the whole in-process pipeline *)
  let records path =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line ->
        go
          (match Tracectx.parse_shard_line line with
          | Some r -> r :: acc
          | None -> acc)
      | exception End_of_file -> acc
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> go [])
  in
  let recs = records shard_cli @ records shard_srv in
  let by_trace : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_trace r.Tracectx.r_trace)
      in
      Hashtbl.replace by_trace r.Tracectx.r_trace (r.Tracectx.r_name :: prev))
    recs;
  let need = [ "client.request"; "server.chase"; "admission.queue"; "engine.run" ] in
  let traces = Hashtbl.length by_trace in
  let complete = ref 0 in
  Hashtbl.iter
    (fun _ names ->
      if List.for_all (fun n -> List.mem n names) need then incr complete)
    by_trace;
  let ratio = t_on /. t_off in
  Fmt.pr
    "fleet of %d chases (width %d, %d hubs): untraced %a   traced %a   \
     ratio %.2f@."
    reqs width hubs pp_time t_off pp_time t_on ratio;
  Fmt.pr
    "spans: %d across %d traces   complete pipelines \
     (client+server+admission+engine): %d/%d@."
    (List.length recs) traces !complete traces;
  record "E17" "requests" (jint reqs);
  record "E17" "untraced_seconds" (jfloat t_off);
  record "E17" "traced_seconds" (jfloat t_on);
  record "E17" "overhead_ratio" (jfloat ratio);
  record "E17" "spans" (jint (List.length recs));
  record "E17" "traces" (jint traces);
  record "E17" "complete_traces" (jint !complete);
  record "E17" "all_traces_complete"
    (jbool (traces = reqs && !complete = traces));
  List.iter rm_rf scratch

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let microbenches () =
  section "Microbenchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let stage f = Staged.stage f in
  let triangle =
    Chase.Instance.of_list
      (Parser.parse_database_exn
         "e(a, b). e(b, c). e(c, a). e(a, d). e(d, c). e(b, e). e(e, a).")
  in
  let join_rule = Parser.parse_rule_exn "e(X, Y), e(Y, Z) -> e(X, Z)" in
  let tower = Families.guarded_tower ~levels:6 in
  let tower_db = Chase.Instance.to_list (Critical.of_rules tower) in
  let chain = Families.sl_chain 256 in
  let tests =
    [
      Test.make ~name:"hom/2-path-join"
        (stage (fun () -> Hom.all triangle (Tgd.body join_rule)));
      Test.make ~name:"engine/guarded-tower-6"
        (stage (fun () ->
             Engine.run
               ~config:
                 {
                   Engine.variant = Variant.Semi_oblivious;
                   limits = Limits.make ~max_triggers:10_000 ~max_atoms:40_000 ();
                 }
               tower tower_db));
      Test.make ~name:"acyclicity/wa-chain-256"
        (stage (fun () -> Weak.is_weakly_acyclic chain));
      Test.make ~name:"acyclicity/ra-chain-256"
        (stage (fun () -> Rich.is_richly_acyclic chain));
      Test.make ~name:"critical-linear/rotating-4"
        (stage (fun () ->
             Linear.check ~standard:false ~variant:Variant.Semi_oblivious
               (Families.linear_rotating ~arity:4)));
      Test.make ~name:"guarded-check/divergent-3"
        (stage (fun () ->
             Guarded.check ~budget:3_000 ~variant:Variant.Semi_oblivious
               (Families.guarded_divergent ~arity:3)));
      Test.make ~name:"acyclicity/ja-chain-256"
        (stage (fun () -> Joint.is_jointly_acyclic chain));
      Test.make ~name:"critical-instance/standard-arity-3"
        (stage (fun () ->
             Critical.of_rules ~standard:true (Families.linear_rotating ~arity:3)));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Fmt.pr "%-38s %14s@." "benchmark" "time/run";
  hr ();
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let res = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            Fmt.pr "%-38s %a@." name pp_time (ns /. 1e9);
            record "micro" (Fmt.str "seconds[%s]" name) (jfloat (ns /. 1e9))
          | Some _ | None -> Fmt.pr "%-38s %14s@." name "n/a")
        res)
    tests

(* ------------------------------------------------------------------ *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let n_small = if quick then 60 else 300 in
  let n_tiny = if quick then 30 else 120 in
  Fmt.pr
    "Chase termination for guarded existential rules — experiment harness@.";
  e1 n_small;
  e2 n_small;
  e2b n_small;
  e2c n_tiny;
  e3a ();
  e3b ();
  e4a n_tiny;
  e4b ();
  e5 n_small;
  e6 n_tiny;
  e7 n_tiny;
  e8 ();
  e9 (min n_tiny 40);
  e11 (if quick then 10 else 50);
  e12 quick;
  e13 quick;
  e14 quick;
  e15 quick;
  e16 quick;
  e17 quick;
  microbenches ();
  record "harness" "quick" (jbool quick);
  write_results "BENCH_results.json";
  Fmt.pr "@.done.@."
