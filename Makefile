# Developer entry points; CI runs `make check` and `make check-naive`.

.PHONY: all build test check-naive check-parallel check-pruned smoke obs-smoke soak soak-failover lint fmt fmt-ml check clean

all: build

build:
	dune build

# full suite: unit + property tests and the cram CLI suite
test:
	dune runtest

# the same suite driven by the naive reference matcher (CHASE_NAIVE=1):
# guards the normative semantics behind the join planner
check-naive:
	CHASE_NAIVE=1 dune runtest --force

# the same suite with every chase fanned across 4 domains
# (CHASE_DOMAINS=4): guards the freeze-shard-merge determinism doctrine
# — the whole battery must behave bit-identically to sequential runs
check-parallel:
	CHASE_DOMAINS=4 dune runtest --force

# the same suite with the static trigger-relevance index disabled
# (CHASE_NO_PRUNE=1): guards the pruning doctrine — the index only ever
# skips provably empty discovery events, so nothing may differ
check-pruned:
	CHASE_NO_PRUNE=1 dune runtest --force

# quick confidence: the CLI cram suite only (builds both binaries,
# exercises parsing, the chase, limits/timeout degradation and reports)
smoke:
	dune runtest cram

# trace-enabled smoke chase: one observed run over the shipped corpus,
# then validate the emitted files (well-formed JSON, span balance,
# schema header) with the obs-check tool
obs-smoke: build
	dune exec bin/chase_cli.exe -- data/company_mapping.chase -q --profile \
	  --trace _build/obs_smoke.trace.json \
	  --metrics _build/obs_smoke.metrics.jsonl
	dune exec bin/obs_check.exe -- --trace _build/obs_smoke.trace.json \
	  --metrics _build/obs_smoke.metrics.jsonl

# process-level chaos soak: SIGKILL loops against a real chased with
# concurrent durable traffic, then boot recovery, byte-parity replay and
# a graceful life whose metrics file must validate.  Wall-clock bounded;
# CI runs SOAK_SECONDS=60.  The soak's traced replays leave per-process
# trace shards; merge them and validate the trace tree too.
SOAK_SECONDS ?= 20
soak: build
	dune exec test/soak/soak.exe -- \
	  --daemon _build/default/bin/chased.exe \
	  --seconds $(SOAK_SECONDS) --dir _build/soak
	dune exec bin/obs_check.exe -- --metrics _build/soak/metrics.jsonl
	dune exec bin/chasec.exe -- trace-merge \
	  _build/soak/client.trace _build/soak/chased.trace \
	  > _build/soak/trace-merged.json
	dune exec bin/obs_check.exe -- --trace _build/soak/trace-merged.json \
	  --tracectx _build/soak/trace-merged.json

# replicated failover soak: a real primary/standby chased pair, SIGKILL
# loops against the primary with durable traffic in flight, a wire-level
# promotion by the failover client, zero-lost-acks + byte-parity audit,
# and the standby receiver's metrics file (replication lag histograms
# included) validated by obs_check.  CI runs SOAK_SECONDS=60.
soak-failover: build
	dune exec test/soak/soak_failover.exe -- \
	  --daemon _build/default/bin/chased.exe \
	  --seconds $(SOAK_SECONDS) --dir _build/soak-failover
	dune exec bin/obs_check.exe -- --metrics _build/soak-failover/metrics.jsonl
	dune exec bin/chasec.exe -- trace-merge \
	  _build/soak-failover/client.trace _build/soak-failover/standby.trace \
	  > _build/soak-failover/trace-merged.json
	dune exec bin/obs_check.exe -- --trace _build/soak-failover/trace-merged.json \
	  --tracectx _build/soak-failover/trace-merged.json

# static diagnostics over the shipped corpus: errors or warnings fail
lint: build
	dune exec bin/lint_cli.exe -- data/*.chase examples/*.chase

# formatting gate: dune files are always checked; .ml formatting only
# when ocamlformat is available (it is not baked into every image)
fmt:
	dune build @fmt
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(MAKE) fmt-ml; \
	else \
	  echo "ocamlformat not installed: skipping .ml formatting check"; \
	fi

fmt-ml:
	ocamlformat --check $$(git ls-files '*.ml' '*.mli')

check: build fmt lint test obs-smoke

clean:
	dune clean
