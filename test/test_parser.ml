(** Tests for the concrete syntax. *)

open Chase
open Test_util

let test_basic_rule () =
  let r = parse_rule "p(X, Y) -> q(Y, Z)" in
  Alcotest.(check int) "one body atom" 1 (List.length (Tgd.body r));
  Alcotest.(check int) "one head atom" 1 (List.length (Tgd.head r))

let test_named_rule () =
  let rules = Parser.parse_rules_exn "mine: p(X) -> q(X)." in
  Alcotest.(check string) "name kept" "mine" (Tgd.name (List.hd rules))

let test_multi_atom () =
  let r = parse_rule "p(X, Y), q(Y) -> r(Y, Z), s(Z)" in
  Alcotest.(check int) "two body atoms" 2 (List.length (Tgd.body r));
  Alcotest.(check int) "two head atoms" 2 (List.length (Tgd.head r))

let test_comments_and_whitespace () =
  let src = "% a comment\n  p(X) -> q(X). # another\n\n q(X) -> r(X)." in
  Alcotest.(check int) "two rules" 2 (List.length (Parser.parse_rules_exn src))

let test_propositional () =
  let r = parse_rule "start -> step" in
  Alcotest.(check int) "nullary body" 0 (Atom.arity (List.hd (Tgd.body r)))

let test_facts () =
  let facts = Parser.parse_database_exn "p(a, b). q(c)." in
  Alcotest.(check int) "two facts" 2 (List.length facts)

let test_case_convention () =
  let r = parse_rule "p(x, Y) -> q(x, Y)" in
  check_term "lowercase is constant" (Term.Const "x") (Atom.arg (List.hd (Tgd.body r)) 0);
  check_term "uppercase is variable" (Term.Var "Y") (Atom.arg (List.hd (Tgd.body r)) 1)

let test_underscore_variable () =
  let r = parse_rule "p(_x) -> q(_x, Z)" in
  check_term "underscore is variable" (Term.Var "_x") (Atom.arg (List.hd (Tgd.body r)) 0)

let test_errors () =
  let is_err s = Result.is_error (Parser.parse_rules s) in
  Alcotest.(check bool) "missing dot" true (is_err "p(X) -> q(X)");
  Alcotest.(check bool) "unbalanced paren" true (is_err "p(X -> q(X).");
  Alcotest.(check bool) "datalog syntax rejected" true (is_err "q(X) :- p(X).");
  Alcotest.(check bool) "nonground fact" true (Result.is_error (Parser.parse_database "p(X)."));
  Alcotest.(check bool) "fact in rule file" true (Result.is_error (Parser.parse_rules "p(a)."))

let test_error_line_numbers () =
  (* every entry-point error names the line of the offending statement,
     including statements of the wrong kind *)
  let has_line n = function
    | Ok _ -> false
    | Error msg ->
      let prefix = Fmt.str "line %d:" n in
      String.length msg >= String.length prefix
      && String.sub msg 0 (String.length prefix) = prefix
  in
  Alcotest.(check bool) "fact on line 2 of a rule file" true
    (has_line 2 (Parser.parse_rules "p(X) -> q(X).\np(a)."));
  Alcotest.(check bool) "EGD on line 3 of a plain program" true
    (has_line 3 (Parser.parse_program "p(a).\np(X) -> q(X).\nq(X) -> X = X."));
  Alcotest.(check bool) "rule on line 2 of a database file" true
    (has_line 2 (Parser.parse_database "p(a).\np(X) -> q(X)."));
  Alcotest.(check bool) "EGD in a rule file" true
    (has_line 1 (Parser.parse_rules "q(X) -> X = X."));
  Alcotest.(check bool) "named statement reports the name's line" true
    (has_line 2 (Parser.parse_rules "p(X) -> q(X).\nf:\np(a)."));
  Alcotest.(check bool) "syntax errors carry lines too" true
    (has_line 2 (Parser.parse_rules "p(X) -> q(X).\np(X ->\nq(X)."))

let test_mixed_program () =
  match Parser.parse_program "p(a). p(X) -> q(X)." with
  | Ok (rules, facts) ->
    Alcotest.(check int) "one rule" 1 (List.length rules);
    Alcotest.(check int) "one fact" 1 (List.length facts)
  | Error e -> Alcotest.fail e

let test_print_parse_roundtrip () =
  let rules =
    parse "p(X, Y), q(Y) -> r(Y, Z), s(Z). t(A, A) -> t(A, B). u(c) -> v(c, Z)."
  in
  List.iter
    (fun r ->
      let printed = Fmt.str "%a." Tgd.pp r in
      let reparsed = parse_rule printed in
      Alcotest.(check bool)
        (Fmt.str "roundtrip %s" printed)
        true (Tgd.equal r reparsed))
    rules

(* fuzz: generated rules survive print → parse → print *)
let print_parse_fuzz =
  let gen_term =
    QCheck.Gen.(
      oneof
        [ map (fun i -> Term.Var (Fmt.str "V%d" (i mod 4))) small_nat;
          map (fun i -> Term.Const (Fmt.str "k%d" (i mod 3))) small_nat ])
  in
  let gen_atom =
    (* arity is a function of the predicate so rules are well-formed *)
    QCheck.Gen.(
      map (fun p -> p mod 3) small_nat >>= (fun p ->
          map
            (fun ts -> Atom.of_list (Fmt.str "p%d" p) ts)
            (list_repeat (p + 1) gen_term)))
  in
  let gen_rule =
    QCheck.Gen.(
      map2
        (fun body head ->
          (* heads over body variables plus a possible existential *)
          Tgd.make ~body ~head ())
        (list_size (int_range 1 3) gen_atom)
        (list_size (int_range 1 2) gen_atom))
  in
  Test_util.qcheck ~count:300 "print/parse round-trip (fuzz)"
    (QCheck.make gen_rule) (fun rule_result ->
      match rule_result with
      | Error _ -> true (* invalid random combination: nothing to check *)
      | Ok r ->
        let printed = Fmt.str "%a." Tgd.pp r in
        (match Parser.parse_rules printed with
        | Ok [ r' ] -> Tgd.equal r r'
        | Ok _ | Error _ -> false))

let suite =
  [
    print_parse_fuzz;
    Alcotest.test_case "basic rule" `Quick test_basic_rule;
    Alcotest.test_case "named rule" `Quick test_named_rule;
    Alcotest.test_case "multiple atoms" `Quick test_multi_atom;
    Alcotest.test_case "comments and whitespace" `Quick test_comments_and_whitespace;
    Alcotest.test_case "propositional atoms" `Quick test_propositional;
    Alcotest.test_case "fact files" `Quick test_facts;
    Alcotest.test_case "case convention" `Quick test_case_convention;
    Alcotest.test_case "underscore variables" `Quick test_underscore_variable;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "errors carry line numbers" `Quick test_error_line_numbers;
    Alcotest.test_case "mixed program" `Quick test_mixed_program;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
  ]
